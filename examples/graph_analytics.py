#!/usr/bin/env python3
"""Graph analytics under tiered memory: real GAP kernels on a
Kronecker graph.

Generates an R-MAT power-law graph (the GAP benchmark input family),
actually executes BFS and Connected Components over its CSR arrays,
and measures how each tiering system handles the resulting page-level
access pattern -- hub-heavy neighbor gathers plus streaming scans.

Reproduces the Table IV takeaway at example scale: FreqTier identifies
hub pages by frequency and keeps them local; recency systems churn.

Usage:
    python examples/graph_analytics.py [--scale N] [--kernel bfs|cc|bc]
"""

import argparse

from repro import (
    AutoNUMA,
    ExperimentConfig,
    FreqTier,
    GapWorkload,
    StaticNoMigration,
    compare_policies,
)
from repro.analysis.tables import format_rows


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=int, default=18, help="2^scale nodes")
    parser.add_argument(
        "--kernel", choices=("bfs", "cc", "bc"), default="bfs"
    )
    parser.add_argument("--trials", type=int, default=6)
    args = parser.parse_args()

    def workload():
        return GapWorkload(
            args.kernel, scale=args.scale, num_trials=args.trials, seed=2
        )

    probe = workload()
    print(
        f"Graph: 2^{args.scale} nodes, "
        f"{probe.graph.num_directed_edges} directed edges, "
        f"{probe.footprint_pages} pages footprint"
    )
    degrees = probe.graph.degrees()
    print(
        f"Degree skew: max={degrees.max()}, mean={degrees.mean():.1f} "
        f"(hubs make tiering worthwhile)"
    )

    config = ExperimentConfig(
        local_fraction=0.05, ratio_label="1:32", max_batches=None, seed=2
    )
    print(f"\nRunning {args.kernel.upper()} x{args.trials} trials @ 1:32 ...")
    results = compare_policies(
        workload,
        {
            "FreqTier": lambda: FreqTier(seed=2),
            "AutoNUMA": lambda: AutoNUMA(seed=2),
            "Static": lambda: StaticNoMigration(),
        },
        config,
    )

    base = results["AllLocal"]
    rows = []
    for name, res in results.items():
        mean_trial = res.mean_time_per_label_ns()
        rel = res.relative_to(base)["label_time"]
        rows.append(
            [
                name,
                f"{mean_trial / 1e6:.2f} ms" if mean_trial else "-",
                f"{rel:.1%}" if rel else "-",
                f"{res.steady_hit_ratio:.1%}",
                res.pages_migrated,
            ]
        )
    print()
    print(
        format_rows(
            ["system", "time/trial", "%all-local", "hit ratio", "migrated"],
            rows,
        )
    )


if __name__ == "__main__":
    main()
