#!/usr/bin/env python3
"""Quickstart: compare FreqTier against every baseline on one workload.

Runs the paper's headline experiment at small scale -- the CacheLib
CDN workload with a 1:32 local:CXL capacity ratio (6% of the footprint
in local DRAM) -- for FreqTier, AutoNUMA, TPP, HeMem and the all-local
upper bound, then prints a Table-II-style comparison.

Usage:
    python examples/quickstart.py
"""

from repro import (
    AutoNUMA,
    CacheLibWorkload,
    CDN_PROFILE,
    ExperimentConfig,
    FreqTier,
    HeMem,
    TPP,
    compare_policies,
)
from repro.analysis.tables import format_comparison_table


def main() -> None:
    # The workload: a cachebench-style CDN trace.  16384 slab pages
    # ~= a 64 "simulated GB" cache (see DESIGN.md scaling convention).
    def workload():
        return CacheLibWorkload(
            CDN_PROFILE, slab_pages=16_384, ops_per_batch=10_000, seed=1
        )

    # The machine: local DRAM sized to 6% of the footprint, CXL 32x
    # larger -- the paper's 1:32 configuration (16 GB : 512 GB).
    config = ExperimentConfig(
        local_fraction=0.06, ratio_label="1:32", max_batches=300, seed=1
    )

    print("Running 5 tiering systems on CacheLib CDN @ 1:32 ...")
    results = compare_policies(
        workload,
        {
            "FreqTier": lambda: FreqTier(seed=1),
            "AutoNUMA": lambda: AutoNUMA(seed=1),
            "TPP": lambda: TPP(seed=1),
            "HeMem": lambda: HeMem(seed=1),
        },
        config,
    )

    print()
    print(format_comparison_table(results))
    print()
    ft = results["FreqTier"]
    print(
        f"FreqTier: hit ratio {ft.steady_hit_ratio:.1%}, "
        f"{ft.pages_migrated} pages migrated, "
        f"metadata {ft.policy_stats['metadata_bytes'] / 1024:.0f} KB"
    )
    an = results["AutoNUMA"]
    print(
        f"AutoNUMA: hit ratio {an.steady_hit_ratio:.1%}, "
        f"{an.pages_migrated} pages migrated "
        f"({an.pages_migrated / max(ft.pages_migrated, 1):.0f}x FreqTier's traffic)"
    )


if __name__ == "__main__":
    main()
