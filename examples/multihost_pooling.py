#!/usr/bin/env python3
"""Multi-host CXL memory pooling (the paper's Section VIII-b extension).

Three hosts with different workloads share one CXL capacity pool.
Each host runs its own FreqTier instance (hot/cold identification is
host-local, as the paper suggests); the pool manager moves capacity
toward pressured hosts.

Watch: the host with the tight initial grant stalls its demotions
until the pool rebalances capacity to it, after which its hit ratio
recovers.

Usage:
    python examples/multihost_pooling.py
"""

from repro import FreqTier, FreqTierConfig, SyntheticZipfWorkload
from repro.analysis.tables import format_rows
from repro.pooling import CXLPool, HostSpec, MultiHostSimulation


def tiering(seed: int) -> FreqTier:
    return FreqTier(
        config=FreqTierConfig(
            sample_batch_size=1_000, pebs_base_period=8, window_accesses=200_000
        ),
        seed=seed,
    )


def main() -> None:
    pool = CXLPool(total_pages=40_000)
    hosts = [
        HostSpec(
            name="cache-server",
            workload=SyntheticZipfWorkload(
                num_pages=8_000, alpha=1.3, accesses_per_batch=10_000, seed=1
            ),
            policy=tiering(1),
            local_pages=512,
            initial_grant_pages=7_700,  # tight: barely fits the spill
        ),
        HostSpec(
            name="analytics",
            workload=SyntheticZipfWorkload(
                num_pages=6_000, alpha=1.1, accesses_per_batch=10_000, seed=2
            ),
            policy=tiering(2),
            local_pages=512,
            initial_grant_pages=12_000,
        ),
        HostSpec(
            name="batch-jobs",
            workload=SyntheticZipfWorkload(
                num_pages=4_000, alpha=0.9, accesses_per_batch=10_000, seed=3
            ),
            policy=tiering(3),
            local_pages=512,
            initial_grant_pages=12_000,  # generous: the donor
        ),
    ]
    sim = MultiHostSimulation(pool, hosts, rebalance_interval_rounds=10)

    print("Running 3 pooled hosts for 120 rounds ...")
    results = sim.run(rounds=120)

    rows = []
    for state in sim.host_state():
        res = results[state["host"]]
        rows.append(
            [
                state["host"],
                state["cxl_granted"],
                state["cxl_used"],
                f"{res.steady_hit_ratio:.1%}",
                res.pages_migrated,
            ]
        )
    print()
    print(
        format_rows(
            ["host", "CXL granted", "CXL used", "hit ratio", "migrated"], rows
        )
    )
    print(
        f"\nPool: {pool.rebalances} rebalances moved {pool.pages_moved} pages "
        f"of capacity between hosts."
    )
    if sim.grant_timeline:
        print("Grant changes (round, host, new grant):")
        for round_idx, host, grant in sim.grant_timeline[:10]:
            print(f"  round {round_idx:3d}: {host} -> {grant}")


if __name__ == "__main__":
    main()
