#!/usr/bin/env python3
"""Extending the framework: write and evaluate your own tiering policy.

The policy interface is three methods; this example implements a
simple "sampled-LFU" policy in ~40 lines -- PEBS sampling into an
exact counter table with periodic top-k placement -- and benchmarks it
against FreqTier on the same machine and trace, showing how research
iterations slot into the harness.

Usage:
    python examples/custom_policy.py
"""

import numpy as np

from repro import (
    ExperimentConfig,
    FreqTier,
    SyntheticZipfWorkload,
    compare_policies,
)
from repro.analysis.tables import format_comparison_table
from repro.cbf.exact import ExactFrequencyTracker
from repro.memsim.pagetable import CXL_TIER, LOCAL_TIER
from repro.policies.base import TieringPolicy
from repro.sampling.pebs import PEBSSampler, SamplingLevel


class SampledLFU(TieringPolicy):
    """Every N accesses, place the top-k sampled pages in local DRAM.

    Deliberately naive: exact counting (high metadata cost), periodic
    wholesale re-placement (bursty migration traffic), no adaptivity.
    A good foil for FreqTier's incremental design.
    """

    name = "SampledLFU"

    def __init__(self, replace_interval_accesses: int = 400_000, seed: int = 0):
        super().__init__()
        self.replace_interval = int(replace_interval_accesses)
        self.tracker = ExactFrequencyTracker(bytes_per_entry=16)
        self.pebs = PEBSSampler(base_period=64, seed=seed)
        self.pebs.set_level(SamplingLevel.HIGH)
        self._since_replace = 0

    def on_batch(self, batch, tiers, now_ns: float, counts=None) -> float:
        self.pebs.observe(batch, tiers)
        overhead = 0.0
        self._since_replace += batch.num_accesses
        if self._since_replace >= self.replace_interval:
            self._since_replace = 0
            samples = self.pebs.drain()
            if samples.num_samples:
                self.tracker.increment(samples.page_ids)
                overhead += samples.num_samples * 100.0
            overhead += self._replace_top_k()
            self.tracker.age()
        self.stats.overhead_ns += overhead
        return overhead

    def _replace_top_k(self) -> float:
        machine = self.machine
        entries = sorted(
            self.tracker.items(), key=lambda kv: kv[1], reverse=True
        )
        if not entries:
            return 0.0
        k = machine.config.local_capacity_pages
        want_local = np.array([page for page, __ in entries[:k]], dtype=np.int64)
        placement = machine.placement_of(want_local)
        to_promote = want_local[placement == CXL_TIER]
        # Demote whatever occupies local but is outside the top-k.
        local_pages = machine.page_table.pages_in_tier(LOCAL_TIER)
        stale = np.setdiff1d(local_pages, want_local, assume_unique=False)
        demoted = machine.demote(stale[: len(to_promote) + 8])
        promoted = machine.promote(to_promote)
        self._record_migrations(promoted, demoted)
        return 10_000.0  # two syscalls + ranking pass


def main() -> None:
    def workload():
        return SyntheticZipfWorkload(
            num_pages=16_384, alpha=1.2, accesses_per_batch=40_000, seed=4
        )

    config = ExperimentConfig(
        local_fraction=0.08, ratio_label="1:16", max_batches=250, seed=4
    )
    print("Benchmarking a custom policy against FreqTier ...")
    results = compare_policies(
        workload,
        {
            "FreqTier": lambda: FreqTier(seed=4),
            "SampledLFU": lambda: SampledLFU(seed=4),
        },
        config,
    )
    print()
    print(format_comparison_table(results))
    lfu = results["SampledLFU"]
    ft = results["FreqTier"]
    print(
        f"\nSampledLFU migrated {lfu.pages_migrated} pages vs FreqTier's "
        f"{ft.pages_migrated}: wholesale replacement is bursty, which is "
        f"exactly the traffic FreqTier's threshold/watermark design avoids."
    )


if __name__ == "__main__":
    main()
