#!/usr/bin/env python3
"""Capacity planning: how much local DRAM does a workload really need?

The paper's Section VII-A observation 2: FreqTier often needs 2x (and
on social graph 4x) less local DRAM than AutoNUMA for the same
performance.  This example sweeps the local-DRAM fraction for both
systems on the social-graph workload and prints the resulting
performance curve -- the tool a capacity planner would actually use to
pick a DRAM:CXL ratio.

Usage:
    python examples/capacity_planning.py
"""

from repro import (
    AutoNUMA,
    CacheLibWorkload,
    ExperimentConfig,
    FreqTier,
    SOCIAL_PROFILE,
    compare_policies,
)
from repro.analysis.tables import format_rows

FRACTIONS = [(0.03, "1:32"), (0.06, "1:32"), (0.12, "1:16"), (0.24, "1:8")]


def main() -> None:
    def workload():
        return CacheLibWorkload(
            SOCIAL_PROFILE, slab_pages=16_384, ops_per_batch=10_000, seed=3
        )

    rows = []
    crossover = None
    print("Sweeping local DRAM sizes on CacheLib social graph ...")
    for frac, label in FRACTIONS:
        config = ExperimentConfig(
            local_fraction=frac, ratio_label=label, max_batches=300, seed=3
        )
        results = compare_policies(
            workload,
            {
                "FreqTier": lambda: FreqTier(seed=3),
                "AutoNUMA": lambda: AutoNUMA(seed=3),
            },
            config,
        )
        base = results["AllLocal"]
        ft = results["FreqTier"].relative_to(base)["throughput"]
        an = results["AutoNUMA"].relative_to(base)["throughput"]
        rows.append(
            [
                f"{frac:.0%}",
                f"{ft:.1%}",
                f"{an:.1%}",
                f"{results['FreqTier'].steady_hit_ratio:.1%}",
                f"{results['AutoNUMA'].steady_hit_ratio:.1%}",
            ]
        )
        if crossover is None and ft is not None:
            crossover = (frac, ft)

    print()
    print(
        format_rows(
            [
                "%local",
                "FreqTier thr",
                "AutoNUMA thr",
                "FreqTier hit",
                "AutoNUMA hit",
            ],
            rows,
        )
    )
    print(
        "\nReading the table: find the smallest %local where each system "
        "clears your performance target. FreqTier typically clears 90% of "
        "all-local with a fraction of the DRAM AutoNUMA needs -- that "
        "difference is the paper's DRAM cost-saving claim."
    )


if __name__ == "__main__":
    main()
