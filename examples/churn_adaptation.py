#!/usr/bin/env python3
"""Adapting to workload churn (the paper's Figure 11 scenario).

Real caches churn: item popularity shifts over time.  This example
builds a CacheLib CDN workload whose accesses move from the first half
of items to the second half mid-run (a worst-case shift), then shows
FreqTier's dynamic intensity machinery in action:

- the hit ratio collapses at the shift;
- the low-overhead monitoring mode detects the change and re-arms
  sampling at 100 kHz (watch the state-transition log);
- aging washes stale frequencies out of the CBF and the hit ratio
  recovers.

Usage:
    python examples/churn_adaptation.py
"""

from repro import (
    CacheLibWorkload,
    CDN_PROFILE,
    ExperimentConfig,
    FreqTier,
    ListSink,
    Tracer,
)
from repro.analysis.timeline import resample_timeline
from repro.core.engine import SimulationEngine
from repro.core.runner import build_machine
from repro.workloads.cachelib import Phase

SHIFT_AT_BATCH = 150
TOTAL_BATCHES = 500


def spark(values, width: int = 50) -> str:
    """Tiny text sparkline for a [0,1] series."""
    blocks = " .:-=+*#%@"
    return "".join(
        blocks[min(int(v * (len(blocks) - 1)), len(blocks) - 1)] for v in values
    )


def main() -> None:
    workload = CacheLibWorkload(
        CDN_PROFILE,
        slab_pages=16_384,
        ops_per_batch=10_000,
        phase_plan=(
            Phase(0.0, 0.5, num_batches=SHIFT_AT_BATCH),
            Phase(0.5, 1.0, None),
        ),
        seed=9,
    )
    config = ExperimentConfig(local_fraction=0.06, ratio_label="1:32", seed=9)
    machine = build_machine(workload.footprint_pages, config)
    policy = FreqTier(seed=9)
    sink = ListSink()
    engine = SimulationEngine(machine, workload, policy, tracer=Tracer(sinks=[sink]))

    print(
        f"Running {TOTAL_BATCHES} batches; all accesses shift to the "
        f"other half of items at batch {SHIFT_AT_BATCH} ..."
    )
    result = engine.run(max_batches=TOTAL_BATCHES)

    series = [v for __, v in resample_timeline(result.hit_ratio_timeline, 50)]
    print("\nLocal-DRAM hit ratio over time (shift near the middle):")
    print("  " + spark(series))
    print(f"  start {series[0]:.0%} ... min {min(series):.0%} ... end {series[-1]:.0%}")

    print("\nFreqTier state transitions:")
    for e in sink.of_type("state_transition"):
        print(
            f"  t={e['t_ns'] / 1e6:8.2f} ms  "
            f"{e['from']} -> {e['to']} ({e['reason']})"
        )

    shift_time = engine.metrics.records[SHIFT_AT_BATCH].start_ns
    resumed = [
        e["t_ns"]
        for e in sink.of_type("state_transition")
        if e["to"] == "sampling" and e["t_ns"] >= shift_time
    ]
    if resumed:
        print(
            f"\nDetected the distribution change "
            f"{(resumed[0] - shift_time) / 1e6:.2f} ms after the shift "
            f"(paper: within one ~30 s monitoring window)."
        )


if __name__ == "__main__":
    main()
