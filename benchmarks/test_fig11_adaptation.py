"""Figure 11: adapting to a changing access distribution.

Paper setup: CDN popularity/size distributions; during phase 1 all
accesses go to the first half of items, then from t=430 s onward to
the second half -- a worst-case churn event.  FreqTier's monitoring
mode detects the change within ~30 s (one window), re-arms sampling at
the highest rate, and re-converges; it ends up ahead of AutoNUMA.

The bench replays that scenario at simulator scale and checks: hit
ratio collapses at the shift, FreqTier detects it (a resume-sampling
transition is logged) and recovers to a high hit ratio.
"""

import pytest

from repro import (
    AutoNUMA,
    CacheLibWorkload,
    CDN_PROFILE,
    ExperimentConfig,
    FreqTier,
    ListSink,
    Tracer,
)
from repro.core.engine import SimulationEngine
from repro.core.runner import build_machine
from repro.workloads.cachelib import Phase

SHIFT_BATCH = 200
TOTAL_BATCHES = 800


def shifted_workload():
    return CacheLibWorkload(
        CDN_PROFILE,
        slab_pages=16_384,
        ops_per_batch=10_000,
        phase_plan=(
            Phase(0.0, 0.5, num_batches=SHIFT_BATCH),
            Phase(0.5, 1.0, None),
        ),
        seed=9,
    )


def run_policy(policy):
    workload = shifted_workload()
    config = ExperimentConfig(local_fraction=0.06, ratio_label="1:32", seed=9)
    machine = build_machine(workload.footprint_pages, config)
    sink = ListSink()
    engine = SimulationEngine(machine, workload, policy, tracer=Tracer(sinks=[sink]))
    result = engine.run(max_batches=TOTAL_BATCHES)
    return engine, result, sink


@pytest.fixture(scope="module")
def runs():
    ft_engine, ft_result, ft_sink = run_policy(FreqTier(seed=9))
    __, an_result, __sink = run_policy(AutoNUMA(seed=9))
    return ft_engine, ft_result, an_result, ft_sink


def test_fig11_distribution_change(benchmark, runs):
    ft_engine, ft_result, an_result, ft_sink = runs
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    records = ft_engine.metrics.records
    shift_time = records[SHIFT_BATCH].start_ns
    pre = [r.hit_ratio for r in records[SHIFT_BATCH - 40 : SHIFT_BATCH]]
    crash = [r.hit_ratio for r in records[SHIFT_BATCH + 1 : SHIFT_BATCH + 10]]
    tail = [r.hit_ratio for r in records[-60:]]
    pre_avg = sum(pre) / len(pre)
    crash_min = min(crash)
    tail_avg = sum(tail) / len(tail)

    print("\n=== Fig. 11: worst-case distribution change ===")
    print(f"  pre-shift hit ratio:   {pre_avg:.1%}")
    print(f"  post-shift minimum:    {crash_min:.1%}")
    print(f"  recovered hit ratio:   {tail_avg:.1%}")
    resumes = [
        e
        for e in ft_sink.of_type("state_transition")
        if e["to"] == "sampling" and e["t_ns"] > shift_time
    ]
    print(f"  resume-sampling events after shift: {len(resumes)}")

    # The shift genuinely crashes the hit ratio...
    assert crash_min < pre_avg - 0.3
    # ...FreqTier detects it from monitoring/sampling and re-arms...
    assert ft_engine.policy.stats.promotions > 0
    # ...and recovers most of the lost hit ratio.
    assert tail_avg > pre_avg - 0.1
    # End-state comparison: FreqTier >= AutoNUMA after the churn event
    # (paper: FreqTier continues to outperform after the transient).
    ft_tail = ft_result.hit_ratio_timeline[-30:]
    an_tail = an_result.hit_ratio_timeline[-30:]
    ft_avg = sum(v for __, v in ft_tail) / len(ft_tail)
    an_avg = sum(v for __, v in an_tail) / len(an_tail)
    print(f"  tail hit ratio: FreqTier {ft_avg:.1%} vs AutoNUMA {an_avg:.1%}")
    assert ft_avg >= an_avg - 0.02
