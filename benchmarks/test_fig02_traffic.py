"""Figure 2: memory traffic volume breakdown.

Paper: on CacheLib with 16 GB local DRAM, page migrations are on
average 10.4% (AutoNUMA) and 43.5% (TPP) of total memory traffic,
while FreqTier reduces migration traffic by ~4.2x versus prior works
(Section III).

Regenerates the breakdown (local access / CXL access / migration
shares) for FreqTier, AutoNUMA and TPP on both CacheLib workloads at
the 16 GB-equivalent and 32 GB-equivalent local sizes.
"""

import pytest

from benchmarks._common import cdn_workload, social_workload, run_grid
from repro.analysis.tables import format_rows

RATIOS = [("1:32", 0.06), ("1:16", 0.12)]  # 16 GB / 32 GB equivalents
SYSTEMS = ("FreqTier", "AutoNUMA", "TPP")


@pytest.fixture(scope="module")
def grids():
    return {
        "cdn": run_grid(cdn_workload(), RATIOS, seed=1),
        "social": run_grid(social_workload(), RATIOS, seed=1),
    }


def test_fig02_traffic_breakdown(benchmark, grids):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    rows = []
    for workload, grid in grids.items():
        for label, __ in RATIOS:
            for name in SYSTEMS:
                res = grid[label][name]
                b = res.traffic_breakdown
                rows.append(
                    [
                        workload,
                        label,
                        name,
                        f"{b['local']:.1%}",
                        f"{b['cxl']:.1%}",
                        f"{b['migration']:.1%}",
                    ]
                )
    print("\n=== Fig. 2: traffic breakdown (local / CXL / migration) ===")
    print(
        format_rows(
            ["workload", "config", "system", "local", "cxl", "migration"], rows
        )
    )

    for workload, grid in grids.items():
        for label, __ in RATIOS:
            results = grid[label]
            ft = results["FreqTier"].migration_bytes
            an = results["AutoNUMA"].migration_bytes
            tpp = results["TPP"].migration_bytes
            # TPP migrates the most (paper: up to 43.5% of traffic).
            assert tpp > an, (workload, label)
            # FreqTier's migration traffic is >= 4x below the prior-work
            # average (paper: 4.2x average reduction).
            assert (an + tpp) / 2 > 4 * ft, (workload, label)

    # Migration share shrinks only modestly with more DRAM for the
    # recency systems (paper: "remains significant" at 32 GB).
    for workload, grid in grids.items():
        share_16 = grid["1:32"]["TPP"].traffic_breakdown["migration"]
        share_32 = grid["1:16"]["TPP"].traffic_breakdown["migration"]
        assert share_32 > 0.05, workload
        assert share_16 > 0.05, workload
