"""Table IV: GAP graph-kernel performance (BC, BFS, CC).

Paper (CXL-1, execution time %all-local at 1:32):

    BC   FreqTier 86.6% | AutoNUMA 83.4% | TPP 66.9% | HeMem 64.3%
    BFS  FreqTier 80.7% | AutoNUMA 68.8% | TPP 42.3% | HeMem 55.4%
    CC   FreqTier 92.3% | AutoNUMA 78.1% | TPP 84.0% | HeMem 56.2%

Shape assertions: FreqTier wins every kernel at 1:32; the heavyweight
frequency baseline (HeMem) is consistently near the bottom on GAP.
"""

import pytest

from benchmarks._common import (
    GAP_RATIOS,
    gap_workload,
    labeled_time_table,
    relative_label_time,
    run_grid,
)

KERNELS = ("bc", "bfs", "cc")


@pytest.fixture(scope="module")
def grids():
    return {
        kernel: run_grid(
            gap_workload(kernel), GAP_RATIOS, max_batches=None, seed=2
        )
        for kernel in KERNELS
    }


def test_table4_gap(benchmark, grids):
    from repro import ExperimentConfig, FreqTier, run_experiment

    config = ExperimentConfig(local_fraction=0.05, max_batches=None, seed=2)
    benchmark.pedantic(
        lambda: run_experiment(gap_workload("bfs"), FreqTier, config),
        rounds=1,
        iterations=1,
    )

    for kernel in KERNELS:
        print(f"\n=== Table IV: GAP {kernel.upper()} (time vs all-local) ===")
        print(labeled_time_table(grids[kernel], GAP_RATIOS))

    # FreqTier wins every kernel at every ratio.
    for kernel in KERNELS:
        for label, __ in GAP_RATIOS:
            results = grids[kernel][label]
            ft = relative_label_time(results, "FreqTier")
            for other in ("AutoNUMA", "TPP", "HeMem"):
                assert ft > relative_label_time(results, other), (
                    kernel,
                    label,
                    other,
                )

    # HeMem's overhead drowns it on GAP (paper: worst on BC and CC).
    for kernel in KERNELS:
        results = grids[kernel]["1:32"]
        assert relative_label_time(results, "HeMem") < relative_label_time(
            results, "FreqTier"
        )
