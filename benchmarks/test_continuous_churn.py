"""Extension: continuous key churn (paper Section VII-D's phenomenon).

Figure 11 tests a one-shot worst-case shift; real caches churn
*continuously* ("the change in key popularity", §VII-D).  This bench
rotates item popularity a little every batch and checks that
FreqTier's aging + adaptive sampling keep it ahead of AutoNUMA in the
steady churn regime -- frequency information decays gracefully rather
than going stale.
"""

import pytest

from repro import AutoNUMA, CacheLibWorkload, CDN_PROFILE, ExperimentConfig, FreqTier, compare_policies
from repro.analysis.tables import format_rows

CONFIG = ExperimentConfig(
    local_fraction=0.06, ratio_label="1:32", max_batches=450, seed=6
)


def churny_workload():
    return CacheLibWorkload(
        CDN_PROFILE,
        slab_pages=16_384,
        ops_per_batch=10_000,
        churn_swaps_per_batch=25,  # ~0.6% of items swap rank per batch
        seed=6,
    )


@pytest.fixture(scope="module")
def results():
    return compare_policies(
        churny_workload,
        {
            "FreqTier": lambda: FreqTier(seed=6),
            "AutoNUMA": lambda: AutoNUMA(seed=6),
        },
        CONFIG,
    )


def test_continuous_churn(benchmark, results):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    base = results["AllLocal"]
    rows = []
    rel = {}
    for name in ("FreqTier", "AutoNUMA"):
        res = results[name]
        rel[name] = res.relative_to(base)["throughput"]
        rows.append(
            [
                name,
                f"{rel[name]:.1%}",
                f"{res.steady_hit_ratio:.1%}",
                res.pages_migrated,
            ]
        )
    print("\n=== Extension: continuous key churn (CDN @ 1:32) ===")
    print(format_rows(["system", "throughput", "hit ratio", "migrated"], rows))

    # FreqTier keeps winning under sustained churn.
    assert rel["FreqTier"] > rel["AutoNUMA"]
    # Churn at this rate (full hot-set rotation every ~3 windows) costs
    # real points versus the static-popularity Table II cell (~90%),
    # but tiering remains clearly profitable.
    assert rel["FreqTier"] > 0.70
    # It keeps migrating to track the rotation (no premature shutdown).
    assert results["FreqTier"].pages_migrated > 1_000
