"""Figure 13: sensitivity to the sample batch size.

Paper: on CacheLib CDN at 1:32, larger sample batches amortize the
migration-syscall overhead (better P50/throughput), at the cost of
memory for buffering (16 bytes x batch size); gains flatten around the
default 100k.  Normalized to batch size 1.

The simulator sweep covers the equivalent range; the shape must match:
throughput rises from tiny batches and saturates, while the modeled
buffer memory grows linearly.
"""

import pytest

from benchmarks._common import cdn_workload
from repro import ExperimentConfig, FreqTier, FreqTierConfig, run_all_local, sweep
from repro.analysis.tables import format_rows
from repro.sampling.pebs import SAMPLE_RECORD_BYTES

BATCH_SIZES = [50, 200, 1_000, 5_000, 20_000]

CONFIG = ExperimentConfig(
    local_fraction=0.06, ratio_label="1:32", max_batches=400, seed=1
)


def factory_for(batch_size: int):
    def make():
        return FreqTier(
            config=FreqTierConfig(sample_batch_size=batch_size), seed=1
        )

    return make


@pytest.fixture(scope="module")
def results():
    wf = cdn_workload()
    base = run_all_local(wf, CONFIG)
    return base, sweep(wf, factory_for, BATCH_SIZES, CONFIG)


def test_fig13_batch_size_sensitivity(benchmark, results):
    base, swept = results
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    ref = swept[BATCH_SIZES[0]].relative_to(base)["throughput"]
    rows = []
    for size, res in swept.items():
        rel = res.relative_to(base)["throughput"] / ref
        buffer_bytes = size * SAMPLE_RECORD_BYTES
        rows.append(
            [
                size,
                f"{rel:.2f}x",
                f"{res.policy_stats['promotion_calls']:.0f}",
                f"{buffer_bytes / 1024:.1f} KB",
            ]
        )
    print("\n=== Fig. 13: sample batch size (normalized to smallest) ===")
    print(
        format_rows(
            ["batch size", "rel. throughput", "move_pages calls", "buffer"], rows
        )
    )

    perf = {s: swept[s].relative_to(base)["throughput"] for s in BATCH_SIZES}
    # Bigger batches amortize syscalls: large >= small.
    assert perf[BATCH_SIZES[-1]] >= perf[BATCH_SIZES[0]] - 0.01
    # Syscall count drops sharply with batch size.
    calls_small = swept[BATCH_SIZES[0]].policy_stats["promotion_calls"]
    calls_large = swept[BATCH_SIZES[-1]].policy_stats["promotion_calls"]
    assert calls_small > calls_large * 3
    # Saturation: the last doubling moves performance by < 3%.
    assert abs(perf[BATCH_SIZES[-1]] - perf[BATCH_SIZES[-2]]) < 0.03
