"""Shared infrastructure for the paper-reproduction benchmarks.

Every benchmark regenerates one table or figure of the paper at the
simulator's scale (see DESIGN.md "Scaling convention"): capacity
*ratios*, policy parameters and workload shapes match the paper; page
counts are ~1000x smaller.  Output is printed in the paper's layout so
rows can be compared side by side with the published numbers, and each
bench asserts the *shape* results the paper's text highlights.

The ``benchmark`` fixture times one full experiment cell so
``pytest-benchmark`` reports simulation throughput alongside the
reproduction output.
"""

from __future__ import annotations

from collections.abc import Callable

from repro import ExperimentConfig, PolicySpec, WorkloadSpec
from repro.analysis.tables import format_rows
from repro.core.metrics import ExperimentResult
from repro.core.parallel import CellSpec, ParallelExecutor, executor_from_env
from repro.memsim.tier import TieredMemoryConfig, CXL1_CONFIG

#: Bench-scale CacheLib slab: 64 sim-GB of items (the paper's 256 GB
#: at a further 4x reduction; all ratios preserved).
CACHELIB_SLAB_PAGES = 16_384
CACHELIB_OPS_PER_BATCH = 10_000
CACHELIB_BATCHES = 400

#: GAP graph scale (2^18 nodes, avg degree 4) and trials.
GAP_SCALE = 18
GAP_TRIALS = 6

#: XGBoost boosting rounds per run.
XGB_ROUNDS = 80

#: The paper's %local per workload family (its %local column).
CACHELIB_RATIOS = [("1:32", 0.06), ("1:16", 0.12), ("1:8", 0.24)]
GAP_RATIOS = [("1:32", 0.05), ("1:16", 0.10), ("1:8", 0.19)]
XGB_RATIOS = [("1:32", 0.065), ("1:16", 0.13), ("1:8", 0.26)]

#: Paper-order policy line-up for every table.
POLICY_NAMES = ("FreqTier", "AutoNUMA", "TPP", "HeMem")


def standard_policies(seed: int = 0) -> dict[str, Callable]:
    """The paper line-up as picklable, cache-addressable specs."""
    return {
        "FreqTier": PolicySpec("freqtier", seed=seed),
        "AutoNUMA": PolicySpec("autonuma", seed=seed),
        "TPP": PolicySpec("tpp", seed=seed),
        "HeMem": PolicySpec("hemem", seed=seed),
    }


def cdn_workload(seed: int = 1) -> Callable:
    return WorkloadSpec(
        "cdn",
        slab_pages=CACHELIB_SLAB_PAGES,
        ops_per_batch=CACHELIB_OPS_PER_BATCH,
        seed=seed,
    )


def social_workload(seed: int = 1) -> Callable:
    return WorkloadSpec(
        "social",
        slab_pages=CACHELIB_SLAB_PAGES,
        ops_per_batch=CACHELIB_OPS_PER_BATCH,
        seed=seed,
    )


def gap_workload(kernel: str, seed: int = 2) -> Callable:
    return WorkloadSpec(
        "gap", kernel=kernel, scale=GAP_SCALE, num_trials=GAP_TRIALS, seed=seed
    )


def xgb_workload(seed: int = 3) -> Callable:
    return WorkloadSpec("xgboost", num_rounds=XGB_ROUNDS, seed=seed)


def run_grid(
    workload_factory: Callable,
    ratios: list[tuple[str, float]],
    memory: TieredMemoryConfig = CXL1_CONFIG,
    max_batches: int | None = CACHELIB_BATCHES,
    seed: int = 1,
    executor: ParallelExecutor | None = None,
) -> dict[str, dict[str, ExperimentResult]]:
    """Run the standard policy line-up at every capacity ratio.

    Returns ``{ratio_label: {policy: result}}`` (incl. ``AllLocal``).

    All ratios x policies are submitted as one batch of cells, so an
    executor with ``jobs>1`` parallelizes the whole grid at once.  The
    default executor honours ``REPRO_JOBS`` / ``REPRO_CACHE_DIR``
    (serial, uncached when unset), so the benchmark suite can be
    parallelized/cached without touching any benchmark file.
    """
    if executor is None:
        executor = executor_from_env()
    cells: list[CellSpec] = []
    keys: list[tuple[str, str]] = []
    for label, frac in ratios:
        config = ExperimentConfig(
            local_fraction=frac,
            ratio_label=label,
            memory=memory,
            max_batches=max_batches,
            seed=seed,
        )
        for name, factory in (
            [("AllLocal", None)] + list(standard_policies(seed=seed).items())
        ):
            cells.append(
                CellSpec(workload_factory, factory, config, label=name)
            )
            keys.append((label, name))
    grid: dict[str, dict[str, ExperimentResult]] = {}
    for (label, name), result in zip(keys, executor.run(cells)):
        grid.setdefault(label, {})[name] = result
    return grid


def cachelib_table(
    grid: dict[str, dict[str, ExperimentResult]],
    ratios: list[tuple[str, float]],
) -> str:
    """Render a Table II/III style block: P50 and throughput rows."""
    headers = ["Config", "%local"] + [
        f"{n} (p50/thr %all-local)" for n in POLICY_NAMES
    ]
    rows = []
    for label, frac in ratios:
        results = grid[label]
        base = results["AllLocal"]
        row = [label, f"{frac:.0%}"]
        for name in POLICY_NAMES:
            rel = results[name].relative_to(base)
            row.append(
                f"{rel['p50_latency']:.1%} / {rel['throughput']:.1%}"
            )
        rows.append(row)
    return format_rows(headers, rows)


def labeled_time_table(
    grid: dict[str, dict[str, ExperimentResult]],
    ratios: list[tuple[str, float]],
) -> str:
    """Render a Table IV/V style block: per-trial time %all-local."""
    headers = ["Config", "%local"] + [
        f"{n} (time %all-local)" for n in POLICY_NAMES
    ]
    rows = []
    for label, frac in ratios:
        results = grid[label]
        base = results["AllLocal"]
        row = [label, f"{frac:.0%}"]
        for name in POLICY_NAMES:
            rel = results[name].relative_to(base)["label_time"]
            row.append(f"{rel:.1%}" if rel else "-")
        rows.append(row)
    return format_rows(headers, rows)


def relative_throughput(
    results: dict[str, ExperimentResult], name: str
) -> float:
    rel = results[name].relative_to(results["AllLocal"])["throughput"]
    assert rel is not None
    return rel


def relative_label_time(
    results: dict[str, ExperimentResult], name: str
) -> float:
    rel = results[name].relative_to(results["AllLocal"])["label_time"]
    assert rel is not None
    return rel
