"""Extension: related-work tiering designs (paper Section IX-a).

Beyond the paper's three baselines, Section IX discuses two more
design points this repo implements:

- **MULTI-CLOCK** (Maruf et al., HPCA'22): distinguishes pages
  accessed once from pages accessed more than once, "but treats all
  pages accessed more than once equally, resulting in low
  classification accuracy".
- **DAMON/DAOS** (Park et al., HPDC'22): variable-sized region
  monitoring, "where all pages in the same region share the same
  access frequency".

The bench runs both against FreqTier on CacheLib CDN at 1:32 and
checks the paper's qualitative argument: full per-page frequency
information beats both coarser signals.
"""

import pytest

from benchmarks._common import cdn_workload
from repro import ExperimentConfig, FreqTier, MultiClock, compare_policies
from repro.analysis.tables import format_rows
from repro.policies.damon import DAMONRegion

CONFIG = ExperimentConfig(
    local_fraction=0.06, ratio_label="1:32", max_batches=400, seed=1
)


@pytest.fixture(scope="module")
def results():
    return compare_policies(
        cdn_workload(),
        {
            "FreqTier": lambda: FreqTier(seed=1),
            "MULTI-CLOCK": lambda: MultiClock(seed=1),
            "DAMON": lambda: DAMONRegion(seed=1),
        },
        CONFIG,
    )


def test_related_work_designs(benchmark, results):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    base = results["AllLocal"]
    rows = []
    rel = {}
    for name in ("FreqTier", "MULTI-CLOCK", "DAMON"):
        res = results[name]
        rel[name] = res.relative_to(base)["throughput"]
        rows.append(
            [
                name,
                f"{rel[name]:.1%}",
                f"{res.steady_hit_ratio:.1%}",
                res.pages_migrated,
            ]
        )
    print("\n=== Related work: frequency-signal granularity ===")
    print(format_rows(["system", "throughput", "hit ratio", "migrated"], rows))

    # Full frequency information wins (paper Section IX-a).
    assert rel["FreqTier"] > rel["MULTI-CLOCK"]
    assert rel["FreqTier"] > rel["DAMON"]
    # Both coarse designs still clearly beat doing nothing: they track
    # and migrate real hotness, just coarsely.
    assert results["MULTI-CLOCK"].steady_hit_ratio > 0.3
    assert results["DAMON"].steady_hit_ratio > 0.3
