"""Ablation: CBF increment coalescing (paper Section V-C(c)).

Paper: aggregating each sample batch in a hash table and issuing one
``increase_frequency`` per unique page yields ~4x fewer CBF accesses
on the skewed CacheLib sample streams.

The bench replays a real sampled CDN stream through a coalesced and an
uncoalesced CBF and compares slot-access counts and resulting
estimates.
"""

import numpy as np
import pytest

from benchmarks._common import cdn_workload
from repro.cbf.cbf import CountingBloomFilter
from repro.cbf.coalescing import SampleCoalescer
from repro.core.runner import build_machine
from repro import ExperimentConfig
from repro.sampling.pebs import PEBSSampler


def sampled_stream(num_batches: int = 60) -> list[np.ndarray]:
    """PEBS-sampled CDN access stream, batched as FreqTier sees it."""
    workload = cdn_workload(5)()
    config = ExperimentConfig(local_fraction=0.06, ratio_label="1:32", seed=5)
    machine = build_machine(workload.footprint_pages, config)
    workload.setup(machine)
    sampler = PEBSSampler(base_period=16, seed=5)
    batches = []
    gen = iter(workload.batches())
    for __ in range(num_batches):
        batch = next(gen)
        sampler.observe(batch, machine.placement_of(batch.page_ids))
        drained = sampler.drain()
        if drained.num_samples:
            batches.append(drained.page_ids.astype(np.uint64))
    return batches


@pytest.fixture(scope="module")
def stream():
    return sampled_stream()


def test_ablation_increment_coalescing(benchmark, stream):
    def run_coalesced():
        cbf = CountingBloomFilter(num_counters=65_536, num_hashes=3, bits=4, seed=6)
        coalescer = SampleCoalescer(cbf)
        for batch in stream:
            coalescer.ingest(batch)
        return cbf, coalescer

    cbf_coalesced, coalescer = benchmark.pedantic(
        run_coalesced, rounds=1, iterations=1
    )

    cbf_raw = CountingBloomFilter(num_counters=65_536, num_hashes=3, bits=4, seed=6)
    for batch in stream:
        for page in batch:
            cbf_raw.increment(int(page))

    reduction = coalescer.stats.reduction_factor
    slot_reduction = (
        cbf_raw.stats.slot_accesses / cbf_coalesced.stats.slot_accesses
    )
    print("\n=== Ablation: CBF increment coalescing ===")
    print(f"  samples in:        {coalescer.stats.samples_in}")
    print(f"  unique increments: {coalescer.stats.unique_increments_out}")
    print(f"  call reduction:    {reduction:.1f}x (paper: ~4x)")
    print(f"  slot-access reduction: {slot_reduction:.1f}x")

    # The paper's ~4x fewer CBF accesses on skewed streams.
    assert reduction > 2.5
    assert slot_reduction > 2.5
    # Coalescing must not distort tracked frequencies: the batched
    # conservative update is at most as inflated as the per-sample one
    # (never undercounts, never exceeds the sequential estimate).
    probe = np.unique(np.concatenate(stream))[:2_000]
    coalesced = cbf_coalesced.get(probe)
    raw = cbf_raw.get(probe)
    assert np.all(coalesced <= raw)
    assert float(np.mean(np.abs(coalesced - raw))) < 0.05
