"""Figure 9: local-DRAM hit ratio on CacheLib vs local DRAM size.

Paper: with 16 GB of local DRAM FreqTier reaches ~90% hit ratio, on
average 20-21 points above AutoNUMA/TPP; HeMem sits between (accurate
tracking, so close to FreqTier).  The advantage shrinks as local DRAM
grows to 64 GB.
"""

import pytest

from benchmarks._common import (
    cdn_workload,
    POLICY_NAMES,
    run_grid,
    social_workload,
)
from repro.analysis.tables import format_rows

# 16 / 32 / 64 GB against the 267 GB footprint = 6% / 12% / 24%
# (capacity ratios 1:32 / 1:16 / 1:8).
SIZES = [("1:32", 0.06), ("1:16", 0.12), ("1:8", 0.24)]
SIZE_NAMES = {"1:32": "16GB", "1:16": "32GB", "1:8": "64GB"}


@pytest.fixture(scope="module")
def grids():
    return {
        "cdn": run_grid(cdn_workload(), SIZES, seed=1),
        "social": run_grid(social_workload(), SIZES, seed=1),
    }


def test_fig09_hit_ratio(benchmark, grids):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    rows = []
    for workload, grid in grids.items():
        for label, __ in SIZES:
            row = [workload, SIZE_NAMES[label]]
            for name in POLICY_NAMES:
                row.append(f"{grid[label][name].steady_hit_ratio:.1%}")
            rows.append(row)
    print("\n=== Fig. 9: local DRAM hit ratio ===")
    print(format_rows(["workload", "local size"] + list(POLICY_NAMES), rows))

    for workload, grid in grids.items():
        # FreqTier tops every cell; at the largest local size the
        # paper itself shows near-parity with AutoNUMA, so the
        # tolerance widens there (everyone fits the hot set at 64 GB).
        for label, __ in SIZES:
            tolerance = 0.02 if label == "1:8" else 0.01
            ft = grid[label]["FreqTier"].steady_hit_ratio
            for other in ("AutoNUMA", "TPP", "HeMem"):
                assert ft >= grid[label][other].steady_hit_ratio - tolerance, (
                    workload,
                    label,
                    other,
                )
        # ~90% at the 16 GB-equivalent (paper's headline).
        assert grid["1:32"]["FreqTier"].steady_hit_ratio > 0.85, workload
        # The FreqTier-vs-AutoNUMA gap narrows with more DRAM (the
        # paper's observation; its TPP gap stays wide on social graph,
        # Table III, so TPP is not part of this check).
        gap_16 = (
            grid["1:32"]["FreqTier"].steady_hit_ratio
            - grid["1:32"]["AutoNUMA"].steady_hit_ratio
        )
        gap_64 = (
            grid["1:8"]["FreqTier"].steady_hit_ratio
            - grid["1:8"]["AutoNUMA"].steady_hit_ratio
        )
        assert gap_16 >= gap_64 - 0.02, workload
        # TPP's deficit at the 16 GB point is substantial.
        assert (
            grid["1:32"]["FreqTier"].steady_hit_ratio
            - grid["1:32"]["TPP"].steady_hit_ratio
            > 0.02
        ), workload
        # HeMem (frequency-based) beats the recency systems on accuracy.
        assert (
            grid["1:32"]["HeMem"].steady_hit_ratio
            > grid["1:32"]["TPP"].steady_hit_ratio
        ), workload
