"""Ablation: dynamic vs static hot threshold (paper Section V-C(a)).

The dynamic controller keeps the hot-page set roughly the size of
local DRAM.  This ablation pins the threshold at values that are too
low (everything looks hot -> churn) and too high (nothing qualifies ->
empty local DRAM), and shows the dynamic default is competitive with
the best static choice without hand-tuning.
"""

import pytest

from benchmarks._common import cdn_workload
from repro import ExperimentConfig, FreqTier, FreqTierConfig, run_all_local, run_experiment
from repro.analysis.tables import format_rows

CONFIG = ExperimentConfig(
    local_fraction=0.06, ratio_label="1:32", max_batches=400, seed=1
)


def fixed_threshold_policy(threshold: int):
    def make():
        return FreqTier(
            config=FreqTierConfig(
                initial_hot_threshold=threshold,
                min_hot_threshold=threshold,
                max_hot_threshold=threshold,
            ),
            seed=1,
        )

    return make


def dynamic_policy():
    return FreqTier(seed=1)


@pytest.fixture(scope="module")
def results():
    wf = cdn_workload()
    base = run_all_local(wf, CONFIG)
    out = {"dynamic": run_experiment(wf, dynamic_policy, CONFIG)}
    for threshold in (1, 5, 14):
        out[f"static-{threshold}"] = run_experiment(
            wf, fixed_threshold_policy(threshold), CONFIG
        )
    return base, out


def test_ablation_dynamic_threshold(benchmark, results):
    base, out = results
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    rows = []
    rel = {}
    for name, res in out.items():
        rel[name] = res.relative_to(base)["throughput"]
        rows.append(
            [
                name,
                f"{rel[name]:.1%}",
                f"{res.steady_hit_ratio:.1%}",
                res.pages_migrated,
            ]
        )
    print("\n=== Ablation: dynamic vs static hot threshold ===")
    print(format_rows(["threshold", "throughput", "hit ratio", "migrated"], rows))

    # Dynamic matches or beats every static setting (within noise).
    best_static = max(v for k, v in rel.items() if k.startswith("static"))
    assert rel["dynamic"] >= best_static - 0.02

    # A too-low threshold misbehaves: everything sampled looks hot, so
    # the demotion scan can find nothing "cold" to evict and promotion
    # stalls (or, with room, churns).  Either way it cannot beat the
    # dynamic controller's hit ratio.
    assert (
        out["static-1"].steady_hit_ratio
        <= out["dynamic"].steady_hit_ratio + 0.01
    )
