"""Table III: CacheLib social-graph workload performance.

Paper (CXL-1, throughput %all-local):

    1:32  FreqTier 95.6% | AutoNUMA 87.7% | TPP 77.8% | HeMem 84.7%
    1:16  FreqTier 97.4% | AutoNUMA 93.1% | TPP 82.0% | HeMem 86.2%
    1:8   FreqTier 98.4% | AutoNUMA 95.3% | TPP 85.3% | HeMem 83.8%

Plus the Section VII-A observation 3: FreqTier needs only the 1:32
configuration to exceed 90% of all-local on social graph.
"""

import pytest

from benchmarks._common import (
    CACHELIB_RATIOS,
    cachelib_table,
    POLICY_NAMES,
    relative_throughput,
    run_grid,
    social_workload,
)


@pytest.fixture(scope="module")
def grid():
    return run_grid(social_workload(), CACHELIB_RATIOS, seed=1)


def test_table3_cachelib_social(benchmark, grid):
    from repro import ExperimentConfig, FreqTier, run_experiment

    config = ExperimentConfig(
        local_fraction=0.06, ratio_label="1:32", max_batches=100, seed=1
    )
    benchmark.pedantic(
        lambda: run_experiment(social_workload(), FreqTier, config),
        rounds=1,
        iterations=1,
    )

    print("\n=== Table III: CacheLib social graph ===")
    print(cachelib_table(grid, CACHELIB_RATIOS))
    for label, __ in CACHELIB_RATIOS:
        hits = {n: grid[label][n].steady_hit_ratio for n in POLICY_NAMES}
        print(f"  {label} hit ratios: " + ", ".join(f"{n}={v:.2f}" for n, v in hits.items()))

    for label, __ in CACHELIB_RATIOS:
        ft = relative_throughput(grid[label], "FreqTier")
        for other in ("AutoNUMA", "TPP", "HeMem"):
            assert ft > relative_throughput(grid[label], other), (label, other)

    # Observation 3: 90% of all-local already at 1:32.
    assert relative_throughput(grid["1:32"], "FreqTier") >= 0.90

    # 4x-less-DRAM headline: FreqTier at 1:32 beats AutoNUMA at 1:8.
    assert relative_throughput(grid["1:32"], "FreqTier") >= relative_throughput(
        grid["1:8"], "AutoNUMA"
    ) - 0.01
