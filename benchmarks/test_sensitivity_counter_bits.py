"""Section VII-E3: number of bits per frequency counter.

Paper: with 4 bits (max count 15), fewer than 2% of pages saturate, and
since the local:CXL ratio exceeds that, pages at the cap can safely be
classified hot -- so more bits buy nothing, while fewer bits blur the
hot/cold boundary.  This bench sweeps the counter width on CacheLib CDN
and checks: 4 bits performs like 8 bits, and the filter's memory halves.
"""

import pytest

from benchmarks._common import cdn_workload
from repro import ExperimentConfig, FreqTier, FreqTierConfig, run_all_local, sweep
from repro.analysis.tables import format_rows

BITS = [2, 4, 8]

CONFIG = ExperimentConfig(
    local_fraction=0.06, ratio_label="1:32", max_batches=400, seed=1
)


def factory_for(bits: int):
    def make():
        # Threshold must stay representable at every width.
        return FreqTier(
            config=FreqTierConfig(
                cbf_bits=bits,
                initial_hot_threshold=min(5, (1 << bits) - 1),
            ),
            seed=1,
        )

    return make


@pytest.fixture(scope="module")
def results():
    wf = cdn_workload()
    base = run_all_local(wf, CONFIG)
    return base, sweep(wf, factory_for, BITS, CONFIG)


def test_sensitivity_counter_bits(benchmark, results):
    base, swept = results
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    rows = []
    rel = {}
    for bits, res in swept.items():
        rel[bits] = res.relative_to(base)["throughput"]
        rows.append(
            [
                bits,
                f"max {(1 << bits) - 1}",
                f"{rel[bits]:.1%}",
                f"{res.steady_hit_ratio:.1%}",
            ]
        )
    print("\n=== Section VII-E3: bits per frequency counter ===")
    print(format_rows(["bits", "counter cap", "throughput", "hit ratio"], rows))

    # 4 bits is as good as 8 (the paper's claim).
    assert rel[4] >= rel[8] - 0.015
    # 2 bits (cap 3) degrades or at best matches: the hot threshold is
    # squeezed against the cap and the distribution is blurred.
    assert rel[2] <= rel[4] + 0.01
