"""Ablation: conservative update vs plain Count-Min Sketch.

FreqTier's CBF increments only the minimal counters ("INCREMENT ...
increment the minimum counters", paper Section V-A).  The plain
Count-Min Sketch updates all k counters.  Both never undercount, but
conservative update sharply reduces overcounting under load -- which
matters exactly when the CBF is sized tightly (the paper's memory
argument).  The bench replays the sampled CDN stream into both at an
aggressive load factor and compares classification quality.
"""

import numpy as np
import pytest

from benchmarks._common import cdn_workload
from repro import ExperimentConfig
from repro.cbf.cbf import CountingBloomFilter
from repro.cbf.cms import CountMinSketch
from repro.cbf.exact import ExactFrequencyTracker
from repro.core.runner import build_machine
from repro.sampling.pebs import PEBSSampler


@pytest.fixture(scope="module")
def stream() -> list[np.ndarray]:
    workload = cdn_workload(12)()
    config = ExperimentConfig(local_fraction=0.06, ratio_label="1:32", seed=12)
    machine = build_machine(workload.footprint_pages, config)
    workload.setup(machine)
    sampler = PEBSSampler(base_period=16, seed=12)
    gen = iter(workload.batches())
    out = []
    for __ in range(50):
        batch = next(gen)
        sampler.observe(batch, machine.placement_of(batch.page_ids))
        drained = sampler.drain()
        if drained.num_samples:
            out.append(drained.page_ids.astype(np.uint64))
    return out


def feed(tracker, stream):
    for batch in stream:
        uniq, counts = np.unique(batch, return_counts=True)
        tracker.increase(uniq, counts)
    return tracker


def test_ablation_conservative_update(benchmark, stream):
    # Deliberately tight filter: ~1 counter per 2 tracked pages.
    num_counters = 4_096
    cbf = benchmark.pedantic(
        lambda: feed(
            CountingBloomFilter(num_counters, num_hashes=3, bits=8, seed=13),
            stream,
        ),
        rounds=1,
        iterations=1,
    )
    cms = feed(
        CountMinSketch(num_counters, num_hashes=3, bits=8, seed=13), stream
    )
    oracle = feed(ExactFrequencyTracker(max_count=255), stream)

    pages = np.unique(np.concatenate(stream))
    truth = np.asarray(oracle.get(pages))
    cbf_err = np.mean(np.abs(cbf.get(pages) - truth))
    cms_err = np.mean(np.abs(cms.get(pages) - truth))

    threshold = 5
    truth_hot = truth >= threshold
    cbf_false_hot = np.mean((cbf.get(pages) >= threshold) & ~truth_hot)
    cms_false_hot = np.mean((cms.get(pages) >= threshold) & ~truth_hot)

    print("\n=== Ablation: conservative update vs Count-Min Sketch ===")
    print(f"  tracked pages: {len(pages)}, counters: {num_counters}")
    print(f"  mean |error|:  CBF {cbf_err:.2f}, CMS {cms_err:.2f}")
    print(f"  false-hot:     CBF {cbf_false_hot:.2%}, CMS {cms_false_hot:.2%}")

    # Conservative update overcounts strictly less under pressure.
    assert cbf_err < cms_err
    # And misclassifies fewer cold pages as hot.
    assert cbf_false_hot <= cms_false_hot
