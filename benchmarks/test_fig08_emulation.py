"""Figure 8: latency and bandwidth of the emulated CXL configurations.

Paper (Intel MLC measurements of the NUMA-emulated devices):

- local DRAM: ~110 ns idle latency, ~85 GB/s;
- CXL-1 (8 remote channels): +~100 ns, ~45% of local bandwidth;
- CXL-2 (1 remote channel):  +~300 ns, <10% of local bandwidth.

This bench plays the role of the Memory Latency Checker: it probes the
cost model directly and prints the Fig. 8 table, then validates the
paper's characterization ranges (50-100+ ns adder; 20-70% bandwidth for
the fast device).
"""

import pytest

from repro.analysis.tables import format_rows
from repro.memsim.costmodel import CostModel
from repro.memsim.tier import CXL1_CONFIG, CXL2_CONFIG, LOCAL_DRAM


def measure(model: CostModel, cxl: bool, accesses: int = 100_000):
    """MLC-style probe: idle latency and sustained bandwidth."""
    tier = model.memory.cxl if cxl else model.memory.local
    idle_latency = model.loaded_latency_ns(tier, utilization=0.0)
    # Saturating sequential read: 4 KB per access.
    cost = model.batch_cost(
        0.0,
        0 if cxl else accesses,
        accesses if cxl else 0,
        bytes_per_access=4096,
    )
    time_ns = cost.local_mem_ns if not cxl else cost.cxl_mem_ns
    bandwidth_gbps = accesses * 4096 / time_ns  # bytes/ns == GB/s
    return idle_latency, bandwidth_gbps


def test_fig08_emulated_devices(benchmark):
    model1 = CostModel(CXL1_CONFIG)
    model2 = CostModel(CXL2_CONFIG)
    benchmark.pedantic(
        lambda: measure(model1, cxl=True), rounds=1, iterations=1
    )

    local_lat, local_bw = measure(model1, cxl=False)
    cxl1_lat, cxl1_bw = measure(model1, cxl=True)
    cxl2_lat, cxl2_bw = measure(model2, cxl=True)

    print("\n=== Fig. 8: emulated device characteristics ===")
    print(
        format_rows(
            ["device", "idle latency (ns)", "bandwidth (GB/s)"],
            [
                ["local DRAM", f"{local_lat:.0f}", f"{local_bw:.1f}"],
                ["CXL-1", f"{cxl1_lat:.0f}", f"{cxl1_bw:.1f}"],
                ["CXL-2", f"{cxl2_lat:.0f}", f"{cxl2_bw:.1f}"],
            ],
        )
    )

    # Latency adders in the paper's 50-100+ ns range.
    assert 50 <= cxl1_lat - local_lat <= 150
    assert cxl2_lat - local_lat > cxl1_lat - local_lat

    # Bandwidth fractions: CXL-1 in the 20-70% band, CXL-2 far below.
    assert 0.2 <= cxl1_bw / local_bw <= 0.7
    assert cxl2_bw / local_bw < 0.1

    # The probe recovers the configured peak bandwidths.
    assert local_bw == pytest.approx(LOCAL_DRAM.bandwidth_gbps, rel=0.01)
    assert cxl1_bw == pytest.approx(CXL1_CONFIG.cxl.bandwidth_gbps, rel=0.01)
