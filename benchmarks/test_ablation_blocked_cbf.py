"""Ablation: blocked CBF vs classic CBF (paper Section V-C(b)).

Paper: confining each page's counters to one 64-byte block bounds
every CBF access to a single cache line, with negligible counting
accuracy loss.  The bench measures both properties on a sampled
CacheLib stream: worst-case lines touched per access, and the accuracy
of hot-page classification against an exact oracle.
"""

import numpy as np
import pytest

from benchmarks._common import cdn_workload
from repro.cbf.blocked import BlockedCountingBloomFilter
from repro.cbf.cbf import CountingBloomFilter
from repro.cbf.exact import ExactFrequencyTracker
from repro.core.runner import build_machine
from repro import ExperimentConfig
from repro.sampling.pebs import PEBSSampler


@pytest.fixture(scope="module")
def samples() -> np.ndarray:
    workload = cdn_workload(6)()
    config = ExperimentConfig(local_fraction=0.06, ratio_label="1:32", seed=6)
    machine = build_machine(workload.footprint_pages, config)
    workload.setup(machine)
    sampler = PEBSSampler(base_period=16, seed=6)
    gen = iter(workload.batches())
    for __ in range(40):
        batch = next(gen)
        sampler.observe(batch, machine.placement_of(batch.page_ids))
    return sampler.drain().page_ids.astype(np.uint64)


def classification(tracker, samples: np.ndarray, threshold: int = 5) -> np.ndarray:
    uniq = np.unique(samples)
    return np.asarray(tracker.get(uniq)) >= threshold


def test_ablation_blocked_cbf(benchmark, samples):
    def run_blocked():
        cbf = BlockedCountingBloomFilter(
            num_counters=65_536, num_hashes=3, bits=4, seed=7
        )
        uniq, counts = np.unique(samples, return_counts=True)
        cbf.increase(uniq, counts)
        return cbf

    blocked = benchmark.pedantic(run_blocked, rounds=1, iterations=1)

    classic = CountingBloomFilter(num_counters=65_536, num_hashes=3, bits=4, seed=7)
    oracle = ExactFrequencyTracker(max_count=15)
    uniq, counts = np.unique(samples, return_counts=True)
    classic.increase(uniq, counts)
    oracle.increase(uniq, counts)

    truth = classification(oracle, samples)
    agree_blocked = np.mean(classification(blocked, samples) == truth)
    agree_classic = np.mean(classification(classic, samples) == truth)

    print("\n=== Ablation: blocked vs classic CBF ===")
    print(f"  cache lines per access: blocked=1, classic<=3")
    print(f"  hot/cold agreement with oracle: classic={agree_classic:.2%}, "
          f"blocked={agree_blocked:.2%}")

    # Single-cache-line bound is structural.
    assert blocked.cache_lines_per_access == 1
    # Negligible accuracy loss (paper's claim).
    assert agree_blocked > 0.97
    assert agree_blocked > agree_classic - 0.02
