"""Section VII-C: memory overhead of FreqTier vs HeMem.

Paper: for a 267 GB CacheLib footprint, FreqTier consumes < 100 MB
(CBF + 16 MB of perf ring buffers, < 0.04% of footprint) while HeMem's
168 B/page metadata exceeds 11 GB (~4%), a ~110x difference.

This bench computes both at the paper's *full* scale (the sizing rules
are closed-form, no simulation needed) and also reports the simulated
policies' modeled metadata from a real run.
"""


from benchmarks._common import cdn_workload
from repro import ExperimentConfig, FreqTier, HeMem, run_experiment
from repro._units import GiB, MiB, PAGE_SIZE
from repro.analysis.tables import format_rows
from repro.cbf.exact import HEMEM_BYTES_PER_PAGE
from repro.cbf.sizing import cbf_bytes_for_fpr

PAPER_FOOTPRINT_GB = 267
PAPER_LOCAL_GB = 16
PERF_RING_BYTES = 16 * MiB  # 512 KB x 16 cores x 2 counters


def paper_scale_overheads():
    footprint_pages = PAPER_FOOTPRINT_GB * GiB // PAGE_SIZE
    local_pages = PAPER_LOCAL_GB * GiB // PAGE_SIZE
    freqtier = cbf_bytes_for_fpr(local_pages, 1e-3, 3) + PERF_RING_BYTES
    hemem = footprint_pages * HEMEM_BYTES_PER_PAGE
    return freqtier, hemem, footprint_pages * PAGE_SIZE


def test_overhead_memory(benchmark):
    freqtier_bytes, hemem_bytes, footprint_bytes = benchmark.pedantic(
        paper_scale_overheads, rounds=1, iterations=1
    )

    print("\n=== Section VII-C: memory overhead at paper scale (267 GB) ===")
    print(
        format_rows(
            ["system", "metadata", "% of footprint"],
            [
                [
                    "FreqTier",
                    f"{freqtier_bytes / MiB:.1f} MB",
                    f"{freqtier_bytes / footprint_bytes:.3%}",
                ],
                [
                    "HeMem",
                    f"{hemem_bytes / GiB:.1f} GB",
                    f"{hemem_bytes / footprint_bytes:.2%}",
                ],
            ],
        )
    )
    ratio = hemem_bytes / freqtier_bytes
    print(f"  HeMem / FreqTier = {ratio:.0f}x (paper: ~110x)")

    # FreqTier < 100 MB and < 0.04% of footprint (paper's numbers).
    assert freqtier_bytes < 100 * MiB
    assert freqtier_bytes / footprint_bytes < 0.0005
    # HeMem ~11 GB, ~4% of footprint.
    assert 9 * GiB < hemem_bytes < 13 * GiB
    assert 0.03 < hemem_bytes / footprint_bytes < 0.05
    # The headline ratio is in the paper's ballpark.
    assert 50 < ratio < 300

    # Simulated policies report consistent modeled metadata.
    config = ExperimentConfig(
        local_fraction=0.06, ratio_label="1:32", max_batches=60, seed=1
    )
    ft = run_experiment(cdn_workload(), lambda: FreqTier(seed=1), config)
    hm = run_experiment(cdn_workload(), lambda: HeMem(seed=1), config)
    print(
        f"  simulated run metadata: FreqTier "
        f"{ft.policy_stats['metadata_bytes'] / 1024:.0f} KB, HeMem "
        f"{hm.policy_stats['metadata_bytes'] / 1024:.0f} KB"
    )
    assert hm.policy_stats["metadata_bytes"] > 10 * ft.policy_stats["metadata_bytes"]
