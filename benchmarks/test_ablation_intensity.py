"""Ablation: dynamic tiering intensity vs fixed sampling rates.

Paper Section V-B2: FreqTier starts at 100 kHz and steps down as the
hit ratio stabilizes, entering a counting-only monitoring mode at the
end.  This ablation disables the ladder (fixed HIGH forever) and shows
the adaptive version keeps the same hit ratio with a fraction of the
sampling work -- the overhead the paper's dynamic mechanism exists to
avoid.
"""

import pytest

from benchmarks._common import cdn_workload
from repro import ExperimentConfig, FreqTier, run_all_local, run_experiment
from repro.analysis.tables import format_rows
from repro.policies.freqtier.intensity import IntensityController, TieringState
from repro.sampling.pebs import SamplingLevel

CONFIG = ExperimentConfig(
    local_fraction=0.06, ratio_label="1:32", max_batches=500, seed=1
)


class _FixedHighController(IntensityController):
    """Intensity controller with the ladder disabled (always HIGH)."""

    def end_window(self, report, now_ns):
        self.perf.close_window()
        self.state = TieringState.SAMPLING
        self.level = SamplingLevel.HIGH


class FixedRateFreqTier(FreqTier):
    name = "FreqTier-fixed-100kHz"

    def attach(self, machine):
        super().attach(machine)
        fixed = _FixedHighController(
            stability_epsilon=self.config.stability_epsilon
        )
        self.intensity = fixed


@pytest.fixture(scope="module")
def results():
    wf = cdn_workload()
    base = run_all_local(wf, CONFIG)
    adaptive = run_experiment(wf, lambda: FreqTier(seed=1), CONFIG)
    fixed = run_experiment(wf, lambda: FixedRateFreqTier(seed=1), CONFIG)
    return base, adaptive, fixed


def test_ablation_dynamic_intensity(benchmark, results):
    base, adaptive, fixed = results
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    rows = [
        [
            name,
            f"{res.relative_to(base)['throughput']:.1%}",
            f"{res.steady_hit_ratio:.1%}",
            f"{res.policy_stats['samples_processed']:.0f}",
            f"{res.policy_stats['overhead_ns'] / 1e6:.1f} ms",
        ]
        for name, res in (("adaptive", adaptive), ("fixed-100kHz", fixed))
    ]
    print("\n=== Ablation: dynamic intensity vs fixed 100 kHz ===")
    print(
        format_rows(
            ["variant", "throughput", "hit ratio", "samples", "overhead"], rows
        )
    )

    # Same tiering quality...
    assert adaptive.steady_hit_ratio > fixed.steady_hit_ratio - 0.03
    # ...with much less sampling work once stabilized.
    assert (
        adaptive.policy_stats["samples_processed"]
        < fixed.policy_stats["samples_processed"] * 0.7
    )
    # And no throughput penalty.
    assert (
        adaptive.relative_to(base)["throughput"]
        >= fixed.relative_to(base)["throughput"] - 0.02
    )
