"""Sensitivity: number of CBF hash functions.

The paper uses k=3 (its Fig. 5 illustration) with the array sized per
Broder--Mitzenmacher.  Sweeping k with the array auto-resized to the
same 1e-3 FPR target shows the flat region around the theoretical
optimum -- the choice of k barely matters once the filter is sized
right, which is why the paper fixes it.
"""

import pytest

from benchmarks._common import cdn_workload
from repro import ExperimentConfig, FreqTier, FreqTierConfig, run_all_local, sweep
from repro.analysis.tables import format_rows

HASHES = [1, 2, 3, 4, 6]

CONFIG = ExperimentConfig(
    local_fraction=0.06, ratio_label="1:32", max_batches=400, seed=1
)


def factory_for(k: int):
    def make():
        return FreqTier(config=FreqTierConfig(cbf_num_hashes=k), seed=1)

    return make


@pytest.fixture(scope="module")
def results():
    wf = cdn_workload()
    base = run_all_local(wf, CONFIG)
    return base, sweep(wf, factory_for, HASHES, CONFIG)


def test_sensitivity_num_hashes(benchmark, results):
    base, swept = results
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    rows = []
    rel = {}
    for k, res in swept.items():
        rel[k] = res.relative_to(base)["throughput"]
        rows.append(
            [
                k,
                f"{res.policy_stats['metadata_bytes'] / 1024:.0f} KB",
                f"{rel[k]:.1%}",
                f"{res.steady_hit_ratio:.1%}",
            ]
        )
    print("\n=== Sensitivity: CBF hash-function count ===")
    print(format_rows(["k", "metadata", "throughput", "hit ratio"], rows))

    # The k=2..6 plateau: within ~2% of each other once sized for the
    # same FPR target.
    plateau = [rel[k] for k in (2, 3, 4, 6)]
    assert max(plateau) - min(plateau) < 0.03
    # k=3 (the paper's choice) is on the plateau.
    assert rel[3] >= max(plateau) - 0.02
