"""Ablation: probabilistic (CBF) vs exact (hash table) tracking.

The paper's core insight (Section IV-B): tiering tolerates a little
tracking inaccuracy, so the CBF's collisions cost almost nothing in
classification quality while its memory is orders of magnitude
smaller.  The bench replays an identical sampled stream into both
trackers and compares hot/cold classifications and memory.
"""

import numpy as np
import pytest

from benchmarks._common import cdn_workload
from repro import ExperimentConfig
from repro.cbf.cbf import CountingBloomFilter
from repro.cbf.exact import ExactFrequencyTracker
from repro.cbf.sizing import counters_for_fpr
from repro.core.runner import build_machine
from repro.sampling.pebs import PEBSSampler


@pytest.fixture(scope="module")
def stream() -> list[np.ndarray]:
    workload = cdn_workload(8)()
    config = ExperimentConfig(local_fraction=0.06, ratio_label="1:32", seed=8)
    machine = build_machine(workload.footprint_pages, config)
    workload.setup(machine)
    sampler = PEBSSampler(base_period=16, seed=8)
    gen = iter(workload.batches())
    out = []
    for __ in range(50):
        batch = next(gen)
        sampler.observe(batch, machine.placement_of(batch.page_ids))
        drained = sampler.drain()
        if drained.num_samples:
            out.append(drained.page_ids.astype(np.uint64))
    return out


def test_ablation_cbf_vs_exact(benchmark, stream):
    local_pages = 1024  # nominal fast-tier size for the sizing rule
    num_counters = counters_for_fpr(local_pages, 1e-3, 3)

    def run_cbf():
        cbf = CountingBloomFilter(num_counters, num_hashes=3, bits=4, seed=9)
        for batch in stream:
            uniq, counts = np.unique(batch, return_counts=True)
            cbf.increase(uniq, counts)
        return cbf

    cbf = benchmark.pedantic(run_cbf, rounds=1, iterations=1)

    exact = ExactFrequencyTracker(max_count=15)
    for batch in stream:
        uniq, counts = np.unique(batch, return_counts=True)
        exact.increase(uniq, counts)

    pages = np.unique(np.concatenate(stream))
    threshold = 5
    cbf_hot = cbf.get(pages) >= threshold
    exact_hot = np.asarray(exact.get(pages)) >= threshold
    agreement = float(np.mean(cbf_hot == exact_hot))
    false_hot = float(np.mean(cbf_hot & ~exact_hot))

    print("\n=== Ablation: CBF vs exact hash-table tracking ===")
    print(f"  pages tracked:        {len(pages)}")
    print(f"  hot/cold agreement:   {agreement:.2%}")
    print(f"  false-hot rate:       {false_hot:.3%}")
    print(f"  CBF memory:           {cbf.nbytes / 1024:.1f} KB")
    print(f"  exact memory (168B):  {exact.nbytes / 1024:.1f} KB")
    print(f"  memory ratio:         {exact.nbytes / cbf.nbytes:.0f}x")

    # The insight: near-perfect classification agreement...
    assert agreement > 0.98
    # ...conservative errors only inflate (never deflate) hotness...
    assert not np.any(~cbf_hot & exact_hot)
    # ...at a fraction of the memory.
    assert exact.nbytes > 10 * cbf.nbytes
