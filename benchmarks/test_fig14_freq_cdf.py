"""Figure 14: access-frequency distribution captured in the CBF.

Paper: for every workload (CacheLib CDN/social, GAP kernels at 1:32),
record the CBF frequency distribution per 100k-sample window and keep
the one with the most saturated pages; fewer than 2% of pages sit at
frequency 15, so 4-bit counters suffice (Section VII-E3).
"""

import numpy as np
import pytest

from benchmarks._common import cdn_workload, gap_workload, social_workload
from repro import ExperimentConfig, FreqTier
from repro.analysis.distributions import frequency_cdf, saturated_fraction
from repro.analysis.tables import format_rows
from repro.core.engine import SimulationEngine
from repro.core.runner import build_machine

# GAP kernels revisit their (small, scaled) footprint far more densely
# per page than the paper's 335 GB graphs, so the capture uses a
# sparser sampling period there to restore the paper's samples-per-page
# density.
WORKLOADS = {
    "cdn": (cdn_workload(4), 0.06, 350, 64),
    "social": (social_workload(4), 0.06, 350, 64),
    "gap-bfs": (gap_workload("bfs", 4), 0.05, None, 512),
    "gap-cc": (gap_workload("cc", 4), 0.05, None, 512),
}


def capture(workload_factory, local_fraction, max_batches, period):
    from repro import FreqTierConfig

    workload = workload_factory()
    config = ExperimentConfig(
        local_fraction=local_fraction, ratio_label="1:32", seed=4
    )
    machine = build_machine(workload.footprint_pages, config)
    policy = FreqTier(
        config=FreqTierConfig(pebs_base_period=period), seed=4
    )
    engine = SimulationEngine(machine, workload, policy)
    engine.run(max_batches=max_batches)
    return policy.cbf


@pytest.fixture(scope="module")
def cbfs():
    return {
        name: capture(wf, frac, mb, period)
        for name, (wf, frac, mb, period) in WORKLOADS.items()
    }


def test_fig14_frequency_distribution(benchmark, cbfs):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    rows = []
    for name, cbf in cbfs.items():
        cdf = frequency_cdf(cbf)
        sat = saturated_fraction(cbf)
        rows.append(
            [
                name,
                f"{cdf[1]:.1%}",
                f"{cdf[5]:.1%}",
                f"{cdf[14]:.1%}",
                f"{sat:.2%}",
            ]
        )
    print("\n=== Fig. 14: CBF frequency CDF (fraction of pages <= f) ===")
    print(format_rows(["workload", "f<=1", "f<=5", "f<=14", "saturated"], rows))

    for name, cbf in cbfs.items():
        cdf = frequency_cdf(cbf)
        # CDF well-formed.
        assert cdf[-1] == pytest.approx(1.0)
        assert np.all(np.diff(cdf) >= -1e-12)
        # Most tracked pages are low-frequency (skew!).
        assert cdf[5] > 0.5, name
        # The paper's 4-bit sufficiency criterion: few pages saturate.
        # The simulator's samples-per-page density is orders of
        # magnitude above the paper's (16k-page vs 67M-page footprints
        # under the same sample rate), so the absolute bound is looser
        # than the paper's 2%; the criterion that matters -- the
        # saturated set is far smaller than the local:CXL ratio's hot
        # set, so extra counter bits would not change decisions --
        # still holds.
        limit = 0.10 if name in ("cdn", "social") else 0.20
        assert saturated_fraction(cbf) < limit, name
