"""Ablation: userspace vs kernel runtime placement (paper Section VIII-c).

The paper implements FreqTier in userspace for flexibility and argues
the ideas port to the kernel, where context-switch/syscall boundaries
disappear.  This ablation runs both modes: kernel mode discounts the
syscall-priced operations (move_pages invocations, pagemap batch
reads).  Expected result -- and the reason the authors kept userspace:
the boundary tax is a small share of total overhead, so the kernel
advantage is modest.
"""

import pytest

from benchmarks._common import cdn_workload
from repro import ExperimentConfig, FreqTier, FreqTierConfig, run_all_local, run_experiment
from repro.analysis.tables import format_rows

CONFIG = ExperimentConfig(
    local_fraction=0.06, ratio_label="1:32", max_batches=400, seed=1
)


@pytest.fixture(scope="module")
def results():
    wf = cdn_workload()
    base = run_all_local(wf, CONFIG)
    userspace = run_experiment(
        wf,
        lambda: FreqTier(
            config=FreqTierConfig(runtime_mode="userspace"), seed=1
        ),
        CONFIG,
    )
    kernel = run_experiment(
        wf,
        lambda: FreqTier(config=FreqTierConfig(runtime_mode="kernel"), seed=1),
        CONFIG,
    )
    return base, userspace, kernel


def test_ablation_kernel_vs_userspace(benchmark, results):
    base, userspace, kernel = results
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    rows = [
        [
            mode,
            f"{res.relative_to(base)['throughput']:.2%}",
            f"{res.steady_hit_ratio:.1%}",
            f"{res.policy_stats['overhead_ns'] / 1e6:.2f} ms",
        ]
        for mode, res in (("userspace", userspace), ("kernel", kernel))
    ]
    print("\n=== Ablation: userspace vs kernel runtime ===")
    print(format_rows(["mode", "throughput", "hit ratio", "overhead"], rows))

    # Same tiering decisions (mode changes costs, not behaviour).
    assert kernel.steady_hit_ratio == pytest.approx(
        userspace.steady_hit_ratio, abs=0.02
    )
    # Kernel mode strictly cheaper on boundary-priced overhead.
    assert kernel.policy_stats["overhead_ns"] < userspace.policy_stats["overhead_ns"]
    # But the end-to-end gain is modest (< 3%) -- the paper's implied
    # justification for choosing userspace flexibility.
    u = userspace.relative_to(base)["throughput"]
    k = kernel.relative_to(base)["throughput"]
    assert k >= u - 0.005
    assert k - u < 0.03
