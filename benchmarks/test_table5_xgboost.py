"""Table V: XGBoost training performance.

Paper (CXL-1, time-per-boosting-round %all-local):

    1:32  FreqTier 95.9% | AutoNUMA 88.3% | TPP 47.1% | HeMem 68.9%
    1:16  FreqTier 97.5% | AutoNUMA 93.6% | TPP 54.1% | HeMem 73.0%
    1:8   FreqTier 98.3% | AutoNUMA 97.3% | TPP 78.8% | HeMem 69.1%

Shape assertions: FreqTier > AutoNUMA > HeMem > TPP at 1:32 (the
paper's exact ordering), and TPP is the worst system on XGBoost.
"""

import pytest

from benchmarks._common import (
    XGB_RATIOS,
    labeled_time_table,
    relative_label_time,
    run_grid,
    xgb_workload,
)


@pytest.fixture(scope="module")
def grid():
    return run_grid(xgb_workload(), XGB_RATIOS, max_batches=None, seed=3)


def test_table5_xgboost(benchmark, grid):
    from repro import ExperimentConfig, FreqTier, run_experiment

    config = ExperimentConfig(local_fraction=0.065, max_batches=None, seed=3)
    benchmark.pedantic(
        lambda: run_experiment(xgb_workload(), FreqTier, config),
        rounds=1,
        iterations=1,
    )

    print("\n=== Table V: XGBoost (time/round vs all-local) ===")
    print(labeled_time_table(grid, XGB_RATIOS))

    # Paper ordering at 1:32: FreqTier > AutoNUMA > HeMem > TPP.
    r132 = grid["1:32"]
    ft = relative_label_time(r132, "FreqTier")
    an = relative_label_time(r132, "AutoNUMA")
    hm = relative_label_time(r132, "HeMem")
    tpp = relative_label_time(r132, "TPP")
    assert ft > an > hm > tpp

    # TPP is the worst system at every ratio (paper: 47-79%).
    for label, __ in XGB_RATIOS:
        results = grid[label]
        tpp_rel = relative_label_time(results, "TPP")
        for other in ("FreqTier", "AutoNUMA", "HeMem"):
            assert tpp_rel < relative_label_time(results, other), (label, other)
