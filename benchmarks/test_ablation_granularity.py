"""Ablation: tracking granularity (4 KB pages vs huge-page units).

Paper Section III, Challenge 2: "prior works rely on techniques such
as tracking at the huge page granularity.  However, such approaches
sacrifice classification accuracy."  FreqTier tracks at 4 KB -- the
smallest Linux migration granularity -- precisely to avoid fusing hot
and cold small pages into one unit.

The bench sweeps the tracking-unit size on CacheLib CDN: metadata
shrinks with coarser units, but the hit ratio collapses because each
promoted unit drags cold pages into scarce local DRAM.
"""

import pytest

from benchmarks._common import cdn_workload
from repro import ExperimentConfig, FreqTier, FreqTierConfig, run_all_local, sweep
from repro.analysis.tables import format_rows

GRANULARITIES = [1, 4, 16, 64]

CONFIG = ExperimentConfig(
    local_fraction=0.06, ratio_label="1:32", max_batches=400, seed=1
)


def factory_for(granularity: int):
    def make():
        return FreqTier(
            config=FreqTierConfig(granularity_pages=granularity), seed=1
        )

    return make


@pytest.fixture(scope="module")
def results():
    wf = cdn_workload()
    base = run_all_local(wf, CONFIG)
    return base, sweep(wf, factory_for, GRANULARITIES, CONFIG)


def test_ablation_tracking_granularity(benchmark, results):
    base, swept = results
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    rows = []
    for g, res in swept.items():
        rel = res.relative_to(base)["throughput"]
        rows.append(
            [
                f"{g * 4} KB",
                f"{rel:.1%}",
                f"{res.steady_hit_ratio:.1%}",
                res.pages_migrated,
            ]
        )
    print("\n=== Ablation: tracking granularity ===")
    print(format_rows(["unit", "throughput", "hit ratio", "migrated"], rows))

    hit = {g: swept[g].steady_hit_ratio for g in GRANULARITIES}
    # 4 KB tracking is the most accurate...
    assert hit[1] == max(hit.values())
    # ...and coarse (huge-page-like) units lose dramatically.
    assert hit[64] < hit[1] - 0.2
    # The degradation is monotone in unit size (within noise).
    assert hit[1] >= hit[4] - 0.02 >= hit[16] - 0.04 >= hit[64] - 0.06
