"""Figure 10: performance on the low-bandwidth CXL-2 configuration.

Paper: with 8 GB of local DRAM on the 1-channel CXL device, FreqTier
outperforms AutoNUMA (the best baseline) on every workload, by 1.14x
on average -- the hit-ratio advantage is independent of CXL bandwidth.

The bench scales each workload's footprint down as the paper did for
the 64 GB CXL-2 capacity, and compares FreqTier vs AutoNUMA.
"""

import pytest

from repro import (
    AutoNUMA,
    CacheLibWorkload,
    CDN_PROFILE,
    ExperimentConfig,
    FreqTier,
    GapWorkload,
    SOCIAL_PROFILE,
    XGBoostWorkload,
    compare_policies,
)
from repro.analysis.tables import format_rows
from repro.memsim.tier import CXL2_CONFIG

# Scaled-down footprints (paper Section VII-B) and 8 GB-equivalent local.
WORKLOADS = {
    "cdn": (
        lambda: CacheLibWorkload(
            CDN_PROFILE, slab_pages=8192, ops_per_batch=8000, seed=7
        ),
        "throughput",
        300,
    ),
    "social": (
        lambda: CacheLibWorkload(
            SOCIAL_PROFILE, slab_pages=8192, ops_per_batch=8000, seed=7
        ),
        "throughput",
        300,
    ),
    "gap-bfs": (
        lambda: GapWorkload("bfs", scale=17, num_trials=5, seed=7),
        "label_time",
        None,
    ),
    "gap-cc": (
        lambda: GapWorkload("cc", scale=17, num_trials=5, seed=7),
        "label_time",
        None,
    ),
    "xgboost": (
        lambda: XGBoostWorkload(num_rounds=60, seed=7),
        "label_time",
        None,
    ),
}


@pytest.fixture(scope="module")
def results():
    out = {}
    for name, (factory, metric, max_batches) in WORKLOADS.items():
        config = ExperimentConfig(
            local_fraction=0.08,  # 8 GB vs ~100 GB scaled footprint
            ratio_label="1:8",
            memory=CXL2_CONFIG,
            max_batches=max_batches,
            seed=7,
        )
        out[name] = (
            compare_policies(
                factory,
                {"FreqTier": lambda: FreqTier(seed=7), "AutoNUMA": lambda: AutoNUMA(seed=7)},
                config,
            ),
            metric,
        )
    return out


def test_fig10_low_bandwidth_cxl(benchmark, results):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    rows = []
    speedups = []
    for name, (res, metric) in results.items():
        base = res["AllLocal"]
        ft = res["FreqTier"].relative_to(base)[metric]
        an = res["AutoNUMA"].relative_to(base)[metric]
        speedup = ft / an
        speedups.append(speedup)
        rows.append([name, f"{ft:.1%}", f"{an:.1%}", f"{speedup:.2f}x"])
    print("\n=== Fig. 10: CXL-2 (low bandwidth), FreqTier vs AutoNUMA ===")
    print(format_rows(["workload", "FreqTier", "AutoNUMA", "speedup"], rows))
    avg = sum(speedups) / len(speedups)
    print(f"  average speedup: {avg:.2f}x (paper: 1.14x)")

    # FreqTier wins on every workload.
    assert all(s > 1.0 for s in speedups), speedups
    # Average speedup is material (paper: 1.14x).
    assert avg > 1.05
