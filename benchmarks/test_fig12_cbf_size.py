"""Figure 12: sensitivity to counting Bloom filter size.

Paper: sweeping the CBF from 2 MB to 256 MB on both CacheLib
workloads, performance degrades below 32 MB (hash collisions blur the
frequency distribution) and saturates beyond it -- 32 MB suffices for
a 256 GB footprint, 128 MB is the normalization point.

At the simulator's scale the equivalent sweep runs the CBF from
severely undersized (256 counters) to oversized; the shape must match:
performance rises with CBF size, then flattens.
"""

import pytest

from benchmarks._common import cdn_workload, social_workload
from repro import ExperimentConfig, FreqTier, FreqTierConfig, run_all_local, sweep
from repro.analysis.tables import format_rows

#: Counter-array sizes from starved to saturated.
CBF_SIZES = [256, 1024, 4096, 16_384, 65_536]

CONFIG = ExperimentConfig(
    local_fraction=0.06, ratio_label="1:32", max_batches=400, seed=1
)


def factory_for(num_counters: int):
    def make():
        return FreqTier(
            config=FreqTierConfig(cbf_num_counters=num_counters), seed=1
        )

    return make


@pytest.fixture(scope="module")
def sweeps():
    out = {}
    for name, wf in (("cdn", cdn_workload()), ("social", social_workload())):
        base = run_all_local(wf, CONFIG)
        results = sweep(wf, factory_for, CBF_SIZES, CONFIG)
        out[name] = (base, results)
    return out


def test_fig12_cbf_size_sensitivity(benchmark, sweeps):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    rows = []
    for name, (base, results) in sweeps.items():
        # Normalize to the largest configuration (the paper's 128 MB).
        ref = results[CBF_SIZES[-1]].relative_to(base)["throughput"]
        for size, res in results.items():
            rel = res.relative_to(base)["throughput"] / ref
            rows.append(
                [
                    name,
                    size,
                    f"{res.policy_stats['metadata_bytes'] / 1024:.0f} KB",
                    f"{rel:.1%}",
                    f"{res.steady_hit_ratio:.1%}",
                ]
            )
    print("\n=== Fig. 12: CBF size sensitivity (normalized to largest) ===")
    print(
        format_rows(
            ["workload", "counters", "metadata", "rel. throughput", "hit ratio"],
            rows,
        )
    )

    for name, (base, results) in sweeps.items():
        perf = {
            size: res.relative_to(base)["throughput"]
            for size, res in results.items()
        }
        # Starved CBF clearly underperforms the saturated one.
        assert perf[CBF_SIZES[0]] < perf[CBF_SIZES[-1]] - 0.01, name
        # Beyond the knee, growing the CBF stops helping (within noise).
        assert abs(perf[CBF_SIZES[-2]] - perf[CBF_SIZES[-1]]) < 0.03, name
        # The trend is (weakly) monotone overall.
        sizes = sorted(perf)
        assert perf[sizes[0]] <= max(perf[s] for s in sizes[1:]) + 0.01, name
