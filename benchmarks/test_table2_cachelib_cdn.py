"""Table II: CacheLib CDN workload performance.

Paper (CXL-1, throughput %all-local):

    1:32  FreqTier 85.9% | AutoNUMA 82.9% | TPP 71.0% | HeMem 80.6%
    1:16  FreqTier 86.9% | AutoNUMA 85.0% | TPP 72.3% | HeMem 81.4%
    1:8   FreqTier 88.8% | AutoNUMA 88.4% | TPP 74.8% | HeMem 79.1%

Shape assertions: FreqTier wins every cell; FreqTier at 1:32 matches
or beats AutoNUMA at 1:16 (the 2x-less-DRAM claim); everyone improves
with more local DRAM.
"""

import pytest

from benchmarks._common import (
    CACHELIB_RATIOS,
    cachelib_table,
    cdn_workload,
    POLICY_NAMES,
    relative_throughput,
    run_grid,
)


@pytest.fixture(scope="module")
def grid():
    return run_grid(cdn_workload(), CACHELIB_RATIOS, seed=1)


def test_table2_cachelib_cdn(benchmark, grid):
    # Time one representative cell (FreqTier at 1:32) for the record.
    from repro import ExperimentConfig, FreqTier, run_experiment

    config = ExperimentConfig(
        local_fraction=0.06, ratio_label="1:32", max_batches=100, seed=1
    )
    benchmark.pedantic(
        lambda: run_experiment(cdn_workload(), FreqTier, config),
        rounds=1,
        iterations=1,
    )

    print("\n=== Table II: CacheLib CDN (throughput / P50 vs all-local) ===")
    print(cachelib_table(grid, CACHELIB_RATIOS))
    for label, __ in CACHELIB_RATIOS:
        hits = {n: grid[label][n].steady_hit_ratio for n in POLICY_NAMES}
        print(f"  {label} hit ratios: " + ", ".join(f"{n}={v:.2f}" for n, v in hits.items()))

    # FreqTier wins every cell.
    for label, __ in CACHELIB_RATIOS:
        ft = relative_throughput(grid[label], "FreqTier")
        for other in ("AutoNUMA", "TPP", "HeMem"):
            assert ft > relative_throughput(grid[label], other), (label, other)

    # 2x-less-DRAM: FreqTier at 1:32 >= AutoNUMA at 1:16.
    assert relative_throughput(grid["1:32"], "FreqTier") >= relative_throughput(
        grid["1:16"], "AutoNUMA"
    ) - 0.01

    # Monotone improvement with more local DRAM for FreqTier.
    ft_series = [relative_throughput(grid[l], "FreqTier") for l, _ in CACHELIB_RATIOS]
    assert ft_series[0] <= ft_series[1] + 0.02 <= ft_series[2] + 0.04
