"""Section II-C1 motivation: how close do policies get to the oracle?

The paper's motivating measurement: on a CacheLib workload with 16 GB
of local DRAM, AutoNUMA and TPP sit at ~71%/70% hit ratio while "it is
possible for a tiering system to achieve 90% hit ratio" -- which
FreqTier then does (Fig. 9).

The bench computes the *static oracle* placement (top-K pages by true
access frequency) from the recorded trace, then measures each policy's
placement efficiency against it.
"""

import pytest

from benchmarks._common import cdn_workload, standard_policies
from repro import ExperimentConfig, compare_policies
from repro.analysis.oracle import oracle_hit_ratio, placement_efficiency
from repro.analysis.tables import format_rows
from repro.core.runner import build_machine

CONFIG = ExperimentConfig(
    local_fraction=0.06, ratio_label="1:32", max_batches=400, seed=1
)


@pytest.fixture(scope="module")
def oracle():
    workload = cdn_workload()()
    machine = build_machine(workload.footprint_pages, CONFIG)
    workload.setup(machine)
    gen = iter(workload.batches())
    batches = [next(gen) for __ in range(120)]
    return oracle_hit_ratio(
        batches,
        machine.config.total_capacity_pages,
        machine.config.local_capacity_pages,
    )


@pytest.fixture(scope="module")
def results():
    return compare_policies(cdn_workload(), standard_policies(seed=1), CONFIG)


def test_oracle_hit_ratio(benchmark, oracle, results):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    rows = [["oracle (static top-K)", f"{oracle:.1%}", "-"]]
    for name in ("FreqTier", "AutoNUMA", "TPP", "HeMem"):
        hit = results[name].steady_hit_ratio
        rows.append(
            [name, f"{hit:.1%}", f"{placement_efficiency(hit, oracle):.1%}"]
        )
    print("\n=== Oracle placement comparison (CDN @ 1:32) ===")
    print(format_rows(["system", "hit ratio", "oracle efficiency"], rows))

    # The oracle confirms ~90% is achievable at this capacity
    # (the paper's Section II-C1 claim).
    assert oracle > 0.85
    # FreqTier realizes nearly all of it.
    ft = results["FreqTier"].steady_hit_ratio
    assert placement_efficiency(ft, oracle) > 0.93
    # And beats every baseline's efficiency.
    for other in ("AutoNUMA", "TPP", "HeMem"):
        hit = results[other].steady_hit_ratio
        assert placement_efficiency(ft, oracle) >= placement_efficiency(
            hit, oracle
        ) - 0.01, other
