#!/usr/bin/env python
"""Hot-path microbenchmarks with a perf-regression guard.

Times each component of the simulator's per-batch inner loop in
isolation -- hashing, CBF bulk increase, PEBS sampler observe at each
level, Zipf drawing/churn, page-table placement lookups -- plus one
end-to-end FreqTier run on the CacheLib CDN bench-grid workload, and
writes ``BENCH_hotpath.json`` so successive PRs can track per-component
cost (ns/op) and the sampler's RNG economy (uniforms drawn per offered
access).

Usage::

    PYTHONPATH=src python scripts/bench_hotpath.py                  # full run
    PYTHONPATH=src python scripts/bench_hotpath.py --smoke          # CI-sized
    PYTHONPATH=src python scripts/bench_hotpath.py --smoke \\
        --check BENCH_hotpath.json                                  # guard

``--check BASELINE`` validates both records against the schema and
fails (exit 1) if any shared component's ns/op regressed more than
``--tolerance`` (default 2.0x) against the baseline, if the
sampler's RNG reduction at MEDIUM/LOW fell below ``--min-rng-reduction``
(default 5x), or if a *full* (non-smoke) record's engine benchmark
exceeds its absolute ns/batch ceiling (the fused-kernel speedup
floor; smoke records are exempt because their shorter runs amortize
setup over fewer batches).  ``--before BEFORE.json`` embeds a
pre-optimization record and reports speedups against it.

Schema v2: engine-level components carry ``batches_per_sec`` and the
accel ``backend`` they ran under; when numba is importable an
``engine_cdn_numba`` entry records the compiled backend's throughput
next to the NumPy reference.  Besides FreqTier (``engine_cdn``), every
policy in ``_ENGINE_POLICIES`` gets its own ``engine_cdn_<policy>``
end-to-end cell so the run-compressed fast paths are gated per policy,
not just for the one policy that happened to be compressed first.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
for entry in (str(REPO_ROOT / "src"), str(REPO_ROOT)):
    if entry not in sys.path:
        sys.path.insert(0, entry)

from repro.cbf.cbf import CountingBloomFilter  # noqa: E402
from repro.cbf.hashing import derive_indices  # noqa: E402
from repro.core.config import ExperimentConfig  # noqa: E402
from repro.core.parallel import PolicySpec, WorkloadSpec  # noqa: E402
from repro.core.runner import run_experiment  # noqa: E402
from repro.memsim.pagetable import LOCAL_TIER, PageTable  # noqa: E402
from repro.sampling.events import AccessBatch  # noqa: E402
from repro.sampling.pebs import PEBSSampler, SamplingLevel  # noqa: E402
from repro.workloads.zipfian import ZipfianSampler  # noqa: E402

from repro import accel  # noqa: E402

SCHEMA_VERSION = 2

#: Required fields of every per-component record.
_COMPONENT_FIELDS = {"ns_per_op": float, "ops": int, "reps": int, "seconds_best": float}
_RNG_FIELDS = {"offered": int, "drawn": int, "reduction_x": float}

#: ns/op below this is dominated by per-call setup and timer jitter
#: (the skip-sampling observers run at fractions of a ns per offered
#: access), so the relative regression test compares against at least
#: this much: a component must exceed ``tolerance * max(base, floor)``
#: to fail.  Real components (hashing, CBF, engine cells) sit well
#: above it.
_NS_NOISE_FLOOR = 1.0

#: Absolute ns/batch ceilings for full (non-smoke) engine records.
#: engine_cdn: >= 3x over the pre-fusion baseline (1,904,991 ns/batch);
#: engine_cdn_numba: >= 5x over the same baseline.  The per-policy
#: entries gate the run-compressed fast paths against their
#: stream-expanding pre-compression baselines (measured at the same
#: scale): hemem 1,153,470 / autonuma 4,309,934 / multiclock 631,337 /
#: tpp 4,329,619 / damon 891,259 ns/batch.  hemem, autonuma and tpp
#: ceilings sit >= 2x under those baselines; multiclock and damon are
#: floored by RNG-bound workload generation and sequential region
#: bookkeeping, so their ceilings are regression guards near (or, for
#: damon, slightly above) the old baseline rather than 2x gates.
_ENGINE_CEILINGS_NS = {
    "engine_cdn": 634_997.0,
    "engine_cdn_numba": 380_998.0,
    "engine_cdn_hemem": 576_000.0,
    "engine_cdn_autonuma": 2_150_000.0,
    "engine_cdn_multiclock": 600_000.0,
    "engine_cdn_tpp": 2_160_000.0,
    "engine_cdn_damon": 1_100_000.0,
}


# ---------------------------------------------------------------------------
# timing helper
# ---------------------------------------------------------------------------


def _timed(fn, ops: int, reps: int) -> dict:
    """Best-of-``reps`` timing of ``fn`` normalized to ns per ``op``."""
    best = float("inf")
    for _ in range(reps):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return {
        "ns_per_op": round(best * 1e9 / max(ops, 1), 3),
        "ops": int(ops),
        "reps": int(reps),
        "seconds_best": round(best, 6),
    }


# ---------------------------------------------------------------------------
# components
# ---------------------------------------------------------------------------


def bench_hashing(scale: int, reps: int) -> dict:
    n = 200_000 * scale
    keys = np.random.default_rng(0).integers(0, 1 << 40, size=n, dtype=np.uint64)
    return _timed(lambda: derive_indices(keys, 3, 1_048_573, seed=7), n, reps)


def bench_cbf_increase(scale: int, reps: int) -> dict:
    n = 50_000 * scale
    # Skewed keys: many duplicates per batch, like coalesced PEBS samples.
    rng = np.random.default_rng(1)
    keys = (rng.zipf(1.2, size=n) % 65_536).astype(np.uint64)
    amounts = np.ones(n, dtype=np.int64)
    cbf = CountingBloomFilter(262_144, num_hashes=3, bits=4, seed=3)
    return _timed(lambda: cbf.increase(keys, amounts), n, reps)


def bench_pebs_observe(
    level: SamplingLevel, scale: int, reps: int
) -> tuple[dict, dict]:
    """Time ``observe`` and account RNG draws at one sampling level."""
    n_batches = 20 * scale
    batch_accesses = 100_000
    pages = np.random.default_rng(2).integers(
        0, 1 << 20, size=batch_accesses, dtype=np.int64
    )
    batch = AccessBatch(page_ids=pages, num_ops=1.0, cpu_ns=0.0)
    tiers = np.zeros(batch_accesses, dtype=np.int8)

    def run() -> PEBSSampler:
        sampler = PEBSSampler(base_period=64, seed=9)
        sampler.set_level(level)
        for _ in range(n_batches):
            sampler.observe(batch, tiers)
            sampler.drain()
        return sampler

    offered = n_batches * batch_accesses
    record = _timed(run, offered, reps)
    sampler = run()
    # Pre-optimization samplers draw one uniform per offered access and
    # expose no draw counter; report that exactly.
    drawn = int(getattr(sampler, "rng_values_drawn", offered))
    rng_record = {
        "offered": int(offered),
        "drawn": drawn,
        "reduction_x": round(offered / max(drawn, 1), 2),
    }
    return record, rng_record


def bench_zipf_draw(scale: int, reps: int) -> dict:
    n = 200_000 * scale
    z = ZipfianSampler(1_000_000, 0.9, seed=4)
    return _timed(lambda: z.sample(n), n, reps)


def bench_zipf_reassign(scale: int, reps: int) -> dict:
    n = 20_000 * scale
    z = ZipfianSampler(500_000, 0.9, seed=5)
    return _timed(lambda: z.reassign_ranks(n), n, reps)


def bench_pagetable_tier_of(scale: int, reps: int) -> dict:
    n = 200_000 * scale
    table = PageTable(1 << 20)
    all_pages = np.arange(1 << 20, dtype=np.int64)
    table.place(all_pages[: 1 << 19], LOCAL_TIER)
    lookup = np.random.default_rng(6).integers(0, 1 << 20, size=n, dtype=np.int64)
    return _timed(lambda: table.tier_of(lookup), n, reps)


def bench_pagetable_place(scale: int, reps: int) -> dict:
    n = 50_000 * scale
    table = PageTable(1 << 20)
    pages = np.random.default_rng(8).permutation(1 << 20)[:n].astype(np.int64)

    def run() -> None:
        table.place(pages, LOCAL_TIER)
        table.unmap(pages)

    return _timed(run, 2 * n, reps)


#: Policies timed end-to-end on the CDN workload besides FreqTier.
#: All run the engine's run-compressed fast path (no stream expansion):
#: the PEBS policies sample by position, the hint-fault policies scan
#: runs directly.
_ENGINE_POLICIES = ("hemem", "autonuma", "multiclock", "tpp", "damon")


def bench_engine_policy(
    policy_name: str, scale: int, reps: int, backend: str = "numpy"
) -> dict | None:
    """End-to-end policy cell on the bench-grid CDN workload.

    Runs under the requested :mod:`repro.accel` backend; returns None
    when that backend is unavailable (e.g. ``numba`` without the
    ``[accel]`` extra installed) so callers can skip the entry.
    """
    if accel.set_backend(backend) != backend:
        return None
    batches = 30 * scale
    config = ExperimentConfig(
        local_fraction=0.12,
        ratio_label="1:16",
        max_batches=batches,
        seed=1,
    )
    workload = WorkloadSpec("cdn", slab_pages=16_384, ops_per_batch=10_000, seed=1)
    policy = PolicySpec(policy_name, seed=1)
    if backend != "numpy":
        # Pay the JIT/disk-cache warm-up outside the timed region.
        run_experiment(workload, policy, config)
    record = _timed(
        lambda: run_experiment(workload, policy, config), batches, max(1, reps - 1)
    )
    record["batches_per_sec"] = round(batches / record["seconds_best"], 1)
    record["backend"] = backend
    return record


# ---------------------------------------------------------------------------
# record schema
# ---------------------------------------------------------------------------


def validate_record(record: dict) -> list[str]:
    """Schema check for a BENCH_hotpath.json record; returns errors."""
    errors: list[str] = []
    if not isinstance(record, dict):
        return ["record is not an object"]
    if record.get("schema_version") != SCHEMA_VERSION:
        errors.append(
            f"schema_version must be {SCHEMA_VERSION}, "
            f"got {record.get('schema_version')!r}"
        )
    components = record.get("components")
    if not isinstance(components, dict) or not components:
        errors.append("components must be a non-empty object")
        components = {}
    for name, comp in components.items():
        if not isinstance(comp, dict):
            errors.append(f"components[{name}] is not an object")
            continue
        for field, typ in _COMPONENT_FIELDS.items():
            value = comp.get(field)
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                errors.append(f"components[{name}].{field} missing or non-numeric")
            elif typ is int and int(value) != value:
                errors.append(f"components[{name}].{field} must be integral")
        if name.startswith("engine_"):
            bps = comp.get("batches_per_sec")
            if not isinstance(bps, (int, float)) or isinstance(bps, bool):
                errors.append(
                    f"components[{name}].batches_per_sec missing or non-numeric"
                )
            if comp.get("backend") not in ("numpy", "numba"):
                errors.append(
                    f"components[{name}].backend must be 'numpy' or 'numba', "
                    f"got {comp.get('backend')!r}"
                )
    sampler_rng = record.get("sampler_rng")
    if not isinstance(sampler_rng, dict) or not sampler_rng:
        errors.append("sampler_rng must be a non-empty object")
        sampler_rng = {}
    for level, rec in sampler_rng.items():
        if not isinstance(rec, dict):
            errors.append(f"sampler_rng[{level}] is not an object")
            continue
        for field in _RNG_FIELDS:
            value = rec.get(field)
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                errors.append(f"sampler_rng[{level}].{field} missing or non-numeric")
    return errors


def _engine_ceiling_failures(record: dict, label: str) -> list[str]:
    """Absolute engine ns/batch gates; full (non-smoke) records only."""
    if record.get("smoke"):
        return []
    failures = []
    for name, ceiling in _ENGINE_CEILINGS_NS.items():
        comp = record.get("components", {}).get(name)
        if comp is not None and comp["ns_per_op"] > ceiling:
            failures.append(
                f"{label}: {name} {comp['ns_per_op']:.0f} ns/batch exceeds "
                f"the fused-kernel ceiling {ceiling:.0f}"
            )
    return failures


def check_regressions(
    record: dict, baseline: dict, tolerance: float, min_rng_reduction: float
) -> list[str]:
    """Compare a fresh record against a baseline; returns failures."""
    failures: list[str] = []
    failures += _engine_ceiling_failures(record, "record")
    failures += _engine_ceiling_failures(baseline, "baseline")
    base_components = baseline.get("components", {})
    smoke_mismatch = bool(record.get("smoke")) != bool(baseline.get("smoke"))
    for name, comp in record.get("components", {}).items():
        base = base_components.get(name)
        if base is None:
            continue  # new component: no baseline yet
        if name.startswith("engine_") and smoke_mismatch:
            # Smoke engine runs use 5x fewer batches, so per-batch
            # setup amortization differs structurally from a full run;
            # the absolute ceiling above gates the full record instead.
            continue
        now_ns, base_ns = comp["ns_per_op"], base["ns_per_op"]
        if base_ns > 0 and now_ns > tolerance * max(base_ns, _NS_NOISE_FLOOR):
            failures.append(
                f"{name}: {now_ns:.1f} ns/op vs baseline {base_ns:.1f} "
                f"(> {tolerance:.1f}x)"
            )
    for level in ("MEDIUM", "LOW"):
        rec = record.get("sampler_rng", {}).get(level)
        if rec is not None and rec["reduction_x"] < min_rng_reduction:
            failures.append(
                f"sampler RNG reduction at {level} is {rec['reduction_x']:.1f}x "
                f"(< required {min_rng_reduction:.1f}x)"
            )
    return failures


# ---------------------------------------------------------------------------
# main
# ---------------------------------------------------------------------------


def run_suite(smoke: bool) -> dict:
    scale = 1 if smoke else 5
    reps = 2 if smoke else 4
    components: dict[str, dict] = {}
    sampler_rng: dict[str, dict] = {}

    print(f"hot-path suite ({'smoke' if smoke else 'full'}, scale={scale})")
    components["hashing"] = bench_hashing(scale, reps)
    components["cbf_increase"] = bench_cbf_increase(scale, reps)
    for level in (SamplingLevel.HIGH, SamplingLevel.MEDIUM, SamplingLevel.LOW):
        comp, rng_rec = bench_pebs_observe(level, scale, reps)
        components[f"pebs_observe_{level.name.lower()}"] = comp
        sampler_rng[level.name] = rng_rec
    components["zipf_draw"] = bench_zipf_draw(scale, reps)
    components["zipf_reassign"] = bench_zipf_reassign(scale, reps)
    components["pagetable_tier_of"] = bench_pagetable_tier_of(scale, reps)
    components["pagetable_place"] = bench_pagetable_place(scale, reps)
    components["engine_cdn"] = bench_engine_policy("freqtier", scale, reps, "numpy")
    numba_engine = bench_engine_policy("freqtier", scale, reps, "numba")
    if numba_engine is not None:
        components["engine_cdn_numba"] = numba_engine
    else:
        print("  engine_cdn_numba         skipped (numba unavailable)")
    for name in _ENGINE_POLICIES:
        components[f"engine_cdn_{name}"] = bench_engine_policy(
            name, scale, reps, "numpy"
        )
    accel.set_backend("numpy")

    for name, comp in components.items():
        extra = ""
        if "batches_per_sec" in comp:
            extra = f"  ({comp['batches_per_sec']:.0f} batches/s, {comp['backend']})"
        print(f"  {name:24s} {comp['ns_per_op']:12.1f} ns/op{extra}")
    for level, rec in sampler_rng.items():
        print(
            f"  rng@{level:6s} offered={rec['offered']:>9d} "
            f"drawn={rec['drawn']:>9d}  reduction={rec['reduction_x']:.1f}x"
        )

    return {
        "schema_version": SCHEMA_VERSION,
        "benchmark": "hot-path microbenchmarks",
        "smoke": bool(smoke),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "components": components,
        "sampler_rng": sampler_rng,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="CI-sized quick run")
    parser.add_argument(
        "--out", default=str(REPO_ROOT / "BENCH_hotpath.json"), help="output path"
    )
    parser.add_argument(
        "--before", default=None, help="pre-optimization record to embed/compare"
    )
    parser.add_argument(
        "--check", default=None, help="baseline record for the regression guard"
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=2.0,
        help="max allowed ns/op ratio vs the --check baseline",
    )
    parser.add_argument(
        "--min-rng-reduction",
        type=float,
        default=5.0,
        help="required sampler RNG reduction at MEDIUM/LOW",
    )
    args = parser.parse_args(argv)

    record = run_suite(args.smoke)
    errors = validate_record(record)
    if errors:
        print("ERROR: fresh record fails schema validation:", file=sys.stderr)
        for err in errors:
            print(f"  - {err}", file=sys.stderr)
        return 1

    if args.before:
        with open(args.before, encoding="utf-8") as fh:
            before = json.load(fh)
        record["before"] = {
            "components": before.get("components", {}),
            "sampler_rng": before.get("sampler_rng", {}),
        }
        speedups = {}
        for name, comp in record["components"].items():
            base = before.get("components", {}).get(name)
            if base and comp["ns_per_op"] > 0:
                speedups[name] = round(base["ns_per_op"] / comp["ns_per_op"], 2)
        record["speedup_vs_before"] = speedups
        for name, s in speedups.items():
            print(f"  speedup {name:24s} {s:6.2f}x")

    status = 0
    if args.check:
        with open(args.check, encoding="utf-8") as fh:
            baseline = json.load(fh)
        base_errors = validate_record(baseline)
        if base_errors:
            print("ERROR: baseline fails schema validation:", file=sys.stderr)
            for err in base_errors:
                print(f"  - {err}", file=sys.stderr)
            return 1
        failures = check_regressions(
            record, baseline, args.tolerance, args.min_rng_reduction
        )
        if failures:
            print("PERF REGRESSIONS:", file=sys.stderr)
            for failure in failures:
                print(f"  - {failure}", file=sys.stderr)
            status = 1
        else:
            print(f"regression guard: all components within {args.tolerance:.1f}x  OK")

    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(record, fh, indent=2)
        fh.write("\n")
    print(f"wrote {args.out}")
    return status


if __name__ == "__main__":
    sys.exit(main())
