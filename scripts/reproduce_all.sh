#!/usr/bin/env bash
# Regenerate every table and figure of the paper and capture outputs.
#
# Usage:  ./scripts/reproduce_all.sh [output-dir]
#
# Produces:
#   <out>/test_output.txt   -- full unit/property/integration test run
#   <out>/bench_output.txt  -- every table/figure reproduction + timings
set -euo pipefail

OUT="${1:-.}"
cd "$(dirname "$0")/.."

echo "== Installing (editable) =="
pip install -e . --quiet 2>/dev/null \
  || pip install -e . --no-build-isolation --quiet 2>/dev/null \
  || python setup.py develop --quiet

echo "== Unit, property and integration tests =="
python -m pytest tests/ 2>&1 | tee "${OUT}/test_output.txt"

echo "== Paper reproduction benchmarks =="
python -m pytest benchmarks/ --benchmark-only -s 2>&1 | tee "${OUT}/bench_output.txt"

echo "== Done. Compare the printed tables against EXPERIMENTS.md =="
