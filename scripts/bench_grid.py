#!/usr/bin/env python
"""Time serial vs parallel vs warm-cache execution of a reproduction grid.

Runs the standard 4-policy x 3-ratio CacheLib CDN grid (plus the
AllLocal baseline per ratio -- 15 cells) three ways:

1. serial      -- ``jobs=1``, no cache (the historical code path);
2. parallel    -- ``--jobs`` workers, cold content-addressed cache;
3. warm cache  -- same executor settings again, every cell a cache hit.

Verifies all three produce bit-identical results, then writes
``BENCH_parallel.json`` at the repo root so successive PRs can track
the speedup trajectory.

Usage::

    PYTHONPATH=src python scripts/bench_grid.py [--jobs 4] [--batches 400]
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
for entry in (str(REPO_ROOT / "src"), str(REPO_ROOT)):
    if entry not in sys.path:
        sys.path.insert(0, entry)

from benchmarks._common import CACHELIB_RATIOS, cdn_workload, run_grid  # noqa: E402
from repro import accel  # noqa: E402
from repro.core.parallel import ParallelExecutor, resolve_jobs  # noqa: E402


def _time_grid(executor, batches: int, seed: int):
    start = time.perf_counter()
    grid = run_grid(
        cdn_workload(seed=seed),
        CACHELIB_RATIOS,
        max_batches=batches,
        seed=seed,
        executor=executor,
    )
    return time.perf_counter() - start, grid


def _shm_stats(executor) -> dict:
    """Zero-copy stream-sharing columns for one executor pass."""
    stats = executor.stats
    return {
        "shm_segments": stats.shm_segments,
        "shm_bytes": stats.shm_bytes,
        "shm_fallbacks": stats.shm_fallbacks,
    }


def _flatten(grid) -> dict[str, dict]:
    return {
        f"{ratio}/{policy}": result.to_dict()
        for ratio, row in grid.items()
        for policy, result in row.items()
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--jobs", type=int, default=4, help="parallel worker count (0 = all CPUs)"
    )
    parser.add_argument(
        "--batches", type=int, default=400, help="workload batches per cell"
    )
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument(
        "--out",
        default=str(REPO_ROOT / "BENCH_parallel.json"),
        help="where to write the timing record",
    )
    args = parser.parse_args(argv)
    jobs = resolve_jobs(args.jobs)
    cells = len(CACHELIB_RATIOS) * 5  # 4 policies + AllLocal per ratio

    print(f"grid: {cells} cells, {args.batches} batches/cell, jobs={jobs}")

    serial_executor = ParallelExecutor(jobs=1)
    serial_s, serial_grid = _time_grid(serial_executor, args.batches, args.seed)
    print(f"serial (jobs=1):          {serial_s:8.2f} s")

    with tempfile.TemporaryDirectory(prefix="bench-grid-cache-") as cache_dir:
        parallel_executor = ParallelExecutor(jobs=jobs, cache=cache_dir)
        parallel_s, parallel_grid = _time_grid(
            parallel_executor, args.batches, args.seed
        )
        shm = _shm_stats(parallel_executor)
        print(
            f"parallel (jobs={jobs}, cold): {parallel_s:8.2f} s  "
            f"(shm: {shm['shm_segments']} segments, "
            f"{shm['shm_bytes'] / 1e6:.1f} MB, "
            f"{shm['shm_fallbacks']} fallbacks)"
        )

        warm_s, warm_grid = _time_grid(
            ParallelExecutor(jobs=jobs, cache=cache_dir), args.batches, args.seed
        )
        print(f"warm cache:               {warm_s:8.2f} s")

    if not (_flatten(serial_grid) == _flatten(parallel_grid) == _flatten(warm_grid)):
        print("ERROR: serial, parallel and cached results differ", file=sys.stderr)
        return 1
    print("determinism: serial == parallel == cached  OK")

    speedup = serial_s / parallel_s if parallel_s > 0 else float("inf")
    warm_fraction = warm_s / parallel_s if parallel_s > 0 else 0.0
    record = {
        "benchmark": "run_grid cdn 4-policy x 3-ratio (+AllLocal)",
        "cells": cells,
        "batches_per_cell": args.batches,
        "jobs": jobs,
        "cpus_available": resolve_jobs(0),
        "accel_backend": accel.backend_name(),
        "serial_s": round(serial_s, 3),
        "parallel_cold_s": round(parallel_s, 3),
        "warm_cache_s": round(warm_s, 3),
        "speedup_parallel_vs_serial": round(speedup, 3),
        "warm_over_cold_fraction": round(warm_fraction, 4),
        "results_identical": True,
        **shm,
    }
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(record, fh, indent=2)
        fh.write("\n")
    print(
        f"speedup {speedup:.2f}x, warm cache at {warm_fraction:.1%} of cold "
        f"-> {args.out}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
