"""Setuptools shim.

All metadata lives in pyproject.toml; this file exists so that
``pip install -e .`` can fall back to the legacy develop install on
offline machines where the ``wheel`` package (required by the
PEP-517 editable path) is unavailable.
"""

from setuptools import setup

setup()
