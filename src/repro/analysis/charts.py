"""Minimal text charts for benchmark and example output.

No plotting dependency is available offline, so figures render as
unicode-free ASCII: sparklines for timelines, horizontal bars for
comparisons.  Used by the examples and the benchmark printouts.
"""

from __future__ import annotations

from collections.abc import Sequence

_LEVELS = " .:-=+*#%@"


def sparkline(values: Sequence[float], lo: float | None = None,
              hi: float | None = None) -> str:
    """One-line intensity strip of ``values`` scaled to [lo, hi]."""
    if not values:
        return ""
    lo = min(values) if lo is None else lo
    hi = max(values) if hi is None else hi
    span = hi - lo
    if span <= 0:
        return _LEVELS[-1] * len(values)
    out = []
    for v in values:
        idx = int((v - lo) / span * (len(_LEVELS) - 1))
        out.append(_LEVELS[max(0, min(idx, len(_LEVELS) - 1))])
    return "".join(out)


def hbar_chart(
    items: Sequence[tuple[str, float]],
    width: int = 40,
    fmt: str = "{:.1%}",
) -> str:
    """Horizontal bar chart: one labeled row per (name, value)."""
    if not items:
        return ""
    max_value = max(v for __, v in items)
    label_width = max(len(name) for name, __ in items)
    lines = []
    for name, value in items:
        bar_len = 0 if max_value <= 0 else int(round(value / max_value * width))
        lines.append(
            f"{name.ljust(label_width)}  {'#' * bar_len:<{width}}  "
            f"{fmt.format(value)}"
        )
    return "\n".join(lines)
