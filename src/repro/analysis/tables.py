"""Plain-text table formatting in the paper's layout."""

from __future__ import annotations

from collections.abc import Sequence


def format_rows(
    headers: Sequence[str], rows: Sequence[Sequence[object]]
) -> str:
    """Fixed-width text table (no external deps)."""
    cells = [[str(h) for h in headers]] + [
        [_fmt(c) for c in row] for row in rows
    ]
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]
    lines = []
    for idx, row in enumerate(cells):
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
        if idx == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.3g}"
    return str(value)


def format_comparison_table(
    results: dict[str, object],
    metric_key: str = "throughput",
    baseline_name: str = "AllLocal",
) -> str:
    """Render a compare_policies() result like a paper table row block.

    Each row: policy, P50 latency (us), throughput (Mop/s), hit ratio,
    and %all-local for the chosen metric.
    """
    baseline = results.get(baseline_name)
    headers = [
        "policy",
        "p50_us",
        "mops",
        "hit_ratio",
        f"%all-local({metric_key})",
    ]
    rows = []
    for name, res in results.items():
        summary = res.summary()
        rel = None
        if baseline is not None and name != baseline_name:
            rel = res.relative_to(baseline).get(metric_key)
        rows.append(
            [
                name,
                summary["p50_latency_us"],
                summary["throughput_mops"],
                summary["hit_ratio"],
                f"{rel:.1%}" if rel is not None else "-",
            ]
        )
    return format_rows(headers, rows)
