"""Markdown experiment reports.

Turns a ``compare_policies`` result dict into a self-contained
markdown report: comparison table, %all-local columns, traffic
breakdown, hit-ratio sparklines and policy-overhead summary.  Used by
``python -m repro.cli compare --report out.md`` and handy in notebooks.
"""

from __future__ import annotations

from repro.analysis.charts import sparkline
from repro.analysis.timeline import resample_timeline
from repro.core.metrics import ExperimentResult


def _fmt(value: float | None, spec: str = "{:.3g}") -> str:
    return "-" if value is None else spec.format(value)


def markdown_report(
    results: dict[str, ExperimentResult],
    title: str = "Tiering comparison",
    baseline_name: str = "AllLocal",
) -> str:
    """Render a full markdown report for one experiment cell."""
    if not results:
        raise ValueError("results must not be empty")
    baseline = results.get(baseline_name)
    lines: list[str] = [f"# {title}", ""]

    # Headline table.
    lines += [
        "| system | P50 (µs) | throughput (Mop/s) | hit ratio | "
        "%all-local (thr) | pages migrated |",
        "|---|---|---|---|---|---|",
    ]
    for name, res in results.items():
        summary = res.summary()
        rel = None
        if baseline is not None and name != baseline_name:
            rel = res.relative_to(baseline)["throughput"]
        lines.append(
            "| {} | {} | {} | {} | {} | {} |".format(
                name,
                _fmt(summary["p50_latency_us"]),
                _fmt(summary["throughput_mops"]),
                _fmt(summary["hit_ratio"], "{:.1%}"),
                _fmt(rel, "{:.1%}"),
                res.pages_migrated,
            )
        )
    lines.append("")

    # Traffic breakdown.
    lines += [
        "## Traffic breakdown",
        "",
        "| system | local | cxl | migration |",
        "|---|---|---|---|",
    ]
    for name, res in results.items():
        b = res.traffic_breakdown
        lines.append(
            "| {} | {:.1%} | {:.1%} | {:.1%} |".format(
                name,
                b.get("local", 0.0),
                b.get("cxl", 0.0),
                b.get("migration", 0.0),
            )
        )
    lines.append("")

    # Hit-ratio timelines as sparklines.
    lines += ["## Hit-ratio timelines", "", "```"]
    width = max(len(name) for name in results)
    for name, res in results.items():
        series = [v for __, v in resample_timeline(res.hit_ratio_timeline, 50)]
        lines.append(f"{name.ljust(width)}  {sparkline(series, lo=0.0, hi=1.0)}")
    lines += ["```", ""]

    # Policy internals.
    lines += [
        "## Policy internals",
        "",
        "| system | promotions | demotions | overhead (ms) | metadata (KB) |",
        "|---|---|---|---|---|",
    ]
    for name, res in results.items():
        stats = res.policy_stats
        lines.append(
            "| {} | {} | {} | {:.2f} | {:.0f} |".format(
                name,
                int(stats.get("promotions", 0)),
                int(stats.get("demotions", 0)),
                stats.get("overhead_ns", 0.0) / 1e6,
                stats.get("metadata_bytes", 0.0) / 1024,
            )
        )
    lines.append("")
    return "\n".join(lines)
