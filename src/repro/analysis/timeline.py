"""Timeline utilities (paper Fig. 11 and stability analysis)."""

from __future__ import annotations

import numpy as np


def resample_timeline(
    timeline: list[tuple[float, float]],
    num_points: int = 50,
) -> list[tuple[float, float]]:
    """Average a (time, value) series into ``num_points`` even windows."""
    if num_points < 1:
        raise ValueError(f"num_points must be >= 1, got {num_points}")
    if not timeline:
        return []
    times = np.array([t for t, __ in timeline])
    values = np.array([v for __, v in timeline])
    edges = np.linspace(times.min(), times.max(), num_points + 1)
    out: list[tuple[float, float]] = []
    for i in range(num_points):
        mask = (times >= edges[i]) & (times <= edges[i + 1])
        if mask.any():
            out.append((float(edges[i + 1]), float(values[mask].mean())))
    return out


def timeline_stability(
    timeline: list[tuple[float, float]], window: int = 4
) -> float:
    """Max peak-to-peak spread of the last ``window`` timeline values."""
    if len(timeline) < 2:
        return 0.0
    values = [v for __, v in timeline[-window:]]
    return float(max(values) - min(values))


def detection_delay(
    timeline: list[tuple[float, float]],
    change_time_ns: float,
    recovery_value: float,
) -> float | None:
    """Time from ``change_time_ns`` until the series re-reaches
    ``recovery_value`` (Fig. 11's adaptation latency); None if never."""
    for t, v in timeline:
        if t >= change_time_ns and v >= recovery_value:
            return t - change_time_ns
    return None
