"""Oracle placement analysis.

The paper motivates FreqTier by showing AutoNUMA/TPP leave ~20 points
of hit ratio on the table: "we demonstrate that it is possible for a
tiering system to achieve 90% hit ratio" (Section II-C1).  This module
computes that bound: given a recorded access stream and a local-DRAM
capacity, the *static oracle* places the top-K most-accessed pages
locally; its hit ratio is the best any static placement can achieve,
and an upper reference for adaptive policies on stationary workloads.

Also provides ``placement_efficiency``: how close a policy's measured
hit ratio comes to the oracle's.
"""

from __future__ import annotations

import numpy as np

from repro import accel
from repro.sampling.events import AccessBatch


def page_access_counts(
    batches: list[AccessBatch], footprint_pages: int
) -> np.ndarray:
    """True per-page access counts over a recorded stream.

    Run-compressed batches are histogrammed directly from their runs
    (``weighted_page_counts``: a head bincount plus a difference-domain
    run sweep) -- O(runs + pages) per batch instead of O(accesses), and
    the expanded stream is never materialized.
    """
    counts = np.zeros(footprint_pages, dtype=np.int64)
    for batch in batches:
        if batch.run_starts is not None:
            accel.weighted_page_counts(
                batch.head_page_ids, batch.run_starts, batch.run_counts, counts
            )
        else:
            np.add.at(counts, batch.page_ids, 1)
    return counts


def oracle_hit_ratio(
    batches: list[AccessBatch],
    footprint_pages: int,
    local_capacity_pages: int,
) -> float:
    """Best static hit ratio: top-K pages by true frequency kept local."""
    if local_capacity_pages <= 0:
        return 0.0
    counts = page_access_counts(batches, footprint_pages)
    total = counts.sum()
    if total == 0:
        return 0.0
    k = min(local_capacity_pages, footprint_pages)
    top = np.partition(counts, len(counts) - k)[-k:]
    return float(top.sum() / total)


def oracle_hit_curve(
    batches: list[AccessBatch],
    footprint_pages: int,
    capacities: list[int],
) -> dict[int, float]:
    """Oracle hit ratio at several local capacities (one pass)."""
    counts = page_access_counts(batches, footprint_pages)
    total = max(int(counts.sum()), 1)
    ordered = np.sort(counts)[::-1]
    cumulative = np.cumsum(ordered)
    out: dict[int, float] = {}
    for cap in capacities:
        k = int(np.clip(cap, 0, footprint_pages))
        out[cap] = float(cumulative[k - 1] / total) if k > 0 else 0.0
    return out


def placement_efficiency(measured_hit_ratio: float, oracle: float) -> float:
    """Measured hit ratio as a fraction of the oracle's (capped at 1)."""
    if oracle <= 0:
        return 1.0 if measured_hit_ratio <= 0 else float("inf")
    return min(measured_hit_ratio / oracle, 1.0)
