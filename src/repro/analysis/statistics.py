"""Replication statistics (the paper's relative-standard-error reporting).

The paper reports steady-state averages with their maximum relative
standard error (e.g. "the maximum relative standard error is 0.29%"
for Table II).  This module provides the same discipline for the
simulator: run an experiment across several seeds and reduce any
metric to mean / std / RSE.
"""

from __future__ import annotations

import math
from collections.abc import Callable, Sequence
from dataclasses import dataclass

from repro.core.config import ExperimentConfig
from repro.core.metrics import ExperimentResult
from repro.core.runner import run_experiment
from repro.workloads.spec import Workload


@dataclass(frozen=True)
class ReplicatedMetric:
    """Mean / spread of one metric over N replicated runs."""

    name: str
    values: tuple[float, ...]

    @property
    def n(self) -> int:
        return len(self.values)

    @property
    def mean(self) -> float:
        return sum(self.values) / self.n

    @property
    def std(self) -> float:
        """Sample standard deviation (ddof=1); 0 for a single run."""
        if self.n < 2:
            return 0.0
        m = self.mean
        return math.sqrt(sum((v - m) ** 2 for v in self.values) / (self.n - 1))

    @property
    def standard_error(self) -> float:
        return self.std / math.sqrt(self.n) if self.n else 0.0

    @property
    def relative_standard_error(self) -> float:
        """The paper's RSE: standard error / mean (0 if mean is 0)."""
        m = self.mean
        return self.standard_error / abs(m) if m else 0.0

    def summary(self) -> str:
        return (
            f"{self.name}: {self.mean:.4g} "
            f"(RSE {self.relative_standard_error:.2%}, n={self.n})"
        )


def run_replicated(
    workload_factory_for_seed: Callable[[int], Workload],
    policy_factory_for_seed: Callable[[int], object],
    config: ExperimentConfig,
    seeds: Sequence[int],
) -> list[ExperimentResult]:
    """Run one cell across several seeds (workload AND policy reseeded)."""
    if not seeds:
        raise ValueError("need at least one seed")
    results = []
    for seed in seeds:
        cell_config = ExperimentConfig(
            local_fraction=config.local_fraction,
            ratio_label=config.ratio_label,
            memory=config.memory,
            max_batches=config.max_batches,
            max_accesses=config.max_accesses,
            warmup_fraction=config.warmup_fraction,
            seed=seed,
        )
        results.append(
            run_experiment(
                lambda: workload_factory_for_seed(seed),
                lambda: policy_factory_for_seed(seed),
                cell_config,
            )
        )
    return results


def replicated_metric(
    results: Sequence[ExperimentResult],
    extractor: Callable[[ExperimentResult], float | None],
    name: str = "metric",
) -> ReplicatedMetric:
    """Reduce one metric over replicated results; None values rejected."""
    values = []
    for res in results:
        value = extractor(res)
        if value is None:
            raise ValueError(f"metric {name!r} missing in a replication")
        values.append(float(value))
    return ReplicatedMetric(name=name, values=tuple(values))


def hit_ratio_rse(results: Sequence[ExperimentResult]) -> ReplicatedMetric:
    return replicated_metric(
        results, lambda r: r.steady_hit_ratio, name="hit_ratio"
    )


def throughput_rse(results: Sequence[ExperimentResult]) -> ReplicatedMetric:
    return replicated_metric(
        results, lambda r: r.steady_throughput_ops_per_s, name="throughput"
    )
