"""Access-frequency distribution analysis (paper Fig. 14, Section VII-E3).

The paper characterizes the frequency distribution captured in the CBF
to justify 4-bit counters: across workloads, fewer than 2% of pages
saturate at frequency 15, so extra counter bits would not change
tiering decisions.
"""

from __future__ import annotations

import numpy as np

from repro.cbf.cbf import CountingBloomFilter


def frequency_cdf(cbf: CountingBloomFilter, skip_zero: bool = True) -> np.ndarray:
    """Cumulative fraction of pages at frequency <= f, for f = 0..max.

    Computed from the counter histogram scaled by the hash count
    (each tracked page occupies ~k counters).  ``skip_zero`` excludes
    untouched counters, matching the paper's "pages in the CBF".
    """
    hist = cbf.counter_histogram().astype(np.float64)
    if skip_zero:
        hist[0] = 0.0
    total = hist.sum()
    if total == 0:
        return np.zeros_like(hist)
    return np.cumsum(hist) / total


def saturated_fraction(cbf: CountingBloomFilter) -> float:
    """Fraction of tracked pages pinned at the counter cap.

    The paper's criterion: if this stays under the local:CXL capacity
    ratio (< 2% across its workloads), 4-bit counters suffice.
    """
    hist = cbf.counter_histogram().astype(np.float64)
    hist[0] = 0.0
    total = hist.sum()
    if total == 0:
        return 0.0
    return float(hist[cbf.max_count] / total)
