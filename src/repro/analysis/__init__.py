"""Analysis helpers for the paper's figures.

- :mod:`~repro.analysis.distributions` -- frequency CDFs from CBF
  counter histograms (Fig. 14).
- :mod:`~repro.analysis.timeline` -- windowed hit-ratio / latency
  timelines from experiment results (Fig. 11).
- :mod:`~repro.analysis.tables` -- text table formatting matching the
  paper's layout.
"""

from repro.analysis.distributions import frequency_cdf, saturated_fraction
from repro.analysis.tables import format_comparison_table, format_rows
from repro.analysis.timeline import (
    detection_delay,
    resample_timeline,
    timeline_stability,
)

__all__ = [
    "detection_delay",
    "format_comparison_table",
    "format_rows",
    "frequency_cdf",
    "resample_timeline",
    "saturated_fraction",
    "timeline_stability",
]
