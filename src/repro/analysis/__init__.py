"""Analysis helpers for the paper's figures.

- :mod:`~repro.analysis.distributions` -- frequency CDFs from CBF
  counter histograms (Fig. 14).
- :mod:`~repro.analysis.timeline` -- windowed hit-ratio / latency
  timelines from experiment results (Fig. 11).
- :mod:`~repro.analysis.tracetool` -- JSONL trace validation,
  summaries and state/level adaptation timelines (Fig. 11 from a
  ``--trace`` file).
- :mod:`~repro.analysis.tables` -- text table formatting matching the
  paper's layout.
"""

from repro.analysis.distributions import frequency_cdf, saturated_fraction
from repro.analysis.tables import format_comparison_table, format_rows
from repro.analysis.timeline import (
    detection_delay,
    resample_timeline,
    timeline_stability,
)
from repro.analysis.tracetool import (
    adaptation_latencies_ns,
    format_trace_summary,
    read_events,
    state_timeline,
    summarize_trace,
    validate_trace,
)

__all__ = [
    "adaptation_latencies_ns",
    "detection_delay",
    "format_comparison_table",
    "format_rows",
    "format_trace_summary",
    "frequency_cdf",
    "read_events",
    "resample_timeline",
    "saturated_fraction",
    "state_timeline",
    "summarize_trace",
    "timeline_stability",
    "validate_trace",
]
