"""Trace-file analysis: validation, summaries, adaptation timelines.

Consumes the JSONL traces written by
:class:`~repro.obs.JsonlTraceSink` (``repro run --trace``, per-cell
``CellSpec.trace_path``) and reconstructs the temporal stories the
paper tells about FreqTier:

- the **state/level timeline** (Fig. 6 state machine in action):
  every ``state_transition`` / ``level_change`` event becomes a
  timeline segment, so "when did the policy drop into monitoring mode
  and why" is one function call;
- **adaptation latencies** (Fig. 11): for each monitoring->sampling
  resume, how long the policy had been monitoring before the
  distribution change was detected;
- per-event-type **counts** and windowed hit-ratio series for quick
  plotting.

Backs the ``repro trace summarize`` / ``repro trace validate`` CLI
subcommands.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field

from repro.obs.events import TraceEventError, validate_event


def read_events(path: str | os.PathLike) -> list[dict]:
    """Load all events from a JSONL trace file (no validation)."""
    events: list[dict] = []
    with open(path, encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                events.append(json.loads(line))
    return events


@dataclass
class TraceValidation:
    """Outcome of validating one trace file line by line."""

    events: list[dict]
    #: (1-based line number, error message) per invalid line.
    errors: list[tuple[int, str]] = field(default_factory=list)
    #: True when the file's final line was cut off mid-write (a crash
    #: during a durable trace); tolerated, not counted as an error.
    truncated_tail: bool = False

    @property
    def ok(self) -> bool:
        return not self.errors

    @property
    def num_lines(self) -> int:
        return len(self.events) + len(self.errors)


def validate_trace(path: str | os.PathLike) -> TraceValidation:
    """Validate every line of a JSONL trace against the event schema.

    Collects errors instead of raising so a single bad line does not
    hide the rest; ``result.ok`` is the pass/fail verdict the CI
    traced-smoke job keys on.

    A final line that is not valid JSON **and** is missing its trailing
    newline is treated as a torn tail (the expected artifact of a crash
    mid-write with ``JsonlTraceSink(durable=True)``): it sets
    ``truncated_tail`` instead of failing validation.
    """
    events: list[dict] = []
    errors: list[tuple[int, str]] = []
    truncated_tail = False
    with open(path, encoding="utf-8") as fh:
        raw_lines = fh.readlines()
    for lineno, raw in enumerate(raw_lines, start=1):
        line = raw.strip()
        if not line:
            continue
        try:
            event = json.loads(line)
        except json.JSONDecodeError as exc:
            is_last = lineno == len(raw_lines)
            if is_last and not raw.endswith("\n"):
                truncated_tail = True
            else:
                errors.append((lineno, f"not valid JSON: {exc}"))
            continue
        try:
            validate_event(event)
        except TraceEventError as exc:
            errors.append((lineno, str(exc)))
            continue
        events.append(event)
    return TraceValidation(
        events=events, errors=errors, truncated_tail=truncated_tail
    )


@dataclass
class TimelineSegment:
    """One stretch of constant (state, level), from a trace."""

    start_ns: float
    state: str
    level: str
    reason: str
    end_ns: float | None = None  # None = open until end of trace

    def as_dict(self) -> dict[str, object]:
        return {
            "start_ns": self.start_ns,
            "end_ns": self.end_ns,
            "state": self.state,
            "level": self.level,
            "reason": self.reason,
        }


def state_timeline(events: list[dict]) -> list[TimelineSegment]:
    """Reconstruct the (state, level) timeline from trace events.

    Consumes ``state_transition`` and ``level_change`` events in
    ``seq`` order; each opens a new segment and closes the previous
    one.  This is the Fig. 11-style adaptation timeline: when sampling
    ran, at which level, when monitoring took over and why.
    """
    segments: list[TimelineSegment] = []
    state: str | None = None
    level: str | None = None
    for event in sorted(
        (e for e in events if e["type"] in ("state_transition", "level_change")),
        key=lambda e: e["seq"],
    ):
        if event["type"] == "state_transition":
            state = event["to"]
            level = event.get("level", level)
        else:  # level_change keeps the state, moves the level
            level = event["to"]
        if segments:
            segments[-1].end_ns = event["t_ns"]
        segments.append(
            TimelineSegment(
                start_ns=event["t_ns"],
                state=state or "unknown",
                level=level or "unknown",
                reason=event["reason"],
            )
        )
    return segments


def adaptation_latencies_ns(events: list[dict]) -> list[float]:
    """Monitoring-entry -> sampling-resume delays (Fig. 11 metric)."""
    latencies: list[float] = []
    entered_at: float | None = None
    for event in sorted(
        (e for e in events if e["type"] == "state_transition"),
        key=lambda e: e["seq"],
    ):
        if event["to"] == "monitoring":
            entered_at = event["t_ns"]
        elif event["to"] == "sampling" and entered_at is not None:
            latencies.append(event["t_ns"] - entered_at)
            entered_at = None
    return latencies


def hit_ratio_series(events: list[dict]) -> list[tuple[float, float]]:
    """(t_ns, hit_ratio) points from ``window_close`` events."""
    return [
        (e["t_ns"], e["hit_ratio"])
        for e in events
        if e["type"] == "window_close" and e.get("hit_ratio") is not None
    ]


def mode_timeline(events: list[dict]) -> list[dict[str, object]]:
    """Degradation-ladder timeline from ``degraded`` serve events."""
    segments: list[dict[str, object]] = []
    for event in sorted(
        (e for e in events if e["type"] == "degraded"),
        key=lambda e: e["seq"],
    ):
        if segments:
            segments[-1]["end_ns"] = event["t_ns"]
        segments.append(
            {
                "start_ns": event["t_ns"],
                "end_ns": None,
                "mode": event["to"],
                "reason": event["reason"],
            }
        )
    return segments


def serve_summary(events: list[dict]) -> dict[str, object] | None:
    """Serving-daemon reduction of a trace, or None if never served.

    Streams ``tick_start`` queue depths through a
    :class:`~repro.obs.registry.HistogramRegistry` so the summary
    carries the same p50/p99/p999 estimates the daemon reports live.
    """
    from repro.obs.registry import HistogramRegistry

    ticks = [e for e in events if e["type"] == "tick_start"]
    if not ticks:
        return None
    depths = HistogramRegistry()
    mode_ticks: dict[str, int] = {}
    for event in ticks:
        depths.observe("queue_depth", event["queue_depth"])
        mode_ticks[event["mode"]] = mode_ticks.get(event["mode"], 0) + 1
    sheds = [e for e in events if e["type"] == "load_shed"]
    restarts = [e for e in events if e["type"] == "watchdog_restart"]
    drains = [e for e in events if e["type"] == "drain_complete"]
    return {
        "ticks": len(ticks),
        "ticks_by_mode": dict(sorted(mode_ticks.items())),
        "queue_depth": depths.summary("queue_depth"),
        "shed_batches": sum(e["count"] for e in sheds),
        "deadline_exceeded": sum(
            1 for e in events if e["type"] == "deadline_exceeded"
        ),
        "watchdog_restarts": len(restarts),
        "config_swaps": sum(
            1 for e in events if e["type"] == "config_swapped"
        ),
        "drained": sum(e["served"] for e in drains),
        "mode_timeline": mode_timeline(events),
    }


def summarize_trace(events: list[dict]) -> dict[str, object]:
    """Reduce a trace to the headline observability quantities."""
    counts: dict[str, int] = {}
    for event in events:
        counts[event["type"]] = counts.get(event["type"], 0) + 1
    timeline = state_timeline(events)
    promotions = [e for e in events if e["type"] == "promotion"]
    overflows = [e for e in events if e["type"] == "ring_overflow"]
    agings = counts.get("aging", 0)
    t_values = [e["t_ns"] for e in events]
    return {
        "num_events": len(events),
        "event_counts": dict(sorted(counts.items())),
        "span_ns": (max(t_values) - min(t_values)) if t_values else 0.0,
        "pages_promoted": sum(e["promoted"] for e in promotions),
        "promotion_passes": len(promotions),
        "samples_lost": sum(e["lost"] for e in overflows),
        "agings": agings,
        "adaptation_latencies_ns": adaptation_latencies_ns(events),
        "hit_ratio_series": hit_ratio_series(events),
        "timeline": [seg.as_dict() for seg in timeline],
        "serve": serve_summary(events),
    }


def format_trace_summary(summary: dict[str, object]) -> str:
    """Human-readable rendering of :func:`summarize_trace` output."""
    lines = [
        f"events:          {summary['num_events']}",
        f"span:            {summary['span_ns'] / 1e6:.3f} ms (virtual)",
        f"promotion passes: {summary['promotion_passes']} "
        f"({summary['pages_promoted']} pages promoted)",
        f"samples lost:    {summary['samples_lost']}",
        f"agings:          {summary['agings']}",
        "event counts:",
    ]
    for etype, count in summary["event_counts"].items():
        lines.append(f"  {etype:<18} {count}")
    timeline = summary["timeline"]
    if timeline:
        lines.append("state/level timeline:")
        for seg in timeline:
            end = (
                f"{seg['end_ns'] / 1e6:10.3f}" if seg["end_ns"] is not None else "       end"
            )
            lines.append(
                f"  {seg['start_ns'] / 1e6:10.3f} -> {end} ms  "
                f"{seg['state']:<10} level={seg['level']:<6} ({seg['reason']})"
            )
    latencies = summary["adaptation_latencies_ns"]
    if latencies:
        avg = sum(latencies) / len(latencies)
        lines.append(
            f"adaptation: {len(latencies)} monitoring->sampling "
            f"resume(s), mean latency {avg / 1e6:.3f} ms"
        )
    serve = summary.get("serve")
    if serve:
        lines.append("serving:")
        modes = ", ".join(
            f"{mode}={count}" for mode, count in serve["ticks_by_mode"].items()
        )
        lines.append(f"  ticks:           {serve['ticks']} ({modes})")
        depth = serve["queue_depth"]
        if depth:
            lines.append(
                "  queue depth:     "
                f"p50={depth['p50']:.1f} p99={depth['p99']:.1f} "
                f"p999={depth['p999']:.1f} max={depth['max']:.0f}"
            )
        lines.append(
            f"  shed batches:    {serve['shed_batches']}  "
            f"deadline misses: {serve['deadline_exceeded']}  "
            f"restarts: {serve['watchdog_restarts']}  "
            f"config swaps: {serve['config_swaps']}"
        )
        for seg in serve["mode_timeline"]:
            end = (
                f"{seg['end_ns'] / 1e6:10.3f}"
                if seg["end_ns"] is not None
                else "       end"
            )
            lines.append(
                f"  {seg['start_ns'] / 1e6:10.3f} -> {end} ms  "
                f"mode={seg['mode']:<16} ({seg['reason']})"
            )
    return "\n".join(lines)
