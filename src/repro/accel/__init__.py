"""Backend dispatch for the fused hot-path kernels.

The simulator's per-batch inner loop reduces to a handful of fused
kernels -- placement gather + tier counting, the CBF's conservative
increase with readback, hash-index derivation, the skip sampler's gap
expansion and the workload's run expansion.  Each kernel has two
implementations:

- :mod:`repro.accel.numpy_backend` -- pure vectorized NumPy, the
  always-available **reference oracle**; every other backend must match
  it bit-exactly (``tests/accel/`` enforces this);
- :mod:`repro.accel.numba_backend` -- ``@njit(cache=True)`` compiled
  loops, selected only when `numba <https://numba.pydata.org>`_ is
  importable (the optional ``repro[accel]`` extra).

Selection order:

1. an explicit :func:`set_backend` call (tests, embedding code);
2. the ``REPRO_ACCEL`` environment variable (``numpy`` or ``numba``);
3. default: ``numpy``.

Requesting ``numba`` without numba installed (or with a broken
install) is *not* an error: the dispatcher silently falls back to the
NumPy reference and records a single fallback event, which the engine
surfaces once per run through its tracer (``accel_fallback``).  This
keeps ``pip install repro`` dependency-light while letting
``pip install 'repro[accel]'`` users opt into the compiled path.

All kernels are pure functions of their array arguments (plus scalar
shape/width parameters), so backend choice never affects results --
only wall-clock speed.  Checkpoint/resume is backend-agnostic for the
same reason.
"""

from __future__ import annotations

import os
from typing import Any

import numpy as np

from repro.accel import numpy_backend

#: Names accepted by :func:`set_backend` / ``REPRO_ACCEL``.
BACKEND_NAMES = ("numpy", "numba")

_active_name: str | None = None
_active: Any = None
_fallback_event: dict[str, str] | None = None


def _resolve(name: str) -> tuple[str, Any]:
    """Resolve a backend name to (actual_name, module), with fallback."""
    global _fallback_event
    if name == "numba":
        try:
            from repro.accel import numba_backend

            return "numba", numba_backend
        except Exception as exc:  # ImportError, or a broken numba install
            _fallback_event = {
                "requested": "numba",
                "active": "numpy",
                "reason": f"{type(exc).__name__}: {exc}",
            }
            return "numpy", numpy_backend
    return "numpy", numpy_backend


def set_backend(name: str) -> str:
    """Select the kernel backend; returns the name actually activated.

    ``"numba"`` may activate ``"numpy"`` when numba is unavailable (the
    documented silent fallback); any other unknown name raises.
    """
    global _active_name, _active
    if name not in BACKEND_NAMES:
        raise ValueError(
            f"unknown accel backend {name!r}; valid: {BACKEND_NAMES}"
        )
    _active_name, _active = _resolve(name)
    return _active_name


def _ensure() -> Any:
    global _active_name, _active, _fallback_event
    if _active is None:
        requested = (os.environ.get("REPRO_ACCEL") or "numpy").strip().lower()
        if requested not in BACKEND_NAMES:
            # A typo'd environment variable must not crash runs; note it
            # through the same fallback channel and use the reference.
            _fallback_event = {
                "requested": requested,
                "active": "numpy",
                "reason": f"unknown REPRO_ACCEL value {requested!r}",
            }
            requested = "numpy"
        _active_name, _active = _resolve(requested)
    return _active


def backend_name() -> str:
    """Name of the active backend (resolving it on first use)."""
    _ensure()
    assert _active_name is not None
    return _active_name


def fallback_event() -> dict[str, str] | None:
    """The one recorded backend-fallback event, if any (else None)."""
    _ensure()
    return dict(_fallback_event) if _fallback_event else None


# ---------------------------------------------------------------------------
# kernel entry points (thin dispatchers; signatures shared by backends)
# ---------------------------------------------------------------------------


def placement_counts(
    placement: np.ndarray, page_ids: np.ndarray, out: np.ndarray
) -> tuple[int, int]:
    """Gather each page's tier code into ``out`` and split the counts.

    ``placement`` is the page table's int8 code array (``LOCAL_TIER=0``,
    ``CXL_TIER=1``, ``UNMAPPED=-1``); returns ``(n_local, n_cxl)`` where
    ``n_cxl`` counts every non-local access (the engine's historical
    accounting).  Out-of-range page ids raise ``IndexError``.
    """
    return _ensure().placement_counts(placement, page_ids, out)


def placement_prefix(placement: np.ndarray, prefix: np.ndarray) -> None:
    """Prefix sum of local placements into caller-owned scratch.

    Writes ``prefix[i] = #{j < i : placement[j] == LOCAL_TIER}`` for
    ``i`` in ``[0, placement.size]``; ``prefix`` must hold
    ``placement.size + 1`` int64 elements.  The result feeds
    :func:`compressed_placement_counts` and stays valid until the
    placement array next changes (track
    ``PageTable.version`` to reuse it across batches).
    """
    _ensure().placement_prefix(placement, prefix)


def compressed_placement_counts(
    placement: np.ndarray,
    prefix: np.ndarray,
    head: np.ndarray,
    starts: np.ndarray,
    counts: np.ndarray,
) -> tuple[int, int]:
    """Tier split of a run-compressed batch, without expanding it.

    Counts local accesses across ``head`` (single-page accesses, a
    direct gather) and the ``(starts, counts)`` page runs via the
    placement prefix sum built by :func:`placement_prefix`: the local
    hits in ``[s, s+c)`` are ``prefix[s+c] - prefix[s]``.  ``prefix``
    must describe the current ``placement`` contents.  Returns
    ``(n_local, n_cxl)`` with ``n_cxl`` counting every non-local
    access, exactly like :func:`placement_counts` on the expanded
    stream.  Out-of-range pages raise ``IndexError``.
    """
    return _ensure().compressed_placement_counts(
        placement, prefix, head, starts, counts
    )


def blocked_indices(
    keys: np.ndarray,
    seed: int,
    num_blocks: int,
    counters_per_block: int,
    num_hashes: int,
) -> np.ndarray:
    """Blocked-CBF slot indices, shape ``(len(keys), num_hashes)``.

    One splitmix64 hash selects the 64-byte block, ``num_hashes``
    further hashes select in-block slots (Lemire fold, no modulo bias).
    """
    return _ensure().blocked_indices(
        keys, seed, num_blocks, counters_per_block, num_hashes
    )


def classic_indices(
    keys: np.ndarray, num_hashes: int, num_slots: int, seed: int
) -> np.ndarray:
    """Kirsch--Mitzenmacher double-hashed slot indices ``(n, k)``."""
    return _ensure().classic_indices(keys, num_hashes, num_slots, seed)


def cbf_fused_update(
    store: np.ndarray,
    bits: int,
    per_byte: int,
    max_value: int,
    idx: np.ndarray,
    totals: np.ndarray,
) -> np.ndarray:
    """Fused conservative CBF increase + frequency readback.

    For each row ``r`` of ``idx`` (the ``k`` counter slots of one
    unique key): read the min counter, raise the row's counters to
    ``min(min + totals[r], max_value)`` via scatter-max (duplicates
    across rows resolve to the largest target), then read back the new
    min.  Mutates ``store`` in place; returns the per-row new
    frequencies (int64).  ``store`` is the packed backing array of a
    :class:`repro.cbf.counters.PackedCounterArray` (uint8 for sub-byte
    and 8-bit widths, uint16 for 16-bit).
    """
    return _ensure().cbf_fused_update(
        store, bits, per_byte, max_value, idx, totals
    )


def gap_positions(
    gaps: np.ndarray, pos: int, n: int, out: np.ndarray
) -> tuple[int, int, int]:
    """Expand geometric gaps into in-batch sample positions.

    Positions are ``pos, pos+gaps[0], pos+gaps[0]+gaps[1], ...``; those
    ``< n`` are written to ``out`` (which must hold ``len(gaps) + 1``
    elements).  Returns ``(count, carry, last)``: ``count`` positions
    written; ``carry`` = first position past the batch end minus ``n``
    when the chain crossed it, else ``-1``; ``last`` = the final
    position of the full chain (used to extend an uncrossed chain).
    """
    return _ensure().gap_positions(gaps, pos, n, out)


def expand_runs(
    starts: np.ndarray, counts: np.ndarray, out: np.ndarray
) -> None:
    """Expand ``(start, count)`` runs into per-page ids.

    Writes ``starts[i], starts[i]+1, ..., starts[i]+counts[i]-1`` for
    every run, concatenated, into ``out`` (sized ``counts.sum()``).
    """
    _ensure().expand_runs(starts, counts, out)


def run_pages_at(
    head: np.ndarray,
    starts: np.ndarray,
    counts: np.ndarray,
    offsets: np.ndarray,
    positions: np.ndarray,
    sorted_positions: bool = False,
) -> np.ndarray:
    """Position→page gather over a run-compressed batch.

    Program order is ``head`` first, then the ``(starts, counts)`` runs
    expanded in order; ``offsets`` is ``cumsum(counts)``.  Returns the
    int64 page id at each position: head positions are a direct gather,
    tail positions locate their run by binary search over ``offsets``
    -- O(len(positions)), never expanding the stream.  Positions
    outside ``[0, head.size + offsets[-1])`` raise ``IndexError``
    (matching a fancy-index gather on the expanded stream).

    ``sorted_positions`` is a caller promise that ``positions`` is
    ascending (true for skip-sampled and strided position streams); the
    backend may then split head from tail positions with slices instead
    of boolean masks.  Passing it for unsorted positions is undefined.
    """
    return _ensure().run_pages_at(
        head, starts, counts, offsets, positions, sorted_positions
    )


def strided_run_pages(
    head: np.ndarray,
    starts: np.ndarray,
    counts: np.ndarray,
    offsets: np.ndarray,
    stride: int,
    num_accesses: int,
) -> np.ndarray:
    """Pages at positions ``0, stride, 2*stride, ...`` of a compressed
    batch -- bit-identical to ``expanded_page_ids[::stride]`` (as int64)
    at O(samples + runs) cost.  Feeds the recency policies' strided
    touched-set walks (AutoNUMA MGLRU / TPP reference-bit sampling).
    """
    return _ensure().strided_run_pages(
        head, starts, counts, offsets, stride, num_accesses
    )


def weighted_page_counts(
    head: np.ndarray,
    starts: np.ndarray,
    counts: np.ndarray,
    out: np.ndarray,
) -> None:
    """Accumulate a per-page access histogram of a compressed batch.

    The compressed form *is* a weighted histogram: each head page
    contributes 1 and each run contributes 1 to every page it covers.
    Adds those counts into ``out`` (int64, one slot per page) via a
    head bincount plus a difference-domain run sweep -- O(runs + pages)
    instead of O(accesses), equivalent to ``np.add.at(out, page_ids,
    1)`` on the expanded stream.  Pages outside ``[0, out.size)`` raise
    ``IndexError``.
    """
    _ensure().weighted_page_counts(head, starts, counts, out)


def hint_faults(
    unmap_time: np.ndarray,
    head: np.ndarray,
    starts: np.ndarray,
    counts: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Hint-fault detection over a run-compressed batch.

    Returns ``(faulted_pages, unmap_times)``: the first access in
    program order to each page whose ``unmap_time`` entry is >= 0, and
    that entry's value -- then clears those entries in place (the PTE
    restore), so a page faults at most once per batch.  Bit-identical
    (order included) to first-occurrence detection on the expanded
    stream; out-of-range pages are skipped, matching the scanner's
    in-range filter.  Cost is O(runs log U + faults) with U the
    currently-unmapped set, not O(accesses).
    """
    return _ensure().hint_faults(unmap_time, head, starts, counts)
