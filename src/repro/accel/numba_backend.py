"""numba ``@njit(cache=True)`` implementations of the hot-path kernels.

Importing this module requires numba (the ``repro[accel]`` extra); the
dispatch layer catches the ImportError and falls back to the NumPy
reference.  Every kernel here must produce **bit-identical** output to
:mod:`repro.accel.numpy_backend` -- the loops below mirror the
vectorized math exactly (uint64 wraparound arithmetic, Lemire folds,
per-lane packed-counter semantics), and ``tests/accel/`` enforces the
equivalence on randomized inputs.

Compilation is lazy (first call per signature) and disk-cached, so a
warm process pays the JIT cost once per machine, not per run.
"""

from __future__ import annotations

import numpy as np
from numba import njit

_U64 = np.uint64
_MASK64 = 0xFFFFFFFFFFFFFFFF
_GOLDEN_INT = 0x9E3779B97F4A7C15
_MIX1 = np.uint64(0xBF58476D1CE4E5B9)
_MIX2 = np.uint64(0x94D049BB133111EB)


def _seed_term(seed: int) -> np.uint64:
    """Precompute ``seed * GOLDEN + GOLDEN`` (mod 2**64) for splitmix64."""
    return np.uint64(((seed & _MASK64) * _GOLDEN_INT + _GOLDEN_INT) & _MASK64)


@njit(cache=True)
def _splitmix64(key, seed_term):
    z = key + seed_term
    z = (z ^ (z >> _U64(30))) * _MIX1
    z = (z ^ (z >> _U64(27))) * _MIX2
    return z ^ (z >> _U64(31))


@njit(cache=True)
def _fold(h, upper):
    hi = h >> _U64(32)
    lo = h & _U64(0xFFFFFFFF)
    top = hi * upper + ((lo * upper) >> _U64(32))
    return np.int64(top >> _U64(32))


# ---------------------------------------------------------------------------
# placement / traffic accounting
# ---------------------------------------------------------------------------


@njit(cache=True)
def _placement_counts(placement, page_ids, out):
    n_local = 0
    cap = placement.size
    for i in range(page_ids.size):
        p = page_ids[i]
        if p < 0 or p >= cap:
            return -1, i
        t = placement[p]
        out[i] = t
        if t == 0:  # LOCAL_TIER
            n_local += 1
    return n_local, -1


def placement_counts(
    placement: np.ndarray, page_ids: np.ndarray, out: np.ndarray
) -> tuple[int, int]:
    n = page_ids.size
    n_local, bad = _placement_counts(placement, page_ids, out[:n])
    if bad >= 0:
        raise IndexError(
            f"page id {int(page_ids[bad])} out of range "
            f"[0, {placement.size})"
        )
    return int(n_local), int(n - n_local)


@njit(cache=True)
def _placement_prefix(placement, prefix):
    acc = 0
    prefix[0] = 0
    for i in range(placement.size):
        if placement[i] == 0:  # LOCAL_TIER
            acc += 1
        prefix[i + 1] = acc


def placement_prefix(placement: np.ndarray, prefix: np.ndarray) -> None:
    _placement_prefix(placement, prefix)


@njit(cache=True)
def _compressed_placement_counts(placement, prefix, head, starts, counts):
    n = placement.size
    n_local = 0
    total = 0
    for j in range(head.size):
        h = head[j]
        if h < 0 or h >= n:
            return -1, -1, j
        if placement[h] == 0:
            n_local += 1
        total += 1
    for r in range(starts.size):
        s = starts[r]
        e = s + counts[r]
        if s < 0 or e > n or e < s:
            return -1, -1, head.size + r
        n_local += prefix[e] - prefix[s]
        total += counts[r]
    return n_local, total, -1


def compressed_placement_counts(
    placement: np.ndarray,
    prefix: np.ndarray,
    head: np.ndarray,
    starts: np.ndarray,
    counts: np.ndarray,
) -> tuple[int, int]:
    n_local, total, bad = _compressed_placement_counts(
        placement, prefix, head, starts, counts
    )
    if bad >= 0:
        raise IndexError(
            f"access {bad} out of range [0, {placement.size})"
        )
    return int(n_local), int(total - n_local)


# ---------------------------------------------------------------------------
# run-compressed batch kernels
# ---------------------------------------------------------------------------


@njit(cache=True)
def _run_pages_at(head, starts, counts, offsets, positions, n_total, out):
    n_head = head.size
    for i in range(positions.size):
        p = positions[i]
        if p < 0 or p >= n_total:
            return i
        if p < n_head:
            out[i] = head[p]
        else:
            tail = p - n_head
            # searchsorted side="right": first run whose cumulative end
            # strictly exceeds tail.
            lo, hi = 0, offsets.size
            while lo < hi:
                mid = (lo + hi) // 2
                if offsets[mid] <= tail:
                    lo = mid + 1
                else:
                    hi = mid
            out[i] = starts[lo] + tail - (offsets[lo] - counts[lo])
    return -1


def run_pages_at(
    head: np.ndarray,
    starts: np.ndarray,
    counts: np.ndarray,
    offsets: np.ndarray,
    positions: np.ndarray,
    sorted_positions: bool = False,
) -> np.ndarray:
    # The compiled loop is already per-element; the sortedness promise
    # buys nothing here, but the flag keeps backend signatures aligned.
    del sorted_positions
    n_total = head.size + (int(offsets[-1]) if offsets.size else 0)
    out = np.empty(positions.size, dtype=np.int64)
    bad = _run_pages_at(
        head, starts, counts, offsets, positions, np.int64(n_total), out
    )
    if bad >= 0:
        raise IndexError(f"sample positions out of range [0, {n_total})")
    return out


@njit(cache=True)
def _strided_run_pages(head, starts, counts, offsets, stride, n, out):
    k = 0
    pos = 0
    n_head = head.size
    while pos < n and pos < n_head:
        out[k] = head[pos]
        k += 1
        pos += stride
    run = 0
    while pos < n:
        tail = pos - n_head
        while offsets[run] <= tail:  # positions ascend: run only advances
            run += 1
        out[k] = starts[run] + tail - (offsets[run] - counts[run])
        k += 1
        pos += stride
    return k


def strided_run_pages(
    head: np.ndarray,
    starts: np.ndarray,
    counts: np.ndarray,
    offsets: np.ndarray,
    stride: int,
    num_accesses: int,
) -> np.ndarray:
    out = np.empty(-(-num_accesses // stride) if num_accesses else 0, dtype=np.int64)
    k = _strided_run_pages(
        head, starts, counts, offsets, np.int64(stride), np.int64(num_accesses), out
    )
    return out[:k]


@njit(cache=True)
def _weighted_page_counts(head, starts, counts, out):
    n = out.size
    for i in range(head.size):
        h = head[i]
        if h < 0 or h >= n:
            return i
        out[h] += 1
    for r in range(starts.size):
        s = starts[r]
        e = s + counts[r]
        if s < 0 or e > n or e < s:
            return head.size + r
        for p in range(s, e):
            out[p] += 1
    return -1


def weighted_page_counts(
    head: np.ndarray,
    starts: np.ndarray,
    counts: np.ndarray,
    out: np.ndarray,
) -> None:
    bad = _weighted_page_counts(head, starts, counts, out)
    if bad >= 0:
        raise IndexError(f"access {bad} out of range [0, {out.size})")


@njit(cache=True)
def _hint_faults(unmap_time, head, starts, counts, pages, times):
    total = unmap_time.size
    k = 0
    for i in range(head.size):
        h = head[i]
        if h < 0 or h >= total:
            continue
        t = unmap_time[h]
        if t >= 0.0:
            pages[k] = h
            times[k] = t
            unmap_time[h] = -1.0
            k += 1
    for r in range(starts.size):
        s = starts[r]
        e = s + counts[r]
        if s < 0:
            s = 0
        if e > total:
            e = total
        for p in range(s, e):
            t = unmap_time[p]
            if t >= 0.0:
                pages[k] = p
                times[k] = t
                unmap_time[p] = -1.0
                k += 1
    return k


def hint_faults(
    unmap_time: np.ndarray,
    head: np.ndarray,
    starts: np.ndarray,
    counts: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    # A page faults at most once, so the unmapped-entry count bounds
    # the output; clearing entries as they fault dedupes in one pass.
    cap = int(np.count_nonzero(unmap_time >= 0.0))
    pages = np.empty(cap, dtype=np.int64)
    times = np.empty(cap, dtype=np.float64)
    k = _hint_faults(unmap_time, head, starts, counts, pages, times)
    return pages[:k], times[:k]


# ---------------------------------------------------------------------------
# hashing
# ---------------------------------------------------------------------------


@njit(cache=True)
def _blocked_indices(keys, seed_terms, num_blocks, cpb_u64, cpb_i64, out):
    k = out.shape[1]
    for j in range(keys.size):
        key = keys[j]
        base = _fold(_splitmix64(key, seed_terms[0]), num_blocks) * cpb_i64
        for i in range(k):
            out[j, i] = base + _fold(
                _splitmix64(key, seed_terms[1 + i]), cpb_u64
            )
    return out


def blocked_indices(
    keys: np.ndarray,
    seed: int,
    num_blocks: int,
    counters_per_block: int,
    num_hashes: int,
) -> np.ndarray:
    keys = np.ascontiguousarray(keys, dtype=np.uint64)
    seed_terms = np.empty(num_hashes + 1, dtype=np.uint64)
    seed_terms[0] = _seed_term(seed)
    for i in range(num_hashes):
        seed_terms[1 + i] = _seed_term(seed + 101 + i)
    out = np.empty((keys.size, num_hashes), dtype=np.int64)
    return _blocked_indices(
        keys,
        seed_terms,
        np.uint64(num_blocks),
        np.uint64(counters_per_block),
        np.int64(counters_per_block),
        out,
    )


@njit(cache=True)
def _classic_indices(keys, term1, term2, num_slots, out):
    k = out.shape[1]
    for j in range(keys.size):
        key = keys[j]
        h1 = _splitmix64(key, term1)
        h2 = _splitmix64(key, term2) | _U64(1)
        for i in range(k):
            out[j, i] = np.int64((h1 + _U64(i) * h2) % num_slots)
    return out


def classic_indices(
    keys: np.ndarray, num_hashes: int, num_slots: int, seed: int
) -> np.ndarray:
    keys = np.ascontiguousarray(keys, dtype=np.uint64)
    out = np.empty((keys.size, num_hashes), dtype=np.int64)
    return _classic_indices(
        keys,
        _seed_term(seed),
        _seed_term(seed + 1),
        np.uint64(num_slots),
        out,
    )


# ---------------------------------------------------------------------------
# packed-counter CBF update
# ---------------------------------------------------------------------------


@njit(cache=True)
def _fused_update_packed(store, bits, per_byte, max_value, idx, totals, out):
    u, k = idx.shape
    # Pass 1: per-row min of the pre-update counters -> target value.
    for r in range(u):
        m = max_value
        for c in range(k):
            j = idx[r, c]
            v = (np.int64(store[j // per_byte]) >> ((j % per_byte) * bits)) & max_value
            if v < m:
                m = v
        t = m + totals[r]
        if t > max_value:
            t = max_value
        out[r] = t
    # Pass 2: scatter-max (duplicate slots keep the largest target).
    for r in range(u):
        t = out[r]
        for c in range(k):
            j = idx[r, c]
            bi = j // per_byte
            sh = (j % per_byte) * bits
            byte = np.int64(store[bi])
            if t > ((byte >> sh) & max_value):
                store[bi] = np.uint8(
                    (byte & ~(max_value << sh)) | (t << sh)
                )
    # Pass 3: frequency readback against the fully updated store.
    for r in range(u):
        m = max_value
        for c in range(k):
            j = idx[r, c]
            v = (np.int64(store[j // per_byte]) >> ((j % per_byte) * bits)) & max_value
            if v < m:
                m = v
        out[r] = m
    return out


@njit(cache=True)
def _fused_update_direct(store, max_value, idx, totals, out):
    u, k = idx.shape
    for r in range(u):
        m = max_value
        for c in range(k):
            v = np.int64(store[idx[r, c]])
            if v < m:
                m = v
        t = m + totals[r]
        if t > max_value:
            t = max_value
        out[r] = t
    for r in range(u):
        t = out[r]
        for c in range(k):
            j = idx[r, c]
            if t > np.int64(store[j]):
                store[j] = t
    for r in range(u):
        m = max_value
        for c in range(k):
            v = np.int64(store[idx[r, c]])
            if v < m:
                m = v
        out[r] = m
    return out


def cbf_fused_update(
    store: np.ndarray,
    bits: int,
    per_byte: int,
    max_value: int,
    idx: np.ndarray,
    totals: np.ndarray,
) -> np.ndarray:
    out = np.empty(idx.shape[0], dtype=np.int64)
    if bits in (8, 16):
        return _fused_update_direct(
            store, np.int64(max_value), idx, totals, out
        )
    return _fused_update_packed(
        store,
        np.int64(bits),
        np.int64(per_byte),
        np.int64(max_value),
        idx,
        totals,
        out,
    )


# ---------------------------------------------------------------------------
# skip-sampler gap expansion
# ---------------------------------------------------------------------------


@njit(cache=True)
def _gap_positions(gaps, pos, n, out):
    cur = pos
    count = 0
    carry = np.int64(-1)
    crossed = False
    if cur < n:
        out[count] = cur
        count += 1
    else:
        carry = cur - n
        crossed = True
    for i in range(gaps.size):
        cur = cur + gaps[i]
        if crossed:
            continue
        if cur < n:
            out[count] = cur
            count += 1
        else:
            carry = cur - n
            crossed = True
    return count, carry, cur


def gap_positions(
    gaps: np.ndarray, pos: int, n: int, out: np.ndarray
) -> tuple[int, int, int]:
    count, carry, last = _gap_positions(
        gaps, np.int64(pos), np.int64(n), out
    )
    return int(count), int(carry), int(last)


# ---------------------------------------------------------------------------
# run expansion
# ---------------------------------------------------------------------------


@njit(cache=True)
def _expand_runs(starts, counts, out):
    k = 0
    for i in range(starts.size):
        s = starts[i]
        for j in range(counts[i]):
            out[k] = s + j
            k += 1
    return out


def expand_runs(
    starts: np.ndarray, counts: np.ndarray, out: np.ndarray
) -> None:
    _expand_runs(starts, counts, out)
