"""Pure-NumPy reference implementations of the fused hot-path kernels.

This backend is the **oracle**: always importable, always tested, and
the definition of correct output for every other backend.  It is
deliberately self-contained (imports nothing from the rest of
``repro``) so the dispatch layer stays a leaf package; the hash and
packed-counter math here mirrors :mod:`repro.cbf.hashing` and
:mod:`repro.cbf.counters` bit-for-bit, and ``tests/accel/`` pins that
equivalence against the originals on randomized inputs.
"""

from __future__ import annotations

import numpy as np

# splitmix64 constants (Steele, Lea, Flood 2014) -- must match
# repro.cbf.hashing exactly.
_GOLDEN = np.uint64(0x9E3779B97F4A7C15)
_MIX1 = np.uint64(0xBF58476D1CE4E5B9)
_MIX2 = np.uint64(0x94D049BB133111EB)
_U64 = np.uint64
_MASK64 = 0xFFFFFFFFFFFFFFFF

#: Tier codes (repro.memsim.pagetable: LOCAL_TIER=0, CXL_TIER=1).
_LOCAL_TIER = 0


# ---------------------------------------------------------------------------
# placement / traffic accounting
# ---------------------------------------------------------------------------


def placement_counts(
    placement: np.ndarray, page_ids: np.ndarray, out: np.ndarray
) -> tuple[int, int]:
    n = page_ids.size
    view = out[:n]
    np.take(placement, page_ids, out=view)
    n_local = int(np.count_nonzero(view == _LOCAL_TIER))
    return n_local, n - n_local


def placement_prefix(placement: np.ndarray, prefix: np.ndarray) -> None:
    n = placement.size
    prefix[0] = 0
    np.cumsum(placement == _LOCAL_TIER, dtype=np.int64, out=prefix[1 : n + 1])


def compressed_placement_counts(
    placement: np.ndarray,
    prefix: np.ndarray,
    head: np.ndarray,
    starts: np.ndarray,
    counts: np.ndarray,
) -> tuple[int, int]:
    n = placement.size
    n_local = 0
    total = 0
    if starts.size:
        ends = starts + counts
        if int(starts.min()) < 0 or int(ends.max()) > n:
            raise IndexError(
                f"run pages out of range [0, {n}) "
                f"(starts min {int(starts.min())}, ends max {int(ends.max())})"
            )
        n_local = int(prefix[ends].sum() - prefix[starts].sum())
        total = int(counts.sum())
    if head.size:
        # LOCAL_TIER is 0, so local head hits are exactly the zeros;
        # unmapped (-1) codes land in the non-local count, matching
        # placement_counts on the expanded stream.
        tiers = np.take(placement, head)
        n_local += head.size - int(np.count_nonzero(tiers))
        total += head.size
    return n_local, total - n_local


# ---------------------------------------------------------------------------
# run-compressed batch kernels (position gather, strided subsample,
# weighted per-page counts, hint-fault detection)
# ---------------------------------------------------------------------------


def run_pages_at(
    head: np.ndarray,
    starts: np.ndarray,
    counts: np.ndarray,
    offsets: np.ndarray,
    positions: np.ndarray,
    sorted_positions: bool = False,
) -> np.ndarray:
    n_head = head.size
    n_total = n_head + (int(offsets[-1]) if offsets.size else 0)
    if positions.size == 0:
        return np.empty(0, dtype=np.int64)
    if sorted_positions:
        lo, hi = int(positions[0]), int(positions[-1])
    else:
        lo, hi = int(positions.min()), int(positions.max())
    if lo < 0 or hi >= n_total:
        raise IndexError(
            f"sample positions out of range [0, {n_total})"
        )
    out = np.empty(positions.size, dtype=np.int64)
    if sorted_positions:
        # Ascending positions split at n_head: slices replace the
        # boolean masks and fancy gathers of the general path.
        split = int(np.searchsorted(positions, n_head))
        out[:split] = head[positions[:split]]
        tail = positions[split:] - n_head
        if tail.size:
            run = np.searchsorted(offsets, tail, side="right")
            out[split:] = starts[run] + tail - (offsets[run] - counts[run])
        return out
    in_head = positions < n_head
    if in_head.any():
        out[in_head] = head[positions[in_head]]
    tail = positions[~in_head] - n_head
    if tail.size:
        run = np.searchsorted(offsets, tail, side="right")
        out[~in_head] = starts[run] + tail - (offsets[run] - counts[run])
    return out


def strided_run_pages(
    head: np.ndarray,
    starts: np.ndarray,
    counts: np.ndarray,
    offsets: np.ndarray,
    stride: int,
    num_accesses: int,
) -> np.ndarray:
    positions = np.arange(0, num_accesses, stride, dtype=np.int64)
    return run_pages_at(
        head, starts, counts, offsets, positions, sorted_positions=True
    )


def weighted_page_counts(
    head: np.ndarray,
    starts: np.ndarray,
    counts: np.ndarray,
    out: np.ndarray,
) -> None:
    n = out.size
    if head.size:
        if int(head.min()) < 0 or int(head.max()) >= n:
            raise IndexError(f"head pages out of range [0, {n})")
        out += np.bincount(head, minlength=n).astype(np.int64)
    if starts.size:
        ends = starts + counts
        if int(starts.min()) < 0 or int(ends.max()) > n:
            raise IndexError(f"run pages out of range [0, {n})")
        # Difference-domain histogram: +1 at each run start, -1 one
        # past its end, cumulative sum yields per-page coverage counts.
        delta = np.zeros(n + 1, dtype=np.int64)
        np.add.at(delta, starts, 1)
        np.add.at(delta, ends, -1)
        out += np.cumsum(delta[:n])


def hint_faults(
    unmap_time: np.ndarray,
    head: np.ndarray,
    starts: np.ndarray,
    counts: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    total = unmap_time.size
    parts: list[np.ndarray] = []
    mask = unmap_time >= 0.0
    if head.size:
        h = head[(head >= 0) & (head < total)]
        if h.size:
            h = h[mask[h]]
            if h.size:
                parts.append(h.astype(np.int64, copy=False))
    if starts.size:
        # Candidate pages are the currently-unmapped ones each run
        # covers.  A prefix sum of the unmapped mask gives each page's
        # rank in the sorted unmapped set, so both run boundaries
        # become O(1) gathers (uprefix[p] = #unmapped pages below p);
        # expanding the resulting rank runs is then O(hits).  Clipping
        # run ends to [0, total] drops out-of-range pages, exactly as
        # a binary search against the unmapped set would.
        uprefix = np.empty(total + 1, dtype=np.int64)
        uprefix[0] = 0
        np.cumsum(mask, dtype=np.int64, out=uprefix[1:])
        if uprefix[total]:
            lo = uprefix[np.clip(starts, 0, total)]
            hi = uprefix[np.clip(starts + counts, 0, total)]
            seg_counts = hi - lo
            m = int(seg_counts.sum())
            if m:
                unmapped = np.nonzero(mask)[0]
                idx = np.empty(m, dtype=np.int64)
                expand_runs(lo, seg_counts, idx)
                parts.append(unmapped[idx])
    if not parts:
        return (
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.float64),
        )
    cand = parts[0] if len(parts) == 1 else np.concatenate(parts)
    # First occurrence of each page in program order (head precedes the
    # runs; within a run ascending page order is program order).
    first_idx = np.unique(cand, return_index=True)[1]
    faulted = cand[np.sort(first_idx)]
    times = unmap_time[faulted].copy()
    unmap_time[faulted] = -1.0  # PTE restored by the fault
    return faulted, times


# ---------------------------------------------------------------------------
# hashing
# ---------------------------------------------------------------------------


def _mix_rows(keys: np.ndarray, seeds: np.ndarray) -> np.ndarray:
    """splitmix64 of ``keys`` under each seed: shape (len(seeds), n).

    Row ``i`` equals ``repro.cbf.hashing.splitmix64(keys, seeds[i])``;
    stacking the seeds turns k+1 small vector passes into one, which is
    most of the win on the short key arrays of the demotion scan.
    """
    with np.errstate(over="ignore"):
        z = keys[None, :] + (seeds * _GOLDEN + _GOLDEN)[:, None]
        z = (z ^ (z >> _U64(30))) * _MIX1
        z = (z ^ (z >> _U64(27))) * _MIX2
        return z ^ (z >> _U64(31))


def _fold(hashes: np.ndarray, upper: int) -> np.ndarray:
    """Lemire multiply-shift fold of 64-bit hashes onto [0, upper)."""
    hi = hashes >> _U64(32)
    lo = hashes & _U64(0xFFFFFFFF)
    u = _U64(upper)
    with np.errstate(over="ignore"):
        top = hi * u + ((lo * u) >> _U64(32))
    return (top >> _U64(32)).astype(np.int64)


def blocked_indices(
    keys: np.ndarray,
    seed: int,
    num_blocks: int,
    counters_per_block: int,
    num_hashes: int,
) -> np.ndarray:
    keys = np.asarray(keys, dtype=np.uint64)
    seeds = np.empty(num_hashes + 1, dtype=np.uint64)
    seeds[0] = _U64(seed & _MASK64)
    for i in range(num_hashes):
        seeds[1 + i] = _U64((seed + 101 + i) & _MASK64)
    hashes = _mix_rows(keys, seeds)  # (k+1, n)
    base = _fold(hashes[0], num_blocks) * np.int64(counters_per_block)
    out = np.empty((keys.size, num_hashes), dtype=np.int64)
    for i in range(num_hashes):
        np.add(base, _fold(hashes[1 + i], counters_per_block), out=out[:, i])
    return out


def classic_indices(
    keys: np.ndarray, num_hashes: int, num_slots: int, seed: int
) -> np.ndarray:
    keys = np.asarray(keys, dtype=np.uint64)
    seeds = np.array(
        [_U64(seed & _MASK64), _U64((seed + 1) & _MASK64)], dtype=np.uint64
    )
    hashes = _mix_rows(keys, seeds)
    h1 = hashes[0]
    h2 = hashes[1] | _U64(1)
    steps = np.arange(num_hashes, dtype=np.uint64)
    with np.errstate(over="ignore"):
        combined = h1[:, None] + steps[None, :] * h2[:, None]
    return (combined % _U64(num_slots)).astype(np.int64)


# ---------------------------------------------------------------------------
# packed-counter CBF update
# ---------------------------------------------------------------------------


def _gather(
    store: np.ndarray, bits: int, per_byte: int, max_value: int, idx: np.ndarray
) -> np.ndarray:
    if bits in (8, 16):
        return store[idx].astype(np.int64)
    byte_idx = idx // per_byte
    shift = ((idx % per_byte) * bits).astype(np.uint8)
    return ((store[byte_idx] >> shift) & np.uint8(max_value)).astype(np.int64)


def _scatter_max(
    store: np.ndarray,
    bits: int,
    per_byte: int,
    max_value: int,
    idx: np.ndarray,
    vals: np.ndarray,
) -> None:
    if bits == 8:
        np.maximum.at(store, idx, vals.astype(np.uint8))
        return
    if bits == 16:
        np.maximum.at(store, idx, vals.astype(np.uint16))
        return
    # Sub-byte widths, one in-byte lane per pass (repro.cbf.counters
    # semantics): candidates for one byte differ only in the target
    # lane, so the byte-wise maximum equals the lane-wise maximum.
    positions = idx % per_byte
    mask = np.uint8(max_value)
    for pos in range(per_byte):
        sel = positions == pos
        if not sel.any():
            continue
        byte_idx = idx[sel] // per_byte
        shift = np.uint8(pos * bits)
        keep = store[byte_idx] & np.uint8(~(int(mask) << shift) & 0xFF)
        candidate = keep | (vals[sel].astype(np.uint8) << shift)
        np.maximum.at(store, byte_idx, candidate)


def cbf_fused_update(
    store: np.ndarray,
    bits: int,
    per_byte: int,
    max_value: int,
    idx: np.ndarray,
    totals: np.ndarray,
) -> np.ndarray:
    mins = _gather(store, bits, per_byte, max_value, idx).min(axis=1)
    target = np.minimum(mins + totals, max_value)
    flat = idx.ravel()
    _scatter_max(
        store,
        bits,
        per_byte,
        max_value,
        flat,
        np.broadcast_to(target[:, None], idx.shape).ravel(),
    )
    return _gather(store, bits, per_byte, max_value, idx).min(axis=1)


# ---------------------------------------------------------------------------
# skip-sampler gap expansion
# ---------------------------------------------------------------------------


def gap_positions(
    gaps: np.ndarray, pos: int, n: int, out: np.ndarray
) -> tuple[int, int, int]:
    positions = out[: gaps.size + 1]
    positions[0] = pos
    np.cumsum(gaps, out=positions[1:])
    if pos:
        positions[1:] += pos
    count = int(np.searchsorted(positions, n, side="left"))
    if count < positions.size:
        carry = int(positions[count]) - n
    else:
        carry = -1
    return count, carry, int(positions[-1])


# ---------------------------------------------------------------------------
# run expansion (workload access streams)
# ---------------------------------------------------------------------------


def expand_runs(
    starts: np.ndarray, counts: np.ndarray, out: np.ndarray
) -> None:
    if out.size == 0:
        return
    if counts.size and int(counts.min()) == 0:
        # The boundary-scatter below needs strictly increasing run
        # ends; empty runs contribute nothing, so drop them.
        keep = counts > 0
        starts = starts[keep]
        counts = counts[keep]
    ends = np.cumsum(counts)
    # Difference-domain expansion: within a run consecutive elements
    # differ by 1, and at each run boundary the difference jumps to the
    # next start minus the previous run's last element.  One fill, one
    # small scatter and one cumsum -- no repeat, no arange.
    out[:] = 1
    out[0] = starts[0]
    if starts.size > 1:
        # next start minus the previous run's last value (start+count-1)
        out[ends[:-1]] = starts[1:] - starts[:-1] - counts[:-1] + 1
    np.cumsum(out, out=out)
