"""Fast Zipfian sampling.

Large-memory workloads exhibit Zipfian access popularity (paper
Section II-B, after the Twitter and Meta cache studies): the access
probability of the item with popularity rank ``r`` is proportional to
``r^-alpha``.  :class:`ZipfianSampler` draws item *ids* (not ranks)
from that law over a fixed universe:

- ranks are drawn by Walker/Vose **alias sampling**: the rank
  distribution is preprocessed once into an alias table, after which
  every draw is O(1) (one uniform lane pick plus one accept/alias
  coin) instead of the O(log n) binary search of inverse-CDF sampling;
- a seeded permutation maps ranks to item ids, scattering hot items
  across the id space the way hot pages scatter across a real heap
  (without this, hot data would be contiguous and linear scans would
  see an unrealistically easy layout).

The alias method consumes a different RNG sequence than inverse-CDF
``searchsorted`` sampling did, so fixed-seed draws are statistically
equivalent, not bit-identical, to older releases (see docs/API.md
"Performance").
"""

from __future__ import annotations

import numpy as np


def build_alias_table(weights: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Vose alias table for the distribution proportional to ``weights``.

    Returns ``(accept, alias)``: to sample, draw lane ``i`` uniformly
    and uniform ``u``; the sample is ``i`` if ``u < accept[i]`` else
    ``alias[i]``.  Construction is O(n) and deterministic (no RNG), so
    the table is a pure function of the weights.
    """
    weights = np.asarray(weights, dtype=np.float64)
    if weights.ndim != 1 or weights.size == 0:
        raise ValueError("weights must be a non-empty 1-D array")
    if np.any(weights < 0) or not np.isfinite(weights).all():
        raise ValueError("weights must be finite and non-negative")
    total = float(weights.sum())
    if total <= 0:
        raise ValueError("weights must not sum to zero")
    n = weights.size
    scaled = weights * (n / total)
    accept = np.ones(n, dtype=np.float64)
    alias = np.arange(n, dtype=np.int64)
    small = list(np.nonzero(scaled < 1.0)[0])
    large = list(np.nonzero(scaled >= 1.0)[0])
    while small and large:
        s = small.pop()
        big = large.pop()
        accept[s] = scaled[s]
        alias[s] = big
        scaled[big] -= 1.0 - scaled[s]
        (small if scaled[big] < 1.0 else large).append(big)
    # Leftovers are probability ~1 up to float round-off.
    for i in small:
        accept[i] = 1.0
    for i in large:
        accept[i] = 1.0
    return accept, alias


class ZipfianSampler:
    """Samples item ids with Zipf(alpha) popularity over ``num_items``."""

    def __init__(
        self,
        num_items: int,
        alpha: float,
        seed: int = 0,
        permute: bool = True,
    ):
        if num_items < 1:
            raise ValueError(f"num_items must be >= 1, got {num_items}")
        if alpha < 0:
            raise ValueError(f"alpha must be >= 0, got {alpha}")
        self.num_items = int(num_items)
        self.alpha = float(alpha)
        self._rng = np.random.default_rng(seed)
        ranks = np.arange(1, self.num_items + 1, dtype=np.float64)
        weights = ranks**-alpha
        self._cdf = np.cumsum(weights)
        self._cdf /= self._cdf[-1]
        self._accept, self._alias = build_alias_table(weights)
        if permute:
            self._rank_to_item = self._rng.permutation(self.num_items)
        else:
            self._rank_to_item = np.arange(self.num_items)

    def sample(self, size: int) -> np.ndarray:
        """Draw ``size`` item ids (int64) from the Zipf law."""
        return self._rank_to_item[self.sample_ranks(size)]

    def sample_ranks(self, size: int) -> np.ndarray:
        """Draw popularity *ranks* (0-based, 0 = hottest) in O(1) each."""
        if size < 0:
            raise ValueError(f"size must be >= 0, got {size}")
        if size == 0:
            return np.zeros(0, dtype=np.int64)
        # Single-uniform alias draw: u * n splits into an integer lane
        # (the floor) and an independent Uniform[0,1) coin (the
        # fraction).  One generator call replaces the separate
        # bounded-integer (rejection-sampled) and coin draws, and the
        # alias table is only gathered for the rejected lanes.
        scaled = self._rng.random(size)
        scaled *= self.num_items
        lanes = scaled.astype(np.int64)
        # u < 1 guarantees u*n < n exactly; the clip only guards the
        # pathological round-to-n at the very top of the mantissa.
        np.minimum(lanes, self.num_items - 1, out=lanes)
        np.subtract(scaled, lanes, out=scaled)
        rejected = np.flatnonzero(scaled >= self._accept[lanes])
        if rejected.size:
            lanes[rejected] = self._alias[lanes[rejected]]
        return lanes

    # -- checkpointing ---------------------------------------------------

    def state_dict(self) -> dict:
        """Mutable sampler state (RNG + churned rank permutation).

        The CDF and alias tables are pure functions of
        ``(num_items, alpha)`` and are not captured.
        """
        return {
            "rng": self._rng.bit_generator.state,
            "rank_to_item": self._rank_to_item.copy(),
        }

    def load_state(self, state: dict) -> None:
        self._rng.bit_generator.state = state["rng"]
        self._rank_to_item = np.asarray(
            state["rank_to_item"], dtype=self._rank_to_item.dtype
        ).copy()

    def item_of_rank(self, rank: int) -> int:
        """The item id occupying popularity rank ``rank``."""
        return int(self._rank_to_item[rank])

    def top_items(self, count: int) -> np.ndarray:
        """Item ids of the ``count`` hottest ranks."""
        return self._rank_to_item[:count].astype(np.int64)

    def reassign_ranks(self, num_swaps: int) -> int:
        """Churn: swap ``num_swaps`` random pairs in the rank->item map.

        Models key-popularity churn (paper Section VII-D: CacheLib
        workloads "experience a high degree of churn"): items trade
        popularity ranks, so previously hot items cool down and cold
        ones heat up, without changing the overall distribution shape.
        Returns the number of swaps performed.

        The swaps apply in vectorized rounds that are exactly
        equivalent to performing them one at a time: a swap is applied
        once no earlier pending swap shares an index with it, and the
        swaps applied together in one round are then pairwise disjoint,
        so a single fancy-indexed exchange is safe.  Duplicate indices
        across swaps therefore chase values the same way the sequential
        loop did, and the map remains a permutation.
        """
        if num_swaps <= 0:
            return 0
        a = self._rng.integers(0, self.num_items, size=num_swaps)
        b = self._rng.integers(0, self.num_items, size=num_swaps)
        items = self._rank_to_item
        # First-occurrence scratch: left uninitialized on purpose; only
        # slots just written are ever read back.
        first_occ = np.empty(self.num_items, dtype=np.int64)
        while a.size:
            # Interleave [a0, b0, a1, b1, ...]; swap i is applicable
            # iff neither index occurs before flat slot 2i.
            flat = np.empty(2 * a.size, dtype=np.int64)
            flat[0::2] = a
            flat[1::2] = b
            slots = np.arange(2 * a.size, dtype=np.int64)
            # Fancy assignment keeps the *last* write per index, so
            # scattering slot numbers in reverse order leaves each
            # touched index holding its first occurrence -- no sort.
            first_occ[flat[::-1]] = slots[::-1]
            first_of = first_occ[flat]
            slot = slots[0::2]
            safe = (first_of[0::2] >= slot) & (first_of[1::2] >= slot)
            sa, sb = a[safe], b[safe]
            tmp = items[sa].copy()
            items[sa] = items[sb]
            items[sb] = tmp
            a, b = a[~safe], b[~safe]
        return int(num_swaps)

    def mass_of_top_fraction(self, fraction: float) -> float:
        """Access probability mass of the hottest ``fraction`` of items.

        E.g. the paper's reference point: Zipf(0.9) puts ~80% of
        accesses on the top 10% of items.
        """
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"fraction must be in [0, 1], got {fraction}")
        k = int(round(fraction * self.num_items))
        if k == 0:
            return 0.0
        return float(self._cdf[k - 1])
