"""Fast Zipfian sampling.

Large-memory workloads exhibit Zipfian access popularity (paper
Section II-B, after the Twitter and Meta cache studies): the access
probability of the item with popularity rank ``r`` is proportional to
``r^-alpha``.  :class:`ZipfianSampler` draws item *ids* (not ranks)
from that law over a fixed universe:

- the rank->probability table is precomputed once and sampled by
  inverse-CDF (``searchsorted`` on uniforms), so drawing a million
  samples is two vectorized ops;
- a seeded permutation maps ranks to item ids, scattering hot items
  across the id space the way hot pages scatter across a real heap
  (without this, hot data would be contiguous and linear scans would
  see an unrealistically easy layout).
"""

from __future__ import annotations

import numpy as np


class ZipfianSampler:
    """Samples item ids with Zipf(alpha) popularity over ``num_items``."""

    def __init__(
        self,
        num_items: int,
        alpha: float,
        seed: int = 0,
        permute: bool = True,
    ):
        if num_items < 1:
            raise ValueError(f"num_items must be >= 1, got {num_items}")
        if alpha < 0:
            raise ValueError(f"alpha must be >= 0, got {alpha}")
        self.num_items = int(num_items)
        self.alpha = float(alpha)
        self._rng = np.random.default_rng(seed)
        ranks = np.arange(1, self.num_items + 1, dtype=np.float64)
        weights = ranks**-alpha
        self._cdf = np.cumsum(weights)
        self._cdf /= self._cdf[-1]
        if permute:
            self._rank_to_item = self._rng.permutation(self.num_items)
        else:
            self._rank_to_item = np.arange(self.num_items)

    def sample(self, size: int) -> np.ndarray:
        """Draw ``size`` item ids (int64) from the Zipf law."""
        if size < 0:
            raise ValueError(f"size must be >= 0, got {size}")
        if size == 0:
            return np.zeros(0, dtype=np.int64)
        uniforms = self._rng.random(size)
        ranks = np.searchsorted(self._cdf, uniforms, side="right")
        return self._rank_to_item[ranks].astype(np.int64)

    def sample_ranks(self, size: int) -> np.ndarray:
        """Draw popularity *ranks* (0-based, 0 = hottest)."""
        if size == 0:
            return np.zeros(0, dtype=np.int64)
        uniforms = self._rng.random(size)
        return np.searchsorted(self._cdf, uniforms, side="right").astype(np.int64)

    def item_of_rank(self, rank: int) -> int:
        """The item id occupying popularity rank ``rank``."""
        return int(self._rank_to_item[rank])

    def top_items(self, count: int) -> np.ndarray:
        """Item ids of the ``count`` hottest ranks."""
        return self._rank_to_item[:count].astype(np.int64)

    def reassign_ranks(self, num_swaps: int) -> int:
        """Churn: swap ``num_swaps`` random pairs in the rank->item map.

        Models key-popularity churn (paper Section VII-D: CacheLib
        workloads "experience a high degree of churn"): items trade
        popularity ranks, so previously hot items cool down and cold
        ones heat up, without changing the overall distribution shape.
        Returns the number of swaps performed.
        """
        if num_swaps <= 0:
            return 0
        a = self._rng.integers(0, self.num_items, size=num_swaps)
        b = self._rng.integers(0, self.num_items, size=num_swaps)
        for i, j in zip(a, b):
            self._rank_to_item[i], self._rank_to_item[j] = (
                self._rank_to_item[j],
                self._rank_to_item[i],
            )
        return int(num_swaps)

    def mass_of_top_fraction(self, fraction: float) -> float:
        """Access probability mass of the hottest ``fraction`` of items.

        E.g. the paper's reference point: Zipf(0.9) puts ~80% of
        accesses on the top 10% of items.
        """
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"fraction must be in [0, 1], got {fraction}")
        k = int(round(fraction * self.num_items))
        if k == 0:
            return 0.0
        return float(self._cdf[k - 1])
