"""Trace utilities: recording, replay and simple synthetic workloads.

- :class:`SyntheticZipfWorkload` -- the minimal page-level Zipf
  workload used across unit tests and sensitivity sweeps: one region,
  Zipf-popular page accesses, no item structure.
- :class:`RecordedTrace` -- record any workload's batches once and
  replay them verbatim (e.g. to show two policies the *identical*
  access stream in accuracy studies).
"""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

from repro.memsim.machine import Machine
from repro.sampling.events import AccessBatch
from repro.workloads.spec import Workload
from repro.workloads.zipfian import ZipfianSampler


class SyntheticZipfWorkload(Workload):
    """Zipf-popular accesses over one flat region of pages."""

    name = "synthetic-zipf"

    def __init__(
        self,
        num_pages: int,
        alpha: float = 1.2,
        accesses_per_batch: int = 50_000,
        cpu_ns_per_access: float = 3.0,
        seed: int = 0,
    ):
        super().__init__(seed=seed)
        if num_pages < 1:
            raise ValueError(f"num_pages must be >= 1, got {num_pages}")
        self.num_pages = int(num_pages)
        self.alpha = float(alpha)
        self.accesses_per_batch = int(accesses_per_batch)
        self.cpu_ns_per_access = float(cpu_ns_per_access)
        self.sampler = ZipfianSampler(num_pages, alpha, seed=seed)
        self._start_page = 0

    @property
    def footprint_pages(self) -> int:
        return self.num_pages

    def setup(self, machine: Machine) -> None:
        region = machine.allocate(self.num_pages, name="zipf-heap")
        self._start_page = region.start_page
        self._machine = machine

    def batches(self) -> Iterator[AccessBatch]:
        while True:
            pages = self._start_page + self.sampler.sample(self.accesses_per_batch)
            yield AccessBatch(
                page_ids=pages,
                num_ops=float(self.accesses_per_batch),
                cpu_ns=self.accesses_per_batch * self.cpu_ns_per_access,
            )

    def state_dict(self) -> dict:
        return {"sampler": self.sampler.state_dict()}

    def load_state(self, state: dict) -> None:
        self.sampler.load_state(state["sampler"])

    def hottest_pages(self, count: int) -> np.ndarray:
        """Page ids of the ``count`` most popular pages (oracle)."""
        return self._start_page + self.sampler.top_items(count)


class RecordedTrace(Workload):
    """Record another workload's stream once, replay it identically.

    ``setup`` re-runs the inner workload's setup (regions must be laid
    out identically, which holds when replaying onto a machine with
    the same capacities).
    """

    def __init__(self, inner: Workload, max_batches: int):
        super().__init__(seed=inner.seed)
        if max_batches < 1:
            raise ValueError(f"max_batches must be >= 1, got {max_batches}")
        self.inner = inner
        self.name = f"recorded-{inner.name}"
        self.max_batches = int(max_batches)
        self._recorded: list[AccessBatch] | None = None

    @property
    def footprint_pages(self) -> int:
        return self.inner.footprint_pages

    def setup(self, machine: Machine) -> None:
        self.inner.setup(machine)
        self._machine = machine
        if self._recorded is None:
            self._recorded = []
            for i, batch in enumerate(self.inner.batches()):
                if i >= self.max_batches:
                    break
                self._recorded.append(
                    AccessBatch(
                        page_ids=batch.page_ids.copy(),
                        num_ops=batch.num_ops,
                        cpu_ns=batch.cpu_ns,
                        label=batch.label,
                    )
                )

    def batches(self) -> Iterator[AccessBatch]:
        if self._recorded is None:
            raise RuntimeError("RecordedTrace.batches() before setup()")
        yield from iter(self._recorded)
