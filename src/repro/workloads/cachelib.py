"""CacheLib / cachebench workload analogue (paper Table I, Section VI-C).

The paper drives CacheLib with Meta's cachebench using two published
workload profiles -- **CDN** and **social graph** -- each defined by a
popularity distribution, an item-size distribution and an operation
mix.  Both are strongly Zipfian (Section II-B).  This module generates
the equivalent page-granular access stream:

- items are laid out consecutively in a big slab region, with sizes
  drawn from the profile's page-size distribution;
- a small *index* region (the cache's hash table) takes one access per
  operation and is intrinsically hot;
- GETs touch the accessed item's pages; SETs touch the same pages
  (allocation/copy);
- popularity follows Zipf(alpha) over items, with a seeded permutation
  so hot items scatter across the address space;
- an optional *phase plan* redirects accesses to item subranges at
  batch boundaries, reproducing the paper's Figure 11 distribution
  shift (first half of items, then second half).
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass

import numpy as np

from repro import accel
from repro.memsim.machine import Machine
from repro.sampling.events import AccessBatch
from repro.workloads.spec import Workload
from repro.workloads.zipfian import ZipfianSampler


@dataclass(frozen=True)
class CacheLibProfile:
    """Shape parameters of one cachebench workload."""

    name: str
    #: Zipf skew of item popularity.
    zipf_alpha: float
    #: Item sizes in pages and their probabilities.
    size_pages: tuple[int, ...]
    size_probs: tuple[float, ...]
    #: Fraction of operations that are GETs (rest are SETs).
    get_fraction: float
    #: Pages of an item actually read per GET (cap).
    read_pages_cap: int
    #: Pure compute per operation, ns.
    cpu_ns_per_op: float
    #: Bytes transferred per emitted page access (a GET streams the
    #: item's pages, so one page access stands for a bulk read).
    bytes_per_access: float = 64.0
    #: Index (hash table) region size as a fraction of the slab.
    index_fraction: float = 0.01

    def __post_init__(self) -> None:
        if len(self.size_pages) != len(self.size_probs):
            raise ValueError("size_pages and size_probs must align")
        if abs(sum(self.size_probs) - 1.0) > 1e-9:
            raise ValueError(f"size_probs must sum to 1, got {sum(self.size_probs)}")
        if not 0.0 < self.get_fraction <= 1.0:
            raise ValueError(f"get_fraction must be in (0, 1], got {self.get_fraction}")

    @property
    def mean_item_pages(self) -> float:
        return float(
            np.dot(np.asarray(self.size_pages), np.asarray(self.size_probs))
        )


#: Content-delivery-network profile: large objects, strong skew.
CDN_PROFILE = CacheLibProfile(
    name="cachelib-cdn",
    zipf_alpha=1.25,
    size_pages=(1, 2, 4, 8, 16),
    size_probs=(0.15, 0.25, 0.30, 0.20, 0.10),
    get_fraction=0.95,
    read_pages_cap=8,
    cpu_ns_per_op=130.0,
    bytes_per_access=1024.0,
)

#: Social-graph profile: small objects, higher skew, higher op rate.
SOCIAL_PROFILE = CacheLibProfile(
    name="cachelib-social",
    zipf_alpha=1.35,
    size_pages=(1, 2),
    size_probs=(0.85, 0.15),
    get_fraction=0.90,
    read_pages_cap=2,
    cpu_ns_per_op=50.0,
    bytes_per_access=256.0,
)


@dataclass(frozen=True)
class Phase:
    """One segment of a phase plan: which item subrange is live."""

    #: Item-range fractions [lo, hi) receiving all accesses this phase.
    item_lo_frac: float
    item_hi_frac: float
    #: Batches before moving to the next phase (None = forever).
    num_batches: int | None = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.item_lo_frac < self.item_hi_frac <= 1.0:
            raise ValueError(
                f"need 0 <= lo < hi <= 1, got [{self.item_lo_frac}, "
                f"{self.item_hi_frac})"
            )


class CacheLibWorkload(Workload):
    """In-memory caching access-stream generator.

    Parameters
    ----------
    profile:
        CDN or social-graph shape (or a custom profile).
    slab_pages:
        Total pages of the item slab (the cache's value storage);
        items are packed into it per the size distribution.
    ops_per_batch:
        Cache operations per emitted batch.
    phase_plan:
        Optional distribution-shift schedule (Fig. 11); default is one
        endless phase over all items.
    churn_swaps_per_batch:
        Continuous key churn (paper Section VII-D): this many random
        popularity-rank swaps are applied before each batch, so the hot
        set slowly rotates instead of shifting wholesale.
    """

    def __init__(
        self,
        profile: CacheLibProfile,
        slab_pages: int,
        ops_per_batch: int = 20_000,
        phase_plan: tuple[Phase, ...] | None = None,
        churn_swaps_per_batch: int = 0,
        seed: int = 0,
    ):
        super().__init__(seed=seed)
        if slab_pages < 64:
            raise ValueError(f"slab_pages must be >= 64, got {slab_pages}")
        self.profile = profile
        self.name = profile.name
        self.slab_pages = int(slab_pages)
        self.ops_per_batch = int(ops_per_batch)
        self.phase_plan = phase_plan or (Phase(0.0, 1.0, None),)
        if churn_swaps_per_batch < 0:
            raise ValueError(
                f"churn_swaps_per_batch must be >= 0, got "
                f"{churn_swaps_per_batch}"
            )
        self.churn_swaps_per_batch = int(churn_swaps_per_batch)
        self._rng = np.random.default_rng(seed)

        self._build_items()
        self._index_pages = max(1, int(self.profile.index_fraction * slab_pages))
        self._slab_start = 0
        self._index_start = 0
        self._phase_samplers: dict[int, ZipfianSampler] = {}
        self._phase_bounds: dict[int, tuple[int, int]] = {}

    # -- layout -----------------------------------------------------------

    def _build_items(self) -> None:
        """Pack items of profile-distributed sizes into the slab."""
        sizes = np.asarray(self.profile.size_pages, dtype=np.int64)
        probs = np.asarray(self.profile.size_probs, dtype=np.float64)
        mean = self.profile.mean_item_pages
        estimate = int(self.slab_pages / mean * 1.1) + 8
        drawn = self._rng.choice(sizes, size=estimate, p=probs)
        ends = np.cumsum(drawn)
        num_items = int(np.searchsorted(ends, self.slab_pages, side="right"))
        if num_items < 1:
            raise ValueError(
                f"slab_pages={self.slab_pages} too small for item sizes {sizes}"
            )
        self._item_pages = drawn[:num_items]
        self._item_start = np.concatenate(
            [[0], np.cumsum(self._item_pages)[:-1]]
        ).astype(np.int64)
        self.num_items = num_items
        self._used_slab_pages = int(self._item_pages.sum())
        # Static per-item table for the batch generator: pages touched
        # by a GET (the item size capped at the profile's read cap), so
        # the per-batch minimum reduces to one gather.
        self._get_pages = np.minimum(
            self._item_pages, np.int64(self.profile.read_pages_cap)
        )

    @property
    def footprint_pages(self) -> int:
        return self._used_slab_pages + max(
            1, int(self.profile.index_fraction * self.slab_pages)
        )

    def setup(self, machine: Machine) -> None:
        index_region = machine.allocate(self._index_pages, name="cache-index")
        slab_region = machine.allocate(self._used_slab_pages, name="cache-slab")
        self._index_start = index_region.start_page
        self._slab_start = slab_region.start_page
        self._machine = machine
        # Each item's index (hash-table) page is a pure function of its
        # id; one static table turns the per-batch multiply/mod into a
        # single gather.
        item_ids = np.arange(self.num_items, dtype=np.int64)
        # int32 to match the emitted page buffer: the per-batch head
        # write is then a same-width copy instead of a downcast.
        self._index_page_of_item = (
            (item_ids * np.int64(2654435761)) % self._index_pages
            + self._index_start
        ).astype(np.int32)
        # Absolute run starts (slab offset folded in) save one 10k-wide
        # add per batch.
        self._item_start_abs = self._item_start + self._slab_start

    # -- phase handling --------------------------------------------------------

    def _sampler_for_phase(self, phase_idx: int) -> ZipfianSampler:
        if phase_idx not in self._phase_samplers:
            phase = self.phase_plan[phase_idx]
            lo = int(phase.item_lo_frac * self.num_items)
            hi = max(lo + 1, int(phase.item_hi_frac * self.num_items))
            sampler = ZipfianSampler(
                hi - lo,
                self.profile.zipf_alpha,
                seed=self.seed + 1000 + phase_idx,
            )
            self._phase_samplers[phase_idx] = sampler
            self._phase_bounds[phase_idx] = (lo, hi)
        return self._phase_samplers[phase_idx]

    # -- checkpointing --------------------------------------------------------

    def state_dict(self) -> dict:
        """RNG plus the state of every phase sampler built so far.

        Phase indices become string keys (JSON-safe); samplers not yet
        built are simply absent and will be constructed deterministically
        by :meth:`_sampler_for_phase` when first needed.
        """
        return {
            "rng": self._rng.bit_generator.state,
            "phase_samplers": {
                str(idx): sampler.state_dict()
                for idx, sampler in self._phase_samplers.items()
            },
        }

    def load_state(self, state: dict) -> None:
        self._rng.bit_generator.state = state["rng"]
        for key, sampler_state in state["phase_samplers"].items():
            self._sampler_for_phase(int(key)).load_state(sampler_state)

    # -- access stream --------------------------------------------------------------

    def batches(self) -> Iterator[AccessBatch]:
        phase_idx = 0
        batches_in_phase = 0
        while True:
            phase = self.phase_plan[phase_idx]
            if phase.num_batches is not None and batches_in_phase >= phase.num_batches:
                if phase_idx + 1 < len(self.phase_plan):
                    phase_idx += 1
                    batches_in_phase = 0
                    phase = self.phase_plan[phase_idx]
            yield self._generate_batch(phase_idx)
            batches_in_phase += 1

    def _generate_batch(self, phase_idx: int) -> AccessBatch:
        sampler = self._sampler_for_phase(phase_idx)
        if self.churn_swaps_per_batch:
            sampler.reassign_ranks(self.churn_swaps_per_batch)
        lo, __ = self._phase_bounds[phase_idx]
        ops = self.ops_per_batch
        item_ids = sampler.sample(ops)
        if lo:
            item_ids += lo

        starts = self._item_start_abs[item_ids]
        # GETs read up to the cap; SETs rewrite the whole item -- the
        # capped widths come from the static per-item table, with the
        # (rare) SETs patched in afterwards.
        is_set = self._rng.random(ops) >= self.profile.get_fraction
        counts = self._get_pages[item_ids]
        set_idx = np.flatnonzero(is_set)
        if set_idx.size:
            counts[set_idx] = self._item_pages[item_ids[set_idx]]
        # Run-compressed batch: index accesses form the head (a single
        # table gather), item pages stay as (start, count) runs --
        # stream expansion is deferred to AccessBatch.page_ids and
        # never happens on the FreqTier hot path.  The in-batch shuffle
        # of older releases is dropped: every consumer is
        # order-independent within a batch -- placement counting,
        # uniform-position sampling and CBF coalescing all aggregate --
        # so the stream is statistically equivalent (see docs/API.md
        # "Performance") at a fraction of the generation cost.
        return AccessBatch(
            page_ids=None,
            num_ops=float(ops),
            cpu_ns=ops * self.profile.cpu_ns_per_op,
            label=f"phase{phase_idx}",
            bytes_per_access=self.profile.bytes_per_access,
            head_page_ids=self._index_page_of_item[item_ids],
            run_starts=starts,
            run_counts=counts,
        )

    # -- introspection ------------------------------------------------------------------

    def describe(self) -> dict[str, object]:
        base = super().describe()
        base.update(
            {
                "profile": self.profile.name,
                "num_items": self.num_items,
                "zipf_alpha": self.profile.zipf_alpha,
                "phases": len(self.phase_plan),
            }
        )
        return base
