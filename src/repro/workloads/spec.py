"""Workload protocol.

Every workload allocates its data structures on a
:class:`~repro.memsim.machine.Machine` during :meth:`Workload.setup`
and then yields :class:`~repro.sampling.events.AccessBatch` objects
from :meth:`Workload.batches`.  The engine owns time; workloads only
describe *what* is touched and how much compute overlaps it.
"""

from __future__ import annotations

import abc
from collections.abc import Iterator

from repro.memsim.machine import Machine
from repro.sampling.events import AccessBatch


class Workload(abc.ABC):
    """Base class for page-trace generators."""

    #: Human-readable workload name (appears in benchmark tables).
    name: str = "workload"

    def __init__(self, seed: int = 0):
        self.seed = int(seed)
        self._machine: Machine | None = None

    # -- lifecycle --------------------------------------------------------

    @property
    @abc.abstractmethod
    def footprint_pages(self) -> int:
        """Total pages the workload will allocate."""

    @abc.abstractmethod
    def setup(self, machine: Machine) -> None:
        """Allocate regions on ``machine``; must set ``self._machine``."""

    @abc.abstractmethod
    def batches(self) -> Iterator[AccessBatch]:
        """Yield the access stream.  May be finite (GAP/XGBoost trials)
        or unbounded (cache serving); the engine decides when to stop."""

    # -- checkpointing -----------------------------------------------------

    def state_dict(self) -> dict:
        """Snapshot mutable generator state (RNGs, cursors, churn).

        The contract: after ``w2.load_state(w1.state_dict())`` on an
        identically constructed workload, both draw identical batches.
        Stateless workloads inherit this empty default.  Note resume
        does **not** use this (generator-local state can't be captured);
        the engine fast-forwards ``batches()`` instead -- this contract
        exists for the round-trip property tests and external tools.
        """
        return {}

    def load_state(self, state: dict) -> None:
        """Restore state captured by :meth:`state_dict`."""

    # -- helpers -----------------------------------------------------------

    @property
    def machine(self) -> Machine:
        if self._machine is None:
            raise RuntimeError(f"workload {self.name!r} used before setup()")
        return self._machine

    def describe(self) -> dict[str, object]:
        """Metadata for benchmark reports."""
        return {"name": self.name, "footprint_pages": self.footprint_pages}
