"""Trace persistence: save and replay access streams.

Lets users capture a workload's access stream once and replay it
byte-identically -- across policies (so every system sees the same
trace), across sessions, or from external sources (convert any
page-granular trace into the ``.npz`` layout below and feed it to the
simulator).

Format (numpy ``.npz``):

- ``page_ids``  -- int64, all accesses concatenated;
- ``batch_ends`` -- int64, cumulative end offset of each batch;
- ``num_ops``   -- float64 per batch;
- ``cpu_ns``    -- float64 per batch;
- ``bytes_per_access`` -- float64 per batch;
- ``labels``    -- unicode per batch;
- ``footprint_pages`` -- scalar, the address-space size to allocate.
"""

from __future__ import annotations

import os
from collections.abc import Iterable, Iterator

import numpy as np

from repro.memsim.machine import Machine
from repro.sampling.events import AccessBatch
from repro.workloads.spec import Workload


def save_trace(
    path: str | os.PathLike,
    batches: Iterable[AccessBatch],
    footprint_pages: int,
    max_batches: int | None = None,
) -> int:
    """Write ``batches`` to ``path``; returns the number saved."""
    pages: list[np.ndarray] = []
    ends: list[int] = []
    ops: list[float] = []
    cpu: list[float] = []
    bpa: list[float] = []
    labels: list[str] = []
    total = 0
    for i, batch in enumerate(batches):
        if max_batches is not None and i >= max_batches:
            break
        pages.append(batch.page_ids)
        total += batch.num_accesses
        ends.append(total)
        ops.append(batch.num_ops)
        cpu.append(batch.cpu_ns)
        bpa.append(batch.bytes_per_access)
        labels.append(batch.label)
    if not ends:
        raise ValueError("cannot save an empty trace")
    np.savez_compressed(
        path,
        page_ids=np.concatenate(pages),
        batch_ends=np.asarray(ends, dtype=np.int64),
        num_ops=np.asarray(ops, dtype=np.float64),
        cpu_ns=np.asarray(cpu, dtype=np.float64),
        bytes_per_access=np.asarray(bpa, dtype=np.float64),
        labels=np.asarray(labels, dtype="U64"),
        footprint_pages=np.int64(footprint_pages),
    )
    return len(ends)


class TraceFileWorkload(Workload):
    """A workload replayed from a saved ``.npz`` trace file."""

    name = "trace-file"

    def __init__(self, path: str | os.PathLike):
        super().__init__(seed=0)
        self.path = os.fspath(path)
        with np.load(self.path, allow_pickle=False) as data:
            self._page_ids = data["page_ids"].astype(np.int64)
            self._ends = data["batch_ends"].astype(np.int64)
            self._ops = data["num_ops"].astype(np.float64)
            self._cpu = data["cpu_ns"].astype(np.float64)
            self._bpa = data["bytes_per_access"].astype(np.float64)
            self._labels = [str(x) for x in data["labels"]]
            self._footprint = int(data["footprint_pages"])
        if len(self._ends) != len(self._ops):
            raise ValueError(f"corrupt trace file {self.path!r}")
        if self._page_ids.size and int(self._page_ids.max()) >= self._footprint:
            raise ValueError(
                f"trace {self.path!r} references pages beyond its footprint"
            )
        self.name = f"trace:{os.path.basename(self.path)}"

    @property
    def num_batches(self) -> int:
        return len(self._ends)

    @property
    def footprint_pages(self) -> int:
        return self._footprint

    def setup(self, machine: Machine) -> None:
        machine.allocate(self._footprint, name="trace-replay")
        self._machine = machine

    def batches(self) -> Iterator[AccessBatch]:
        start = 0
        for i, end in enumerate(self._ends):
            yield AccessBatch(
                page_ids=self._page_ids[start:end],
                num_ops=float(self._ops[i]),
                cpu_ns=float(self._cpu[i]),
                label=self._labels[i],
                bytes_per_access=float(self._bpa[i]),
            )
            start = int(end)
