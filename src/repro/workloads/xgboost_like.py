"""Gradient-boosted-tree training access pattern (paper Table V).

The paper trains XGBoost on part of the Criteo click-logs dataset
(248 GB footprint, 400 boosting rounds).  The memory behaviour of
histogram-method GBT training decomposes into:

- a small, intrinsically **hot working set**: gradient/hessian arrays,
  per-node histogram buffers and the row->node partition index, touched
  once or more per row per level;
- **feature-column scans** over the quantized design matrix, whose
  popularity is skewed: Criteo's categorical features follow power
  laws, so frequently-split (informative, frequent) features are
  re-scanned far more often than rare ones, and deeper tree levels
  re-visit row blocks unevenly.

:class:`XGBoostWorkload` reproduces that structure synthetically (see
DESIGN.md substitution table): Zipf-popular column selection per split
x Zipf-popular row-block selection per level, plus the hot state
region.  Each boosting round is a fixed number of batches, so
"average runtime per boosting round" falls out of the engine timeline.
"""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

from repro.memsim.machine import Machine
from repro.sampling.events import AccessBatch
from repro.workloads.spec import Workload
from repro.workloads.zipfian import ZipfianSampler

#: Modeled compute per emitted access, ns (bin accumulate + compare).
CPU_NS_PER_ACCESS = 3.0


class XGBoostWorkload(Workload):
    """Histogram-method GBT training trace generator.

    Parameters
    ----------
    num_features:
        Feature columns of the quantized matrix.
    column_pages:
        Pages per feature column (rows x 1 byte / page size, pre-baked).
    hot_state_pages:
        Pages of gradients + histograms + partition index.
    num_rounds:
        Boosting rounds to emit.
    tree_depth:
        Levels per tree; each level scans columns for every split.
    column_alpha / rowblock_alpha:
        Zipf skew of column re-scan popularity and row-block revisits.
    """

    name = "xgboost"

    def __init__(
        self,
        num_features: int = 256,
        column_pages: int = 64,
        hot_state_pages: int = 768,
        num_rounds: int = 20,
        tree_depth: int = 6,
        columns_per_level: int = 24,
        column_alpha: float = 1.8,
        rowblock_alpha: float = 1.0,
        hot_accesses_fraction: float = 0.40,
        lines_per_page: int = 16,
        bytes_per_access: float = 256.0,
        seed: int = 0,
    ):
        super().__init__(seed=seed)
        if num_features < 1 or column_pages < 1:
            raise ValueError("num_features and column_pages must be >= 1")
        if not 0.0 <= hot_accesses_fraction < 1.0:
            raise ValueError(
                f"hot_accesses_fraction must be in [0, 1), got "
                f"{hot_accesses_fraction}"
            )
        self.num_features = int(num_features)
        self.column_pages = int(column_pages)
        self.hot_state_pages = int(hot_state_pages)
        self.num_rounds = int(num_rounds)
        self.tree_depth = int(tree_depth)
        self.columns_per_level = int(columns_per_level)
        self.hot_accesses_fraction = float(hot_accesses_fraction)
        self.lines_per_page = max(1, int(lines_per_page))
        self.bytes_per_access = float(bytes_per_access)
        self._rng = np.random.default_rng(seed)
        self._column_sampler = ZipfianSampler(
            num_features, column_alpha, seed=seed + 1
        )
        self._rowblock_sampler = ZipfianSampler(
            column_pages, rowblock_alpha, seed=seed + 2, permute=False
        )
        self._matrix_start = 0
        self._hot_start = 0

    @property
    def matrix_pages(self) -> int:
        return self.num_features * self.column_pages

    @property
    def footprint_pages(self) -> int:
        return self.matrix_pages + self.hot_state_pages

    def setup(self, machine: Machine) -> None:
        hot = machine.allocate(self.hot_state_pages, name="xgb-hot-state")
        matrix = machine.allocate(self.matrix_pages, name="xgb-matrix")
        self._hot_start = hot.start_page
        self._matrix_start = matrix.start_page
        self._machine = machine

    # -- checkpointing ----------------------------------------------------

    def state_dict(self) -> dict:
        return {
            "rng": self._rng.bit_generator.state,
            "column_sampler": self._column_sampler.state_dict(),
            "rowblock_sampler": self._rowblock_sampler.state_dict(),
        }

    def load_state(self, state: dict) -> None:
        self._rng.bit_generator.state = state["rng"]
        self._column_sampler.load_state(state["column_sampler"])
        self._rowblock_sampler.load_state(state["rowblock_sampler"])

    # -- trace ------------------------------------------------------------

    def batches(self) -> Iterator[AccessBatch]:
        """One batch per tree level; ``tree_depth`` batches per round."""
        ops_per_batch = 1.0 / self.tree_depth  # a round is one "op"
        for round_idx in range(self.num_rounds):
            for __ in range(self.tree_depth):
                yield self._level_batch(ops_per_batch, round_idx)

    def _level_batch(self, num_ops: float, round_idx: int) -> AccessBatch:
        # Column scans: Zipf-popular columns, Zipf-popular row blocks
        # within each, read as sequential runs of quantized bins --
        # ``lines_per_page`` line-granular accesses per page scanned.
        cols = self._column_sampler.sample(self.columns_per_level)
        run_pages = max(1, self.column_pages // 8)
        scans = []
        for col in cols:
            col_start = self._matrix_start + int(col) * self.column_pages
            block = int(self._rowblock_sampler.sample(1)[0])
            start = col_start + min(block, self.column_pages - 1)
            end = min(start + run_pages, col_start + self.column_pages)
            scans.append(
                np.repeat(
                    np.arange(start, end, dtype=np.int64), self.lines_per_page
                )
            )
        matrix_accesses = np.concatenate(scans)

        # Hot-state traffic proportional to the scan volume.
        n_hot = int(
            matrix_accesses.size
            * self.hot_accesses_fraction
            / (1.0 - self.hot_accesses_fraction)
        )
        hot_accesses = self._hot_start + self._rng.integers(
            0, self.hot_state_pages, size=n_hot
        )
        pages = np.concatenate([matrix_accesses, hot_accesses])
        self._rng.shuffle(pages)
        return AccessBatch(
            page_ids=pages,
            num_ops=num_ops,
            cpu_ns=pages.size * CPU_NS_PER_ACCESS,
            label=f"round{round_idx}",
            bytes_per_access=self.bytes_per_access,
        )

    def describe(self) -> dict[str, object]:
        base = super().describe()
        base.update(
            {
                "num_features": self.num_features,
                "column_pages": self.column_pages,
                "num_rounds": self.num_rounds,
                "tree_depth": self.tree_depth,
            }
        )
        return base
