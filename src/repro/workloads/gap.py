"""GAP benchmark kernels (BC, BFS, CC, + PageRank) as page-granular traces.

The paper evaluates three GAP kernels on a Kronecker graph (Table I);
PageRank is included as an extension.  The kernels are *actually
executed* over the CSR graph from
:mod:`~repro.workloads.kronecker`, and every array touched during
execution is mapped onto machine pages so the tiering policies see the
genuine access pattern: hub-heavy neighbor-list gathers, streaming CSR
scans, and random property-array accesses.

Memory layout (one region per array, mirroring the GAP C++ layout):

- ``indptr``  -- int64 CSR row pointers,
- ``indices`` -- int32 CSR column indices,
- per-kernel property arrays (parent / component / sigma / delta ...).

Accesses are emitted at cache-line granularity (one access per 64-byte
line touched), matching how the hardware counters in the paper's setup
observe traffic.
"""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

from repro._units import PAGE_SIZE
from repro.memsim.machine import Machine
from repro.sampling.events import AccessBatch
from repro.workloads.kronecker import CSRGraph, generate_kronecker
from repro.workloads.spec import Workload

#: Bytes per cache line (one emitted access covers one line).
LINE = 64

#: Modeled compute per emitted access (address arithmetic etc.), ns.
CPU_NS_PER_ACCESS = 4.0

KERNELS = ("bfs", "cc", "bc", "pr")

#: PageRank parameters (GAP defaults).
PR_DAMPING = 0.85
PR_ITERATIONS = 10


def _lines_of_ranges(
    byte_starts: np.ndarray, byte_lens: np.ndarray
) -> np.ndarray:
    """Cache-line ids touched by the byte ranges (one id per line).

    Expands each ``[start, start+len)`` range into the 64-byte line
    indices it covers.  Vectorized via the repeat/cumsum expansion.
    """
    byte_starts = np.asarray(byte_starts, dtype=np.int64)
    byte_lens = np.asarray(byte_lens, dtype=np.int64)
    keep = byte_lens > 0
    byte_starts, byte_lens = byte_starts[keep], byte_lens[keep]
    if byte_starts.size == 0:
        return np.zeros(0, dtype=np.int64)
    first = byte_starts // LINE
    last = (byte_starts + byte_lens - 1) // LINE
    counts = last - first + 1
    total = int(counts.sum())
    offsets = np.arange(total) - np.repeat(
        np.concatenate([[0], np.cumsum(counts)[:-1]]), counts
    )
    return np.repeat(first, counts) + offsets


class _Array:
    """A simulated array living in one machine region."""

    def __init__(self, elem_bytes: int, num_elems: int):
        self.elem_bytes = elem_bytes
        self.num_elems = num_elems
        self.start_page = 0  # set at setup()

    @property
    def num_pages(self) -> int:
        return -(-self.num_elems * self.elem_bytes // PAGE_SIZE)

    def pages_of_elements(self, elems: np.ndarray) -> np.ndarray:
        """Page ids for random accesses to ``elems`` (one line each)."""
        elems = np.asarray(elems, dtype=np.int64)
        lines = (elems * self.elem_bytes) // LINE
        return self.start_page + (lines * LINE) // PAGE_SIZE

    def pages_of_ranges(
        self, starts: np.ndarray, lens: np.ndarray
    ) -> np.ndarray:
        """Page ids (one per line) for element ranges [start, start+len)."""
        lines = _lines_of_ranges(
            np.asarray(starts, dtype=np.int64) * self.elem_bytes,
            np.asarray(lens, dtype=np.int64) * self.elem_bytes,
        )
        return self.start_page + (lines * LINE) // PAGE_SIZE


class GapWorkload(Workload):
    """One GAP kernel run repeatedly as trials (paper Table IV).

    Parameters
    ----------
    kernel:
        ``"bfs"``, ``"cc"``, ``"bc"`` or ``"pr"`` (PageRank, an
        extension beyond the paper's three kernels).
    scale:
        Kronecker scale (``2**scale`` nodes).
    avg_degree:
        Undirected edges per node (the paper uses 4).
    num_trials:
        Kernel repetitions (different BFS/BC sources per trial).
    """

    def __init__(
        self,
        kernel: str,
        scale: int = 16,
        avg_degree: int = 4,
        num_trials: int = 4,
        seed: int = 0,
    ):
        super().__init__(seed=seed)
        if kernel not in KERNELS:
            raise ValueError(f"kernel must be one of {KERNELS}, got {kernel!r}")
        self.kernel = kernel
        self.name = f"gap-{kernel}"
        self.num_trials = int(num_trials)
        self.graph: CSRGraph = generate_kronecker(scale, avg_degree, seed=seed)
        n = self.graph.num_nodes
        self._indptr_arr = _Array(8, n + 1)
        self._indices_arr = _Array(4, self.graph.num_directed_edges)
        # Property arrays: BFS parent / CC component / BC sigma+delta+level.
        self._prop32 = _Array(4, n)
        self._prop64_a = _Array(8, n)
        self._prop64_b = _Array(8, n)
        self._rng = np.random.default_rng(seed + 7)
        self._degrees = np.diff(self.graph.indptr).astype(np.int64)
        #: Kernel outputs of the most recent trial (verification hook):
        #: bfs -> {"parent"}; cc -> {"comp"}; bc -> {"sigma", "level",
        #: "delta"}; pr -> {"rank"}.
        self.last_kernel_state: dict[str, np.ndarray] = {}

    @property
    def footprint_pages(self) -> int:
        return (
            self._indptr_arr.num_pages
            + self._indices_arr.num_pages
            + self._prop32.num_pages
            + self._prop64_a.num_pages
            + self._prop64_b.num_pages
        )

    def setup(self, machine: Machine) -> None:
        for arr, label in (
            (self._indptr_arr, "indptr"),
            (self._indices_arr, "indices"),
            (self._prop32, "prop32"),
            (self._prop64_a, "prop64a"),
            (self._prop64_b, "prop64b"),
        ):
            region = machine.allocate(arr.num_pages, name=f"gap-{label}")
            arr.start_page = region.start_page
        self._machine = machine

    # -- checkpointing -------------------------------------------------------

    def state_dict(self) -> dict:
        """RNG state only; the graph and layout are seed-deterministic."""
        return {"rng": self._rng.bit_generator.state}

    def load_state(self, state: dict) -> None:
        self._rng.bit_generator.state = state["rng"]

    # -- trace emission ------------------------------------------------------

    def _pick_source(self) -> int:
        """A random non-isolated source node (GAP requires degree > 0)."""
        degrees = self.graph.degrees()
        for __ in range(64):
            node = int(self._rng.integers(0, self.graph.num_nodes))
            if degrees[node] > 0:
                return node
        # Fall back to the highest-degree node (always connected).
        return int(np.argmax(degrees))

    def batches(self) -> Iterator[AccessBatch]:
        for trial in range(self.num_trials):
            source = self._pick_source()
            if self.kernel == "bfs":
                yield from self._bfs_trace(source, trial)
            elif self.kernel == "cc":
                yield from self._cc_trace(trial)
            elif self.kernel == "pr":
                yield from self._pr_trace(trial)
            else:
                yield from self._bc_trace(source, trial)

    def _emit(self, pages: list[np.ndarray], trial: int) -> AccessBatch:
        all_pages = np.concatenate(pages) if pages else np.zeros(0, dtype=np.int64)
        self._rng.shuffle(all_pages)
        return AccessBatch(
            page_ids=all_pages,
            num_ops=0.0,
            cpu_ns=all_pages.size * CPU_NS_PER_ACCESS,
            label=f"trial{trial}",
        )

    def _gather_neighbors(
        self, frontier: np.ndarray
    ) -> tuple[np.ndarray, list[np.ndarray]]:
        """All neighbors of ``frontier`` plus the pages touched to read them."""
        starts = self.graph.indptr[frontier]
        ends = self.graph.indptr[frontier + 1]
        counts = (ends - starts).astype(np.int64)
        total = int(counts.sum())
        if total == 0:
            return np.zeros(0, dtype=np.int64), [
                self._indptr_arr.pages_of_elements(frontier)
            ]
        offsets = np.arange(total) - np.repeat(
            np.concatenate([[0], np.cumsum(counts)[:-1]]), counts
        )
        edge_idx = np.repeat(starts, counts) + offsets
        neighbors = self.graph.indices[edge_idx].astype(np.int64)
        pages = [
            self._indptr_arr.pages_of_elements(frontier),
            self._indices_arr.pages_of_ranges(starts, counts),
        ]
        return neighbors, pages

    # -- BFS (direction-optimizing omitted; top-down level-synchronous) ----------

    def _bfs_trace(self, source: int, trial: int) -> Iterator[AccessBatch]:
        n = self.graph.num_nodes
        parent = np.full(n, -1, dtype=np.int64)
        parent[source] = source
        frontier = np.array([source], dtype=np.int64)
        while frontier.size:
            neighbors, pages = self._gather_neighbors(frontier)
            if neighbors.size:
                # Reading parent[] of every neighbor to test visited.
                pages.append(self._prop32.pages_of_elements(neighbors))
                fresh = np.unique(neighbors[parent[neighbors] < 0])
                if fresh.size:
                    parent[fresh] = frontier[0]  # representative parent
                    pages.append(self._prop32.pages_of_elements(fresh))
                frontier = fresh
            else:
                frontier = np.zeros(0, dtype=np.int64)
            yield self._emit(pages, trial)
        self.last_kernel_state = {
            "parent": parent,
            "source": np.array([source]),
        }

    # -- Connected components (Shiloach-Vishkin style label propagation) ----------

    def _cc_trace(self, trial: int) -> Iterator[AccessBatch]:
        n = self.graph.num_nodes
        comp = np.arange(n, dtype=np.int64)
        graph = self.graph
        # Precompute the per-edge source ids once (the CSR scan order).
        edge_src = np.repeat(
            np.arange(n, dtype=np.int64), np.diff(graph.indptr).astype(np.int64)
        )
        edge_dst = graph.indices.astype(np.int64)
        for _ in range(64):  # safety bound; converges much sooner
            old = comp.copy()
            # comp[dst] = min(comp[dst], comp[src]) over the full edge scan.
            np.minimum.at(comp, edge_dst, comp[edge_src])
            comp = comp[comp]  # pointer jumping
            pages = [
                # Streaming scan of the full CSR.
                self._indptr_arr.pages_of_ranges(
                    np.array([0]), np.array([n + 1])
                ),
                self._indices_arr.pages_of_ranges(
                    np.array([0]), np.array([graph.num_directed_edges])
                ),
                # Random gathers/scatters on the component array: sample
                # one line access per 16 edge endpoints (line reuse).
                self._prop32.pages_of_elements(edge_dst[:: 16]),
                self._prop32.pages_of_elements(edge_src[:: 16]),
            ]
            yield self._emit(pages, trial)
            if np.array_equal(old, comp):
                break
        self.last_kernel_state = {"comp": comp}

    # -- PageRank (power iteration, GAP defaults) -----------------------------------

    def _pr_trace(self, trial: int) -> Iterator[AccessBatch]:
        """Power-iteration PageRank: full CSR scans + rank gathers."""
        n = self.graph.num_nodes
        graph = self.graph
        degrees = np.maximum(graph.degrees().astype(np.float64), 1.0)
        rank = np.full(n, 1.0 / n, dtype=np.float64)
        edge_src = np.repeat(
            np.arange(n, dtype=np.int64), np.diff(graph.indptr).astype(np.int64)
        )
        edge_dst = graph.indices.astype(np.int64)
        base = (1.0 - PR_DAMPING) / n
        for _ in range(PR_ITERATIONS):
            contrib = rank[edge_src] / degrees[edge_src]
            incoming = np.zeros(n, dtype=np.float64)
            np.add.at(incoming, edge_dst, contrib)
            rank = base + PR_DAMPING * incoming
            pages = [
                self._indptr_arr.pages_of_ranges(np.array([0]), np.array([n + 1])),
                self._indices_arr.pages_of_ranges(
                    np.array([0]), np.array([graph.num_directed_edges])
                ),
                # Rank gathers (reads of src ranks) and scatters (dst
                # accumulation), line-sampled like the CC kernel.
                self._prop64_a.pages_of_elements(edge_src[:: 8]),
                self._prop64_b.pages_of_elements(edge_dst[:: 8]),
            ]
            yield self._emit(pages, trial)
        self.last_kernel_state = {"rank": rank}

    # -- Betweenness centrality (Brandes, level-synchronous) ------------------------

    def _bc_trace(self, source: int, trial: int) -> Iterator[AccessBatch]:
        n = self.graph.num_nodes
        level = np.full(n, -1, dtype=np.int64)
        sigma = np.zeros(n, dtype=np.float64)
        level[source] = 0
        sigma[source] = 1.0
        frontier = np.array([source], dtype=np.int64)
        levels: list[np.ndarray] = [frontier]
        depth = 0
        # Forward phase: BFS counting shortest paths.
        while frontier.size:
            neighbors, pages = self._gather_neighbors(frontier)
            if neighbors.size:
                pages.append(self._prop64_a.pages_of_elements(neighbors))
                src_sigma = np.repeat(
                    sigma[frontier],
                    self._degrees[frontier],
                )
                undiscovered = level[neighbors] < 0
                on_next = level[neighbors] == depth + 1
                contribute = undiscovered | on_next
                np.add.at(sigma, neighbors[contribute], src_sigma[contribute])
                fresh = np.unique(neighbors[undiscovered])
                if fresh.size:
                    level[fresh] = depth + 1
                    pages.append(self._prop32.pages_of_elements(fresh))
                frontier = fresh
            else:
                frontier = np.zeros(0, dtype=np.int64)
            if frontier.size:
                levels.append(frontier)
            depth += 1
            yield self._emit(pages, trial)
        # Backward phase: dependency accumulation, deepest level first.
        delta = np.zeros(n, dtype=np.float64)
        for front in reversed(levels[1:]):
            neighbors, pages = self._gather_neighbors(front)
            if neighbors.size:
                counts = self._degrees[front]
                owner = np.repeat(front, counts)
                predecessor = level[neighbors] == level[owner] - 1
                if predecessor.any():
                    contrib = (
                        sigma[neighbors[predecessor]]
                        / np.maximum(sigma[owner[predecessor]], 1e-12)
                        * (1.0 + delta[owner[predecessor]])
                    )
                    np.add.at(delta, neighbors[predecessor], contrib)
                pages.append(self._prop64_a.pages_of_elements(neighbors))
                pages.append(self._prop64_b.pages_of_elements(owner[:: 4]))
            yield self._emit(pages, trial)
        self.last_kernel_state = {
            "sigma": sigma,
            "level": level,
            "delta": delta,
            "source": np.array([source]),
        }

    def describe(self) -> dict[str, object]:
        base = super().describe()
        base.update(
            {
                "kernel": self.kernel,
                "num_nodes": self.graph.num_nodes,
                "num_directed_edges": self.graph.num_directed_edges,
                "num_trials": self.num_trials,
            }
        )
        return base
