"""Kronecker (R-MAT) graph generation in CSR form.

The paper's GAP experiments run on a Kronecker power-law graph with
2 billion nodes and 8 billion edges (average degree 4).  We generate
the same family at reduced scale using the standard R-MAT recursive
quadrant procedure with the GAP-default parameters
``(A, B, C) = (0.57, 0.19, 0.19)``, which yields the skewed degree
distribution (a few super-hubs, many leaves) that makes graph
analytics tiering-friendly (paper Section II-B).

Generation is fully vectorized: all edges choose their ``scale``
quadrant bits at once.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: GAP benchmark R-MAT parameters.
RMAT_A, RMAT_B, RMAT_C = 0.57, 0.19, 0.19


@dataclass
class CSRGraph:
    """Compressed-sparse-row graph (undirected edges stored both ways)."""

    indptr: np.ndarray  # int64, len num_nodes + 1
    indices: np.ndarray  # int32, len num_edges_directed
    num_nodes: int

    @property
    def num_directed_edges(self) -> int:
        return int(self.indices.size)

    def degree(self, node: int) -> int:
        return int(self.indptr[node + 1] - self.indptr[node])

    def degrees(self) -> np.ndarray:
        return np.diff(self.indptr)

    def neighbors(self, node: int) -> np.ndarray:
        return self.indices[self.indptr[node] : self.indptr[node + 1]]

    @property
    def nbytes(self) -> int:
        """Bytes of the CSR arrays (drives the page-layout footprint)."""
        return int(self.indptr.nbytes + self.indices.nbytes)


def _rmat_edges(
    scale: int, num_edges: int, rng: np.random.Generator
) -> tuple[np.ndarray, np.ndarray]:
    """Draw ``num_edges`` R-MAT edge endpoints for a 2**scale node graph."""
    src = np.zeros(num_edges, dtype=np.int64)
    dst = np.zeros(num_edges, dtype=np.int64)
    for bit in range(scale):
        r = rng.random(num_edges)
        # Quadrants: A = (0,0), B = (0,1), C = (1,0), D = (1,1).
        go_down = r >= RMAT_A + RMAT_B  # C or D: src bit set
        go_right = ((r >= RMAT_A) & (r < RMAT_A + RMAT_B)) | (
            r >= RMAT_A + RMAT_B + RMAT_C
        )  # B or D: dst bit set
        src |= go_down.astype(np.int64) << bit
        dst |= go_right.astype(np.int64) << bit
    return src, dst


def generate_kronecker(
    scale: int, avg_degree: int = 4, seed: int = 0
) -> CSRGraph:
    """Generate an undirected Kronecker graph as CSR.

    ``scale`` gives ``2**scale`` nodes; ``avg_degree`` undirected edges
    per node are drawn (so the CSR stores ``2 * avg_degree * n``
    directed entries before dedup; duplicates and self-loops are kept,
    as in the GAP generator's default behaviour for Kronecker inputs).
    """
    if scale < 1 or scale > 30:
        raise ValueError(f"scale must be in [1, 30], got {scale}")
    if avg_degree < 1:
        raise ValueError(f"avg_degree must be >= 1, got {avg_degree}")
    rng = np.random.default_rng(seed)
    num_nodes = 1 << scale
    num_edges = num_nodes * avg_degree
    src, dst = _rmat_edges(scale, num_edges, rng)

    # Symmetrize: store each edge in both directions.
    all_src = np.concatenate([src, dst])
    all_dst = np.concatenate([dst, src])
    order = np.argsort(all_src, kind="stable")
    all_src = all_src[order]
    all_dst = all_dst[order]

    indptr = np.zeros(num_nodes + 1, dtype=np.int64)
    counts = np.bincount(all_src, minlength=num_nodes)
    indptr[1:] = np.cumsum(counts)
    return CSRGraph(
        indptr=indptr,
        indices=all_dst.astype(np.int32),
        num_nodes=num_nodes,
    )
