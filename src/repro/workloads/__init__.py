"""Workload substrate (paper Table I).

Page-granular access-trace generators standing in for the paper's
three application suites (see DESIGN.md for the substitution
rationale):

- :mod:`~repro.workloads.cachelib` -- CacheLib/cachebench CDN and
  social-graph analogues: Zipfian item popularity, item-size
  distributions, GET/SET mix, churn and mid-run distribution shift.
- :mod:`~repro.workloads.gap` -- real BC/BFS/CC kernels over a
  Kronecker (R-MAT) graph in CSR form, instrumented to emit page
  traces.
- :mod:`~repro.workloads.xgboost_like` -- gradient-boosted-tree
  training access pattern (per-round column scans + hot gradient and
  histogram state).
"""

from repro.workloads.cachelib import CacheLibWorkload, CDN_PROFILE, SOCIAL_PROFILE
from repro.workloads.gap import GapWorkload
from repro.workloads.kronecker import CSRGraph, generate_kronecker
from repro.workloads.spec import Workload
from repro.workloads.trace import RecordedTrace, SyntheticZipfWorkload
from repro.workloads.xgboost_like import XGBoostWorkload
from repro.workloads.zipfian import ZipfianSampler

__all__ = [
    "CacheLibWorkload",
    "CDN_PROFILE",
    "CSRGraph",
    "GapWorkload",
    "RecordedTrace",
    "SOCIAL_PROFILE",
    "SyntheticZipfWorkload",
    "Workload",
    "XGBoostWorkload",
    "ZipfianSampler",
    "generate_kronecker",
]
