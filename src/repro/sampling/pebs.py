"""PEBS-style hardware access sampling (paper Sections IV-A, V-B2).

FreqTier programs two PEBS counters per core -- one for local-DRAM
loads, one for CXL loads -- and drains their ring buffers from the
tiering thread.  The essential statistical property is that PEBS is a
(nearly) uniform sampler of the L3-miss stream, so the simulator's
analogue subsamples the simulated access stream with the same
three-level rate scheme:

- ``SamplingLevel.HIGH``   -- the paper's 100 kHz,
- ``SamplingLevel.MEDIUM`` -- 10 kHz,
- ``SamplingLevel.LOW``    -- 1 kHz,

each level sampling 10x fewer accesses than the previous one.  The
ring buffer is bounded (the paper sizes 512 KB per counter per core);
samples beyond its capacity within one drain interval are lost, which
matters at high access rates and is reported via
:attr:`SampleBatch.lost`.

Sampling uses geometric-gap *skip sampling*: instead of drawing one
uniform per offered access (Bernoulli thinning), the sampler draws the
gaps between consecutive samples from Geometric(1/period) and jumps
straight to the next sampled access.  The two schemes induce exactly
the same law -- sample counts are Binomial(n, 1/period) and sampled
positions are uniform -- but skip sampling costs O(samples) RNG work
instead of O(accesses), which is the point of the paper's "lightweight"
claim: at LOW level only ~1 in 6400 accesses pays any work at all.
The gap state carries across batches, so the sampled stream is
identical to thinning one infinite concatenated stream.

Skip sampling draws a *different* RNG sequence than the seed
implementation's per-access thinning: for a fixed seed the sampled
stream is statistically equivalent, not bit-identical, to older
releases (see docs/API.md "Performance").
"""

from __future__ import annotations

import enum

import numpy as np

from repro import accel
from repro.sampling.events import AccessBatch, SampleBatch

#: Shared zero-length result for batches the sampler skips entirely
#: (callers only read it, so one instance serves every sampler).
_EMPTY_POSITIONS = np.zeros(0, dtype=np.int64)

#: Bytes per PEBS record (paper Section VII-E2: 16 bytes per sample).
SAMPLE_RECORD_BYTES = 16

#: Default ring capacity: 512 KB x 16 cores x 2 counters / 16 B/record.
DEFAULT_RING_CAPACITY = (512 * 1024 * 16 * 2) // SAMPLE_RECORD_BYTES


class SamplingLevel(enum.IntEnum):
    """The three sampling intensities of Section V-B2 (plus OFF)."""

    OFF = 0
    LOW = 1  # 1 kHz
    MEDIUM = 2  # 10 kHz
    HIGH = 3  # 100 kHz

    @property
    def nominal_hz(self) -> int:
        return {0: 0, 1: 1_000, 2: 10_000, 3: 100_000}[int(self)]


class PEBSSampler:
    """Uniform subsampler of the access stream with a bounded ring buffer.

    Parameters
    ----------
    base_period:
        Number of accesses per sample at ``HIGH`` level.  Each level
        below HIGH multiplies the period by 10 (matching the paper's
        100/10/1 kHz ladder).
    ring_capacity:
        Maximum samples held between :meth:`drain` calls.
    sample_cost_ns:
        Modeled CPU cost per collected sample (PEBS assist + record
        parse); drives the sampling tax in the cost model.
    seed:
        Seed for the geometric skip-sampling stream.
    """

    def __init__(
        self,
        base_period: int = 64,
        ring_capacity: int = DEFAULT_RING_CAPACITY,
        sample_cost_ns: float = 120.0,
        seed: int = 0,
    ):
        if base_period < 1:
            raise ValueError(f"base_period must be >= 1, got {base_period}")
        if ring_capacity < 1:
            raise ValueError(f"ring_capacity must be >= 1, got {ring_capacity}")
        self.base_period = int(base_period)
        self.ring_capacity = int(ring_capacity)
        self.sample_cost_ns = float(sample_cost_ns)
        self.level = SamplingLevel.HIGH
        #: Optional :class:`~repro.faults.FaultInjector`: when set,
        #: :meth:`observe` is subject to sample-loss bursts (counted as
        #: lost, like ring overruns) and sample-id corruption.
        self.fault_injector = None
        self._rng = np.random.default_rng(seed)
        self._pending_pages: list[np.ndarray] = []
        self._pending_tiers: list[np.ndarray] = []
        self._pending_count = 0
        self._lost = 0
        self.total_samples = 0
        self.total_lost = 0
        #: Accesses offered to :meth:`observe` while sampling was on.
        self.total_offered = 0
        #: RNG values consumed by the skip sampler (the quantity skip
        #: sampling reduces from O(offered) to O(sampled)).
        self.rng_values_drawn = 0
        # Skip-sampling gap state: position of the next sample relative
        # to the start of the next observed batch, and the probability
        # it was drawn at (a level change invalidates the carry).
        self._next_pos: int | None = None
        self._gap_prob = 0.0
        # Grow-only scratch for sample positions (not checkpointed:
        # contents are consumed within each observe() call).
        self._pos_buf = np.empty(0, dtype=np.int64)

    # -- level control -----------------------------------------------------

    def set_level(self, level: SamplingLevel) -> None:
        self.level = SamplingLevel(level)

    @property
    def period(self) -> int | None:
        """Accesses per sample at the current level (None when OFF)."""
        if self.level == SamplingLevel.OFF:
            return None
        steps_below_high = SamplingLevel.HIGH - self.level
        return self.base_period * (10**steps_below_high)

    @property
    def sampling_probability(self) -> float:
        period = self.period
        return 0.0 if period is None else 1.0 / period

    # -- observation ----------------------------------------------------------

    def observe(
        self,
        batch: AccessBatch,
        tiers: np.ndarray | None,
        placement: np.ndarray | None = None,
    ) -> None:
        """Show an access batch (with placement at access time) to the sampler.

        A Binomial(n, 1/period) subsample of the accesses -- positioned
        uniformly, via geometric gap skipping -- lands in the ring
        buffer; overflow beyond ``ring_capacity`` is dropped and
        counted as lost.  Cost is O(samples), not O(accesses): only the
        pages actually sampled are gathered and tier-tagged.

        ``tiers`` may be None for run-compressed batches; the caller
        then supplies ``placement`` (the page table's code array) and
        sampled pages are resolved positionally via
        :meth:`AccessBatch.pages_at` and tier-tagged by a direct
        placement gather -- identical values, no stream expansion.
        """
        prob = self.sampling_probability
        if prob <= 0.0 or batch.num_accesses == 0:
            if prob <= 0.0:
                # OFF: the pending gap no longer describes anything.
                self._next_pos = None
            return
        self.total_offered += batch.num_accesses
        positions = self._sample_positions(batch.num_accesses, prob)
        n_hit = int(positions.size)
        if n_hit == 0:
            return
        if self.fault_injector is not None:
            injected_loss = self.fault_injector.sample_loss(n_hit)
            if injected_loss:
                # Loss bursts drop the whole observed batch, exactly
                # like a ring overrun -- reported through the same
                # lost-sample accounting.
                self._lost += injected_loss
                self.total_lost += injected_loss
                return
        space = self.ring_capacity - self._pending_count
        if space <= 0:
            self._lost += n_hit
            self.total_lost += n_hit
            return
        if n_hit > space:
            self._lost += n_hit - space
            self.total_lost += n_hit - space
            positions = positions[:space]
            n_hit = space
        if tiers is None:
            if placement is None:
                raise ValueError("observe() needs tiers or placement")
            # Gap sampling emits strictly ascending positions.
            sampled_pages = batch.pages_at(positions, assume_sorted=True)
            sampled_tiers = placement[sampled_pages]
        else:
            sampled_pages = batch.page_ids[positions]
            sampled_tiers = np.asarray(tiers)[positions]
        if self.fault_injector is not None:
            sampled_pages = self.fault_injector.corrupt_samples(sampled_pages)
        self._pending_pages.append(sampled_pages)
        self._pending_tiers.append(sampled_tiers)
        self._pending_count += n_hit
        self.total_samples += n_hit

    def _sample_positions(self, n: int, prob: float) -> np.ndarray:
        """Positions of this batch's samples, in program order.

        Gaps between consecutive samples are iid Geometric(prob) --
        exactly the law of success positions in a Bernoulli(prob)
        stream -- and the final gap carries over to the next batch so
        batching boundaries are invisible to the statistics.  A level
        change redraws the carried gap at the new probability.
        """
        if self._next_pos is None or self._gap_prob != prob:
            self._next_pos = int(self._rng.geometric(prob)) - 1
            self._gap_prob = prob
            self.rng_values_drawn += 1
        pos = self._next_pos
        if pos >= n:
            self._next_pos = pos - n
            return _EMPTY_POSITIONS
        total = 0
        buf = self._pos_buf
        while True:
            # Draw enough gaps to cross the batch end with ~6-sigma
            # headroom; the rare shortfall just loops once more.
            expected = (n - pos) * prob
            draw = int(expected + 6.0 * np.sqrt(expected)) + 16
            need = total + draw + 1
            if buf.size < need:
                grown = np.empty(max(need, 2 * buf.size), dtype=np.int64)
                grown[:total] = buf[:total]
                buf = self._pos_buf = grown
            gaps = self._rng.geometric(prob, size=draw)
            self.rng_values_drawn += draw
            # Fused expansion: cumulate the gaps, keep positions < n,
            # and report the carry past the batch end in one kernel.
            count, carry, last = accel.gap_positions(
                gaps, pos, n, buf[total:]
            )
            total += count
            if carry >= 0:
                # First position past the batch is the carried gap.
                self._next_pos = carry
                break
            pos = last + int(self._rng.geometric(prob))
            self.rng_values_drawn += 1
            if pos >= n:
                self._next_pos = pos - n
                break
        return buf[:total]

    # -- draining -----------------------------------------------------------------

    @property
    def pending_samples(self) -> int:
        return self._pending_count

    def drain(self) -> SampleBatch:
        """Hand all buffered samples to the policy and empty the ring."""
        if self._pending_count == 0:
            out = SampleBatch.empty()
            out.lost = self._lost
            self._lost = 0
            return out
        pages = np.concatenate(self._pending_pages)
        tiers = np.concatenate(self._pending_tiers)
        out = SampleBatch(page_ids=pages, tiers=tiers, lost=self._lost)
        self._pending_pages.clear()
        self._pending_tiers.clear()
        self._pending_count = 0
        self._lost = 0
        return out

    def discard_pending(self) -> int:
        """Drop all buffered samples, counting them as lost.

        Used on the SAMPLING -> MONITORING transition: samples left in
        the ring were taken against placements that may have changed by
        the time sampling resumes, so replaying them later would feed
        the CBF stale hotness.  Returns the number discarded.
        """
        discarded = self._pending_count
        self._pending_pages.clear()
        self._pending_tiers.clear()
        self._pending_count = 0
        # Goes straight to total_lost, not the per-drain carry: the
        # caller reports the discard itself, and routing it through the
        # next drain() would double-count it as a capacity overflow.
        self.total_lost += discarded
        return discarded

    # -- overhead accounting ------------------------------------------------------

    def overhead_ns(self, num_samples: int) -> float:
        """Modeled CPU tax for collecting ``num_samples`` samples."""
        return num_samples * self.sample_cost_ns

    # -- checkpointing ------------------------------------------------------

    def state_dict(self) -> dict:
        """Everything mutable: RNG, ring contents, gap carry, counters."""
        return {
            "level": int(self.level),
            "rng": self._rng.bit_generator.state,
            "pending_pages": [arr.copy() for arr in self._pending_pages],
            "pending_tiers": [arr.copy() for arr in self._pending_tiers],
            "pending_count": self._pending_count,
            "lost": self._lost,
            "total_samples": self.total_samples,
            "total_lost": self.total_lost,
            "total_offered": self.total_offered,
            "rng_values_drawn": self.rng_values_drawn,
            "next_pos": self._next_pos,
            "gap_prob": self._gap_prob,
        }

    def load_state(self, state: dict) -> None:
        self.level = SamplingLevel(int(state["level"]))
        self._rng.bit_generator.state = state["rng"]
        self._pending_pages = [
            np.asarray(arr) for arr in state["pending_pages"]
        ]
        self._pending_tiers = [
            np.asarray(arr) for arr in state["pending_tiers"]
        ]
        self._pending_count = int(state["pending_count"])
        self._lost = int(state["lost"])
        self.total_samples = int(state["total_samples"])
        self.total_lost = int(state["total_lost"])
        self.total_offered = int(state["total_offered"])
        self.rng_values_drawn = int(state["rng_values_drawn"])
        next_pos = state["next_pos"]
        self._next_pos = None if next_pos is None else int(next_pos)
        self._gap_prob = float(state["gap_prob"])
