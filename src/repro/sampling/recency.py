"""Scan-window + hint-fault sampling (AutoNUMA / TPP, paper Section II-C1).

AutoNUMA periodically unmaps a *scan window* of pages (256 MB at a
time) from the application's address space.  The next access to an
unmapped page takes a minor page fault -- the *hint fault* -- at which
point the kernel knows the elapsed time since the unmap (the *hint
fault latency*).  AutoNUMA promotes pages whose hint fault latency is
below a hot threshold; TPP uses the same faults but gates promotion on
active-LRU membership instead.

:class:`HintFaultScanner` reproduces the mechanism over the simulated
access stream: an ``unmap`` timestamp array per page, a cursor that
advances one window per scan tick, and vectorized fault detection per
access batch.  Only the *first* access to an unmapped page faults
(after which the PTE is restored), which is exactly the
frequency-information loss the paper's Figure 3 illustrates.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import accel
from repro.sampling.events import AccessBatch

#: Modeled CPU cost of one minor (hint) page fault.
HINT_FAULT_COST_NS = 1000.0


@dataclass
class HintFault:
    """A batch of hint faults observed during one access batch."""

    page_ids: np.ndarray
    #: Time since each page was unmapped (hint fault latency), ns.
    latencies_ns: np.ndarray

    @property
    def count(self) -> int:
        return int(self.page_ids.size)

    @staticmethod
    def empty() -> "HintFault":
        return HintFault(
            page_ids=np.zeros(0, dtype=np.int64),
            latencies_ns=np.zeros(0, dtype=np.float64),
        )


class HintFaultScanner:
    """Address-space scanner producing hint faults.

    Parameters
    ----------
    total_pages:
        Size of the scanned address space (page ids ``[0, total_pages)``).
    window_pages:
        Pages unmapped per scan tick (the paper's 256 MB scan window,
        scaled).
    seed:
        Unused today; reserved for randomized scan starts.
    """

    def __init__(self, total_pages: int, window_pages: int, seed: int = 0):
        if total_pages <= 0:
            raise ValueError(f"total_pages must be > 0, got {total_pages}")
        if window_pages <= 0:
            raise ValueError(f"window_pages must be > 0, got {window_pages}")
        self.total_pages = int(total_pages)
        self.window_pages = min(int(window_pages), self.total_pages)
        self._cursor = 0
        # unmap_time[p] >= 0 iff page p currently has its hint PTE cleared.
        self._unmap_time = np.full(total_pages, -1.0, dtype=np.float64)
        self.faults_taken = 0
        self.windows_scanned = 0

    # -- scanning ----------------------------------------------------------

    def scan_tick(self, now_ns: float) -> np.ndarray:
        """Unmap the next scan window; returns the pages unmapped."""
        start = self._cursor
        end = start + self.window_pages
        if end <= self.total_pages:
            window = np.arange(start, end, dtype=np.int64)
            self._cursor = end % self.total_pages
        else:
            window = np.concatenate(
                [
                    np.arange(start, self.total_pages, dtype=np.int64),
                    np.arange(0, end - self.total_pages, dtype=np.int64),
                ]
            )
            self._cursor = end - self.total_pages
        self._unmap_time[window] = now_ns
        self.windows_scanned += 1
        return window

    # -- fault detection --------------------------------------------------------

    def observe(
        self,
        batch: AccessBatch,
        now_ns: float,
        prefer_expanded: bool = False,
    ) -> HintFault:
        """Detect hint faults in an access batch and re-map faulted pages.

        Each unmapped page faults at most once per unmap (its first
        access in the batch); subsequent accesses in the same batch see
        the restored PTE -- the frequency-information loss of Fig. 3.

        Run-compressed batches are scanned without expansion via the
        ``hint_faults`` kernel -- bit-identical faults, in the same
        first-occurrence program order, at O(runs log U) cost.  Pass
        ``prefer_expanded=True`` to force the expanded reference path
        (the policies do when the engine already materialized the
        stream).
        """
        if batch.num_accesses == 0:
            return HintFault.empty()
        if batch.run_starts is not None and not prefer_expanded:
            faulted, unmap_times = accel.hint_faults(
                self._unmap_time,
                batch.head_page_ids,
                batch.run_starts,
                batch.run_counts,
            )
            if faulted.size == 0:
                return HintFault.empty()
            self.faults_taken += int(faulted.size)
            latencies = now_ns - unmap_times
            return HintFault(
                page_ids=faulted, latencies_ns=np.maximum(latencies, 0.0)
            )
        pages = batch.page_ids
        in_range = pages[(pages >= 0) & (pages < self.total_pages)]
        if in_range.size == 0:
            return HintFault.empty()
        # First occurrence of each page in program order.
        first_idx = np.unique(in_range, return_index=True)[1]
        candidates = in_range[np.sort(first_idx)]
        unmap_times = self._unmap_time[candidates]
        faulted_mask = unmap_times >= 0.0
        faulted = candidates[faulted_mask]
        if faulted.size == 0:
            return HintFault.empty()
        latencies = now_ns - unmap_times[faulted_mask]
        self._unmap_time[faulted] = -1.0  # PTE restored by the fault
        self.faults_taken += int(faulted.size)
        return HintFault(page_ids=faulted, latencies_ns=np.maximum(latencies, 0.0))

    def overhead_ns(self, num_faults: int) -> float:
        """Modeled CPU tax of servicing ``num_faults`` minor faults."""
        return num_faults * HINT_FAULT_COST_NS

    # -- checkpointing ------------------------------------------------------

    def state_dict(self) -> dict:
        return {
            "cursor": self._cursor,
            "unmap_time": self._unmap_time.copy(),
            "faults_taken": self.faults_taken,
            "windows_scanned": self.windows_scanned,
        }

    def load_state(self, state: dict) -> None:
        self._cursor = int(state["cursor"])
        unmap_time = np.asarray(state["unmap_time"], dtype=np.float64)
        if unmap_time.shape != self._unmap_time.shape:
            raise ValueError(
                f"unmap_time shape {unmap_time.shape} != expected "
                f"{self._unmap_time.shape}"
            )
        self._unmap_time = unmap_time.copy()
        self.faults_taken = int(state["faults_taken"])
        self.windows_scanned = int(state["windows_scanned"])
