"""Access-observation substrate.

How a tiering policy *sees* memory accesses:

- :class:`~repro.sampling.pebs.PEBSSampler` -- the hardware-counter
  sampler FreqTier and HeMem use (paper Section IV-A step 3): uniform
  subsampling of the access stream at one of three rates, with bounded
  ring buffers that drop samples under overload.
- :class:`~repro.sampling.perf_stat.PerfStatCounter` -- counting-only
  hit-ratio monitoring used by FreqTier's low-overhead monitoring mode
  (paper Section V-B2).
- :class:`~repro.sampling.recency.HintFaultScanner` -- the AutoNUMA/TPP
  scan-window + hint-fault mechanism (paper Section II-C1).
"""

from repro.sampling.events import AccessBatch, SampleBatch
from repro.sampling.pebs import PEBSSampler, SamplingLevel
from repro.sampling.perf_stat import PerfStatCounter
from repro.sampling.recency import HintFault, HintFaultScanner

__all__ = [
    "AccessBatch",
    "HintFault",
    "HintFaultScanner",
    "PEBSSampler",
    "PerfStatCounter",
    "SampleBatch",
    "SamplingLevel",
]
