"""perf-stat style counting-only monitoring (paper Section V-B2).

In FreqTier's monitoring mode the PEBS samplers are switched off and
only two counting events remain: local-DRAM accesses and CXL accesses.
Counting (as opposed to sampling) has negligible overhead; the policy
uses the windowed hit ratio to detect access-distribution changes and
re-arm sampling.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class _Window:
    local: int = 0
    cxl: int = 0

    @property
    def total(self) -> int:
        return self.local + self.cxl

    @property
    def hit_ratio(self) -> float | None:
        if self.total == 0:
            return None
        return self.local / self.total


class PerfStatCounter:
    """Windowed local/CXL access counters with stability detection.

    The paper declares the hit ratio *stable* when consecutive
    one-minute windows vary within 0.5% (Section V-B2); the same rule
    is exposed here via :meth:`is_stable`, parameterized by
    ``stability_epsilon``.
    """

    def __init__(self, stability_epsilon: float = 0.005, history: int = 16):
        if stability_epsilon <= 0:
            raise ValueError(
                f"stability_epsilon must be > 0, got {stability_epsilon}"
            )
        if history < 2:
            raise ValueError(f"history must be >= 2, got {history}")
        self.stability_epsilon = float(stability_epsilon)
        self.history_limit = int(history)
        self._current = _Window()
        self._closed: list[float] = []
        self.total_local = 0
        self.total_cxl = 0

    # -- counting ---------------------------------------------------------

    def count(self, local: int, cxl: int) -> None:
        """Accumulate accesses into the open window."""
        if local < 0 or cxl < 0:
            raise ValueError("counts must be >= 0")
        self._current.local += local
        self._current.cxl += cxl
        self.total_local += local
        self.total_cxl += cxl

    def close_window(self) -> float | None:
        """Finish the current window; returns its hit ratio (None if empty)."""
        ratio = self._current.hit_ratio
        if ratio is not None:
            self._closed.append(ratio)
            if len(self._closed) > self.history_limit:
                self._closed.pop(0)
        self._current = _Window()
        return ratio

    # -- queries -------------------------------------------------------------

    @property
    def current_window_hit_ratio(self) -> float | None:
        return self._current.hit_ratio

    @property
    def last_window_hit_ratio(self) -> float | None:
        return self._closed[-1] if self._closed else None

    @property
    def overall_hit_ratio(self) -> float | None:
        total = self.total_local + self.total_cxl
        if total == 0:
            return None
        return self.total_local / total

    def is_stable(self, windows: int = 2) -> bool:
        """True when the last ``windows`` closed windows vary within epsilon."""
        if windows < 2:
            raise ValueError(f"windows must be >= 2, got {windows}")
        if len(self._closed) < windows:
            return False
        recent = self._closed[-windows:]
        return max(recent) - min(recent) <= self.stability_epsilon

    def changed_since_stable(self, reference: float) -> bool:
        """True when the last closed window deviates from ``reference``.

        Used in monitoring mode: a deviation beyond epsilon means the
        access distribution shifted and sampling must restart.
        """
        last = self.last_window_hit_ratio
        if last is None:
            return False
        return abs(last - reference) > self.stability_epsilon

    # -- checkpointing ------------------------------------------------------

    def state_dict(self) -> dict:
        return {
            "current_local": self._current.local,
            "current_cxl": self._current.cxl,
            "closed": list(self._closed),
            "total_local": self.total_local,
            "total_cxl": self.total_cxl,
        }

    def load_state(self, state: dict) -> None:
        self._current = _Window(
            local=int(state["current_local"]), cxl=int(state["current_cxl"])
        )
        self._closed = [float(ratio) for ratio in state["closed"]]
        self.total_local = int(state["total_local"])
        self.total_cxl = int(state["total_cxl"])
