"""Event types flowing between workload, sampler and policy."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class AccessBatch:
    """One batch of application memory activity.

    The workload generators emit these; the engine services them
    against the machine and shows them to the policy's sampler.

    Attributes
    ----------
    page_ids:
        Page id of every L3-missing memory access in the batch, in
        program order (int64 array).
    num_ops:
        Application-level operations (cache GETs, graph iterations,
        boosting-round fractions) the batch represents; used for
        throughput and per-op latency accounting.
    cpu_ns:
        Pure compute time of the batch (instructions that overlap no
        L3 miss).
    label:
        Optional phase tag (e.g. "warmup", "phase2") for analysis.
    bytes_per_access:
        Bytes actually transferred per emitted access, for bandwidth
        accounting.  64 (one line) for pointer-chasing patterns; page
        traces that stand for bulk reads (e.g. a CacheLib item page)
        use larger values.
    """

    page_ids: np.ndarray
    num_ops: float
    cpu_ns: float
    label: str = ""
    bytes_per_access: float = 64.0

    def __post_init__(self) -> None:
        self.page_ids = np.asarray(self.page_ids, dtype=np.int64)
        if self.num_ops < 0:
            raise ValueError(f"num_ops must be >= 0, got {self.num_ops}")
        if self.cpu_ns < 0:
            raise ValueError(f"cpu_ns must be >= 0, got {self.cpu_ns}")
        if self.bytes_per_access <= 0:
            raise ValueError(
                f"bytes_per_access must be > 0, got {self.bytes_per_access}"
            )

    @property
    def num_accesses(self) -> int:
        return int(self.page_ids.size)


@dataclass
class SampleBatch:
    """Access samples delivered to a policy by its sampler.

    ``tiers[i]`` is the tier code of ``page_ids[i]`` at sampling time,
    so policies can compute the sampled local-DRAM hit ratio without a
    second page-table walk (PEBS distinguishes local vs CXL events via
    separate hardware counters).
    """

    page_ids: np.ndarray
    tiers: np.ndarray
    #: Samples dropped because the ring buffer overflowed.
    lost: int = 0

    def __post_init__(self) -> None:
        self.page_ids = np.asarray(self.page_ids, dtype=np.int64)
        self.tiers = np.asarray(self.tiers, dtype=np.int64)
        if self.page_ids.shape != self.tiers.shape:
            raise ValueError(
                f"page_ids and tiers must align: {self.page_ids.shape} "
                f"vs {self.tiers.shape}"
            )

    @property
    def num_samples(self) -> int:
        return int(self.page_ids.size)

    @staticmethod
    def empty() -> "SampleBatch":
        return SampleBatch(
            page_ids=np.zeros(0, dtype=np.int64),
            tiers=np.zeros(0, dtype=np.int64),
        )
