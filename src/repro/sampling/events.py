"""Event types flowing between workload, sampler and policy."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import accel


class AccessBatch:
    """One batch of application memory activity.

    The workload generators emit these; the engine services them
    against the machine and shows them to the policy's sampler.

    Two construction forms exist:

    - **explicit**: ``page_ids`` carries the page id of every
      L3-missing access, in program order.  Stored as int64, except
      that int32 input is kept as-is (generators with sub-2**31
      address spaces emit int32 streams; every consumer is
      width-agnostic).
    - **run-compressed**: ``page_ids=None`` plus ``head_page_ids``
      (single-page accesses, e.g. index lookups) and aligned
      ``run_starts``/``run_counts`` arrays (contiguous page runs).
      The program order is defined as the head first, then the runs
      expanded in order.  Hot-path consumers (the engine's fused tier
      accounting, position-based sampling via :meth:`pages_at`) read
      the compressed fields directly; :attr:`page_ids` materializes
      the expanded stream lazily for everyone else.

    Attributes
    ----------
    page_ids:
        Expanded per-access page ids (materialized on first read for
        run-compressed batches).
    num_ops:
        Application-level operations (cache GETs, graph iterations,
        boosting-round fractions) the batch represents; used for
        throughput and per-op latency accounting.
    cpu_ns:
        Pure compute time of the batch (instructions that overlap no
        L3 miss).
    label:
        Optional phase tag (e.g. "warmup", "phase2") for analysis.
    bytes_per_access:
        Bytes actually transferred per emitted access, for bandwidth
        accounting.  64 (one line) for pointer-chasing patterns; page
        traces that stand for bulk reads (e.g. a CacheLib item page)
        use larger values.
    """

    __slots__ = (
        "num_ops",
        "cpu_ns",
        "label",
        "bytes_per_access",
        "head_page_ids",
        "run_starts",
        "run_counts",
        "_page_ids",
        "_num_accesses",
        "_run_offsets",
    )

    def __init__(
        self,
        page_ids: np.ndarray | None,
        num_ops: float,
        cpu_ns: float,
        label: str = "",
        bytes_per_access: float = 64.0,
        *,
        head_page_ids: np.ndarray | None = None,
        run_starts: np.ndarray | None = None,
        run_counts: np.ndarray | None = None,
    ):
        self.num_ops = num_ops
        self.cpu_ns = cpu_ns
        self.label = label
        self.bytes_per_access = bytes_per_access
        self._run_offsets: np.ndarray | None = None
        if page_ids is None:
            if head_page_ids is None or run_starts is None or run_counts is None:
                raise ValueError(
                    "either page_ids or the full compressed form "
                    "(head_page_ids, run_starts, run_counts) is required"
                )
            self.head_page_ids = np.asarray(head_page_ids)
            self.run_starts = np.asarray(run_starts, dtype=np.int64)
            self.run_counts = np.asarray(run_counts, dtype=np.int64)
            if self.run_starts.shape != self.run_counts.shape:
                raise ValueError(
                    f"run_starts and run_counts must align: "
                    f"{self.run_starts.shape} vs {self.run_counts.shape}"
                )
            self._page_ids: np.ndarray | None = None
            self._num_accesses = int(self.head_page_ids.size) + int(
                self.run_counts.sum()
            )
        else:
            arr = np.asarray(page_ids)
            if arr.dtype != np.int32:
                arr = np.asarray(arr, dtype=np.int64)
            self._page_ids = arr
            self.head_page_ids = None
            self.run_starts = None
            self.run_counts = None
            self._num_accesses = int(arr.size)
        if self.num_ops < 0:
            raise ValueError(f"num_ops must be >= 0, got {self.num_ops}")
        if self.cpu_ns < 0:
            raise ValueError(f"cpu_ns must be >= 0, got {self.cpu_ns}")
        if self.bytes_per_access <= 0:
            raise ValueError(
                f"bytes_per_access must be > 0, got {self.bytes_per_access}"
            )

    @property
    def page_ids(self) -> np.ndarray:
        """The expanded per-access stream (lazy for compressed batches)."""
        if self._page_ids is None:
            head = self.head_page_ids
            out = np.empty(self._num_accesses, dtype=np.int64)
            out[: head.size] = head
            accel.expand_runs(self.run_starts, self.run_counts, out[head.size :])
            self._page_ids = out
        return self._page_ids

    @property
    def num_accesses(self) -> int:
        return self._num_accesses

    def _offsets(self) -> np.ndarray:
        if self._run_offsets is None:
            self._run_offsets = np.cumsum(self.run_counts)
        return self._run_offsets

    def pages_at(
        self, positions: np.ndarray, *, assume_sorted: bool = False
    ) -> np.ndarray:
        """Page ids at the given access positions (program order).

        O(len(positions)) on compressed batches: head positions are a
        direct gather, tail positions map onto their run by binary
        search over the run-length prefix (the ``run_pages_at``
        kernel).  Plain gather otherwise.  Used by position-based
        samplers so sampling a handful of accesses never forces stream
        materialization.  ``assume_sorted`` promises the positions are
        ascending (skip samplers emit them that way), unlocking a
        slice-based gather; do not pass it for unordered positions.
        """
        if self._page_ids is not None:
            return self._page_ids[positions]
        return accel.run_pages_at(
            self.head_page_ids,
            self.run_starts,
            self.run_counts,
            self._offsets(),
            np.asarray(positions, dtype=np.int64),
            assume_sorted,
        )

    def strided_pages(self, stride: int) -> np.ndarray:
        """Pages at positions ``0, stride, 2*stride, ...``.

        Equals ``page_ids[::stride]`` (widened to int64) but costs
        O(samples + runs) on compressed batches -- the recency
        policies' touched-set walks use it so their accessed-bit
        subsampling never expands the stream.
        """
        if self.run_starts is None:
            return self.page_ids[::stride]
        return accel.strided_run_pages(
            self.head_page_ids,
            self.run_starts,
            self.run_counts,
            self._offsets(),
            int(stride),
            self._num_accesses,
        )

    def release_expanded(self) -> None:
        """Drop a compressed batch's cached ``page_ids`` expansion.

        The engine calls this after each serviced batch: workload
        generators keep a reference to the batch they yielded, so a
        cached expansion would otherwise stay reachable for the rest
        of the run.  Recomputed (bit-identically) on next touch.
        """
        if self.head_page_ids is not None:
            self._page_ids = None


@dataclass
class SampleBatch:
    """Access samples delivered to a policy by its sampler.

    ``tiers[i]`` is the tier code of ``page_ids[i]`` at sampling time,
    so policies can compute the sampled local-DRAM hit ratio without a
    second page-table walk (PEBS distinguishes local vs CXL events via
    separate hardware counters).
    """

    page_ids: np.ndarray
    tiers: np.ndarray
    #: Samples dropped because the ring buffer overflowed.
    lost: int = 0

    def __post_init__(self) -> None:
        self.page_ids = np.asarray(self.page_ids, dtype=np.int64)
        self.tiers = np.asarray(self.tiers, dtype=np.int64)
        if self.page_ids.shape != self.tiers.shape:
            raise ValueError(
                f"page_ids and tiers must align: {self.page_ids.shape} "
                f"vs {self.tiers.shape}"
            )

    @property
    def num_samples(self) -> int:
        return int(self.page_ids.size)

    @staticmethod
    def empty() -> "SampleBatch":
        return SampleBatch(
            page_ids=np.zeros(0, dtype=np.int64),
            tiers=np.zeros(0, dtype=np.int64),
        )
