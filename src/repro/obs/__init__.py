"""Structured tracing and metrics for the simulation loop.

The observability layer has three pieces:

- **events** (:mod:`repro.obs.events`): the typed-event schema every
  trace line obeys (``batch``, ``promotion``, ``demotion_scan``,
  ``window_close``, ``level_change``, ``state_transition``, ``aging``,
  ``ring_overflow``, ``cache_hit``);
- **tracer** (:mod:`repro.obs.tracer`): the handle the engine,
  policies, samplers and machine emit through -- near-zero-cost no-op
  by default (:data:`NULL_TRACER`);
- **sinks and registries**: :class:`JsonlTraceSink` persists events,
  :class:`ListSink` captures them in memory, and the counter/histogram
  registries reduce per-run aggregates into
  ``ExperimentResult.policy_stats``.

Wire a tracer into a run with ``SimulationEngine(..., tracer=...)``,
``run_experiment(..., tracer=...)``, the CLI ``--trace`` flag, or
per-cell via ``CellSpec(trace_path=...)``.
"""

from repro.obs.events import (
    BASE_FIELDS,
    EVENT_TYPES,
    TraceEventError,
    validate_event,
)
from repro.obs.registry import CounterRegistry, HistogramRegistry
from repro.obs.sinks import JsonlTraceSink, ListSink, TraceSink, read_jsonl
from repro.obs.tracer import NULL_TRACER, NullTracer, Tracer, trace_to

__all__ = [
    "BASE_FIELDS",
    "CounterRegistry",
    "EVENT_TYPES",
    "HistogramRegistry",
    "JsonlTraceSink",
    "ListSink",
    "NULL_TRACER",
    "NullTracer",
    "TraceEventError",
    "TraceSink",
    "Tracer",
    "read_jsonl",
    "trace_to",
    "validate_event",
]
