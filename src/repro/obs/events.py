"""Trace event schema.

Every event emitted by the tracer is one flat JSON-serializable dict
carrying three base fields plus a per-type payload:

- ``type``  -- one of :data:`EVENT_TYPES`;
- ``t_ns``  -- virtual-time timestamp (simulated nanoseconds, float);
- ``seq``   -- per-tracer monotonically increasing sequence number,
  the tie-breaker for events sharing a timestamp.

The payload field sets below are *required minimums*: emitters may
attach extra fields (they round-trip through the JSONL sink), but a
line missing a required field fails :func:`validate_event` -- the
contract the CI traced-smoke job enforces on real runs.
"""

from __future__ import annotations

from typing import Any

#: Fields every event carries, regardless of type.
BASE_FIELDS = frozenset({"type", "t_ns", "seq"})

#: Required payload fields per event type.
EVENT_TYPES: dict[str, frozenset[str]] = {
    # One simulated access batch serviced by the engine.
    "batch": frozenset(
        {"n_local", "n_cxl", "pages_migrated", "overhead_ns"}
    ),
    # One batched promotion pass that found promotion candidates.
    "promotion": frozenset({"candidates", "promoted", "threshold"}),
    # One watermark-gated demotion scan (Algorithm 2 invocation).
    "demotion_scan": frozenset({"chunks", "scanned", "demoted", "empty"}),
    # An observation window closed (dynamic-intensity bookkeeping).
    "window_close": frozenset(
        {"hit_ratio", "pages_promoted", "processing_rounds", "state", "level"}
    ),
    # The sampling level moved one step up or down the ladder.
    "level_change": frozenset({"from", "to", "reason"}),
    # SAMPLING <-> MONITORING state-machine transition.
    "state_transition": frozenset({"from", "to", "reason", "level"}),
    # The CBF counters were halved (periodic aging).
    "aging": frozenset({"samples"}),
    # Samples dropped from the PEBS ring (capacity or state flush).
    "ring_overflow": frozenset({"lost", "reason"}),
    # A parallel-executor cell was served from the result cache.
    "cache_hit": frozenset({"label", "fingerprint"}),
    # The fault injector fired (kind names the fault class).
    "fault_injected": frozenset({"kind", "count"}),
    # A policy re-attempted previously failed migrations.
    "migration_retry": frozenset({"direction", "count", "moved"}),
    # Pages that failed migration repeatedly were blacklisted
    # (pinned-page model: retrying them forever is wasted work).
    "page_blacklisted": frozenset({"direction", "count"}),
    # The engine wrote a durable checkpoint of the run state.
    "checkpoint_saved": frozenset({"batch", "file"}),
    # The engine restored its state from a checkpoint (resume).
    "checkpoint_restored": frozenset({"batch"}),
    # A requested accel backend was unavailable; the run fell back to
    # the NumPy reference (emitted once per run, at setup).
    "accel_fallback": frozenset({"requested", "active", "reason"}),
    # -- serving daemon (repro.serve) --------------------------------------
    # One daemon tick began (mode is the degradation-ladder rung;
    # queue_depth is the aggregate backlog at tick start).
    "tick_start": frozenset({"tick", "mode", "queue_depth"}),
    # The per-tick policy latency budget ran out mid-tick; remaining
    # batches were serviced without policy work.
    "deadline_exceeded": frozenset({"tick", "budget_ns", "spent_ns"}),
    # The degradation ladder moved (either direction; reason is
    # "overload" going down, "recovered" re-promoting).
    "degraded": frozenset({"from", "to", "reason"}),
    # Backpressure dropped or refused work on a tenant queue (reason
    # is "shed_oldest" or "reject").
    "load_shed": frozenset({"tenant", "count", "reason"}),
    # The watchdog restarted the policy loop from the newest valid
    # checkpoint (generation -1 = no checkpoint, fresh restart).
    "watchdog_restart": frozenset({"restarts", "reason", "generation"}),
    # A serve/policy config hot-swap was applied at a tick boundary.
    "config_swapped": frozenset({"changed"}),
    # A graceful drain finished: intake closed, queues fully serviced.
    "drain_complete": frozenset({"served", "remaining"}),
}


class TraceEventError(ValueError):
    """An event dict violates the trace schema."""


def validate_event(event: Any) -> None:
    """Raise :class:`TraceEventError` unless ``event`` is schema-valid."""
    if not isinstance(event, dict):
        raise TraceEventError(f"event must be a dict, got {type(event).__name__}")
    missing_base = BASE_FIELDS - event.keys()
    if missing_base:
        raise TraceEventError(
            f"event missing base fields {sorted(missing_base)}: {event!r}"
        )
    etype = event["type"]
    if etype not in EVENT_TYPES:
        valid = ", ".join(sorted(EVENT_TYPES))
        raise TraceEventError(f"unknown event type {etype!r}; known: {valid}")
    if not isinstance(event["t_ns"], (int, float)) or isinstance(
        event["t_ns"], bool
    ):
        raise TraceEventError(f"t_ns must be a number, got {event['t_ns']!r}")
    if not isinstance(event["seq"], int) or isinstance(event["seq"], bool):
        raise TraceEventError(f"seq must be an int, got {event['seq']!r}")
    missing = EVENT_TYPES[etype] - event.keys()
    if missing:
        raise TraceEventError(
            f"{etype!r} event missing fields {sorted(missing)}: {event!r}"
        )
