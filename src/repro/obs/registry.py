"""Per-run counter and histogram aggregation.

These are the tracer's scalar side: while trace *events* capture the
temporal story, the registries reduce a run's activity to per-run
aggregates (samples lost, scan chunks touched, CBF ops, migration
batch sizes) that merge into ``ExperimentResult.policy_stats`` so
reports and benchmark tables can pick them up without parsing a trace
file.
"""

from __future__ import annotations

import math


class CounterRegistry:
    """Named monotonically increasing counters."""

    def __init__(self) -> None:
        self._counts: dict[str, float] = {}

    def inc(self, name: str, amount: float = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter increments must be >= 0, got {amount}")
        self._counts[name] = self._counts.get(name, 0) + amount

    def get(self, name: str) -> float:
        return self._counts.get(name, 0)

    def as_dict(self) -> dict[str, float]:
        return dict(self._counts)

    def __len__(self) -> int:
        return len(self._counts)


#: Log-bucket growth factor: each bucket spans an ~8% value range, so
#: a quantile estimate is off by at most ~4% of the true value -- tight
#: enough for SLO reporting (p50/p99/p999) at O(log range) memory.
_BUCKET_GROWTH = 1.08
_LOG_GROWTH = math.log(_BUCKET_GROWTH)
#: Virtual bucket index for values <= 0 (ordered before all log
#: buckets; the representative value is the histogram's observed min).
_NONPOS_BUCKET = -(10**9)

#: The quantiles :meth:`HistogramRegistry.summary` reports.
SUMMARY_QUANTILES: tuple[tuple[str, float], ...] = (
    ("p50", 0.50),
    ("p99", 0.99),
    ("p999", 0.999),
)


class HistogramRegistry:
    """Named streaming histograms (moments + log-bucket quantiles).

    Values are reduced on the fly -- no sample list is kept.  Each
    observation updates four running moments (count/sum/min/max) and
    one fixed log-scale bucket counter, so memory stays O(log value
    range) per histogram and the registries are cheap enough to leave
    enabled for whole grids.  :meth:`quantile` walks the buckets --
    estimates carry the bucket's ~4% relative error and are clamped to
    the exact observed [min, max].
    """

    def __init__(self) -> None:
        self._stats: dict[str, list[float]] = {}  # [count, sum, min, max]
        self._buckets: dict[str, dict[int, int]] = {}

    @staticmethod
    def _bucket_of(value: float) -> int:
        if value <= 0.0:
            return _NONPOS_BUCKET
        return math.floor(math.log(value) / _LOG_GROWTH)

    def observe(self, name: str, value: float) -> None:
        value = float(value)
        if math.isnan(value):
            raise ValueError(f"cannot observe NaN in histogram {name!r}")
        stats = self._stats.get(name)
        if stats is None:
            self._stats[name] = [1.0, value, value, value]
            self._buckets[name] = {self._bucket_of(value): 1}
            return
        stats[0] += 1.0
        stats[1] += value
        stats[2] = min(stats[2], value)
        stats[3] = max(stats[3], value)
        buckets = self._buckets[name]
        idx = self._bucket_of(value)
        buckets[idx] = buckets.get(idx, 0) + 1

    def quantile(self, name: str, q: float) -> float | None:
        """Streaming quantile estimate for ``q`` in [0, 1].

        Walks the log buckets in value order until the cumulative count
        covers ``q`` of the observations and returns that bucket's
        geometric midpoint, clamped to the exact observed min/max (so
        q=0 and q=1 are exact, and single-value histograms are exact at
        every q).
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        stats = self._stats.get(name)
        if stats is None:
            return None
        count, _, lo, hi = stats
        target = q * count
        cumulative = 0.0
        for idx in sorted(self._buckets[name]):
            cumulative += self._buckets[name][idx]
            if cumulative >= target:
                if idx == _NONPOS_BUCKET:
                    return lo
                mid = _BUCKET_GROWTH ** (idx + 0.5)
                return min(max(mid, lo), hi)
        return hi

    def summary(self, name: str) -> dict[str, float] | None:
        stats = self._stats.get(name)
        if stats is None:
            return None
        count, total, lo, hi = stats
        out = {
            "count": count,
            "sum": total,
            "min": lo,
            "max": hi,
            "mean": total / count,
        }
        for label, q in SUMMARY_QUANTILES:
            out[label] = self.quantile(name, q)
        return out

    def as_dict(self) -> dict[str, float]:
        """Flattened ``{name_stat: value}`` view of every histogram."""
        out: dict[str, float] = {}
        for name in self._stats:
            for stat, value in self.summary(name).items():
                out[f"{name}_{stat}"] = value
        return out

    def __len__(self) -> int:
        return len(self._stats)
