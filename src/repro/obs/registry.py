"""Per-run counter and histogram aggregation.

These are the tracer's scalar side: while trace *events* capture the
temporal story, the registries reduce a run's activity to per-run
aggregates (samples lost, scan chunks touched, CBF ops, migration
batch sizes) that merge into ``ExperimentResult.policy_stats`` so
reports and benchmark tables can pick them up without parsing a trace
file.
"""

from __future__ import annotations

import math


class CounterRegistry:
    """Named monotonically increasing counters."""

    def __init__(self) -> None:
        self._counts: dict[str, float] = {}

    def inc(self, name: str, amount: float = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter increments must be >= 0, got {amount}")
        self._counts[name] = self._counts.get(name, 0) + amount

    def get(self, name: str) -> float:
        return self._counts.get(name, 0)

    def as_dict(self) -> dict[str, float]:
        return dict(self._counts)

    def __len__(self) -> int:
        return len(self._counts)


class HistogramRegistry:
    """Named streaming histograms (count/sum/min/max/mean, O(1) memory).

    Values are reduced on the fly -- no sample list is kept -- so the
    registries stay cheap enough to leave enabled for whole grids.
    """

    def __init__(self) -> None:
        self._stats: dict[str, list[float]] = {}  # [count, sum, min, max]

    def observe(self, name: str, value: float) -> None:
        value = float(value)
        if math.isnan(value):
            raise ValueError(f"cannot observe NaN in histogram {name!r}")
        stats = self._stats.get(name)
        if stats is None:
            self._stats[name] = [1.0, value, value, value]
        else:
            stats[0] += 1.0
            stats[1] += value
            stats[2] = min(stats[2], value)
            stats[3] = max(stats[3], value)

    def summary(self, name: str) -> dict[str, float] | None:
        stats = self._stats.get(name)
        if stats is None:
            return None
        count, total, lo, hi = stats
        return {
            "count": count,
            "sum": total,
            "min": lo,
            "max": hi,
            "mean": total / count,
        }

    def as_dict(self) -> dict[str, float]:
        """Flattened ``{name_stat: value}`` view of every histogram."""
        out: dict[str, float] = {}
        for name in self._stats:
            for stat, value in self.summary(name).items():
                out[f"{name}_{stat}"] = value
        return out

    def __len__(self) -> int:
        return len(self._stats)
