"""The tracer: typed events, counters and histograms behind one handle.

The simulation loop is instrumented against a single object so the
disabled case costs as close to nothing as python allows: the shared
:data:`NULL_TRACER` singleton's ``emit``/``count``/``observe`` are
no-ops, and hot paths guard event construction with
``if tracer.enabled:`` so a disabled run never even builds the kwargs
dict.

Timestamps are *virtual* (simulated ns).  Emitters that know the
current simulated time pass ``t_ns`` explicitly; emitters without a
clock of their own (e.g. :class:`~repro.memsim.machine.Machine`) rely
on :attr:`Tracer.clock_ns`, which the engine advances once per batch.
"""

from __future__ import annotations

import contextlib
import os
from typing import Iterable, Iterator

from repro.obs.events import validate_event
from repro.obs.registry import CounterRegistry, HistogramRegistry
from repro.obs.sinks import JsonlTraceSink, TraceSink


class Tracer:
    """Emits schema-validated events to sinks and aggregates registries.

    Parameters
    ----------
    sinks:
        Zero or more :class:`~repro.obs.sinks.TraceSink` destinations.
        A sink-less tracer still aggregates counters/histograms.
    validate:
        Validate every event against the schema at emit time (cheap;
        disable only for micro-benchmarks of the tracer itself).
    """

    enabled: bool = True

    def __init__(self, sinks: Iterable[TraceSink] = (), validate: bool = True):
        self.sinks: list[TraceSink] = list(sinks)
        self.validate = validate
        self.counters = CounterRegistry()
        self.histograms = HistogramRegistry()
        #: Virtual time fallback for emitters without their own clock.
        self.clock_ns: float = 0.0
        self._seq = 0

    # -- events -----------------------------------------------------------

    def emit(self, etype: str, t_ns: float | None = None, **fields) -> dict:
        """Emit one event; returns the event dict written to the sinks."""
        event = dict(fields)
        event["type"] = etype
        event["t_ns"] = float(self.clock_ns if t_ns is None else t_ns)
        event["seq"] = self._seq
        self._seq += 1
        if self.validate:
            validate_event(event)
        for sink in self.sinks:
            sink.write(event)
        return event

    # -- scalar aggregation ------------------------------------------------

    def count(self, name: str, amount: float = 1) -> None:
        self.counters.inc(name, amount)

    def observe(self, name: str, value: float) -> None:
        self.histograms.observe(name, value)

    def stats_dict(self) -> dict[str, float]:
        """Counters + flattened histograms, for ``policy_stats`` merging."""
        out = self.counters.as_dict()
        out.update(self.histograms.as_dict())
        return out

    # -- lifecycle ---------------------------------------------------------

    @property
    def events_emitted(self) -> int:
        return self._seq

    def close(self) -> None:
        for sink in self.sinks:
            sink.close()

    def __enter__(self) -> "Tracer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class NullTracer(Tracer):
    """The do-nothing default; every operation is a no-op.

    Instrumented code paths additionally guard on ``tracer.enabled``,
    so with this tracer the simulation loop's behaviour and timing are
    indistinguishable from untraced code.
    """

    enabled = False

    def __init__(self):
        super().__init__()

    def emit(self, etype: str, t_ns: float | None = None, **fields) -> dict:
        return {}

    def count(self, name: str, amount: float = 1) -> None:
        pass

    def observe(self, name: str, value: float) -> None:
        pass

    def stats_dict(self) -> dict[str, float]:
        return {}


#: Shared no-op tracer; safe to use as a default everywhere (stateless).
NULL_TRACER = NullTracer()


@contextlib.contextmanager
def trace_to(
    path: str | os.PathLike | None,
) -> Iterator[Tracer | None]:
    """Context manager: a JSONL-writing tracer for ``path``, or None.

    ``None`` paths yield ``None`` so call sites can thread an optional
    trace destination without branching::

        with trace_to(args.trace) as tracer:
            result = run_experiment(w, p, config, tracer=tracer)
    """
    if path is None:
        yield None
        return
    tracer = Tracer(sinks=[JsonlTraceSink(path)])
    try:
        yield tracer
    finally:
        tracer.close()
