"""Trace sinks: where emitted events go.

A sink is anything with ``write(event: dict)`` and ``close()``.  Two
implementations cover the practical needs:

- :class:`JsonlTraceSink` -- one JSON object per line on disk, the
  interchange format ``repro trace summarize`` / ``validate`` and
  :mod:`repro.analysis.tracetool` consume;
- :class:`ListSink` -- in-memory capture for tests and interactive
  analysis.
"""

from __future__ import annotations

import json
import os
from typing import IO, Iterable, Protocol


class TraceSink(Protocol):
    """Destination for trace events."""

    def write(self, event: dict) -> None: ...

    def close(self) -> None: ...


class ListSink:
    """Collects events in memory (``sink.events``)."""

    def __init__(self) -> None:
        self.events: list[dict] = []
        self.closed = False

    def write(self, event: dict) -> None:
        self.events.append(event)

    def close(self) -> None:
        self.closed = True

    def of_type(self, etype: str) -> list[dict]:
        return [e for e in self.events if e["type"] == etype]


class JsonlTraceSink:
    """Writes events as JSON Lines to ``path`` (or an open stream).

    Parent directories are created on demand; the file is truncated,
    so one sink == one run's trace.  Usable as a context manager.

    With ``durable=True`` every event is flushed to the OS as it is
    written and the file is fsynced on close, so a crash mid-run loses
    at most the final (possibly torn) line -- which
    ``repro trace validate`` tolerates.
    """

    def __init__(
        self,
        path: str | os.PathLike | None = None,
        stream: IO[str] | None = None,
        durable: bool = False,
    ):
        if (path is None) == (stream is None):
            raise ValueError("pass exactly one of path or stream")
        self.path = os.fspath(path) if path is not None else None
        self.durable = bool(durable)
        if self.path is not None:
            parent = os.path.dirname(self.path)
            if parent:
                os.makedirs(parent, exist_ok=True)
            self._fh: IO[str] = open(self.path, "w", encoding="utf-8")
            self._owns_fh = True
        else:
            self._fh = stream
            self._owns_fh = False
        self.events_written = 0

    def write(self, event: dict) -> None:
        self._fh.write(json.dumps(event, sort_keys=True, default=float))
        self._fh.write("\n")
        self.events_written += 1
        if self.durable:
            self._fh.flush()

    def close(self) -> None:
        if self._owns_fh and not self._fh.closed:
            if self.durable:
                self._fh.flush()
                try:
                    os.fsync(self._fh.fileno())
                except OSError:
                    pass  # stream has no real fd (e.g. a test double)
            self._fh.close()
        elif not self._owns_fh:
            self._fh.flush()

    def __enter__(self) -> "JsonlTraceSink":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def read_jsonl(path: str | os.PathLike) -> Iterable[dict]:
    """Yield events from a JSONL trace file (blank lines skipped)."""
    with open(path, encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                yield json.loads(line)
