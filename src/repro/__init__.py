"""FreqTier / HybridTier: adaptive, lightweight CXL-memory tiering.

A full reproduction of *"Lightweight Frequency-Based Tiering for CXL
Memory Systems"* (the arXiv preprint of **HybridTier**, ASPLOS 2025):
the FreqTier tiering system, the AutoNUMA / TPP / HeMem baselines, and
a trace-driven tiered-memory simulator standing in for the paper's
emulated-CXL testbed.

Quickstart::

    from repro import (
        CacheLibWorkload, CDN_PROFILE, ExperimentConfig,
        FreqTier, AutoNUMA, compare_policies,
    )

    config = ExperimentConfig(local_fraction=0.06, ratio_label="1:32")
    results = compare_policies(
        lambda: CacheLibWorkload(CDN_PROFILE, slab_pages=16384, seed=1),
        {"FreqTier": FreqTier, "AutoNUMA": AutoNUMA},
        config,
    )
    print(results["FreqTier"].summary())

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
per-table/figure reproduction index.
"""

from repro._units import (
    GiB,
    KiB,
    MiB,
    PAGE_SIZE,
    PAGES_PER_SIM_GB,
    SCALE_FACTOR,
    pages_to_sim_gb,
    sim_gb_to_pages,
)
from repro.cbf import (
    BlockedCountingBloomFilter,
    CountingBloomFilter,
    ExactFrequencyTracker,
    SampleCoalescer,
)
from repro.core import (
    CellSpec,
    ExperimentConfig,
    ExperimentResult,
    FailedCell,
    ParallelExecutor,
    PolicySpec,
    ResultCache,
    SimulationEngine,
    WorkloadSpec,
    compare_policies,
    run_all_local,
    run_cells,
    run_experiment,
    sweep,
)
from repro.faults import (
    FAULT_PRESETS,
    FaultInjector,
    FaultPlan,
    InjectedCrash,
    parse_fault_spec,
)
from repro.obs import (
    JsonlTraceSink,
    ListSink,
    NULL_TRACER,
    Tracer,
    trace_to,
    validate_event,
)
from repro.memsim import (
    CXL1_CONFIG,
    CXL2_CONFIG,
    LOCAL_DRAM,
    Machine,
    MachineConfig,
    TieredMemoryConfig,
    TierSpec,
)
from repro.state import (
    CheckpointManager,
    LoadedCheckpoint,
    Snapshot,
    SnapshotError,
    SweepJournal,
)
from repro.policies import (
    AllLocal,
    AutoNUMA,
    FreqTier,
    FreqTierConfig,
    HeMem,
    HybridTier,
    MultiClock,
    StaticNoMigration,
    TPP,
)
from repro.serve import (
    ServeConfig,
    TieringDaemon,
    VirtualTimeDriver,
    WatchdogGaveUp,
)
from repro.workloads import (
    CacheLibWorkload,
    CDN_PROFILE,
    GapWorkload,
    SOCIAL_PROFILE,
    SyntheticZipfWorkload,
    XGBoostWorkload,
    ZipfianSampler,
)

__version__ = "1.0.0"

__all__ = [
    "AllLocal",
    "AutoNUMA",
    "BlockedCountingBloomFilter",
    "CacheLibWorkload",
    "CDN_PROFILE",
    "CellSpec",
    "CheckpointManager",
    "CountingBloomFilter",
    "CXL1_CONFIG",
    "CXL2_CONFIG",
    "ExactFrequencyTracker",
    "ExperimentConfig",
    "ExperimentResult",
    "FailedCell",
    "FAULT_PRESETS",
    "FaultInjector",
    "FaultPlan",
    "FreqTier",
    "FreqTierConfig",
    "InjectedCrash",
    "GapWorkload",
    "GiB",
    "HeMem",
    "HybridTier",
    "JsonlTraceSink",
    "KiB",
    "ListSink",
    "LoadedCheckpoint",
    "LOCAL_DRAM",
    "Machine",
    "MachineConfig",
    "MiB",
    "MultiClock",
    "NULL_TRACER",
    "PAGE_SIZE",
    "PAGES_PER_SIM_GB",
    "ParallelExecutor",
    "PolicySpec",
    "ResultCache",
    "SampleCoalescer",
    "SCALE_FACTOR",
    "ServeConfig",
    "SimulationEngine",
    "Snapshot",
    "SnapshotError",
    "SOCIAL_PROFILE",
    "StaticNoMigration",
    "SweepJournal",
    "SyntheticZipfWorkload",
    "TieredMemoryConfig",
    "TieringDaemon",
    "TierSpec",
    "TPP",
    "Tracer",
    "VirtualTimeDriver",
    "WatchdogGaveUp",
    "WorkloadSpec",
    "XGBoostWorkload",
    "ZipfianSampler",
    "compare_policies",
    "pages_to_sim_gb",
    "parse_fault_spec",
    "run_all_local",
    "run_cells",
    "run_experiment",
    "sim_gb_to_pages",
    "sweep",
    "trace_to",
    "validate_event",
]
