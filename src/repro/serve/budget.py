"""Per-tick deadline budgets and the graceful-degradation ladder.

Two small state machines the daemon consults every tick:

- :class:`TickBudget` charges each serviced batch's *policy overhead*
  (simulated ns, from :class:`~repro.core.engine.StepOutcome`) against
  a per-tick allowance.  Once exhausted, the tick's remaining batches
  are serviced with the policy switched off -- the tail of a tick can
  never blow the latency deadline because of an expensive policy pass.

- :class:`DegradationLadder` converts a per-tick overload verdict
  (queue fill above the high watermark, or a blown budget) into a mode
  walk down :data:`~repro.serve.config.DEGRADATION_MODES`, and a calm
  verdict into a walk back up -- both gated by consecutive-tick
  hysteresis so one noisy tick cannot flap the mode.
"""

from __future__ import annotations

from typing import Any

from repro.serve.config import DEGRADATION_MODES, ServeConfig


class TickBudget:
    """Policy-overhead allowance for one tick (virtual ns)."""

    def __init__(self, budget_ns: float):
        if budget_ns < 0:
            raise ValueError(f"budget_ns must be >= 0, got {budget_ns}")
        self.budget_ns = float(budget_ns)
        self.spent_ns = 0.0

    @property
    def enabled(self) -> bool:
        return self.budget_ns > 0

    @property
    def exceeded(self) -> bool:
        return self.enabled and self.spent_ns > self.budget_ns

    def charge(self, overhead_ns: float) -> None:
        self.spent_ns += float(overhead_ns)

    def reset(self, budget_ns: float | None = None) -> None:
        if budget_ns is not None:
            self.budget_ns = float(budget_ns)
        self.spent_ns = 0.0


class DegradationLadder:
    """Hysteresis-gated walk over the degradation modes.

    :meth:`observe_tick` is called once per tick with that tick's
    overload evidence; it returns the ``(old, new)`` mode pair when the
    mode changed (so the daemon can emit a ``degraded`` event) or
    ``None``.  Overload streaks step one rung *down* per
    ``degrade_after_ticks`` consecutive overloaded ticks; calm streaks
    step one rung *up* per ``promote_after_ticks`` consecutive calm
    ticks.  Ticks that are neither (fill between the watermarks) reset
    both streaks -- ambiguous pressure holds the current rung.
    """

    def __init__(self, config: ServeConfig):
        self.config = config
        self.mode = DEGRADATION_MODES[0]
        self.overloaded_streak = 0
        self.calm_streak = 0

    @property
    def rung(self) -> int:
        return DEGRADATION_MODES.index(self.mode)

    def observe_tick(
        self, fill_fraction: float, budget_exceeded: bool
    ) -> tuple[str, str] | None:
        cfg = self.config
        overloaded = budget_exceeded or fill_fraction >= cfg.degrade_queue_high
        calm = not budget_exceeded and fill_fraction <= cfg.promote_queue_low
        if overloaded:
            self.overloaded_streak += 1
            self.calm_streak = 0
            if (
                self.overloaded_streak >= cfg.degrade_after_ticks
                and self.rung < len(DEGRADATION_MODES) - 1
            ):
                old = self.mode
                self.mode = DEGRADATION_MODES[self.rung + 1]
                self.overloaded_streak = 0
                return old, self.mode
        elif calm:
            self.calm_streak += 1
            self.overloaded_streak = 0
            if self.calm_streak >= cfg.promote_after_ticks and self.rung > 0:
                old = self.mode
                self.mode = DEGRADATION_MODES[self.rung - 1]
                self.calm_streak = 0
                return old, self.mode
        else:
            self.overloaded_streak = 0
            self.calm_streak = 0
        return None

    # -- per-rung behaviour ------------------------------------------------

    @property
    def migrations_enabled(self) -> bool:
        """Migrations run only on the top rung."""
        return self.mode == "full"

    def invoke_policy(self, batch_index: int) -> bool:
        """Whether the policy runs for the ``batch_index``-th batch of
        the current tick (0-based)."""
        if self.mode in ("full", "defer_migrations"):
            return True
        if self.mode == "sample_only":
            return batch_index % self.config.sample_only_stride == 0
        return False  # monitor_only

    # -- checkpointing -----------------------------------------------------

    def state_dict(self) -> dict[str, Any]:
        return {
            "mode": self.mode,
            "overloaded_streak": self.overloaded_streak,
            "calm_streak": self.calm_streak,
        }

    def load_state(self, state: dict[str, Any]) -> None:
        mode = state["mode"]
        if mode not in DEGRADATION_MODES:
            raise ValueError(
                f"unknown degradation mode {mode!r}; "
                f"known: {DEGRADATION_MODES}"
            )
        self.mode = mode
        self.overloaded_streak = int(state.get("overloaded_streak", 0))
        self.calm_streak = int(state.get("calm_streak", 0))
