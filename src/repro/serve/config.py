"""Serving-daemon configuration: queues, budgets, ladder, watchdog.

One :class:`ServeConfig` carries every tunable of the online tiering
loop.  It is JSON round-trippable (``to_dict``/``from_dict``) because
the daemon supports **hot-swapping** it between ticks -- a live
deployment retunes its backpressure or budget without a restart -- and
because the CLI accepts it inline.

The **degradation ladder** is the graceful-overload story: under
sustained pressure the daemon steps down

    full -> defer_migrations -> sample_only -> monitor_only

shedding progressively more policy work per rung (migrations gated,
then policy invoked only every Nth batch, then never) while accesses
keep being serviced, and climbs back up rung by rung once calm --
with hysteresis so a noisy load cannot make it oscillate.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any

#: Backpressure modes for the bounded per-tenant request queues.
#: - ``block``: a full queue refuses the offer and the producer must
#:   retry (the driver holds the batch; async submitters await);
#: - ``shed-oldest``: a full queue evicts its oldest entry to admit
#:   the new one (freshness wins; the evicted request is counted shed);
#: - ``reject``: a full queue refuses and *drops* the offer (the
#:   client sees the rejection; counted rejected).
BACKPRESSURE_MODES = ("block", "shed-oldest", "reject")

#: Degradation-ladder rungs, least to most degraded.  ``full`` runs
#: the policy on every batch with migrations enabled;
#: ``defer_migrations`` still runs the policy but gates all page
#: moves; ``sample_only`` additionally invokes the policy only every
#: ``sample_only_stride``-th batch; ``monitor_only`` never invokes it
#: (pure access accounting).
DEGRADATION_MODES = (
    "full",
    "defer_migrations",
    "sample_only",
    "monitor_only",
)


@dataclass
class ServeConfig:
    """Tunables of one :class:`~repro.serve.daemon.TieringDaemon`."""

    # --- queues / backpressure ---
    #: Bounded depth of each tenant's request queue.
    queue_capacity: int = 64
    #: One of :data:`BACKPRESSURE_MODES`.
    backpressure: str = "shed-oldest"

    # --- per-tick deadline budget ---
    #: Policy-overhead budget per tick (simulated ns).  Once a tick's
    #: cumulative policy overhead crosses it, remaining batches of the
    #: tick are serviced without policy work and a ``deadline_exceeded``
    #: event fires.  0 disables the deadline.
    tick_budget_ns: float = 0.0
    #: Hard cap on batches serviced per tick (bounds tick latency even
    #: in monitor-only mode).
    max_batches_per_tick: int = 8

    # --- degradation ladder (hysteresis both ways) ---
    #: A tick counts as overloaded when the aggregate queue fill
    #: fraction at tick end is >= this (or its budget was exceeded).
    degrade_queue_high: float = 0.75
    #: A tick counts as calm when the fill fraction stays <= this and
    #: the budget held.
    promote_queue_low: float = 0.25
    #: Consecutive overloaded ticks before stepping one rung down.
    degrade_after_ticks: int = 3
    #: Consecutive calm ticks before re-promoting one rung up.
    promote_after_ticks: int = 8
    #: In ``sample_only`` mode the policy runs every Nth batch.
    sample_only_stride: int = 4

    # --- watchdog / recovery ---
    #: Restarts the watchdog allows before giving up (raising
    #: :class:`~repro.serve.watchdog.WatchdogGaveUp`).
    max_restarts: int = 3
    #: Wall-clock heartbeat gap (seconds) after which the async
    #: watchdog task declares the loop stalled.  0 disables stall
    #: detection (the virtual-time driver relies on crash detection
    #: only -- virtual loops have no wall-clock contract).
    watchdog_stall_s: float = 0.0

    # --- checkpointing ---
    #: Save a daemon checkpoint every N ticks (0 = only the final
    #: drain checkpoint; needs a checkpoint directory either way).
    checkpoint_every_ticks: int = 0

    def __post_init__(self) -> None:
        if self.queue_capacity < 1:
            raise ValueError(
                f"queue_capacity must be >= 1, got {self.queue_capacity}"
            )
        if self.backpressure not in BACKPRESSURE_MODES:
            raise ValueError(
                f"backpressure must be one of {BACKPRESSURE_MODES}, "
                f"got {self.backpressure!r}"
            )
        if self.tick_budget_ns < 0:
            raise ValueError(
                f"tick_budget_ns must be >= 0, got {self.tick_budget_ns}"
            )
        if self.max_batches_per_tick < 1:
            raise ValueError(
                "max_batches_per_tick must be >= 1, got "
                f"{self.max_batches_per_tick}"
            )
        if not 0.0 <= self.promote_queue_low <= self.degrade_queue_high <= 1.0:
            raise ValueError(
                "need 0 <= promote_queue_low <= degrade_queue_high <= 1, got "
                f"low={self.promote_queue_low} high={self.degrade_queue_high}"
            )
        if self.degrade_after_ticks < 1:
            raise ValueError(
                f"degrade_after_ticks must be >= 1, got {self.degrade_after_ticks}"
            )
        if self.promote_after_ticks < 1:
            raise ValueError(
                f"promote_after_ticks must be >= 1, got {self.promote_after_ticks}"
            )
        if self.sample_only_stride < 1:
            raise ValueError(
                f"sample_only_stride must be >= 1, got {self.sample_only_stride}"
            )
        if self.max_restarts < 0:
            raise ValueError(
                f"max_restarts must be >= 0, got {self.max_restarts}"
            )
        if self.watchdog_stall_s < 0:
            raise ValueError(
                f"watchdog_stall_s must be >= 0, got {self.watchdog_stall_s}"
            )
        if self.checkpoint_every_ticks < 0:
            raise ValueError(
                "checkpoint_every_ticks must be >= 0, got "
                f"{self.checkpoint_every_ticks}"
            )

    # -- round-trip --------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "ServeConfig":
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown ServeConfig fields {sorted(unknown)}; "
                f"known: {sorted(known)}"
            )
        return cls(**data)

    def replace(self, **overrides: Any) -> "ServeConfig":
        return dataclasses.replace(self, **overrides)
