"""Online serving: daemon, backpressure, budgets, watchdog, driver.

The offline engine answers "what would this policy have done over this
trace"; :mod:`repro.serve` answers "what does it do *live*, under
load, with failures".  See docs/API.md "Serving & overload
protection".
"""

from repro.serve.budget import DegradationLadder, TickBudget
from repro.serve.config import (
    BACKPRESSURE_MODES,
    DEGRADATION_MODES,
    ServeConfig,
)
from repro.serve.daemon import (
    MultiTenantLayout,
    TickReport,
    TieringDaemon,
)
from repro.serve.driver import VirtualTimeDriver
from repro.serve.queues import QueuedBatch, TenantQueue, aggregate_depth
from repro.serve.watchdog import Watchdog, WatchdogGaveUp

__all__ = [
    "BACKPRESSURE_MODES",
    "DEGRADATION_MODES",
    "DegradationLadder",
    "MultiTenantLayout",
    "QueuedBatch",
    "ServeConfig",
    "TenantQueue",
    "TickBudget",
    "TickReport",
    "TieringDaemon",
    "VirtualTimeDriver",
    "Watchdog",
    "WatchdogGaveUp",
    "aggregate_depth",
]
