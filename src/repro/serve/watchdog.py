"""Crash/stall detection and restart accounting for the daemon loop.

The :class:`Watchdog` does not itself run the recovery -- the daemon's
``recover()`` rebuilds the engine from the newest checkpoint -- it is
the *accountant*: it decides whether another restart is allowed
(bounded by ``max_restarts``, raising :class:`WatchdogGaveUp` past the
budget) and, for the asyncio loop, watches a wall-clock heartbeat to
flag a stalled tick that never raised.

Crash detection in the virtual-time driver is purely exceptional: a
tick that raises (e.g. :class:`~repro.faults.InjectedCrash`) is caught
by ``tick_guarded()`` and routed here.  Wall-clock stall detection is
only armed in the asyncio serving mode (``watchdog_stall_s > 0``) --
the deterministic driver has no wall-clock contract.
"""

from __future__ import annotations

import time
from typing import Any


class WatchdogGaveUp(RuntimeError):
    """The loop crashed more times than ``max_restarts`` allows."""

    def __init__(self, restarts: int, last_reason: str):
        super().__init__(
            f"watchdog gave up after {restarts} restart(s); "
            f"last failure: {last_reason}"
        )
        self.restarts = restarts
        self.last_reason = last_reason


class Watchdog:
    """Restart budget plus optional wall-clock heartbeat."""

    def __init__(self, max_restarts: int, stall_timeout_s: float = 0.0):
        if max_restarts < 0:
            raise ValueError(f"max_restarts must be >= 0, got {max_restarts}")
        if stall_timeout_s < 0:
            raise ValueError(
                f"stall_timeout_s must be >= 0, got {stall_timeout_s}"
            )
        self.max_restarts = int(max_restarts)
        self.stall_timeout_s = float(stall_timeout_s)
        self.restarts = 0
        self.last_reason: str | None = None
        self._last_beat = time.monotonic()

    # -- crash path --------------------------------------------------------

    def on_failure(self, reason: str) -> int:
        """Record one loop failure; returns the restart ordinal.

        Raises :class:`WatchdogGaveUp` when the budget is exhausted --
        the caller must let that propagate (a supervisor above the
        daemon owns the terminal decision).
        """
        self.last_reason = reason
        if self.restarts >= self.max_restarts:
            raise WatchdogGaveUp(self.restarts, reason)
        self.restarts += 1
        return self.restarts

    # -- stall path (asyncio serving only) ---------------------------------

    def beat(self) -> None:
        """Mark loop liveness (called at every tick boundary)."""
        self._last_beat = time.monotonic()

    @property
    def stalled(self) -> bool:
        """True when the heartbeat is older than the stall timeout."""
        if self.stall_timeout_s <= 0:
            return False
        return time.monotonic() - self._last_beat > self.stall_timeout_s

    # -- checkpointing -----------------------------------------------------

    def state_dict(self) -> dict[str, Any]:
        """Restart accounting only (heartbeat is wall-clock ephemera)."""
        return {"restarts": self.restarts, "last_reason": self.last_reason}

    def load_state(self, state: dict[str, Any]) -> None:
        self.restarts = int(state.get("restarts", 0))
        self.last_reason = state.get("last_reason")
        self._last_beat = time.monotonic()
