"""Deterministic virtual-time harness around a :class:`TieringDaemon`.

The driver replaces wall-clock producers with a fixed arrival
schedule: each *round* it offers ``arrivals`` batches per tenant
(pulled from that tenant's own workload stream), then runs exactly one
guarded daemon tick.  Nothing reads the wall clock, so two runs with
the same factories, schedule and serve config produce bit-identical
traces, SLO quantiles and engine state -- the property the chaos soak
test leans on.

Crash recovery replay
---------------------

When a tick crashes, the daemon rolls back to its newest checkpoint
and drops its (now inconsistent) queue entries.  The driver then
*resyncs*: it rebuilds each tenant's stream from the daemon's rebuilt
workloads, skips the disposed prefix (``served + shed`` -- both
dispose strictly from the FIFO front, so under ``block`` and
``shed-oldest`` backpressure the disposed set is exactly the oldest
offered batches), re-offers the checkpointed backlog depth, and
continues the schedule.  The engine then replays the identical batch
sequence, so its post-drain state converges bit-identically with an
uncrashed run.  ``reject`` backpressure refuses the *newest* offers
and therefore breaks the prefix property -- replay under it is
best-effort, not exact.
"""

from __future__ import annotations

from collections.abc import Callable, Iterator

from repro.core.metrics import ExperimentResult
from repro.sampling.events import AccessBatch

from repro.serve.daemon import TickReport, TieringDaemon
from repro.serve.queues import aggregate_depth

#: ``arrivals(round, tenant) -> offers this round`` schedule signature.
ArrivalSchedule = Callable[[int, str], int]


class VirtualTimeDriver:
    """Feeds tenant streams into a daemon on a deterministic schedule."""

    def __init__(
        self,
        daemon: TieringDaemon,
        arrivals: int | ArrivalSchedule = 1,
        max_offers: int | None = None,
    ):
        """``max_offers`` bounds how many batches each tenant's stream
        supplies in total -- the way to run an unbounded generator
        (e.g. Zipf serving) to a finite, drainable conclusion."""
        self.daemon = daemon
        if callable(arrivals):
            self._arrivals: ArrivalSchedule = arrivals
        else:
            rate = int(arrivals)
            if rate < 0:
                raise ValueError(f"arrivals must be >= 0, got {arrivals}")
            self._arrivals = lambda _round, _tenant: rate
        if max_offers is not None and max_offers < 0:
            raise ValueError(f"max_offers must be >= 0, got {max_offers}")
        self.max_offers = max_offers
        self.round = 0
        self.reports: list[TickReport] = []
        self.restarts_seen = 0
        self._streams: dict[str, Iterator[AccessBatch]] = {}
        self._pending: dict[str, AccessBatch | None] = {}
        self._pulled: dict[str, int] = {}
        self._exhausted: set[str] = set()
        self._reset_streams()

    def _reset_streams(self) -> None:
        self._streams = {
            tenant: workload.batches()
            for tenant, workload in self.daemon.tenants.items()
        }
        self._pending = {tenant: None for tenant in self._streams}
        self._pulled = {tenant: 0 for tenant in self._streams}
        self._exhausted = set()

    # -- intake schedule ---------------------------------------------------

    def _next_batch(self, tenant: str) -> AccessBatch | None:
        held = self._pending[tenant]
        if held is not None:
            self._pending[tenant] = None
            return held
        if tenant in self._exhausted:
            return None
        if (
            self.max_offers is not None
            and self._pulled[tenant] >= self.max_offers
        ):
            self._exhausted.add(tenant)
            return None
        batch = next(self._streams[tenant], None)
        if batch is None:
            self._exhausted.add(tenant)
            return None
        self._pulled[tenant] += 1
        return batch

    def offer_round(self) -> int:
        """Offer this round's arrivals; returns batches admitted.

        In ``block`` backpressure a refused offer is *held* -- the
        driver re-offers it next round before pulling fresh batches,
        modelling a producer that retries instead of dropping.
        """
        admitted = 0
        for tenant in sorted(self._streams):
            for _ in range(self._arrivals(self.round, tenant)):
                batch = self._next_batch(tenant)
                if batch is None:
                    break
                outcome = self.daemon.submit(tenant, batch)
                if outcome == "blocked":
                    self._pending[tenant] = batch
                    break
                if outcome == "enqueued":
                    admitted += 1
        return admitted

    # -- crash resync ------------------------------------------------------

    def _resync(self) -> None:
        """Re-derive streams and backlog after a watchdog restart."""
        self.restarts_seen += 1
        self._reset_streams()
        for tenant in sorted(self._streams):
            queue = self.daemon.queues[tenant]
            counters = queue.counters
            disposed = counters.served + counters.shed
            stream = self._streams[tenant]
            for _ in range(disposed):
                if next(stream, None) is None:
                    self._exhausted.add(tenant)
                    break
            self._pulled[tenant] = disposed
            # The backlog that was in-queue at checkpoint time: the
            # next `depth` stream items.  Re-offer them directly (the
            # queue is empty post-recovery, so they always fit).
            for _ in range(queue.restored_depth):
                batch = self._next_batch(tenant)
                if batch is None:
                    break
                self.daemon.submit(tenant, batch)
            queue.restored_depth = 0

    # -- stepping ----------------------------------------------------------

    def step(self) -> TickReport | None:
        """One round: offer arrivals, then run one guarded tick.

        Returns the tick's report, or ``None`` when the tick crashed
        and the daemon was restored (the driver has already resynced;
        the next :meth:`step` continues the schedule)."""
        self.offer_round()
        report = self.daemon.tick_guarded()
        if report is None:
            self._resync()
        else:
            self.reports.append(report)
        self.round += 1
        return report

    def run(self, rounds: int) -> list[TickReport]:
        """Run a fixed number of rounds; returns their reports."""
        start = len(self.reports)
        for _ in range(rounds):
            self.step()
        return self.reports[start:]

    @property
    def streams_exhausted(self) -> bool:
        return (
            len(self._exhausted) == len(self._streams)
            and all(batch is None for batch in self._pending.values())
        )

    def run_until_drained(self, max_rounds: int = 1_000_000) -> int:
        """Step until every stream is exhausted and every queue empty.

        Returns the number of rounds executed.  Raises ``RuntimeError``
        past ``max_rounds`` -- a daemon stuck in monitor-only mode
        with zero throughput would otherwise spin forever.
        """
        executed = 0
        while not (
            self.streams_exhausted
            and aggregate_depth(self.daemon.queues).depth == 0
        ):
            if executed >= max_rounds:
                raise RuntimeError(
                    f"not drained after {max_rounds} rounds "
                    f"(depth={aggregate_depth(self.daemon.queues).depth})"
                )
            self.step()
            executed += 1
        return executed

    def finish(self, warmup_fraction: float = 0.0) -> ExperimentResult | None:
        """Drain, emit ``drain_complete`` + final checkpoint, reduce.

        Convenience tail for CLI/tests: drains whatever is left (with
        crash resync), then delegates to the daemon's drain/finalize.
        """
        self.run_until_drained()
        self.daemon.drain()
        return self.daemon.finalize(warmup_fraction=warmup_fraction)
