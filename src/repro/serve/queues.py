"""Bounded per-tenant request queues with configurable backpressure.

Each tenant (client stream) owns one :class:`TenantQueue` of pending
:class:`QueuedBatch` entries.  The queue is the overload boundary: a
producer that outruns the daemon hits the configured backpressure mode
(``block`` / ``shed-oldest`` / ``reject``, see
:data:`~repro.serve.config.BACKPRESSURE_MODES`) instead of growing an
unbounded backlog.

Determinism: entries carry the *virtual* enqueue timestamp (the
engine's ``now_ns`` at admission), so enqueue-to-service latency is a
pure function of the simulated schedule -- the SLO quantiles the
daemon reports are bit-reproducible.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any

from repro.sampling.events import AccessBatch

from repro.serve.config import BACKPRESSURE_MODES


@dataclass
class QueuedBatch:
    """One admitted request: an access batch plus queueing metadata."""

    batch: AccessBatch
    tenant: str
    #: Per-tenant admission index (0-based over every batch this tenant
    #: ever *offered*, shed or not) -- the replay cursor crash recovery
    #: uses to re-derive the backlog.
    index: int
    #: Virtual time at admission (engine ``now_ns``).
    enqueued_ns: float = 0.0


@dataclass
class QueueCounters:
    """Monotonic per-tenant accounting (checkpointed)."""

    offered: int = 0
    enqueued: int = 0
    served: int = 0
    shed: int = 0
    rejected: int = 0
    blocked: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "offered": self.offered,
            "enqueued": self.enqueued,
            "served": self.served,
            "shed": self.shed,
            "rejected": self.rejected,
            "blocked": self.blocked,
        }


class TenantQueue:
    """One tenant's bounded FIFO with backpressure accounting.

    :meth:`offer` returns the admission outcome:

    - ``"enqueued"`` -- admitted (possibly after shedding the oldest
      entry in ``shed-oldest`` mode; the shed count moves separately);
    - ``"blocked"``  -- queue full in ``block`` mode; the caller still
      owns the batch and must re-offer it later;
    - ``"rejected"`` -- queue full in ``reject`` mode; the batch is
      dropped and the client is expected to observe the refusal.
    """

    def __init__(self, tenant: str, capacity: int, backpressure: str):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if backpressure not in BACKPRESSURE_MODES:
            raise ValueError(
                f"backpressure must be one of {BACKPRESSURE_MODES}, "
                f"got {backpressure!r}"
            )
        self.tenant = tenant
        self.capacity = int(capacity)
        self.backpressure = backpressure
        self.counters = QueueCounters()
        #: Depth recorded in the checkpoint this queue was last
        #: restored from (0 otherwise).  Crash recovery re-offers this
        #: many regenerated batches to rebuild the lost backlog.
        self.restored_depth = 0
        self._entries: deque[QueuedBatch] = deque()

    # -- intake ------------------------------------------------------------

    def offer(self, batch: AccessBatch, now_ns: float) -> tuple[str, int]:
        """Offer one batch; returns ``(outcome, shed_count)``.

        ``shed_count`` is how many older entries were evicted to admit
        this one (only ever nonzero in ``shed-oldest`` mode).
        """
        shed = 0
        if len(self._entries) >= self.capacity:
            if self.backpressure == "block":
                self.counters.blocked += 1
                return "blocked", 0
            if self.backpressure == "reject":
                self.counters.offered += 1
                self.counters.rejected += 1
                return "rejected", 0
            # shed-oldest: evict from the front until there is room.
            while len(self._entries) >= self.capacity:
                self._entries.popleft()
                self.counters.shed += 1
                shed += 1
        index = self.counters.offered
        self.counters.offered += 1
        self.counters.enqueued += 1
        self._entries.append(
            QueuedBatch(
                batch=batch, tenant=self.tenant, index=index,
                enqueued_ns=now_ns,
            )
        )
        return "enqueued", shed

    # -- service -----------------------------------------------------------

    def pop(self) -> QueuedBatch | None:
        """Dequeue the oldest pending entry (None when empty).

        The caller must account the service via ``counters.served``
        only after the batch was actually processed -- the daemon does
        this post-:meth:`~repro.core.engine.SimulationEngine.step` so a
        crash mid-step replays the batch instead of losing it.
        """
        if not self._entries:
            return None
        return self._entries.popleft()

    def clear(self) -> int:
        """Drop every pending entry (watchdog recovery); returns count."""
        dropped = len(self._entries)
        self._entries.clear()
        return dropped

    # -- introspection -----------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def fill_fraction(self) -> float:
        return len(self._entries) / self.capacity

    # -- checkpointing -----------------------------------------------------

    def state_dict(self) -> dict[str, Any]:
        """Counters + depth -- the entries themselves are *not* captured.

        Pending batches reference live workload-generator output; the
        crash-recovery driver regenerates them from the per-tenant
        stream using the counters as replay cursors: disposed =
        served + shed is a prefix of the offered stream under ``block``
        and ``shed-oldest`` backpressure (both dispose strictly from
        the FIFO front), and ``depth`` entries follow it.
        """
        return {
            "counters": self.counters.as_dict(),
            "depth": len(self._entries),
        }

    def load_state(self, state: dict[str, Any]) -> None:
        counters = state["counters"]
        self.counters = QueueCounters(**{
            key: int(counters.get(key, 0))
            for key in QueueCounters().as_dict()
        })
        self.restored_depth = int(state.get("depth", 0))
        self._entries.clear()


@dataclass
class QueueSetSnapshot:
    """Aggregate view over every tenant queue at one instant."""

    depth: int
    capacity: int
    fill_fraction: float = field(default=0.0)

    def __post_init__(self) -> None:
        self.fill_fraction = (
            self.depth / self.capacity if self.capacity else 0.0
        )


def aggregate_depth(queues: dict[str, TenantQueue]) -> QueueSetSnapshot:
    """Total backlog across tenants (the ladder's overload signal)."""
    depth = sum(len(q) for q in queues.values())
    capacity = sum(q.capacity for q in queues.values())
    return QueueSetSnapshot(depth=depth, capacity=capacity)
