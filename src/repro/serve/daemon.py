"""The online tiering daemon: engine + policy behind tenant queues.

:class:`TieringDaemon` wraps a :class:`~repro.core.engine.SimulationEngine`
in a long-lived serving loop.  Clients :meth:`~TieringDaemon.submit`
access batches into bounded per-tenant queues; each
:meth:`~TieringDaemon.tick` drains up to ``max_batches_per_tick`` of
them round-robin through :meth:`~repro.core.engine.SimulationEngine.step`,
charging policy overhead against a per-tick deadline budget and
consulting the degradation ladder for how much policy work the current
load affords.  A watchdog catches crashed ticks and restores the whole
stack -- engine, policy, ladder, queue accounting -- from the newest
durable checkpoint.

Everything observable is virtual-time: enqueue-to-service latency is
measured on the engine clock, so the daemon's SLO quantiles (p50/p99/
p999) are bit-reproducible under the
:class:`~repro.serve.driver.VirtualTimeDriver`.  The asyncio front-end
(:meth:`~TieringDaemon.serve_forever`) adds wall-clock concerns --
signal-triggered graceful drain, heartbeat stall detection -- without
touching the deterministic core.
"""

from __future__ import annotations

import asyncio
import signal
from collections.abc import Callable, Iterator
from dataclasses import dataclass
from typing import Any

from repro.core.config import ExperimentConfig
from repro.core.engine import SimulationEngine
from repro.core.metrics import ExperimentResult
from repro.core.runner import build_machine
from repro.faults import FaultInjector, FaultPlan
from repro.memsim.machine import Machine
from repro.obs import NULL_TRACER, Tracer
from repro.obs.registry import HistogramRegistry
from repro.policies.base import TieringPolicy
from repro.sampling.events import AccessBatch
from repro.state import CheckpointManager
from repro.workloads.spec import Workload

from repro.serve.budget import DegradationLadder, TickBudget
from repro.serve.config import DEGRADATION_MODES, ServeConfig
from repro.serve.queues import TenantQueue, aggregate_depth
from repro.serve.watchdog import Watchdog

WorkloadFactory = Callable[[], Workload]
PolicyFactory = Callable[[], TieringPolicy]


class MultiTenantLayout(Workload):
    """Adapter workload: lays out every tenant on one machine.

    The engine requires a workload for setup/identity, but the daemon
    never pulls batches from it -- batches arrive through the tenant
    queues.  This adapter allocates each tenant's regions (in sorted
    tenant order, so layout is independent of dict insertion order)
    and reports the summed footprint.
    """

    def __init__(self, tenants: dict[str, Workload]):
        if not tenants:
            raise ValueError("daemon needs at least one tenant workload")
        super().__init__(seed=0)
        self.tenants = dict(sorted(tenants.items()))
        self.name = "serve[" + ",".join(
            f"{tenant}:{w.name}" for tenant, w in self.tenants.items()
        ) + "]"

    @property
    def footprint_pages(self) -> int:
        return sum(w.footprint_pages for w in self.tenants.values())

    def setup(self, machine: Machine) -> None:
        for workload in self.tenants.values():
            workload.setup(machine)
        self._machine = machine

    def batches(self) -> Iterator[AccessBatch]:
        return iter(())


@dataclass(frozen=True)
class TickReport:
    """What one daemon tick did (returned by :meth:`TieringDaemon.tick`)."""

    tick: int
    mode: str
    served: int
    queue_depth_start: int
    queue_depth_end: int
    budget_exceeded: bool
    mode_change: tuple[str, str] | None
    elapsed_ns: float


class TieringDaemon:
    """Long-lived tiering service over one engine and N tenant queues.

    Parameters mirror :func:`~repro.core.runner.run_experiment` where
    they overlap; the serving-specific knobs live in ``serve``.  The
    daemon owns its checkpoint manager (payloads bundle engine *and*
    serving state) -- do not also give the engine one.
    """

    def __init__(
        self,
        workload_factories: dict[str, WorkloadFactory],
        policy_factory: PolicyFactory,
        config: ExperimentConfig,
        serve: ServeConfig | None = None,
        tracer: Tracer | None = None,
        faults: FaultPlan | None = None,
        checkpoint_dir: str | None = None,
    ):
        if not workload_factories:
            raise ValueError("daemon needs at least one tenant workload")
        self.workload_factories = dict(sorted(workload_factories.items()))
        self.policy_factory = policy_factory
        self.config = config
        self.serve = serve if serve is not None else ServeConfig()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.fault_plan = faults
        self.checkpoint_manager = (
            CheckpointManager(checkpoint_dir)
            if checkpoint_dir is not None
            else None
        )
        self.ladder = DegradationLadder(self.serve)
        self.budget = TickBudget(self.serve.tick_budget_ns)
        self.watchdog = Watchdog(
            self.serve.max_restarts, self.serve.watchdog_stall_s
        )
        #: SLO aggregation, live regardless of tracing: enqueue-to-
        #: service latency, per-tick policy overhead, queue depth.
        self.slo = HistogramRegistry()
        self.ticks = 0
        self.deadline_ticks = 0
        self.degradations = 0
        self.promotions = 0
        self.config_swaps = 0
        self.migration_stall_ns = 0.0
        self._pending_serve: dict[str, Any] | None = None
        self._pending_policy: dict[str, Any] | None = None
        self._stop_requested = False
        self._build()

    # -- construction / recovery -------------------------------------------

    def _build(self) -> None:
        """(Re)build the engine stack fresh from the factories.

        Called at construction and by :meth:`recover` -- the watchdog's
        restart path needs a from-scratch stack before restoring the
        checkpoint, exactly like a new process would.
        """
        tenants = {
            name: factory() for name, factory in self.workload_factories.items()
        }
        layout = MultiTenantLayout(tenants)
        machine = build_machine(layout.footprint_pages, self.config)
        injector = None
        if self.fault_plan is not None and self.fault_plan.active:
            injector = FaultInjector(
                self.fault_plan, machine.config.total_capacity_pages
            )
        self.engine = SimulationEngine(
            machine,
            layout,
            self.policy_factory(),
            tracer=self.tracer,
            fault_injector=injector,
        )
        self.engine.setup()
        self.queues = {
            name: TenantQueue(
                name, self.serve.queue_capacity, self.serve.backpressure
            )
            for name in self.workload_factories
        }

    @property
    def tenants(self) -> dict[str, Workload]:
        return self.engine.workload.tenants

    @property
    def now_ns(self) -> float:
        return self.engine.now_ns

    @property
    def mode(self) -> str:
        return self.ladder.mode

    # -- intake ------------------------------------------------------------

    def submit(self, tenant: str, batch: AccessBatch) -> str:
        """Offer one batch; returns the admission outcome.

        ``"enqueued"`` / ``"rejected"`` / ``"blocked"`` per the
        configured backpressure (see
        :class:`~repro.serve.queues.TenantQueue`); shedding to admit is
        reported as ``"enqueued"`` with a ``load_shed`` trace event for
        the evicted entries.
        """
        queue = self.queues[tenant]
        outcome, shed = queue.offer(batch, self.engine.now_ns)
        if self.tracer.enabled:
            if shed:
                self.tracer.emit(
                    "load_shed",
                    t_ns=self.engine.now_ns,
                    tenant=tenant,
                    count=shed,
                    reason="shed_oldest",
                )
            elif outcome == "rejected":
                self.tracer.emit(
                    "load_shed",
                    t_ns=self.engine.now_ns,
                    tenant=tenant,
                    count=1,
                    reason="reject",
                )
        return outcome

    async def submit_async(
        self, tenant: str, batch: AccessBatch, poll_s: float = 0.001
    ) -> str:
        """Async submit that awaits space in ``block`` mode."""
        while True:
            outcome = self.submit(tenant, batch)
            if outcome != "blocked":
                return outcome
            await asyncio.sleep(poll_s)

    # -- hot-swap ----------------------------------------------------------

    def swap_config(
        self,
        serve: dict[str, Any] | None = None,
        policy: dict[str, Any] | None = None,
    ) -> None:
        """Stage a config hot-swap; applied at the next tick boundary.

        ``serve`` fields are :class:`~repro.serve.config.ServeConfig`
        overrides (validated on application); ``policy`` fields go
        through :meth:`~repro.policies.base.TieringPolicy.reconfigure`.
        Mid-tick state is never touched -- the swap is atomic at the
        boundary and is recorded with a ``config_swapped`` event.
        """
        if serve:
            staged = dict(self._pending_serve or {})
            staged.update(serve)
            self._pending_serve = staged
        if policy:
            staged = dict(self._pending_policy or {})
            staged.update(policy)
            self._pending_policy = staged

    def _apply_pending_swap(self) -> None:
        if self._pending_serve is None and self._pending_policy is None:
            return
        changed: list[str] = []
        if self._pending_serve:
            new_serve = self.serve.replace(**self._pending_serve)
            changed.extend(f"serve.{key}" for key in self._pending_serve)
            self.serve = new_serve
            self.ladder.config = new_serve
            self.watchdog.max_restarts = new_serve.max_restarts
            self.watchdog.stall_timeout_s = new_serve.watchdog_stall_s
            for queue in self.queues.values():
                queue.capacity = new_serve.queue_capacity
                queue.backpressure = new_serve.backpressure
        if self._pending_policy:
            applied = self.engine.policy.reconfigure(self._pending_policy)
            changed.extend(f"policy.{key}" for key in applied)
        self._pending_serve = None
        self._pending_policy = None
        self.config_swaps += 1
        if self.tracer.enabled:
            self.tracer.emit(
                "config_swapped",
                t_ns=self.engine.now_ns,
                changed=sorted(changed),
            )

    # -- the tick ----------------------------------------------------------

    def tick(self) -> TickReport:
        """Service up to ``max_batches_per_tick`` queued batches.

        One tick is the daemon's scheduling quantum: it applies staged
        config swaps, sets the migration gate for the current ladder
        rung, drains queues round-robin (sorted tenant order) under the
        deadline budget, then feeds the end-of-tick queue pressure back
        into the ladder.
        """
        self._apply_pending_swap()
        serve = self.serve
        engine = self.engine
        start_ns = engine.now_ns
        start_depth = aggregate_depth(self.queues).depth
        if self.tracer.enabled:
            self.tracer.emit(
                "tick_start",
                t_ns=start_ns,
                tick=self.ticks,
                mode=self.ladder.mode,
                queue_depth=start_depth,
            )
        self.budget.reset(serve.tick_budget_ns)
        engine.machine.migrations_enabled = self.ladder.migrations_enabled
        try:
            served = 0
            deadline_fired = False
            order = sorted(self.queues)
            cursor = 0
            while served < serve.max_batches_per_tick:
                entry = None
                for _ in range(len(order)):
                    queue = self.queues[order[cursor % len(order)]]
                    cursor += 1
                    entry = queue.pop()
                    if entry is not None:
                        break
                if entry is None:
                    break  # every queue empty
                invoke = (
                    self.ladder.invoke_policy(served)
                    and not self.budget.exceeded
                )
                outcome = engine.step(entry.batch, invoke_policy=invoke)
                queue = self.queues[entry.tenant]
                queue.counters.served += 1
                served += 1
                self.budget.charge(outcome.overhead_ns)
                latency = engine.now_ns - entry.enqueued_ns
                self.slo.observe("enqueue_to_service_ns", latency)
                if self.tracer.enabled:
                    self.tracer.observe("enqueue_to_service_ns", latency)
                if self.budget.exceeded and not deadline_fired:
                    deadline_fired = True
                    self.deadline_ticks += 1
                    if self.tracer.enabled:
                        self.tracer.emit(
                            "deadline_exceeded",
                            t_ns=engine.now_ns,
                            tick=self.ticks,
                            budget_ns=self.budget.budget_ns,
                            spent_ns=self.budget.spent_ns,
                        )
        finally:
            # A crashed tick must not leave the gate closed for the
            # rebuilt stack (load_state also re-enables it).
            engine.machine.migrations_enabled = True
        elapsed = engine.now_ns - start_ns
        if not self.ladder.migrations_enabled:
            self.migration_stall_ns += elapsed
        end = aggregate_depth(self.queues)
        self.slo.observe("tick_overhead_ns", self.budget.spent_ns)
        self.slo.observe("queue_depth", end.depth)
        change = self.ladder.observe_tick(
            end.fill_fraction, self.budget.exceeded
        )
        if change is not None:
            old, new = change
            demoted = _rung(new) > _rung(old)
            if demoted:
                self.degradations += 1
            else:
                self.promotions += 1
            if self.tracer.enabled:
                self.tracer.emit(
                    "degraded",
                    t_ns=engine.now_ns,
                    **{"from": old, "to": new},
                    reason="overload" if demoted else "recovered",
                )
        self.ticks += 1
        self.watchdog.beat()
        if (
            self.checkpoint_manager is not None
            and serve.checkpoint_every_ticks
            and self.ticks % serve.checkpoint_every_ticks == 0
        ):
            self.save_checkpoint()
        return TickReport(
            tick=self.ticks - 1,
            mode=self.ladder.mode,
            served=served,
            queue_depth_start=start_depth,
            queue_depth_end=end.depth,
            budget_exceeded=self.budget.exceeded,
            mode_change=change,
            elapsed_ns=elapsed,
        )

    def tick_guarded(self) -> TickReport | None:
        """One tick under watchdog protection.

        A tick that raises (an :class:`~repro.faults.InjectedCrash`, a
        policy bug...) is converted into a restart-from-checkpoint via
        :meth:`recover`; ``None`` is returned so callers know the tick
        did not complete.  Past the restart budget the watchdog's
        :class:`~repro.serve.watchdog.WatchdogGaveUp` propagates.
        """
        try:
            return self.tick()
        except Exception as exc:  # noqa: BLE001 - the whole point
            reason = f"{type(exc).__name__}: {exc}"
            self.watchdog.on_failure(reason)
            self.recover(reason)
            return None

    def recover(self, reason: str) -> int:
        """Rebuild the stack and restore the newest valid checkpoint.

        Returns the restored checkpoint generation (-1 when none was
        found, i.e. a fresh restart from tick zero).  Pending queue
        entries are dropped -- after rolling the engine back they no
        longer line up with the restored accounting; the
        :class:`~repro.serve.driver.VirtualTimeDriver` regenerates and
        re-offers the backlog from the checkpointed replay cursors.
        """
        self._build()
        generation = -1
        if self.checkpoint_manager is not None:
            loaded = self.checkpoint_manager.load_latest()
            if loaded is not None:
                payload = loaded.payload
                self.engine.restore_state(payload["engine"])
                self._load_serve_state(payload["serve"])
                generation = loaded.generation
        if generation < 0:
            # Fresh restart: serving accounting starts over too, and
            # the rebuilt injector's scheduled crash -- which already
            # fired once -- must not re-fire on the replay.
            self.ladder = DegradationLadder(self.serve)
            self.ticks = 0
            if self.engine.fault_injector is not None:
                self.engine.fault_injector.disarm_crash()
        self.budget = TickBudget(self.serve.tick_budget_ns)
        if self.tracer.enabled:
            self.tracer.emit(
                "watchdog_restart",
                t_ns=self.engine.now_ns,
                restarts=self.watchdog.restarts,
                reason=reason,
                generation=generation,
            )
        return generation

    # -- checkpointing -----------------------------------------------------

    def _serve_state_dict(self) -> dict[str, Any]:
        return {
            "ticks": self.ticks,
            "ladder": self.ladder.state_dict(),
            "watchdog": self.watchdog.state_dict(),
            "queues": {
                name: queue.state_dict()
                for name, queue in self.queues.items()
            },
            "config": self.serve.to_dict(),
            "counters": {
                "deadline_ticks": self.deadline_ticks,
                "degradations": self.degradations,
                "promotions": self.promotions,
                "config_swaps": self.config_swaps,
                "migration_stall_ns": self.migration_stall_ns,
            },
        }

    def _load_serve_state(self, state: dict[str, Any]) -> None:
        self.serve = ServeConfig.from_dict(state["config"])
        self.ladder = DegradationLadder(self.serve)
        self.ladder.load_state(state["ladder"])
        # The checkpoint predates the failure that triggered this
        # restore, so its restart count is stale -- keeping the live
        # (higher) count is what bounds a crash loop.  The checkpointed
        # count still matters across *process* deaths, where the live
        # count starts at zero.
        live_restarts = self.watchdog.restarts
        self.watchdog.load_state(state["watchdog"])
        self.watchdog.restarts = max(self.watchdog.restarts, live_restarts)
        self.watchdog.max_restarts = self.serve.max_restarts
        self.watchdog.stall_timeout_s = self.serve.watchdog_stall_s
        for name, queue in self.queues.items():
            if name in state["queues"]:
                queue.load_state(state["queues"][name])
            queue.capacity = self.serve.queue_capacity
            queue.backpressure = self.serve.backpressure
        self.ticks = int(state["ticks"])
        counters = state.get("counters", {})
        self.deadline_ticks = int(counters.get("deadline_ticks", 0))
        self.degradations = int(counters.get("degradations", 0))
        self.promotions = int(counters.get("promotions", 0))
        self.config_swaps = int(counters.get("config_swaps", 0))
        self.migration_stall_ns = float(
            counters.get("migration_stall_ns", 0.0)
        )

    def save_checkpoint(self) -> None:
        """Write one durable generation: engine state + serve state."""
        if self.checkpoint_manager is None:
            raise RuntimeError("daemon was built without a checkpoint_dir")
        path = self.checkpoint_manager.save(
            {
                "engine": self.engine.capture_state(),
                "serve": self._serve_state_dict(),
            }
        )
        if self.tracer.enabled:
            self.tracer.emit(
                "checkpoint_saved",
                t_ns=self.engine.now_ns,
                batch=self.engine.batches_done,
                file=path.name,
            )

    # -- drain / teardown --------------------------------------------------

    def drain(self) -> int:
        """Service every queued batch, then checkpoint; returns count.

        The graceful-shutdown tail: intake is the caller's to stop
        (the asyncio front-end closes it on SIGTERM/SIGINT before
        calling this).  Runs guarded ticks until every queue is empty,
        emits ``drain_complete``, and writes a final checkpoint when a
        checkpoint directory is configured.
        """
        served = 0
        while aggregate_depth(self.queues).depth > 0:
            report = self.tick_guarded()
            if report is not None:
                served += report.served
        if self.tracer.enabled:
            self.tracer.emit(
                "drain_complete",
                t_ns=self.engine.now_ns,
                served=served,
                remaining=aggregate_depth(self.queues).depth,
            )
        if self.checkpoint_manager is not None:
            self.save_checkpoint()
        return served

    def finalize(
        self, warmup_fraction: float = 0.0
    ) -> ExperimentResult | None:
        """Engine-side results for the batches served so far.

        ``None`` when nothing was ever serviced (the metrics reduction
        needs at least one record).
        """
        if not self.engine.metrics.records:
            return None
        return self.engine.finalize(warmup_fraction=warmup_fraction)

    def slo_summary(self) -> dict[str, Any]:
        """SLO-grade scalars: latency quantiles plus serving counters."""
        out: dict[str, Any] = {
            "ticks": self.ticks,
            "mode": self.ladder.mode,
            "deadline_ticks": self.deadline_ticks,
            "degradations": self.degradations,
            "promotions": self.promotions,
            "restarts": self.watchdog.restarts,
            "config_swaps": self.config_swaps,
            "migration_stall_ns": self.migration_stall_ns,
            "migrations_deferred": self.engine.machine.migrations_deferred,
        }
        for tenant, queue in self.queues.items():
            for key, value in queue.counters.as_dict().items():
                out[f"{tenant}_{key}"] = value
        for name in ("enqueue_to_service_ns", "tick_overhead_ns",
                     "queue_depth"):
            summary = self.slo.summary(name)
            if summary is not None:
                for stat, value in summary.items():
                    out[f"{name}_{stat}"] = value
        return out

    # -- asyncio front-end -------------------------------------------------

    def request_stop(self) -> None:
        """Ask :meth:`serve_forever` to drain and exit (signal-safe)."""
        self._stop_requested = True

    async def serve_forever(
        self,
        poll_s: float = 0.001,
        install_signal_handlers: bool = True,
    ) -> int:
        """Run guarded ticks until a stop is requested, then drain.

        SIGTERM/SIGINT request a graceful stop: intake keeps being
        accepted until the loop notices, then the remaining backlog is
        fully drained and a final checkpoint written.  A stalled loop
        (heartbeat older than ``watchdog_stall_s``) is recovered like a
        crash.  Returns the number of batches served by the loop.
        """
        loop = asyncio.get_running_loop()
        installed: list[signal.Signals] = []
        if install_signal_handlers:
            for sig in (signal.SIGTERM, signal.SIGINT):
                try:
                    loop.add_signal_handler(sig, self.request_stop)
                    installed.append(sig)
                except (NotImplementedError, RuntimeError):
                    pass
        served = 0
        try:
            while not self._stop_requested:
                if self.watchdog.stalled:
                    self.watchdog.on_failure("heartbeat stall")
                    self.recover("heartbeat stall")
                if aggregate_depth(self.queues).depth > 0:
                    report = self.tick_guarded()
                    if report is not None:
                        served += report.served
                    await asyncio.sleep(0)  # yield to producers
                else:
                    self.watchdog.beat()
                    await asyncio.sleep(poll_s)
            served += self.drain()
        finally:
            for sig in installed:
                loop.remove_signal_handler(sig)
        return served


def _rung(mode: str) -> int:
    return DEGRADATION_MODES.index(mode)
