"""Multi-host simulation over a shared CXL pool.

Each host owns a machine (its local DRAM + its current pool share), a
workload and a tiering policy; the simulation interleaves one batch
per host per round, reports pool usage, and periodically rebalances
grants.  A growing grant simply raises the host's CXL capacity; a
shrinking grant is clamped so that in-use pages are never revoked
(real pools drain before reclaiming).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.engine import SimulationEngine
from repro.core.metrics import ExperimentResult
from repro.memsim.machine import Machine, MachineConfig
from repro.memsim.tier import CXL1_CONFIG, TieredMemoryConfig
from repro.policies.base import TieringPolicy
from repro.pooling.pool import CXLPool
from repro.workloads.spec import Workload


@dataclass
class HostSpec:
    """Configuration of one pooled host."""

    name: str
    workload: Workload
    policy: TieringPolicy
    local_pages: int
    #: Initial pool grant; rebalancing adjusts it afterwards.
    initial_grant_pages: int


@dataclass
class _Host:
    spec: HostSpec
    machine: Machine
    engine: SimulationEngine
    batches: object  # iterator
    exhausted: bool = False
    batches_run: int = 0


class MultiHostSimulation:
    """N hosts sharing one CXL pool, each running its own tiering."""

    def __init__(
        self,
        pool: CXLPool,
        hosts: list[HostSpec],
        memory: TieredMemoryConfig = CXL1_CONFIG,
        rebalance_interval_rounds: int = 20,
    ):
        if not hosts:
            raise ValueError("need at least one host")
        self.pool = pool
        self.memory = memory
        self.rebalance_interval = int(rebalance_interval_rounds)
        self._hosts: list[_Host] = []
        for spec in hosts:
            pool.register_host(spec.name, spec.initial_grant_pages)
            machine = Machine(
                MachineConfig(
                    local_capacity_pages=spec.local_pages,
                    cxl_capacity_pages=spec.initial_grant_pages,
                    memory=memory,
                )
            )
            engine = SimulationEngine(machine, spec.workload, spec.policy)
            engine.setup()
            self._hosts.append(
                _Host(
                    spec=spec,
                    machine=machine,
                    engine=engine,
                    batches=iter(spec.workload.batches()),
                )
            )
        self.rounds_run = 0
        #: (round, host, granted_pages) timeline of grant changes.
        self.grant_timeline: list[tuple[int, str, int]] = []

    # -- stepping -----------------------------------------------------------

    def run(self, rounds: int) -> dict[str, ExperimentResult]:
        """Advance every host by one batch per round, rebalancing
        periodically; returns per-host results."""
        for __ in range(rounds):
            if all(h.exhausted for h in self._hosts):
                break
            self._one_round()
            self.rounds_run += 1
            if self.rounds_run % self.rebalance_interval == 0:
                self._rebalance()
        return {
            h.spec.name: h.engine.metrics.finalize(
                policy_name=h.spec.policy.name,
                workload_name=h.spec.workload.name,
                traffic_breakdown=h.machine.traffic.breakdown(),
                migration_bytes=h.machine.traffic.migration_bytes,
                policy_stats=h.spec.policy.stats.as_dict(),
            )
            for h in self._hosts
            if h.engine.metrics.records
        }

    def _one_round(self) -> None:
        from repro.memsim.pagetable import LOCAL_TIER

        for host in self._hosts:
            if host.exhausted:
                continue
            try:
                batch = next(host.batches)
            except StopIteration:
                host.exhausted = True
                continue
            machine = host.machine
            engine = host.engine
            tiers = machine.placement_of(batch.page_ids)
            n_local = int(np.count_nonzero(tiers == LOCAL_TIER))
            n_cxl = batch.num_accesses - n_local
            machine.traffic.record_accesses(n_local, n_cxl)
            migrated_before = machine.traffic.pages_migrated
            overhead = host.spec.policy.on_batch(
                batch, tiers, engine.now_ns, counts=(n_local, n_cxl)
            )
            migrated = machine.traffic.pages_migrated - migrated_before
            cost = machine.cost_model.batch_cost(
                cpu_ns=batch.cpu_ns,
                local_accesses=n_local,
                cxl_accesses=n_cxl,
                pages_migrated=migrated,
                overhead_ns=overhead,
                bytes_per_access=batch.bytes_per_access,
            )
            engine.metrics.record_batch(
                start_ns=engine.now_ns,
                cost=cost,
                num_ops=batch.num_ops,
                local_accesses=n_local,
                cxl_accesses=n_cxl,
                pages_migrated=migrated,
                label=batch.label,
            )
            engine.now_ns += cost.total_ns
            host.batches_run += 1

    # -- pool management --------------------------------------------------------

    def _rebalance(self) -> None:
        for host in self._hosts:
            self.pool.report_usage(host.spec.name, host.machine.cxl_used_pages)
        deltas = self.pool.rebalance()
        for host in self._hosts:
            delta = deltas.get(host.spec.name, 0)
            if delta == 0:
                continue
            machine = host.machine
            new_capacity = machine.config.cxl_capacity_pages + delta
            # Never revoke in-use pages: clamp the shrink.
            new_capacity = max(new_capacity, machine.cxl_used_pages)
            actual_delta = new_capacity - machine.config.cxl_capacity_pages
            if actual_delta != delta:
                # Return the unclaimable portion to the pool grant.
                self.pool.share_of(host.spec.name).granted_pages += (
                    actual_delta - delta
                )
            machine.config.cxl_capacity_pages = new_capacity
            self.grant_timeline.append(
                (self.rounds_run, host.spec.name, new_capacity)
            )

    # -- introspection --------------------------------------------------------------

    def host_state(self) -> list[dict[str, object]]:
        return [
            {
                "host": h.spec.name,
                "batches": h.batches_run,
                "local_used": h.machine.local_used_pages,
                "cxl_used": h.machine.cxl_used_pages,
                "cxl_granted": h.machine.config.cxl_capacity_pages,
                "hit_ratio": h.machine.traffic.local_hit_ratio,
            }
            for h in self._hosts
        ]
