"""Multi-host CXL memory pooling (paper Section VIII-b).

The paper evaluates single-machine CXL expansion and names multi-host
pooling (CXL 2.0/3.0) as the natural extension: "Fundamentally,
FreqTier aims to address the problem of identifying hot/cold data,
which is also applicable to multi-host tiering."

This package provides that extension over the same substrate:

- :class:`~repro.pooling.pool.CXLPool` -- a capacity pool partitioned
  into per-host shares, with demand-driven rebalancing;
- :class:`~repro.pooling.multihost.MultiHostSimulation` -- several
  hosts, each with its own local DRAM, workload and tiering policy,
  drawing CXL capacity from one shared pool.

Each host's FreqTier instance runs unchanged -- hot/cold
identification is host-local; only capacity moves between hosts.
"""

from repro.pooling.multihost import HostSpec, MultiHostSimulation
from repro.pooling.pool import CXLPool

__all__ = ["CXLPool", "HostSpec", "MultiHostSimulation"]
