"""A shared CXL capacity pool with demand-driven rebalancing.

Models the CXL 2.0/3.0 pooling primitive at the capacity level: a
fixed number of pool pages is partitioned into per-host shares; the
pool manager periodically moves *free* capacity from hosts with slack
toward hosts under memory pressure.  (Bandwidth sharing across hosts
is out of scope -- the paper's discussion is about capacity and
hot/cold identification.)
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class PoolShare:
    """One host's slice of the pool."""

    host: str
    granted_pages: int
    used_pages: int = 0

    @property
    def free_pages(self) -> int:
        return self.granted_pages - self.used_pages


class CXLPool:
    """Fixed-capacity pool partitioned among hosts."""

    def __init__(self, total_pages: int):
        if total_pages <= 0:
            raise ValueError(f"total_pages must be > 0, got {total_pages}")
        self.total_pages = int(total_pages)
        self._shares: dict[str, PoolShare] = {}
        self.rebalances = 0
        self.pages_moved = 0

    # -- membership --------------------------------------------------------

    def register_host(self, host: str, granted_pages: int) -> PoolShare:
        if host in self._shares:
            raise ValueError(f"host {host!r} already registered")
        if granted_pages <= 0:
            raise ValueError(f"granted_pages must be > 0, got {granted_pages}")
        if self.granted_total + granted_pages > self.total_pages:
            raise ValueError(
                f"grant of {granted_pages} exceeds pool remainder "
                f"{self.total_pages - self.granted_total}"
            )
        share = PoolShare(host=host, granted_pages=int(granted_pages))
        self._shares[host] = share
        return share

    @property
    def granted_total(self) -> int:
        return sum(s.granted_pages for s in self._shares.values())

    @property
    def unallocated_pages(self) -> int:
        return self.total_pages - self.granted_total

    def share_of(self, host: str) -> PoolShare:
        return self._shares[host]

    def shares(self) -> tuple[PoolShare, ...]:
        return tuple(self._shares.values())

    # -- usage updates -------------------------------------------------------

    def report_usage(self, host: str, used_pages: int) -> None:
        share = self._shares[host]
        if used_pages < 0 or used_pages > share.granted_pages:
            raise ValueError(
                f"used_pages {used_pages} outside [0, {share.granted_pages}] "
                f"for host {host!r}"
            )
        share.used_pages = int(used_pages)

    # -- rebalancing -----------------------------------------------------------

    def rebalance(
        self, pressure_margin_frac: float = 0.05, transfer_quantum: int = 64
    ) -> dict[str, int]:
        """Move free capacity from slack hosts toward pressured hosts.

        A host is *pressured* when its free share is below
        ``pressure_margin_frac`` of its grant; a host has *slack* when
        its free share exceeds twice that margin plus the quantum.
        Returns ``{host: grant_delta}`` for the hosts changed.
        """
        deltas: dict[str, int] = {}
        pressured = [
            s
            for s in self._shares.values()
            if s.free_pages < pressure_margin_frac * s.granted_pages
        ]
        slack = [
            s
            for s in self._shares.values()
            if s.free_pages
            > 2 * pressure_margin_frac * s.granted_pages + transfer_quantum
        ]
        if not pressured:
            return deltas
        self.rebalances += 1
        # Unallocated pool pages first, then donations from slack hosts.
        for needy in sorted(pressured, key=lambda s: s.free_pages):
            want = transfer_quantum
            take = min(want, self.unallocated_pages)
            if take > 0:
                needy.granted_pages += take
                deltas[needy.host] = deltas.get(needy.host, 0) + take
                self.pages_moved += take
                want -= take
            while want > 0 and slack:
                donor = max(slack, key=lambda s: s.free_pages)
                give = min(
                    want,
                    donor.free_pages
                    - int(2 * pressure_margin_frac * donor.granted_pages),
                )
                if give <= 0:
                    slack.remove(donor)
                    continue
                donor.granted_pages -= give
                needy.granted_pages += give
                deltas[donor.host] = deltas.get(donor.host, 0) - give
                deltas[needy.host] = deltas.get(needy.host, 0) + give
                self.pages_moved += give
                want -= give
        return deltas
