"""Page -> tier placement table (the ``/proc/PID/pagemap`` analogue).

FreqTier's demotion scan checks whether each candidate page currently
resides in local DRAM by reading ``/proc/PID/pagemap`` in batches of
contiguous pages (paper Section V-B1).  :class:`PageTable` provides
that interface over a numpy-backed placement array, and tracks a
batched-read counter so the policy layer can account for the
pseudo-filesystem overhead the paper's optimization amortizes.
"""

from __future__ import annotations

import numpy as np

#: Placement codes.
UNMAPPED: int = -1
LOCAL_TIER: int = 0
CXL_TIER: int = 1


class PageTable:
    """Placement of every page id onto a tier (or unmapped)."""

    def __init__(self, capacity_pages: int):
        if capacity_pages <= 0:
            raise ValueError(f"capacity_pages must be > 0, got {capacity_pages}")
        self.capacity_pages = int(capacity_pages)
        self._placement = np.full(capacity_pages, UNMAPPED, dtype=np.int8)
        self._tier_counts = {LOCAL_TIER: 0, CXL_TIER: 0}
        #: Batched pagemap reads issued (overhead accounting).
        self.pagemap_reads = 0
        self.pagemap_pages_read = 0
        #: Monotonic placement-mutation counter.  Bumped by every
        #: operation that can change a placement code (place, unmap,
        #: load_state) so callers that derive data from the placement
        #: array -- e.g. the engine's cached tier prefix sum -- can
        #: invalidate on change instead of recomputing per batch.  Not
        #: checkpointed: it identifies array states within one process
        #: only.
        self.version = 0

    # -- placement mutation ---------------------------------------------

    def place(self, pages: np.ndarray, tier: int) -> None:
        """Map ``pages`` onto ``tier`` (overwriting any prior placement)."""
        self._validate_tier(tier)
        idx = self._as_index(pages)
        if idx.size == 0:
            return
        self._discount_previous(idx)
        self._placement[idx] = tier
        self._tier_counts[tier] += idx.size
        self.version += 1

    def unmap(self, pages: np.ndarray) -> None:
        """Remove ``pages`` from all tiers."""
        idx = self._as_index(pages)
        if idx.size == 0:
            return
        self._discount_previous(idx)
        self._placement[idx] = UNMAPPED
        self.version += 1

    def _discount_previous(self, idx: np.ndarray) -> None:
        """Subtract the prior placements at ``idx`` from the tier counts.

        Gathers the previous codes once, then counts each tier with a
        vectorized comparison.  (``np.bincount`` over the shifted codes
        would be one conceptual pass but measures ~20x slower here: it
        casts the int8 codes to intp and counts scalar-wise, while the
        equality scans are SIMD.)
        """
        previous = self._placement[idx]
        self._tier_counts[LOCAL_TIER] -= int(
            np.count_nonzero(previous == LOCAL_TIER)
        )
        self._tier_counts[CXL_TIER] -= int(
            np.count_nonzero(previous == CXL_TIER)
        )

    # -- queries ------------------------------------------------------------

    def tier_of(self, pages: np.ndarray | int) -> np.ndarray | int:
        """Placement code for each page (vectorized).

        Returns the placement array's native int8 codes -- no widening
        copy on this hot path; comparisons against the tier constants
        work unchanged and callers that need a wider dtype convert the
        (small) result themselves.
        """
        if np.isscalar(pages):
            return int(self._placement[int(pages)])
        return self._placement[self._as_index(pages)]

    def placement_view(self) -> np.ndarray:
        """The raw int8 placement-code array (zero-copy, read-only use).

        The engine's fused per-batch kernel gathers directly from this
        array.  Callers must not mutate it; note that
        :meth:`load_state` *replaces* the backing array, so the view
        must be re-fetched rather than cached across restores.
        """
        return self._placement

    def pages_in_tier(self, tier: int) -> np.ndarray:
        """All page ids currently placed on ``tier``."""
        self._validate_tier(tier)
        return np.nonzero(self._placement == tier)[0].astype(
            np.int64, copy=False
        )

    def count_in_tier(self, tier: int) -> int:
        self._validate_tier(tier)
        return self._tier_counts[tier]

    @property
    def mapped_pages(self) -> int:
        return self._tier_counts[LOCAL_TIER] + self._tier_counts[CXL_TIER]

    # -- the pagemap batch-read interface ---------------------------------------

    def pagemap_read_batch(
        self, pages: np.ndarray, *, check: bool = True
    ) -> np.ndarray:
        """Batched placement lookup, counted as one pseudo-fs read.

        This is the interface the demotion scan uses; querying a batch
        of contiguous pages with one call is the paper's optimization
        over per-page ``/proc`` reads.  Scans that produce their own
        chunk ranges (``AddressSpace.scan_from``) pass ``check=False``
        to skip re-validating indices they just generated.
        """
        idx = self._as_index(pages, check=check)
        self.pagemap_reads += 1
        self.pagemap_pages_read += int(idx.size)
        return self._placement[idx]

    # -- checkpointing ------------------------------------------------------------

    def state_dict(self) -> dict:
        return {
            "placement": self._placement.copy(),
            "local_count": self._tier_counts[LOCAL_TIER],
            "cxl_count": self._tier_counts[CXL_TIER],
            "pagemap_reads": self.pagemap_reads,
            "pagemap_pages_read": self.pagemap_pages_read,
        }

    def load_state(self, state: dict) -> None:
        placement = np.asarray(state["placement"], dtype=np.int8)
        if placement.shape != self._placement.shape:
            raise ValueError(
                f"placement shape {placement.shape} != expected "
                f"{self._placement.shape}"
            )
        self._placement = placement.copy()
        self._tier_counts = {
            LOCAL_TIER: int(state["local_count"]),
            CXL_TIER: int(state["cxl_count"]),
        }
        self.pagemap_reads = int(state["pagemap_reads"])
        self.pagemap_pages_read = int(state["pagemap_pages_read"])
        self.version += 1

    # -- internal -------------------------------------------------------------------

    def _as_index(
        self, pages: np.ndarray | int, *, check: bool = True
    ) -> np.ndarray:
        """Pages as a validated int64 index array.

        Validation is one unsigned single-pass comparison (negative
        int64 ids are huge as uint64, so one test covers both ends)
        rather than separate ``min()``/``max()`` scans per batch;
        ``check=False`` skips it entirely for indices the caller just
        produced in-range.
        """
        idx = np.atleast_1d(np.asarray(pages, dtype=np.int64))
        if check and idx.size:
            if np.any(idx.view(np.uint64) >= np.uint64(self.capacity_pages)):
                lo, hi = int(idx.min()), int(idx.max())
                raise IndexError(
                    f"page id out of range [0, {self.capacity_pages}): "
                    f"min={lo} max={hi}"
                )
        return idx

    @staticmethod
    def _validate_tier(tier: int) -> None:
        if tier not in (LOCAL_TIER, CXL_TIER):
            raise ValueError(f"tier must be LOCAL_TIER or CXL_TIER, got {tier}")
