"""Virtual address space of the tiered workload process.

The demotion scan in FreqTier (paper Algorithm 2, Section V-B1) walks
the application's virtual address space linearly, using
``/proc/PID/maps`` to enumerate mapped regions.  This module is the
simulator's analogue: an ordered set of :class:`VMARegion` mappings
over a global page-id space, with the iteration and wrap-around
helpers the scan needs.

Page ids are global integers; a region covers the contiguous range
``[start_page, start_page + num_pages)``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class VMARegion:
    """One mapped virtual memory area."""

    start_page: int
    num_pages: int
    name: str = "anon"

    def __post_init__(self) -> None:
        if self.start_page < 0:
            raise ValueError(f"start_page must be >= 0, got {self.start_page}")
        if self.num_pages <= 0:
            raise ValueError(f"num_pages must be > 0, got {self.num_pages}")

    @property
    def end_page(self) -> int:
        """One past the last page of the region."""
        return self.start_page + self.num_pages

    def contains(self, page: int) -> bool:
        return self.start_page <= page < self.end_page


class AddressSpace:
    """Ordered collection of VMAs (the ``/proc/PID/maps`` analogue)."""

    def __init__(self):
        self._regions: list[VMARegion] = []
        self._next_free_page = 0

    # -- allocation ------------------------------------------------------

    def map_region(self, num_pages: int, name: str = "anon") -> VMARegion:
        """Map a new region after the last one; returns the VMA."""
        region = VMARegion(self._next_free_page, num_pages, name=name)
        self._regions.append(region)
        self._next_free_page = region.end_page
        return region

    # -- queries -----------------------------------------------------------

    @property
    def regions(self) -> tuple[VMARegion, ...]:
        """All VMAs in virtual-address order."""
        return tuple(self._regions)

    @property
    def total_pages(self) -> int:
        """Number of mapped pages across all regions."""
        return sum(region.num_pages for region in self._regions)

    @property
    def max_page(self) -> int:
        """One past the highest mapped page id (0 when empty)."""
        return self._next_free_page

    def region_of(self, page: int) -> VMARegion | None:
        """The VMA containing ``page``, or ``None`` if unmapped."""
        for region in self._regions:
            if region.contains(page):
                return region
        return None

    def is_mapped(self, page: int) -> bool:
        return self.region_of(page) is not None

    def all_pages(self) -> np.ndarray:
        """All mapped page ids in virtual-address order."""
        if not self._regions:
            return np.zeros(0, dtype=np.int64)
        return np.concatenate(
            [
                np.arange(region.start_page, region.end_page, dtype=np.int64)
                for region in self._regions
            ]
        )

    # -- linear scan support (demotion) --------------------------------------

    def scan_from(self, start_page: int, count: int) -> tuple[np.ndarray, int]:
        """Return up to ``count`` mapped pages starting at ``start_page``.

        Walks the address space in virtual order, skipping unmapped
        holes, wrapping from the end back to the first region (the
        paper's Figure 7 restart behaviour).  Returns the page array
        and the resume cursor (the page *after* the last one returned).

        The result may be shorter than ``count`` only if the address
        space has fewer mapped pages than requested.
        """
        total = self.total_pages
        if total == 0 or count <= 0:
            return np.zeros(0, dtype=np.int64), start_page
        count = min(count, total)

        chunks: list[np.ndarray] = []
        remaining = count
        cursor = start_page
        # Two passes over the region list are enough: one from the
        # cursor to the end, one wrapped from the start.
        for _ in range(2):
            for region in self._regions:
                if remaining == 0:
                    break
                begin = max(region.start_page, cursor)
                if begin >= region.end_page:
                    continue
                take = min(remaining, region.end_page - begin)
                chunks.append(np.arange(begin, begin + take, dtype=np.int64))
                remaining -= take
                cursor = begin + take
            if remaining == 0:
                break
            cursor = 0  # wrap around
        pages = np.concatenate(chunks) if chunks else np.zeros(0, dtype=np.int64)
        resume = int(pages[-1]) + 1 if len(pages) else start_page
        if resume >= self.max_page:
            resume = 0
        return pages, resume
