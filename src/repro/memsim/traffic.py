"""Memory traffic accounting (paper Figure 2).

The paper breaks total memory traffic into three components:

- **local DRAM accesses** -- L3 misses serviced from local DRAM,
- **CXL memory accesses** -- L3 misses serviced from CXL memory,
- **page migration** -- bytes moved by promotions and demotions.

:class:`TrafficMeter` tracks all three (in bytes) plus page-granular
migration counts, and produces the Figure 2 percentage breakdown and
the local-DRAM hit ratio used throughout the evaluation.

Accounting conventions: every sampled application access is one
64-byte cache-line transfer from its tier; a migrated page is one
``PAGE_SIZE`` read from the source tier plus one ``PAGE_SIZE`` write to
the destination tier (2x page size total), matching how the emulated
machine's memory controllers observe a page copy.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro._units import PAGE_SIZE

#: Bytes per application memory access (one cache line).
CACHE_LINE_BYTES = 64


@dataclass
class TrafficMeter:
    """Running byte/page counters for one simulation."""

    local_access_bytes: int = 0
    cxl_access_bytes: int = 0
    migration_bytes: int = 0
    pages_promoted: int = 0
    pages_demoted: int = 0
    local_accesses: int = 0
    cxl_accesses: int = 0
    _history: list[tuple[float, int, int]] = field(default_factory=list, repr=False)

    # -- recording -------------------------------------------------------

    def record_accesses(self, local: int, cxl: int) -> None:
        """Record application accesses serviced per tier."""
        if local < 0 or cxl < 0:
            raise ValueError("access counts must be >= 0")
        self.local_accesses += local
        self.cxl_accesses += cxl
        self.local_access_bytes += local * CACHE_LINE_BYTES
        self.cxl_access_bytes += cxl * CACHE_LINE_BYTES

    def record_migration(self, pages: int, promotion: bool) -> None:
        """Record ``pages`` migrated (promotion if True, else demotion)."""
        if pages < 0:
            raise ValueError(f"pages must be >= 0, got {pages}")
        if promotion:
            self.pages_promoted += pages
        else:
            self.pages_demoted += pages
        self.migration_bytes += pages * PAGE_SIZE * 2

    def checkpoint(self, time_ns: float) -> None:
        """Snapshot cumulative access counts for windowed hit ratios."""
        self._history.append((time_ns, self.local_accesses, self.cxl_accesses))

    # -- derived metrics -----------------------------------------------------

    @property
    def total_accesses(self) -> int:
        return self.local_accesses + self.cxl_accesses

    @property
    def total_bytes(self) -> int:
        return self.local_access_bytes + self.cxl_access_bytes + self.migration_bytes

    @property
    def local_hit_ratio(self) -> float:
        """Fraction of application accesses serviced from local DRAM."""
        total = self.total_accesses
        if total == 0:
            return 0.0
        return self.local_accesses / total

    @property
    def pages_migrated(self) -> int:
        return self.pages_promoted + self.pages_demoted

    def breakdown(self) -> dict[str, float]:
        """Figure-2-style traffic shares (fractions of total bytes)."""
        total = self.total_bytes
        if total == 0:
            return {"local": 0.0, "cxl": 0.0, "migration": 0.0}
        return {
            "local": self.local_access_bytes / total,
            "cxl": self.cxl_access_bytes / total,
            "migration": self.migration_bytes / total,
        }

    def state_dict(self) -> dict:
        return {
            "local_access_bytes": self.local_access_bytes,
            "cxl_access_bytes": self.cxl_access_bytes,
            "migration_bytes": self.migration_bytes,
            "pages_promoted": self.pages_promoted,
            "pages_demoted": self.pages_demoted,
            "local_accesses": self.local_accesses,
            "cxl_accesses": self.cxl_accesses,
            "history": [list(entry) for entry in self._history],
        }

    def load_state(self, state: dict) -> None:
        self.local_access_bytes = int(state["local_access_bytes"])
        self.cxl_access_bytes = int(state["cxl_access_bytes"])
        self.migration_bytes = int(state["migration_bytes"])
        self.pages_promoted = int(state["pages_promoted"])
        self.pages_demoted = int(state["pages_demoted"])
        self.local_accesses = int(state["local_accesses"])
        self.cxl_accesses = int(state["cxl_accesses"])
        self._history = [
            (float(t), int(local), int(cxl))
            for t, local, cxl in state["history"]
        ]

    def windowed_hit_ratio(self) -> float:
        """Hit ratio since the most recent :meth:`checkpoint`."""
        if not self._history:
            return self.local_hit_ratio
        __, local0, cxl0 = self._history[-1]
        d_local = self.local_accesses - local0
        d_cxl = self.cxl_accesses - cxl0
        if d_local + d_cxl == 0:
            return self.local_hit_ratio
        return d_local / (d_local + d_cxl)
