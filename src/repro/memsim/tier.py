"""Memory tier performance specifications (paper Section VI-A, Fig. 8).

The paper emulates two CXL devices on a two-socket Xeon by treating the
remote NUMA node as CXL memory:

- **CXL-1** -- fast, high-bandwidth CXL (all 8 remote memory channels).
- **CXL-2** -- slow, low-bandwidth CXL (1 remote memory channel).

The latency/bandwidth values below follow the paper's Figure 8, which
in turn matches the fast/slow devices characterized by Sun et al.
(MICRO'23): CXL adds ~50-100 ns over local DRAM and delivers 20-70% of
its bandwidth.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class TierSpec:
    """Performance model of one memory tier."""

    name: str
    #: Idle (unloaded) access latency in nanoseconds.
    latency_ns: float
    #: Peak sustainable bandwidth in GB/s.
    bandwidth_gbps: float

    def __post_init__(self) -> None:
        if self.latency_ns <= 0:
            raise ValueError(f"latency_ns must be > 0, got {self.latency_ns}")
        if self.bandwidth_gbps <= 0:
            raise ValueError(
                f"bandwidth_gbps must be > 0, got {self.bandwidth_gbps}"
            )

    @property
    def bandwidth_bytes_per_ns(self) -> float:
        """Bandwidth converted to bytes/ns (= GB/s / 1e9 * 1e9... = GB/s)."""
        # 1 GB/s = 1e9 bytes / 1e9 ns = 1 byte/ns.
        return self.bandwidth_gbps


#: Local DDR4 DRAM on the application socket (Fig. 8 local numbers).
LOCAL_DRAM = TierSpec(name="local-dram", latency_ns=110.0, bandwidth_gbps=85.0)

#: Emulated fast CXL device (8 remote channels): ~100 ns extra latency,
#: ~45% of local bandwidth.
CXL1_MEMORY = TierSpec(name="cxl-1", latency_ns=210.0, bandwidth_gbps=38.0)

#: Emulated slow CXL device (1 remote channel): ~300 ns extra latency,
#: ~6% of local bandwidth.
CXL2_MEMORY = TierSpec(name="cxl-2", latency_ns=400.0, bandwidth_gbps=5.5)


@dataclass(frozen=True)
class TieredMemoryConfig:
    """A local + CXL tier pairing (one of the paper's two test machines)."""

    name: str
    local: TierSpec
    cxl: TierSpec

    @property
    def latency_ratio(self) -> float:
        """CXL latency relative to local DRAM."""
        return self.cxl.latency_ns / self.local.latency_ns

    @property
    def bandwidth_fraction(self) -> float:
        """CXL bandwidth as a fraction of local DRAM bandwidth."""
        return self.cxl.bandwidth_gbps / self.local.bandwidth_gbps


#: The paper's primary evaluation machine (Sections VI-A, VII-A).
CXL1_CONFIG = TieredMemoryConfig(name="CXL-1", local=LOCAL_DRAM, cxl=CXL1_MEMORY)

#: The low-bandwidth machine used in Section VII-B (Fig. 10).
CXL2_CONFIG = TieredMemoryConfig(name="CXL-2", local=LOCAL_DRAM, cxl=CXL2_MEMORY)
