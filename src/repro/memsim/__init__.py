"""Tiered-memory hardware substrate.

Models the machine the paper evaluates on (Section VI-A): a host with
local DRAM plus a CXL-attached memory node, emulated there by a remote
NUMA socket.  Here the machine is an explicit simulator:

- :mod:`~repro.memsim.tier` -- per-tier latency/bandwidth specs with the
  paper's CXL-1 (high-bandwidth) and CXL-2 (low-bandwidth) presets.
- :class:`~repro.memsim.address_space.AddressSpace` -- virtual address
  layout (the ``/proc/PID/maps`` analogue).
- :class:`~repro.memsim.pagetable.PageTable` -- page -> tier placement
  (the ``/proc/PID/pagemap`` analogue) with batch reads.
- :class:`~repro.memsim.machine.Machine` -- allocation, watermarks and
  the ``move_pages``-style migration interface with traffic accounting.
- :class:`~repro.memsim.costmodel.CostModel` -- converts access and
  migration traffic into simulated time (latency + bandwidth model).
"""

from repro.memsim.address_space import AddressSpace, VMARegion
from repro.memsim.costmodel import BatchCost, CostModel
from repro.memsim.machine import Machine, MachineConfig
from repro.memsim.pagetable import LOCAL_TIER, CXL_TIER, UNMAPPED, PageTable
from repro.memsim.tier import (
    CXL1_CONFIG,
    CXL2_CONFIG,
    LOCAL_DRAM,
    CXL1_MEMORY,
    CXL2_MEMORY,
    TierSpec,
    TieredMemoryConfig,
)
from repro.memsim.traffic import TrafficMeter

__all__ = [
    "AddressSpace",
    "BatchCost",
    "CostModel",
    "CXL1_CONFIG",
    "CXL1_MEMORY",
    "CXL2_CONFIG",
    "CXL2_MEMORY",
    "CXL_TIER",
    "LOCAL_DRAM",
    "LOCAL_TIER",
    "Machine",
    "MachineConfig",
    "PageTable",
    "TieredMemoryConfig",
    "TierSpec",
    "TrafficMeter",
    "UNMAPPED",
    "VMARegion",
]
