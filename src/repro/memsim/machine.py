"""The tiered machine: allocation, watermarks, and page migration.

Combines the address space, page table, traffic meter and cost model
into the single object tiering policies act on.  The interface mirrors
what FreqTier and the baselines use on Linux (paper Sections IV-V):

- **allocation** follows the default Linux policy: new pages are served
  from local DRAM while space is available, then spill to CXL;
- **watermarks** ``DEMOTE_WMARK > PROMO_WMARK`` are measured against
  free local capacity (paper Section V-B / Fig. 6): when free local
  memory falls below ``PROMO_WMARK`` the policy demotes until free
  memory exceeds ``DEMOTE_WMARK``;
- :meth:`Machine.move_pages` is the ``numa_move_pages()`` analogue:
  batched, capacity-checked, traffic-accounted.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.memsim.address_space import AddressSpace, VMARegion
from repro.memsim.costmodel import CostModel, CostModelParams
from repro.memsim.pagetable import CXL_TIER, LOCAL_TIER, PageTable
from repro.memsim.tier import CXL1_CONFIG, TieredMemoryConfig
from repro.memsim.traffic import TrafficMeter
from repro.obs import NULL_TRACER, Tracer

if TYPE_CHECKING:  # import cycle guard: faults imports obs only
    from repro.faults import FaultInjector

_NO_PAGES = np.zeros(0, dtype=np.int64)


@dataclass
class MoveOutcome:
    """Per-page result of one :meth:`Machine.move_pages_ex` call.

    Mirrors the per-page status array ``numa_move_pages()`` fills in:
    a page either moved, was rejected for target capacity (ENOMEM past
    the free watermark -- the pre-existing truncation behaviour), or
    was failed by the fault injector (transiently, or because it is
    pinned).  ``enomem`` marks a whole-call target-node failure burst.
    """

    moved: np.ndarray = field(default_factory=lambda: _NO_PAGES)
    rejected_capacity: np.ndarray = field(default_factory=lambda: _NO_PAGES)
    failed_transient: np.ndarray = field(default_factory=lambda: _NO_PAGES)
    failed_pinned: np.ndarray = field(default_factory=lambda: _NO_PAGES)
    enomem: bool = False

    @property
    def num_moved(self) -> int:
        return int(self.moved.size)

    @property
    def num_failed(self) -> int:
        """Fault-failed pages (capacity rejections are not faults)."""
        return int(self.failed_transient.size + self.failed_pinned.size)

    @property
    def failed(self) -> np.ndarray:
        """All fault-failed pages, transient first."""
        if self.failed_pinned.size == 0:
            return self.failed_transient
        if self.failed_transient.size == 0:
            return self.failed_pinned
        return np.concatenate((self.failed_transient, self.failed_pinned))


@dataclass
class MachineConfig:
    """Capacities and watermark settings of one tiered machine."""

    local_capacity_pages: int
    cxl_capacity_pages: int
    memory: TieredMemoryConfig = CXL1_CONFIG
    #: Demotion stops once free local capacity exceeds this fraction.
    demote_wmark_frac: float = 0.04
    #: Demotion starts once free local capacity falls below this fraction.
    promo_wmark_frac: float = 0.02
    #: "local_first" (default Linux policy, paper Section V-B) or
    #: "interleave" (pages striped across tiers proportionally to
    #: capacity -- the bandwidth-spreading alternative some deployments
    #: use instead of tiering).
    allocation_policy: str = "local_first"
    cost_params: CostModelParams = field(default_factory=CostModelParams)

    def __post_init__(self) -> None:
        if self.local_capacity_pages <= 0:
            raise ValueError(
                f"local_capacity_pages must be > 0, got {self.local_capacity_pages}"
            )
        if self.cxl_capacity_pages <= 0:
            raise ValueError(
                f"cxl_capacity_pages must be > 0, got {self.cxl_capacity_pages}"
            )
        if not 0.0 <= self.promo_wmark_frac <= self.demote_wmark_frac <= 1.0:
            raise ValueError(
                "need 0 <= promo_wmark_frac <= demote_wmark_frac <= 1, got "
                f"promo={self.promo_wmark_frac} demote={self.demote_wmark_frac}"
            )
        if self.allocation_policy not in ("local_first", "interleave"):
            raise ValueError(
                "allocation_policy must be 'local_first' or 'interleave', "
                f"got {self.allocation_policy!r}"
            )

    @property
    def total_capacity_pages(self) -> int:
        return self.local_capacity_pages + self.cxl_capacity_pages

    @property
    def local_ratio(self) -> float:
        """Local share of total capacity (e.g. 1:32 config -> ~0.03)."""
        return self.local_capacity_pages / self.total_capacity_pages


class CapacityError(RuntimeError):
    """Raised when an allocation cannot fit in the machine."""


class Machine:
    """A two-tier (local DRAM + CXL) memory machine."""

    def __init__(self, config: MachineConfig):
        self.config = config
        self.address_space = AddressSpace()
        self.page_table = PageTable(config.total_capacity_pages)
        self.traffic = TrafficMeter()
        self.cost_model = CostModel(config.memory, config.cost_params)
        #: Observability handle; timestamps use ``tracer.clock_ns``
        #: (the engine advances it), as the machine has no clock.
        self.tracer: Tracer = NULL_TRACER
        #: Optional fault injector (see :mod:`repro.faults`): when set,
        #: migrations consult it for per-page failures and the access
        #: path ticks its batch clock.
        self.fault_injector: FaultInjector | None = None
        #: Migration gate.  While False, every :meth:`move_pages_ex`
        #: call is refused wholesale: pages land in
        #: ``rejected_capacity`` (the disposition policies already
        #: drop silently -- candidates re-qualify through the normal
        #: path later) and no traffic or fault RNG is consumed.  The
        #: serving daemon closes the gate in its defer-migrations /
        #: sample-only degradation modes.
        self.migrations_enabled = True
        #: Pages refused by the closed gate (cumulative; the daemon's
        #: migration-stall accounting reads deltas of this).
        self.migrations_deferred = 0
        self._reserved_local_pages = 0

    # -- reservations (e.g. pinned tiering metadata) -----------------------

    @property
    def reserved_local_pages(self) -> int:
        return self._reserved_local_pages

    def reserve_local_pages(self, num_pages: int) -> None:
        """Pin ``num_pages`` of local DRAM for non-application use.

        Models metadata that a tiering runtime keeps resident in local
        DRAM (e.g. HeMem's 168 bytes/page tables, paper Section VII-C),
        shrinking the capacity available to application pages.
        """
        if num_pages < 0:
            raise ValueError(f"num_pages must be >= 0, got {num_pages}")
        available = self.config.local_capacity_pages - self._reserved_local_pages
        if num_pages > available:
            raise CapacityError(
                f"cannot reserve {num_pages} local pages; only {available} left"
            )
        self._reserved_local_pages += num_pages

    # -- capacity ---------------------------------------------------------

    @property
    def local_used_pages(self) -> int:
        return self.page_table.count_in_tier(LOCAL_TIER)

    @property
    def cxl_used_pages(self) -> int:
        return self.page_table.count_in_tier(CXL_TIER)

    @property
    def local_free_pages(self) -> int:
        return (
            self.config.local_capacity_pages
            - self._reserved_local_pages
            - self.local_used_pages
        )

    @property
    def cxl_free_pages(self) -> int:
        return self.config.cxl_capacity_pages - self.cxl_used_pages

    @property
    def local_free_fraction(self) -> float:
        return self.local_free_pages / self.config.local_capacity_pages

    # -- watermarks (paper Fig. 6) -------------------------------------------

    @property
    def demote_wmark_pages(self) -> int:
        return max(
            2, int(self.config.demote_wmark_frac * self.config.local_capacity_pages)
        )

    @property
    def promo_wmark_pages(self) -> int:
        return max(
            1, int(self.config.promo_wmark_frac * self.config.local_capacity_pages)
        )

    def below_promo_wmark(self) -> bool:
        """True when free local memory is low enough to trigger demotion."""
        return self.local_free_pages < self.promo_wmark_pages

    def above_demote_wmark(self) -> bool:
        """True when demotion has freed enough local memory to stop."""
        return self.local_free_pages > self.demote_wmark_pages

    def demotion_deficit_pages(self) -> int:
        """Pages to demote to bring free local memory above DEMOTE_WMARK."""
        return max(0, self.demote_wmark_pages - self.local_free_pages + 1)

    # -- allocation -------------------------------------------------------------

    def allocate(self, num_pages: int, name: str = "anon") -> VMARegion:
        """Map a region, placing pages per the allocation policy."""
        if num_pages > self.local_free_pages + self.cxl_free_pages:
            raise CapacityError(
                f"cannot allocate {num_pages} pages: only "
                f"{self.local_free_pages + self.cxl_free_pages} free"
            )
        region = self.address_space.map_region(num_pages, name=name)
        pages = np.arange(region.start_page, region.end_page, dtype=np.int64)
        if self.config.allocation_policy == "interleave":
            self._place_interleaved(pages)
        else:
            n_local = min(num_pages, self.local_free_pages)
            if n_local:
                self.page_table.place(pages[:n_local], LOCAL_TIER)
            if n_local < num_pages:
                self.page_table.place(pages[n_local:], CXL_TIER)
        return region

    def _place_interleaved(self, pages: np.ndarray) -> None:
        """Stripe pages across tiers proportionally to free capacity."""
        num_pages = int(pages.size)
        free_local = self.local_free_pages
        free_cxl = self.cxl_free_pages
        total_free = free_local + free_cxl
        n_local = min(
            free_local, int(round(num_pages * free_local / max(total_free, 1)))
        )
        n_local = max(n_local, num_pages - free_cxl)  # CXL must absorb rest
        if num_pages <= 0:
            return
        # Even stripe: every k-th page goes local.
        mask = np.zeros(num_pages, dtype=bool)
        if n_local > 0:
            idx = np.linspace(0, num_pages - 1, n_local).astype(np.int64)
            mask[idx] = True
        if mask.any():
            self.page_table.place(pages[mask], LOCAL_TIER)
        if (~mask).any():
            self.page_table.place(pages[~mask], CXL_TIER)

    # -- migration (numa_move_pages analogue) --------------------------------------

    def move_pages_ex(self, pages: np.ndarray, target_tier: int) -> MoveOutcome:
        """Migrate ``pages`` to ``target_tier`` with per-page outcomes.

        Pages already on the target tier or unmapped are skipped; the
        move is truncated to the target tier's free capacity (as the
        kernel call would fail with ENOMEM beyond it).  When a fault
        injector is installed it may additionally fail individual
        pages (EBUSY/pinned) or the whole call (target-node ENOMEM
        burst).  Traffic is recorded for the pages moved.
        """
        pages = np.atleast_1d(np.asarray(pages, dtype=np.int64))
        if pages.size == 0:
            return MoveOutcome()
        placement = self.page_table.tier_of(pages)
        source_tier = LOCAL_TIER if target_tier == CXL_TIER else CXL_TIER
        movable = pages[placement == source_tier]
        outcome = MoveOutcome()
        if not self.migrations_enabled:
            # Gate closed (degraded serving mode): refuse the whole
            # call before the fault injector so no fault RNG is drawn
            # for work that was never attempted.
            if movable.size:
                self.migrations_deferred += int(movable.size)
                outcome.rejected_capacity = movable
                if self.tracer.enabled:
                    self.tracer.count("migrations_deferred", int(movable.size))
            return outcome
        if self.fault_injector is not None and movable.size:
            (
                movable,
                outcome.failed_pinned,
                outcome.failed_transient,
                outcome.enomem,
            ) = self.fault_injector.filter_migration(movable, target_tier)
        free = (
            self.local_free_pages if target_tier == LOCAL_TIER else self.cxl_free_pages
        )
        free = max(0, free)
        moved = movable[:free]
        outcome.moved = moved
        outcome.rejected_capacity = movable[free:]
        if moved.size == 0:
            return outcome
        self.page_table.place(moved, target_tier)
        promotion = target_tier == LOCAL_TIER
        self.traffic.record_migration(int(moved.size), promotion=promotion)
        if self.tracer.enabled:
            if promotion:
                self.tracer.observe("promotion_batch_pages", int(moved.size))
                self.tracer.count("pages_promoted", int(moved.size))
            else:
                self.tracer.observe("demotion_batch_pages", int(moved.size))
                self.tracer.count("pages_demoted", int(moved.size))
        return outcome

    def move_pages(self, pages: np.ndarray, target_tier: int) -> int:
        """Migrate ``pages`` to ``target_tier``; returns pages actually moved.

        The count-only convenience over :meth:`move_pages_ex` -- the
        historical ``numa_move_pages`` analogue interface.
        """
        return self.move_pages_ex(pages, target_tier).num_moved

    def promote(self, pages: np.ndarray) -> int:
        """Move ``pages`` from CXL to local DRAM (capacity permitting)."""
        return self.move_pages(pages, LOCAL_TIER)

    def demote(self, pages: np.ndarray) -> int:
        """Move ``pages`` from local DRAM to CXL."""
        return self.move_pages(pages, CXL_TIER)

    def promote_ex(self, pages: np.ndarray) -> MoveOutcome:
        """:meth:`move_pages_ex` toward local DRAM."""
        return self.move_pages_ex(pages, LOCAL_TIER)

    def demote_ex(self, pages: np.ndarray) -> MoveOutcome:
        """:meth:`move_pages_ex` toward CXL."""
        return self.move_pages_ex(pages, CXL_TIER)

    # -- access servicing ---------------------------------------------------------------

    def service_accesses(self, page_ids: np.ndarray) -> tuple[int, int]:
        """Service a batch of application accesses; returns (local, cxl) counts.

        Every page id must be mapped; accessing an unmapped page is a
        simulator bug, not a workload behaviour, so it raises.

        When a fault injector is installed, each serviced batch ticks
        its batch clock (the engine does this itself for engine-driven
        runs, which bypass this method).
        """
        page_ids = np.asarray(page_ids, dtype=np.int64)
        if self.fault_injector is not None:
            self.fault_injector.tick_batch()
        if page_ids.size == 0:
            return 0, 0
        placement = self.page_table.tier_of(page_ids)
        n_local = int(np.count_nonzero(placement == LOCAL_TIER))
        n_cxl = int(np.count_nonzero(placement == CXL_TIER))
        if n_local + n_cxl != page_ids.size:
            raise RuntimeError(
                f"{page_ids.size - n_local - n_cxl} accesses touched unmapped pages"
            )
        self.traffic.record_accesses(n_local, n_cxl)
        return n_local, n_cxl

    def placement_of(self, page_ids: np.ndarray) -> np.ndarray:
        """Vectorized tier lookup without traffic accounting.

        Returns the page table's native int8 placement codes (no
        widening copy; see :meth:`PageTable.tier_of`).
        """
        return self.page_table.tier_of(page_ids)

    # -- checkpointing ----------------------------------------------------

    def state_dict(self) -> dict:
        """Placement, traffic and reservations.

        The address space's region layout is *not* captured: it is a
        pure function of the deterministic setup sequence, which resume
        replays before restoring this state (see
        ``SimulationEngine.restore_state``).
        """
        return {
            "page_table": self.page_table.state_dict(),
            "traffic": self.traffic.state_dict(),
            "reserved_local_pages": self._reserved_local_pages,
            "migrations_deferred": self.migrations_deferred,
        }

    def load_state(self, state: dict) -> None:
        self.page_table.load_state(state["page_table"])
        self.traffic.load_state(state["traffic"])
        self._reserved_local_pages = int(state["reserved_local_pages"])
        # Default keeps pre-gate snapshots loadable.
        self.migrations_deferred = int(state.get("migrations_deferred", 0))
        self.migrations_enabled = True
