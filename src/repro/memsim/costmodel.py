"""Analytic timing model for the tiered machine.

The paper measures wall-clock latency and throughput on real hardware.
The simulator replaces the hardware with an explicit cost model that
converts what the memory system *does* (accesses serviced per tier,
pages migrated, policy overhead) into simulated nanoseconds.  The model
captures the three effects the paper's results hinge on:

1. **Latency**: each L3-missing access pays its tier's idle latency,
   overlapped across ``threads x mlp`` outstanding requests.
2. **Bandwidth**: a tier can move at most ``bandwidth_gbps`` bytes/ns;
   when demand (accesses + migration traffic) exceeds it, time dilates
   and loaded latency inflates (an M/M/1-style queueing term).  This is
   what makes the low-bandwidth CXL-2 device slow and what makes
   excessive migration traffic hurt (Fig. 2, Fig. 10).
3. **Interference**: page migrations also consume CPU (page copy +
   PTE updates, paper Section III Challenge 2), and each policy reports
   its own sampling/scanning tax.  This is why HeMem's accurate-but-
   heavy tracking loses to FreqTier despite good hit ratios.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro._units import PAGE_SIZE
from repro.memsim.tier import TieredMemoryConfig, TierSpec
from repro.memsim.traffic import CACHE_LINE_BYTES


@dataclass(frozen=True)
class BatchCost:
    """Timing decomposition of one simulated batch."""

    cpu_ns: float
    local_mem_ns: float
    cxl_mem_ns: float
    migration_ns: float
    overhead_ns: float

    @property
    def total_ns(self) -> float:
        return (
            self.cpu_ns
            + self.local_mem_ns
            + self.cxl_mem_ns
            + self.migration_ns
            + self.overhead_ns
        )


@dataclass(frozen=True)
class CostModelParams:
    """Machine-level constants of the timing model."""

    #: Application worker threads (the paper pins 16).
    threads: int = 16
    #: Memory-level parallelism per thread (outstanding L3 misses).
    mlp: float = 8.0
    #: CPU time to migrate one page (copy + unmap/remap + TLB shootdown),
    #: consistent with kernel move_pages costs of ~1-2 us/page.
    migration_cpu_ns_per_page: float = 1500.0
    #: Cap on the queueing-delay inflation of loaded latency.
    max_latency_inflation: float = 8.0

    @property
    def effective_parallelism(self) -> float:
        return self.threads * self.mlp


class CostModel:
    """Converts batch activity into simulated time for one machine config."""

    def __init__(
        self,
        memory: TieredMemoryConfig,
        params: CostModelParams | None = None,
    ):
        self.memory = memory
        self.params = params or CostModelParams()

    # -- loaded latency ----------------------------------------------------

    def loaded_latency_ns(self, tier: TierSpec, utilization: float) -> float:
        """Access latency under load.

        Applies an M/M/1-style queueing inflation
        ``latency * (1 + u^2 / (2 (1 - u)))`` capped at
        ``max_latency_inflation`` so saturated tiers stay finite.
        """
        u = min(max(utilization, 0.0), 0.999)
        inflation = 1.0 + (u * u) / (2.0 * (1.0 - u))
        inflation = min(inflation, self.params.max_latency_inflation)
        return tier.latency_ns * inflation

    def tier_utilization(
        self, tier: TierSpec, demand_bytes: float, window_ns: float
    ) -> float:
        """Fraction of a tier's bandwidth consumed over a window."""
        if window_ns <= 0:
            return 0.0
        demanded_rate = demand_bytes / window_ns  # bytes per ns
        return demanded_rate / tier.bandwidth_bytes_per_ns

    # -- batch timing -----------------------------------------------------------

    def batch_cost(
        self,
        cpu_ns: float,
        local_accesses: int,
        cxl_accesses: int,
        pages_migrated: int = 0,
        overhead_ns: float = 0.0,
        bytes_per_access: float = float(CACHE_LINE_BYTES),
    ) -> BatchCost:
        """Simulated time for one batch of application work.

        ``cpu_ns`` is pure compute in single-thread ns (per-op
        instruction time x ops), spread across the worker threads;
        access counts are L3-missing loads/stores per tier;
        ``pages_migrated`` counts promotions + demotions completed
        during the batch; ``overhead_ns`` is the policy's own tax
        (sampling, CBF maintenance, scan reads, ...).
        """
        cpu_ns = cpu_ns / self.params.threads
        par = self.params.effective_parallelism
        # Each migrated page is read from one tier and written to the
        # other, so every tier sees PAGE_SIZE bytes per page moved.
        migration_bytes = pages_migrated * PAGE_SIZE

        local_bytes = local_accesses * bytes_per_access + migration_bytes
        cxl_bytes = cxl_accesses * bytes_per_access + migration_bytes

        # Per-tier time: the larger of the latency-limited and the
        # bandwidth-limited service time.  Queueing inflation is NOT
        # applied to durations -- with a fixed number of outstanding
        # requests the sustained rate is already capped by the
        # bandwidth floor, and double-counting queueing would let a
        # policy "beat" the all-local upper bound by splitting traffic.
        # (Loaded latency matters for per-access latency percentiles;
        # see expected_access_latency_ns.)
        local_ns = max(
            local_accesses * self.memory.local.latency_ns / par,
            local_bytes / self.memory.local.bandwidth_bytes_per_ns,
        )
        cxl_ns = max(
            cxl_accesses * self.memory.cxl.latency_ns / par,
            cxl_bytes / self.memory.cxl.bandwidth_bytes_per_ns,
        )
        # The tiering runtime (sampling, table updates, scans, page
        # copies) occupies one of the shared cores (the paper pins the
        # runtime and the 16 app threads on the same 16 cores), so its
        # CPU time steals ~1/threads of wall time from the app.
        migration_ns = (
            pages_migrated
            * self.params.migration_cpu_ns_per_page
            / self.params.threads
        )
        overhead_ns = overhead_ns / self.params.threads

        return BatchCost(
            cpu_ns=cpu_ns,
            local_mem_ns=local_ns,
            cxl_mem_ns=cxl_ns,
            migration_ns=migration_ns,
            overhead_ns=overhead_ns,
        )

    # -- per-operation latency (P50 model) ------------------------------------------

    def expected_access_latency_ns(
        self,
        hit_ratio: float,
        local_utilization: float = 0.0,
        cxl_utilization: float = 0.0,
    ) -> float:
        """Mean L3-miss service latency given a local hit ratio."""
        if not 0.0 <= hit_ratio <= 1.0:
            raise ValueError(f"hit_ratio must be in [0, 1], got {hit_ratio}")
        local = self.loaded_latency_ns(self.memory.local, local_utilization)
        cxl = self.loaded_latency_ns(self.memory.cxl, cxl_utilization)
        return hit_ratio * local + (1.0 - hit_ratio) * cxl
