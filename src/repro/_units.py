"""Units and scaling conventions shared across the simulator.

The paper evaluates workloads with footprints of 248--335 GB on machines
with 16--64 GB of local DRAM.  A Python, page-granular simulation cannot
hold billions of page records, so the whole reproduction runs at a
uniform ``SCALE_FACTOR`` footprint reduction: one *simulated* GB is
``PAGES_PER_SIM_GB`` model pages of ``PAGE_SIZE`` bytes.

Capacity *ratios* (1:8, 1:16, 1:32 local:CXL), watermark fractions, CBF
sizing rules and sampling rates are preserved exactly; only the absolute
page counts shrink.  Helper functions convert between the paper's
nominal sizes and simulated page counts so benchmark output can report
the paper's nominal figures.
"""

from __future__ import annotations

#: Size of one model page in bytes (the smallest migration granularity
#: supported by Linux ``move_pages``, per the paper Section III).
PAGE_SIZE: int = 4096

#: Bytes in one (real) GiB.
GiB: int = 1 << 30

#: Bytes in one (real) MiB.
MiB: int = 1 << 20

#: Bytes in one (real) KiB.
KiB: int = 1 << 10

#: Footprint reduction of the simulation relative to the paper's setup.
#: 1024x means the paper's 16 GB local DRAM becomes 16 "sim-GB" =
#: 4096 model pages.
SCALE_FACTOR: int = 1024

#: Model pages per simulated GB (= GiB / SCALE_FACTOR / PAGE_SIZE).
PAGES_PER_SIM_GB: int = GiB // SCALE_FACTOR // PAGE_SIZE


def sim_gb_to_pages(gigabytes: float) -> int:
    """Convert a paper-nominal capacity in GB to simulated page count."""
    return int(round(gigabytes * PAGES_PER_SIM_GB))


def pages_to_sim_gb(pages: int) -> float:
    """Convert a simulated page count back to paper-nominal GB."""
    return pages / PAGES_PER_SIM_GB


def pages_to_bytes(pages: int) -> int:
    """Size in (simulated) bytes of ``pages`` model pages."""
    return pages * PAGE_SIZE


def bytes_to_pages(n_bytes: int) -> int:
    """Number of whole model pages covering ``n_bytes`` (ceiling)."""
    return -(-n_bytes // PAGE_SIZE)
