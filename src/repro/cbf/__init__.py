"""Probabilistic frequency-tracking substrate.

This package implements the counting Bloom filter (CBF) family that
FreqTier uses to track per-page access frequencies (paper Sections IV-B
and V-A), plus the exact hash-table tracker used by HeMem and by the
accuracy studies:

- :class:`~repro.cbf.cbf.CountingBloomFilter` -- classic CBF with
  conservative (increment-the-minimum) updates and periodic aging.
- :class:`~repro.cbf.blocked.BlockedCountingBloomFilter` -- the blocked
  variant where all counters for a key live in one 64-byte block
  (paper Section V-C(b), after Caffeine).
- :class:`~repro.cbf.coalescing.SampleCoalescer` -- batch increment
  coalescing (paper Section V-C(c)).
- :mod:`~repro.cbf.sizing` -- false-positive-rate math used to size the
  filter for a target FPR (paper Section V-A).
- :class:`~repro.cbf.exact.ExactFrequencyTracker` -- precise per-key
  counter table with HeMem-style per-page metadata accounting.
"""

from repro.cbf.blocked import BlockedCountingBloomFilter
from repro.cbf.cbf import CountingBloomFilter
from repro.cbf.coalescing import SampleCoalescer
from repro.cbf.counters import PackedCounterArray
from repro.cbf.exact import ExactFrequencyTracker
from repro.cbf.sizing import (
    counters_for_fpr,
    false_positive_rate,
    optimal_num_hashes,
)

__all__ = [
    "BlockedCountingBloomFilter",
    "CountingBloomFilter",
    "ExactFrequencyTracker",
    "PackedCounterArray",
    "SampleCoalescer",
    "counters_for_fpr",
    "false_positive_rate",
    "optimal_num_hashes",
]
