"""Bloom-filter sizing math (paper Section V-A).

FreqTier sizes its CBF "large enough to store all pages in local DRAM
while achieving a false positive rate of 1e-3", citing the standard
Broder--Mitzenmacher survey formulas.  This module provides those
formulas and the solver FreqTier's config layer uses:

- ``false_positive_rate(m, n, k)`` -- classic FPR approximation
  ``(1 - e^{-kn/m})^k``.
- ``optimal_num_hashes(m, n)`` -- ``k* = (m/n) ln 2``.
- ``counters_for_fpr(n, fpr, k)`` -- smallest ``m`` meeting the target.
"""

from __future__ import annotations

import math


def false_positive_rate(num_counters: int, num_keys: int, num_hashes: int) -> float:
    """Approximate FPR of a Bloom filter with ``m`` slots, ``n`` keys, ``k`` hashes."""
    if num_counters <= 0:
        raise ValueError(f"num_counters must be > 0, got {num_counters}")
    if num_hashes <= 0:
        raise ValueError(f"num_hashes must be > 0, got {num_hashes}")
    if num_keys <= 0:
        return 0.0
    exponent = -num_hashes * num_keys / num_counters
    return (1.0 - math.exp(exponent)) ** num_hashes


def optimal_num_hashes(num_counters: int, num_keys: int) -> int:
    """FPR-optimal hash count ``k* = (m/n) ln 2``, at least 1."""
    if num_counters <= 0 or num_keys <= 0:
        raise ValueError("num_counters and num_keys must be > 0")
    return max(1, round((num_counters / num_keys) * math.log(2)))


def counters_for_fpr(num_keys: int, target_fpr: float, num_hashes: int) -> int:
    """Smallest counter count ``m`` with FPR <= ``target_fpr`` for ``n`` keys.

    Solves ``(1 - e^{-kn/m})^k <= p`` for ``m``:
    ``m >= -k n / ln(1 - p^{1/k})``.
    """
    if not 0.0 < target_fpr < 1.0:
        raise ValueError(f"target_fpr must be in (0, 1), got {target_fpr}")
    if num_keys <= 0:
        raise ValueError(f"num_keys must be > 0, got {num_keys}")
    if num_hashes <= 0:
        raise ValueError(f"num_hashes must be > 0, got {num_hashes}")
    base = 1.0 - target_fpr ** (1.0 / num_hashes)
    m = -num_hashes * num_keys / math.log(base)
    return max(num_hashes, math.ceil(m))


def cbf_bytes_for_fpr(
    num_keys: int, target_fpr: float, num_hashes: int, bits: int = 4
) -> int:
    """Memory in bytes of a CBF sized for ``num_keys`` at ``target_fpr``."""
    m = counters_for_fpr(num_keys, target_fpr, num_hashes)
    return -(-m * bits // 8)
