"""Exact per-key frequency tracking (the hash-table alternative).

HeMem (paper Section II-C2) tracks page frequencies precisely in a hash
table, paying 168 bytes of metadata per page -- ~4% of a 267 GB
footprint, 110x FreqTier's CBF.  This module provides that tracker:

- for the :class:`~repro.policies.hemem.HeMem` baseline, and
- as the ground-truth oracle in the CBF accuracy studies.

Memory accounting uses the modeled per-entry cost (default HeMem's
168 bytes/page), not Python's actual overhead, so the paper's
Section VII-C comparison is reproducible.
"""

from __future__ import annotations

import numpy as np

#: Per-page metadata HeMem maintains (paper Section VII-C).
HEMEM_BYTES_PER_PAGE = 168


class ExactFrequencyTracker:
    """Precise page -> access-count map with aging.

    Mirrors the :class:`~repro.cbf.cbf.CountingBloomFilter` interface
    (``get`` / ``increment`` / ``increase`` / ``age``) so policies and
    studies can swap trackers.
    """

    def __init__(
        self,
        bytes_per_entry: int = HEMEM_BYTES_PER_PAGE,
        max_count: int | None = None,
    ):
        self._counts: dict[int, int] = {}
        self.bytes_per_entry = int(bytes_per_entry)
        self.max_count = max_count

    # -- sizing ----------------------------------------------------------

    @property
    def num_entries(self) -> int:
        return len(self._counts)

    @property
    def nbytes(self) -> int:
        """Modeled metadata footprint (entries x per-entry bytes)."""
        return len(self._counts) * self.bytes_per_entry

    # -- queries -----------------------------------------------------------

    def get(self, keys: np.ndarray | int) -> np.ndarray | int:
        """Exact recorded frequency per key (0 if never seen)."""
        if np.isscalar(keys):
            return self._counts.get(int(keys), 0)
        arr = np.asarray(keys, dtype=np.uint64)
        return np.fromiter(
            (self._counts.get(int(key), 0) for key in arr),
            dtype=np.int64,
            count=len(arr),
        )

    # -- updates -------------------------------------------------------------

    def increment(self, keys: np.ndarray | int) -> np.ndarray:
        """Record one access per key; duplicates count separately."""
        arr = np.atleast_1d(np.asarray(keys, dtype=np.uint64))
        return self.increase(arr, np.ones(len(arr), dtype=np.int64))

    def increase(self, keys: np.ndarray, amounts: np.ndarray | int) -> np.ndarray:
        """Add ``amounts[i]`` accesses to key ``i``; returns new counts."""
        arr = np.atleast_1d(np.asarray(keys, dtype=np.uint64))
        amt = np.broadcast_to(np.asarray(amounts, dtype=np.int64), arr.shape)
        out = np.empty(len(arr), dtype=np.int64)
        for i, (key, a) in enumerate(zip(arr, amt)):
            new = self._counts.get(int(key), 0) + int(a)
            if self.max_count is not None:
                new = min(new, self.max_count)
            self._counts[int(key)] = new
            out[i] = new
        return out

    def age(self) -> None:
        """Halve all counts, dropping entries that reach zero."""
        self._counts = {
            key: half for key, count in self._counts.items() if (half := count // 2)
        }

    def clear(self) -> None:
        self._counts.clear()

    # -- checkpointing -------------------------------------------------------

    def state_dict(self) -> dict:
        """Counts as sorted ``[page, count]`` pairs (JSON has no int keys)."""
        return {
            "counts": [
                [int(page), int(count)]
                for page, count in sorted(self._counts.items())
            ]
        }

    def load_state(self, state: dict) -> None:
        self._counts = {
            int(page): int(count) for page, count in state["counts"]
        }

    # -- analysis -----------------------------------------------------------------

    def items(self):
        """Iterate ``(page, count)`` pairs (analysis/tests)."""
        return self._counts.items()

    def counter_histogram(self, max_value: int = 15) -> np.ndarray:
        """Histogram of counts clamped to ``max_value`` (Fig. 14 analogue)."""
        hist = np.zeros(max_value + 1, dtype=np.int64)
        for count in self._counts.values():
            hist[min(count, max_value)] += 1
        return hist
