"""Exact per-key frequency tracking (the hash-table alternative).

HeMem (paper Section II-C2) tracks page frequencies precisely in a hash
table, paying 168 bytes of metadata per page -- ~4% of a 267 GB
footprint, 110x FreqTier's CBF.  This module provides that tracker:

- for the :class:`~repro.policies.hemem.HeMem` baseline, and
- as the ground-truth oracle in the CBF accuracy studies.

Memory accounting uses the modeled per-entry cost (default HeMem's
168 bytes/page), not Python's actual overhead, so the paper's
Section VII-C comparison is reproducible.

The store is a dense counter array indexed by key (keys are page ids
in every consumer), with a dict spill for keys past the dense cap, so
bulk updates and lookups are vectorized instead of one dict operation
per sample.  Only keys with a non-zero count exist as entries; the
modeled footprint and :meth:`age` drop semantics are unchanged.
"""

from __future__ import annotations

import numpy as np

#: Per-page metadata HeMem maintains (paper Section VII-C).
HEMEM_BYTES_PER_PAGE = 168

#: Largest key held in the dense array (32 MB of int64 counters).
#: Keys at or above this spill to a dict -- correctness is identical,
#: only the (never-exercised-in-practice) speed differs.
_DENSE_KEY_LIMIT = 1 << 22


class ExactFrequencyTracker:
    """Precise page -> access-count map with aging.

    Mirrors the :class:`~repro.cbf.cbf.CountingBloomFilter` interface
    (``get`` / ``increment`` / ``increase`` / ``age``) so policies and
    studies can swap trackers.
    """

    def __init__(
        self,
        bytes_per_entry: int = HEMEM_BYTES_PER_PAGE,
        max_count: int | None = None,
    ):
        self._dense = np.zeros(0, dtype=np.int64)
        self._spill: dict[int, int] = {}
        self.bytes_per_entry = int(bytes_per_entry)
        self.max_count = max_count

    # -- sizing ----------------------------------------------------------

    @property
    def num_entries(self) -> int:
        return int(np.count_nonzero(self._dense)) + len(self._spill)

    @property
    def nbytes(self) -> int:
        """Modeled metadata footprint (entries x per-entry bytes)."""
        return self.num_entries * self.bytes_per_entry

    def _grow_dense(self, max_key: int) -> None:
        if max_key < self._dense.size:
            return
        grown = np.zeros(
            min(max(max_key + 1, 2 * self._dense.size), _DENSE_KEY_LIMIT),
            dtype=np.int64,
        )
        grown[: self._dense.size] = self._dense
        self._dense = grown

    # -- queries -----------------------------------------------------------

    def get(self, keys: np.ndarray | int) -> np.ndarray | int:
        """Exact recorded frequency per key (0 if never seen)."""
        if np.isscalar(keys):
            key = int(keys)
            if key < self._dense.size:
                return int(self._dense[key])
            return self._spill.get(key, 0)
        arr = np.asarray(keys, dtype=np.uint64)
        if arr.size and int(arr.max()) < self._dense.size:
            return self._dense[arr]
        out = np.zeros(arr.size, dtype=np.int64)
        in_dense = arr < self._dense.size
        out[in_dense] = self._dense[arr[in_dense]]
        if self._spill:
            for i in np.nonzero(arr >= _DENSE_KEY_LIMIT)[0]:
                out[i] = self._spill.get(int(arr[i]), 0)
        return out

    # -- updates -------------------------------------------------------------

    def increment(self, keys: np.ndarray | int) -> np.ndarray:
        """Record one access per key; duplicates count separately."""
        arr = np.atleast_1d(np.asarray(keys, dtype=np.uint64))
        return self.increase(arr, np.ones(len(arr), dtype=np.int64))

    def increase(self, keys: np.ndarray, amounts: np.ndarray | int) -> np.ndarray:
        """Add ``amounts[i]`` accesses to key ``i``; returns new counts.

        Duplicate keys accumulate sequentially, each occurrence seeing
        the running total so far -- exactly one hash-table update per
        sample, as HeMem performs it, but computed for the whole batch
        with a stable sort and segmented running sums.
        """
        arr = np.atleast_1d(np.asarray(keys, dtype=np.uint64))
        amt = np.broadcast_to(np.asarray(amounts, dtype=np.int64), arr.shape)
        n = arr.size
        out = np.empty(n, dtype=np.int64)
        if n == 0:
            return out
        if np.any(amt < 0) or bool(np.any(arr >= _DENSE_KEY_LIMIT)):
            # Negative deltas make the per-step cap order-sensitive, and
            # spill keys live in the dict: take the one-at-a-time path.
            self._increase_loop(arr, amt, out)
            return out
        self._grow_dense(int(arr.max()))
        if n <= (1 << 40):
            # Keys are < 2**22 on this path, so ``key*n + position``
            # fits uint64 and is unique per element; quicksorting the
            # composite reproduces the stable key order several times
            # cheaper than a stable argsort of the keys.
            comp = arr * np.uint64(n) + np.arange(n, dtype=np.uint64)
            comp.sort()
            order = (comp % np.uint64(n)).astype(np.int64)
            sk = comp // np.uint64(n)
        else:
            order = np.argsort(arr, kind="stable")
            sk = arr[order]
        sa = amt[order]
        new_group = np.empty(n, dtype=bool)
        new_group[0] = True
        np.not_equal(sk[1:], sk[:-1], out=new_group[1:])
        group_id = np.cumsum(new_group) - 1
        csum = np.cumsum(sa)
        # Running totals restarted at each group: subtract the stream
        # cumsum just before the group start, then add the stored base.
        start_offset = (csum - sa)[new_group]
        uniq = sk[new_group]
        running = csum - start_offset[group_id] + self._dense[uniq][group_id]
        if self.max_count is not None:
            # Amounts are non-negative here, so running totals are
            # monotone within a group and the per-step cap reduces to
            # an elementwise clamp.
            np.minimum(running, self.max_count, out=running)
        out[order] = running
        group_last = np.empty(uniq.size, dtype=np.int64)
        group_last[:-1] = np.nonzero(new_group)[0][1:] - 1
        group_last[-1] = n - 1
        self._dense[uniq] = running[group_last]
        return out

    def _increase_loop(self, arr: np.ndarray, amt: np.ndarray, out: np.ndarray) -> None:
        for i, (key, a) in enumerate(zip(arr, amt)):
            key = int(key)
            new = self.get(key) + int(a)
            if self.max_count is not None:
                new = min(new, self.max_count)
            if key < _DENSE_KEY_LIMIT:
                self._grow_dense(key)
                self._dense[key] = new
            else:
                self._spill[key] = new
            out[i] = new

    def age(self) -> None:
        """Halve all counts, dropping entries that reach zero."""
        np.floor_divide(self._dense, 2, out=self._dense)
        self._spill = {
            key: half for key, count in self._spill.items() if (half := count // 2)
        }

    def clear(self) -> None:
        self._dense[:] = 0
        self._spill.clear()

    # -- checkpointing -------------------------------------------------------

    def state_dict(self) -> dict:
        """Counts as sorted ``[page, count]`` pairs (JSON has no int keys)."""
        pages = np.nonzero(self._dense)[0]
        pairs = [[int(page), int(self._dense[page])] for page in pages]
        # Spill keys all exceed dense indices, so sorted order is just
        # the concatenation.
        pairs.extend([k, v] for k, v in sorted(self._spill.items()))
        return {"counts": pairs}

    def load_state(self, state: dict) -> None:
        self._dense[:] = 0
        self._spill.clear()
        for page, count in state["counts"]:
            page, count = int(page), int(count)
            if page < _DENSE_KEY_LIMIT:
                self._grow_dense(page)
                self._dense[page] = count
            else:
                self._spill[page] = count

    # -- analysis -----------------------------------------------------------------

    def items(self):
        """Iterate ``(page, count)`` pairs (analysis/tests)."""
        for page in np.nonzero(self._dense)[0]:
            yield int(page), int(self._dense[page])
        yield from self._spill.items()

    def counter_histogram(self, max_value: int = 15) -> np.ndarray:
        """Histogram of counts clamped to ``max_value`` (Fig. 14 analogue)."""
        live = self._dense[self._dense > 0]
        hist = np.bincount(
            np.minimum(live, max_value), minlength=max_value + 1
        )[: max_value + 1].astype(np.int64)
        for count in self._spill.values():
            hist[min(count, max_value)] += 1
        return hist
