"""Count-Min Sketch: the non-conservative alternative to the CBF.

FreqTier's CBF uses *conservative update* (only the minimal counters
rise).  The classic Count-Min Sketch increments **all** ``k`` counters
per update -- simpler, but every collision inflates every colliding
key, so overcounting grows with load.  Included to quantify the
conservative-update design choice
(``benchmarks/test_ablation_conservative_update.py``).
"""

from __future__ import annotations

import numpy as np

from repro.cbf.cbf import CountingBloomFilter


class CountMinSketch(CountingBloomFilter):
    """CBF-compatible tracker with non-conservative (all-counter) updates."""

    def increase(
        self, keys: np.ndarray, amounts: np.ndarray | int
    ) -> np.ndarray:
        arr = np.atleast_1d(np.asarray(keys, dtype=np.uint64))
        amt = np.broadcast_to(
            np.asarray(amounts, dtype=np.int64), arr.shape
        ).copy()
        if arr.size == 0:
            return np.zeros(0, dtype=np.int64)
        uniq, inverse = np.unique(arr, return_inverse=True)
        totals = np.zeros(len(uniq), dtype=np.int64)
        np.add.at(totals, inverse, amt)

        idx = self._indices(uniq)  # (u, k)
        # All k counters take the full amount (the CMS update rule).
        flat_idx = idx.ravel()
        flat_amt = np.repeat(totals, idx.shape[1])
        self._counters.add_saturating(flat_idx, flat_amt)

        self.stats.increments += int(amt.sum())
        self.stats.slot_accesses += idx.size * 2

        self._since_aging += int(amt.sum())
        if (
            self.aging_interval is not None
            and self._since_aging >= self.aging_interval
        ):
            self.age()

        return np.minimum(
            self._counters.get(self._indices(arr)).min(axis=1), self.max_count
        )
