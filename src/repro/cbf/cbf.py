"""Counting Bloom filter with conservative updates and aging.

This is the core probabilistic frequency tracker of FreqTier (paper
Sections IV-B and V-A).  Unlike a hash table, the CBF does not store
keys; hash collisions are allowed and their likelihood is controlled by
the array size.  ``GET`` returns the minimum of the ``k`` counters a key
maps to; ``INCREMENT`` raises only the minimal counters (conservative
update, which provably never undercounts and reduces overcounting).

Aging divides every counter by two (paper Section V-A, after TinyLFU
and HeMem) to keep frequencies fresh.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import accel
from repro.cbf.counters import PackedCounterArray


@dataclass
class CBFStats:
    """Operation counters for overhead accounting and the coalescing study."""

    gets: int = 0
    increments: int = 0
    #: Individual counter-slot touches (the metric the coalescing
    #: optimization reduces by ~4x, paper Section V-C(c)).
    slot_accesses: int = 0
    agings: int = 0

    def snapshot(self) -> dict[str, int]:
        return {
            "gets": self.gets,
            "increments": self.increments,
            "slot_accesses": self.slot_accesses,
            "agings": self.agings,
        }


class CountingBloomFilter:
    """Classic counting Bloom filter over 64-bit keys (page ids).

    Parameters
    ----------
    num_counters:
        Size of the counter array (``N`` in the paper).
    num_hashes:
        Number of hash functions (``k`` in the paper, default 3 as in
        the paper's Figure 5 example).
    bits:
        Counter width; the paper defaults to 4 bits (max count 15).
    seed:
        Hash-family seed; distinct seeds give independent filters.
    aging_interval:
        If set, every ``aging_interval`` increment operations all
        counters are halved automatically.  ``None`` leaves aging to
        explicit :meth:`age` calls (FreqTier's policy layer drives it).
    """

    def __init__(
        self,
        num_counters: int,
        num_hashes: int = 3,
        bits: int = 4,
        seed: int = 0,
        aging_interval: int | None = None,
    ):
        if num_hashes < 1:
            raise ValueError(f"num_hashes must be >= 1, got {num_hashes}")
        if aging_interval is not None and aging_interval < 1:
            raise ValueError(f"aging_interval must be >= 1, got {aging_interval}")
        self.num_counters = int(num_counters)
        self.num_hashes = int(num_hashes)
        self.bits = int(bits)
        self.seed = int(seed)
        self.aging_interval = aging_interval
        self._counters = PackedCounterArray(self.num_counters, bits=bits)
        self._since_aging = 0
        self.stats = CBFStats()

    # -- sizing / introspection ----------------------------------------

    @property
    def max_count(self) -> int:
        """Largest representable frequency (``2**bits - 1``)."""
        return self._counters.max_value

    @property
    def nbytes(self) -> int:
        """Memory footprint of the counter array in bytes."""
        return self._counters.nbytes

    # -- key -> slot mapping --------------------------------------------

    def _indices(self, keys: np.ndarray) -> np.ndarray:
        """Shape (len(keys), k) slot indices; subclasses override."""
        return accel.classic_indices(
            keys, self.num_hashes, self.num_counters, self.seed
        )

    # -- queries ---------------------------------------------------------

    def get(self, keys: np.ndarray | int) -> np.ndarray | int:
        """Estimated frequency for each key (min over its ``k`` counters)."""
        scalar = np.isscalar(keys)
        arr = np.atleast_1d(np.asarray(keys, dtype=np.uint64))
        idx = self._indices(arr)
        # Hash outputs are already reduced into [0, num_counters), so
        # the packed array's bounds scan is skipped on this hot path.
        values = self._counters.get(idx, check=False).min(axis=1)
        self.stats.gets += len(arr)
        self.stats.slot_accesses += idx.size
        return int(values[0]) if scalar else values

    def slot_indices(self, keys: np.ndarray) -> np.ndarray:
        """Shape ``(len(keys), k)`` slot indices of ``keys``.

        Indices depend only on the filter's geometry and seed (both
        fixed at construction), so callers querying a *static* key set
        repeatedly -- e.g. the demotion scan's address-space chunks --
        may compute them once and replay through
        :meth:`get_by_indices`, skipping the per-call hashing.
        """
        return self._indices(np.asarray(keys, dtype=np.uint64))

    def get_by_indices(self, idx: np.ndarray) -> np.ndarray:
        """Frequencies for precomputed :meth:`slot_indices` rows."""
        values = self._counters.get(idx, check=False).min(axis=1)
        self.stats.gets += idx.shape[0]
        self.stats.slot_accesses += idx.size
        return values

    # -- updates ----------------------------------------------------------

    def increment(self, keys: np.ndarray | int) -> np.ndarray:
        """Record one access per key; returns the new estimated frequencies.

        Equivalent to ``increase(keys, 1)`` for unique keys.  Duplicate
        keys in one call are processed as separate accesses.
        """
        arr = np.atleast_1d(np.asarray(keys, dtype=np.uint64))
        return self.increase(arr, np.ones(len(arr), dtype=np.int64))

    def increase(
        self, keys: np.ndarray, amounts: np.ndarray | int
    ) -> np.ndarray:
        """Conservative bulk update: add ``amounts[i]`` accesses to key ``i``.

        This is the ``increase_frequency(page, amount)`` primitive that
        increment coalescing targets (paper Section V-C(c)).  Returns
        the new estimated frequency of each key.
        """
        arr = np.atleast_1d(np.asarray(keys, dtype=np.uint64))
        amt = np.broadcast_to(
            np.asarray(amounts, dtype=np.int64), arr.shape
        ).copy()
        if arr.size == 0:
            return np.zeros(0, dtype=np.int64)
        # Coalesce duplicate keys within the call so conservative update
        # semantics hold for the aggregate amount.
        uniq, inverse = np.unique(arr, return_inverse=True)
        totals = np.zeros(len(uniq), dtype=np.int64)
        np.add.at(totals, inverse, amt)

        idx = self._indices(uniq)  # (u, k); in-range by construction
        # Conservative update via scatter-max: a counter rises to the
        # largest target among the keys mapping to it this batch and
        # never falls, so counters already above their key's target
        # (inflated by other keys) are untouched -- no sort needed to
        # order colliding writes.  min-read + scatter-max + readback run
        # as one fused kernel (repro.accel).
        per_uniq = self._counters.fused_update(idx, totals)

        total_amt = int(amt.sum())
        self.stats.increments += total_amt
        self.stats.slot_accesses += idx.size * 2  # read + write pass

        self._since_aging += total_amt
        if (
            self.aging_interval is not None
            and self._since_aging >= self.aging_interval
        ):
            self.age()
            # Historically the readback ran after auto-aging, so the
            # returned frequencies reflect the halved counters.
            per_uniq = self._counters.get(idx, check=False).min(axis=1)

        # Frequency readback: ``fused_update`` already returned the
        # post-update min per unique key against the fully updated
        # store; map it back through ``inverse``.
        return per_uniq[inverse].reshape(arr.shape)

    def age(self) -> None:
        """Halve all counters (keeps frequencies fresh, paper Section V-A)."""
        self._counters.halve_all()
        self._since_aging = 0
        self.stats.agings += 1

    def clear(self) -> None:
        """Reset every counter to zero."""
        self._counters = PackedCounterArray(self.num_counters, bits=self.bits)
        self._since_aging = 0

    # -- checkpointing ---------------------------------------------------

    def state_dict(self) -> dict:
        return {
            "counters": self._counters.state_dict(),
            "since_aging": self._since_aging,
            "stats": self.stats.snapshot(),
        }

    def load_state(self, state: dict) -> None:
        self._counters.load_state(state["counters"])
        self._since_aging = int(state["since_aging"])
        stats = state["stats"]
        self.stats.gets = int(stats["gets"])
        self.stats.increments = int(stats["increments"])
        self.stats.slot_accesses = int(stats["slot_accesses"])
        self.stats.agings = int(stats["agings"])

    # -- analysis helpers --------------------------------------------------

    def counter_histogram(self) -> np.ndarray:
        """Histogram of raw counter values, length ``max_count + 1``.

        Used to reproduce the paper's Figure 14 frequency CDF, and by
        the threshold controller once per processing round -- served
        from the packed store's byte histogram without unpacking.
        """
        return self._counters.value_histogram()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"{type(self).__name__}(num_counters={self.num_counters}, "
            f"num_hashes={self.num_hashes}, bits={self.bits}, "
            f"nbytes={self.nbytes})"
        )
