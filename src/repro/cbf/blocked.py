"""Blocked counting Bloom filter (paper Section V-C(b)).

In the classic CBF the ``k`` counters for a page are scattered across
the whole array, so one lookup can touch up to ``k`` cache lines.  The
blocked variant (after Caffeine's frequency sketch) confines all of a
key's counters to one 64-byte block -- a single cache line -- bounding
the lookup to one cache/DRAM access.  Part of one hash selects the
block; further hash bits select the ``k`` counter slots inside it.

The paper reports negligible accuracy loss versus the classic CBF; the
``benchmarks/test_ablation_blocked_cbf.py`` bench reproduces that
comparison, and :attr:`cache_lines_per_access` exposes the 1-vs-k
access-bound difference the optimization exists for.
"""

from __future__ import annotations

import numpy as np

from repro import accel
from repro.cbf.cbf import CountingBloomFilter

#: Size of one block in bytes = one x86 cache line.
BLOCK_BYTES = 64


class BlockedCountingBloomFilter(CountingBloomFilter):
    """CBF variant whose per-key counters share one 64-byte block.

    The counter array is partitioned into blocks of ``BLOCK_BYTES``
    bytes; with 4-bit counters each block holds 128 counters.  The
    total size is rounded up to a whole number of blocks.
    """

    def __init__(
        self,
        num_counters: int,
        num_hashes: int = 3,
        bits: int = 4,
        seed: int = 0,
        aging_interval: int | None = None,
    ):
        counters_per_block = BLOCK_BYTES * 8 // bits
        if num_counters < counters_per_block:
            num_counters = counters_per_block
        num_blocks = -(-int(num_counters) // counters_per_block)
        super().__init__(
            num_blocks * counters_per_block,
            num_hashes=num_hashes,
            bits=bits,
            seed=seed,
            aging_interval=aging_interval,
        )
        self.counters_per_block = counters_per_block
        self.num_blocks = num_blocks

    @property
    def cache_lines_per_access(self) -> int:
        """Worst-case cache lines touched per GET/INCREMENT (always 1)."""
        return 1

    def _indices(self, keys: np.ndarray) -> np.ndarray:
        # One hash picks the block, independent hashes pick in-block
        # slots; the per-seed hash passes are fused in the kernel.
        return accel.blocked_indices(
            keys,
            self.seed,
            self.num_blocks,
            self.counters_per_block,
            self.num_hashes,
        )
