"""CBF increment coalescing (paper Section V-C(c)).

Memory access distributions are skewed, so a batch of PEBS samples hits
few distinct pages many times.  Instead of calling ``increment`` once
per sample, FreqTier aggregates a batch in a hash table and issues one
``increase(page, amount)`` per *unique* page, cutting CBF slot accesses
by ~4x on the paper's workloads.

:class:`SampleCoalescer` implements that aggregation and keeps the
counters needed to reproduce the 4x figure
(``benchmarks/test_ablation_coalescing.py``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cbf.cbf import CountingBloomFilter


@dataclass
class CoalescingStats:
    """Raw-vs-coalesced access accounting."""

    samples_in: int = 0
    unique_increments_out: int = 0

    @property
    def reduction_factor(self) -> float:
        """How many CBF update calls coalescing saved (paper reports ~4x)."""
        if self.unique_increments_out == 0:
            return 1.0
        return self.samples_in / self.unique_increments_out


class SampleCoalescer:
    """Aggregates a batch of page-access samples before CBF insertion."""

    def __init__(self, cbf: CountingBloomFilter):
        self.cbf = cbf
        self.stats = CoalescingStats()

    def ingest(self, page_ids: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Coalesce ``page_ids`` and apply them to the CBF.

        Returns ``(unique_pages, new_frequencies)`` -- the estimated
        frequency of each unique page after the batch is applied, which
        the promotion policy compares against the hot threshold
        (paper Algorithm 1, batched form).
        """
        arr = np.asarray(page_ids, dtype=np.uint64)
        if arr.size == 0:
            return (
                np.zeros(0, dtype=np.uint64),
                np.zeros(0, dtype=np.int64),
            )
        uniq, counts = np.unique(arr, return_counts=True)
        freqs = self.cbf.increase(uniq, counts)
        self.stats.samples_in += int(arr.size)
        self.stats.unique_increments_out += int(uniq.size)
        return uniq, freqs

    def state_dict(self) -> dict:
        """Aggregation counters only -- the CBF checkpoints itself."""
        return {
            "samples_in": self.stats.samples_in,
            "unique_increments_out": self.stats.unique_increments_out,
        }

    def load_state(self, state: dict) -> None:
        self.stats.samples_in = int(state["samples_in"])
        self.stats.unique_increments_out = int(state["unique_increments_out"])

    def coalesce_only(self, page_ids: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Aggregate without touching the CBF (for analysis/tests)."""
        arr = np.asarray(page_ids, dtype=np.uint64)
        uniq, counts = np.unique(arr, return_counts=True)
        return uniq, counts.astype(np.int64)
