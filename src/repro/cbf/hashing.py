"""Deterministic 64-bit hashing for Bloom-filter index derivation.

FreqTier's CBF needs ``k`` independent array indices per page address.
We use the standard Kirsch--Mitzenmacher double-hashing construction:
two independent 64-bit mixes ``h1`` and ``h2`` of the key produce the
family ``index_i = (h1 + i * h2) mod num_slots``, which is known to
preserve Bloom-filter false-positive guarantees.

All functions are vectorized over numpy ``uint64`` arrays so a 100k
sample batch is hashed in a handful of array operations.
"""

from __future__ import annotations

import numpy as np

# splitmix64 constants (Steele, Lea, Flood 2014), the canonical cheap
# statistically-strong 64-bit mixer.
_GOLDEN = np.uint64(0x9E3779B97F4A7C15)
_MIX1 = np.uint64(0xBF58476D1CE4E5B9)
_MIX2 = np.uint64(0x94D049BB133111EB)
_U64 = np.uint64


def splitmix64(keys: np.ndarray, seed: int = 0) -> np.ndarray:
    """Mix ``keys`` (uint64 array) into uniform 64-bit hashes.

    ``seed`` selects an independent hash function from the family.
    """
    with np.errstate(over="ignore"):
        z = keys.astype(np.uint64) + _U64(seed & 0xFFFFFFFFFFFFFFFF) * _GOLDEN + _GOLDEN
        z = (z ^ (z >> _U64(30))) * _MIX1
        z = (z ^ (z >> _U64(27))) * _MIX2
        return z ^ (z >> _U64(31))


def hash_pair(keys: np.ndarray, seed: int = 0) -> tuple[np.ndarray, np.ndarray]:
    """Return the ``(h1, h2)`` double-hash pair for each key.

    ``h2`` is forced odd so that for power-of-two table sizes every
    probe sequence visits distinct slots.
    """
    h1 = splitmix64(keys, seed=seed)
    h2 = splitmix64(keys, seed=seed + 1) | _U64(1)
    return h1, h2


def derive_indices(
    keys: np.ndarray, num_hashes: int, num_slots: int, seed: int = 0
) -> np.ndarray:
    """Derive ``num_hashes`` slot indices per key.

    Returns an array of shape ``(len(keys), num_hashes)`` with values in
    ``[0, num_slots)``.
    """
    if num_hashes < 1:
        raise ValueError(f"num_hashes must be >= 1, got {num_hashes}")
    if num_slots < 1:
        raise ValueError(f"num_slots must be >= 1, got {num_slots}")
    keys = np.asarray(keys, dtype=np.uint64)
    h1, h2 = hash_pair(keys, seed=seed)
    steps = np.arange(num_hashes, dtype=np.uint64)
    with np.errstate(over="ignore"):
        combined = h1[:, None] + steps[None, :] * h2[:, None]
    return (combined % _U64(num_slots)).astype(np.int64)


def fold_to_range(hashes: np.ndarray, upper: int) -> np.ndarray:
    """Map 64-bit hashes uniformly onto ``[0, upper)`` without modulo bias.

    Uses the multiply-shift (Lemire) reduction: ``(h * upper) >> 64``,
    computed via 128-bit arithmetic emulated with object dtype avoided by
    splitting into 32-bit halves.
    """
    if upper < 1:
        raise ValueError(f"upper must be >= 1, got {upper}")
    h = np.asarray(hashes, dtype=np.uint64)
    # Split h into high/low 32-bit halves: h = hi*2^32 + lo.
    hi = (h >> np.uint64(32)).astype(np.uint64)
    lo = (h & np.uint64(0xFFFFFFFF)).astype(np.uint64)
    u = np.uint64(upper)
    with np.errstate(over="ignore"):
        # (h * u) >> 64 = hi*u >> 32 + carry from lo*u
        top = hi * u + ((lo * u) >> np.uint64(32))
    return (top >> np.uint64(32)).astype(np.int64)
