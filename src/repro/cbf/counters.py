"""Packed n-bit saturating counter array.

The paper allocates 4 bits per CBF counter by default (Section V-A), so
two counters share each byte.  This module implements a genuinely
bit-packed counter array with vectorized gather/scatter so that the
CBF's modeled memory footprint equals its actual backing-store size.

Supported widths are 1, 2, 4, 8 and 16 bits.  Counters saturate at
``2**bits - 1``; the paper treats all pages at the cap as equally hot.
"""

from __future__ import annotations

import numpy as np

from repro import accel

_SUPPORTED_BITS = (1, 2, 4, 8, 16)

#: Per-width cache of the (max_value+1, 256) matrix counting, for each
#: possible byte value, how many packed lanes hold each counter value.
#: ``matrix @ byte_histogram`` is then the full counter-value histogram
#: without unpacking the store (see :meth:`PackedCounterArray.value_histogram`).
_LANE_COUNT_MATRICES: dict[int, np.ndarray] = {}


def _lane_count_matrix(bits: int, per_byte: int, max_value: int) -> np.ndarray:
    matrix = _LANE_COUNT_MATRICES.get(bits)
    if matrix is None:
        byte_values = np.arange(256, dtype=np.uint16)
        matrix = np.zeros((max_value + 1, 256), dtype=np.int64)
        cols = np.arange(256)
        for pos in range(per_byte):
            lane = (byte_values >> np.uint16(pos * bits)) & np.uint16(max_value)
            np.add.at(matrix, (lane.astype(np.int64), cols), 1)
        _LANE_COUNT_MATRICES[bits] = matrix
    return matrix


class PackedCounterArray:
    """Fixed-size array of ``bits``-wide saturating unsigned counters."""

    def __init__(self, size: int, bits: int = 4):
        if bits not in _SUPPORTED_BITS:
            raise ValueError(f"bits must be one of {_SUPPORTED_BITS}, got {bits}")
        if size < 1:
            raise ValueError(f"size must be >= 1, got {size}")
        self.size = int(size)
        self.bits = int(bits)
        self.max_value = (1 << bits) - 1
        if bits == 8:
            self._store = np.zeros(size, dtype=np.uint8)
            self._per_byte = 1
        elif bits == 16:
            self._store = np.zeros(size, dtype=np.uint16)
            self._per_byte = 1
        else:
            self._per_byte = 8 // bits
            n_bytes = -(-size // self._per_byte)
            self._store = np.zeros(n_bytes, dtype=np.uint8)

    # -- introspection ------------------------------------------------

    @property
    def nbytes(self) -> int:
        """Actual backing-store size in bytes."""
        return int(self._store.nbytes)

    def __len__(self) -> int:
        return self.size

    # -- element access -----------------------------------------------

    def get(self, indices: np.ndarray, *, check: bool = True) -> np.ndarray:
        """Gather counter values at ``indices`` (any shape).

        ``check=False`` skips bounds validation -- for callers that
        just produced the indices in-range (e.g. hash outputs already
        reduced modulo the array size), saving a scan per call.
        """
        idx = np.asarray(indices, dtype=np.int64)
        if check:
            self._check_bounds(idx)
        if self.bits in (8, 16):
            return self._store[idx].astype(np.int64)
        byte_idx = idx // self._per_byte
        shift = ((idx % self._per_byte) * self.bits).astype(np.uint8)
        mask = np.uint8(self.max_value)
        return ((self._store[byte_idx] >> shift) & mask).astype(np.int64)

    def set(
        self, indices: np.ndarray, values: np.ndarray, *, check: bool = True
    ) -> None:
        """Scatter ``values`` (clamped to the counter range) at ``indices``.

        If an index repeats, the last write wins (numpy scatter order).
        ``check=False`` skips bounds validation (see :meth:`get`).
        """
        idx = np.asarray(indices, dtype=np.int64).ravel()
        if check:
            self._check_bounds(idx)
        vals = np.clip(np.asarray(values, dtype=np.int64).ravel(), 0, self.max_value)
        if self.bits == 8:
            self._store[idx] = vals.astype(np.uint8)
            return
        if self.bits == 16:
            self._store[idx] = vals.astype(np.uint16)
            return
        # Sub-byte widths: counters sharing a byte must not clobber
        # each other, so scatter one in-byte position per pass (two
        # different indices can only collide on a byte if their in-byte
        # positions differ).
        positions = idx % self._per_byte
        mask = np.uint8(self.max_value)
        for pos in range(self._per_byte):
            sel = positions == pos
            if not sel.any():
                continue
            byte_idx = idx[sel] // self._per_byte
            shift = np.uint8(pos * self.bits)
            cleared = self._store[byte_idx] & np.uint8(~(int(mask) << shift) & 0xFF)
            self._store[byte_idx] = cleared | (
                vals[sel].astype(np.uint8) << shift
            )

    def maximum(
        self, indices: np.ndarray, values: np.ndarray, *, check: bool = True
    ) -> None:
        """Scatter-max: raise each counter to at least the given value.

        ``store[i] = max(store[i], value)`` per index.  Duplicate
        indices within one call are handled correctly (the largest
        value wins), which is what makes this the right primitive for
        the CBF's conservative update: no sort or per-slot dedup is
        needed.  Counters never decrease.  ``check=False`` skips
        bounds validation (see :meth:`get`).
        """
        idx = np.asarray(indices, dtype=np.int64).ravel()
        if check:
            self._check_bounds(idx)
        vals = np.clip(np.asarray(values, dtype=np.int64).ravel(), 0, self.max_value)
        if self.bits == 8:
            np.maximum.at(self._store, idx, vals.astype(np.uint8))
            return
        if self.bits == 16:
            np.maximum.at(self._store, idx, vals.astype(np.uint16))
            return
        # Sub-byte widths, one in-byte position per pass: a candidate
        # byte keeps every other lane's current bits and replaces only
        # the target lane, so all candidates for one byte differ only
        # in that lane and the *byte*-wise maximum equals the lane-wise
        # maximum (ties on the other lanes fall through to the target
        # lane in the unsigned comparison).
        positions = idx % self._per_byte
        mask = np.uint8(self.max_value)
        for pos in range(self._per_byte):
            sel = positions == pos
            if not sel.any():
                continue
            byte_idx = idx[sel] // self._per_byte
            shift = np.uint8(pos * self.bits)
            keep = self._store[byte_idx] & np.uint8(~(int(mask) << shift) & 0xFF)
            candidate = keep | (vals[sel].astype(np.uint8) << shift)
            np.maximum.at(self._store, byte_idx, candidate)

    def fused_update(self, indices: np.ndarray, totals: np.ndarray) -> np.ndarray:
        """Fused conservative bulk update + frequency readback.

        For each row of ``indices`` (shape ``(u, k)``: the ``k`` slots
        of one key): raise the row's counters to
        ``min(row_min + totals[row], max_value)`` via scatter-max, then
        return the row's new minimum.  This is the CBF ``increase``
        inner loop as one dispatchable kernel (see :mod:`repro.accel`);
        indices must already be in-bounds (hash outputs).
        """
        return accel.cbf_fused_update(
            self._store, self.bits, self._per_byte, self.max_value,
            indices, totals,
        )

    def add_saturating(self, indices: np.ndarray, amounts: np.ndarray) -> None:
        """Add ``amounts`` to counters at ``indices``, saturating at the cap.

        Duplicate indices within one call are accumulated (unlike
        :meth:`set`), matching the semantics of repeated increments.
        """
        idx = np.asarray(indices, dtype=np.int64).ravel()
        self._check_bounds(idx)
        amt = np.asarray(amounts, dtype=np.int64).ravel()
        if amt.shape != idx.shape:
            amt = np.broadcast_to(amt, idx.shape)
        # Accumulate duplicates first so saturation applies to the total.
        # ``uniq`` is a subset of the just-validated ``idx``, so the
        # get/set below can skip re-scanning the bounds.
        uniq, inverse = np.unique(idx, return_inverse=True)
        totals = np.zeros(len(uniq), dtype=np.int64)
        np.add.at(totals, inverse, amt)
        current = self.get(uniq, check=False)
        self.set(uniq, np.minimum(current + totals, self.max_value), check=False)

    def halve_all(self) -> None:
        """Divide every counter by two (the paper's aging step)."""
        if self.bits in (8, 16):
            self._store >>= 1
            return
        if self.bits == 4:
            # Halve both nibbles of each byte in place:
            # (b >> 1) keeps bit3 of the low nibble leaking? No:
            # low' = (low >> 1), high' = (high >> 1); (b >> 1) & 0x77
            # clears the bit that would leak from high nibble into low.
            self._store = (self._store >> np.uint8(1)) & np.uint8(0x77)
            return
        if self.bits == 2:
            self._store = (self._store >> np.uint8(1)) & np.uint8(0x55)
            return
        # bits == 1: halving a 1-bit counter zeroes it.
        self._store[:] = 0

    def to_array(self) -> np.ndarray:
        """Unpacked copy of all counters as int64 (for tests/analysis)."""
        return self.get(np.arange(self.size, dtype=np.int64), check=False)

    def value_histogram(self) -> np.ndarray:
        """Counts of each counter value, length ``max_value + 1``.

        Equivalent to ``np.bincount(self.to_array(), minlength=...)``
        but O(bytes) instead of O(counters x unpack): one byte-level
        ``bincount`` plus a tiny matrix product mapping byte patterns to
        lane values.  This keeps the threshold controller's per-round
        histogram off the unpack path (the engine's hottest fixed cost
        before this existed).
        """
        if self.bits in (8, 16):
            hist = np.bincount(self._store, minlength=self.max_value + 1)
            return hist.astype(np.int64)
        byte_hist = np.bincount(self._store, minlength=256)
        matrix = _lane_count_matrix(self.bits, self._per_byte, self.max_value)
        hist = matrix @ byte_hist
        # Lanes past ``size`` in the trailing byte are never written and
        # would otherwise count as zeros.
        padding = self._store.size * self._per_byte - self.size
        if padding:
            hist[0] -= padding
        return hist

    # -- checkpointing ---------------------------------------------------

    def state_dict(self) -> dict:
        """The packed backing store (bit-exact, see repro.state.codec)."""
        return {"store": self._store.copy()}

    def load_state(self, state: dict) -> None:
        store = np.asarray(state["store"], dtype=self._store.dtype)
        if store.shape != self._store.shape:
            raise ValueError(
                f"counter store shape {store.shape} != expected "
                f"{self._store.shape}"
            )
        self._store = store.copy()

    def fill(self, value: int) -> None:
        """Set every counter to ``value`` (clamped)."""
        self.set(
            np.arange(self.size, dtype=np.int64),
            np.full(self.size, value, dtype=np.int64),
            check=False,
        )

    # -- internal -------------------------------------------------------

    def _check_bounds(self, idx: np.ndarray) -> None:
        if idx.size == 0:
            return
        # Single-pass check: negative int64 indices become huge when
        # viewed as uint64, so one unsigned comparison catches both
        # ends (vs. separate min() and max() scans).
        if np.any(idx.view(np.uint64) >= np.uint64(self.size)):
            lo, hi = int(idx.min()), int(idx.max())
            raise IndexError(
                f"counter index out of range [0, {self.size}): min={lo} max={hi}"
            )
