"""Command-line interface for running tiering experiments.

Usage::

    python -m repro.cli list
    python -m repro.cli run --workload cdn --policy freqtier \
        --local-fraction 0.06 --ratio 1:32 --batches 300
    python -m repro.cli compare --workload social --ratio 1:16 \
        --local-fraction 0.12
    python -m repro.cli sweep --workload cdn --policy freqtier \
        --fractions 0.03,0.06,0.12,0.24
    python -m repro.cli run --workload zipf --policy freqtier \
        --trace out.jsonl
    python -m repro.cli trace summarize out.jsonl

Outputs a human-readable table by default; ``--json`` emits
machine-readable results.  ``--trace`` writes a JSONL event trace
(``run``: one file; ``compare``: one file per cell in a directory);
``trace summarize`` / ``trace validate`` inspect such files.
"""

from __future__ import annotations

import argparse
import contextlib
import json
import os
import sys
from collections.abc import Callable

from repro.analysis.tables import format_comparison_table, format_rows
from repro.core.config import ExperimentConfig
from repro.core.metrics import ExperimentResult
from repro.core.parallel import (
    CellSpec,
    FailedCell,
    ParallelExecutor,
    PolicySpec,
    WorkloadSpec,
)
from repro.core.runner import compare_policies, run_all_local, run_experiment
from repro.faults import FAULT_PRESETS, FaultPlan, parse_fault_spec
from repro.memsim.tier import CXL1_CONFIG, CXL2_CONFIG
from repro.obs import trace_to


def _workload_registry(seed: int) -> dict[str, Callable]:
    """Spec-based factories: picklable (``--jobs``) and cacheable."""
    return {
        "cdn": WorkloadSpec(
            "cdn", slab_pages=16_384, ops_per_batch=10_000, seed=seed
        ),
        "social": WorkloadSpec(
            "social", slab_pages=16_384, ops_per_batch=10_000, seed=seed
        ),
        "gap-bfs": WorkloadSpec(
            "gap", kernel="bfs", scale=18, num_trials=6, seed=seed
        ),
        "gap-cc": WorkloadSpec(
            "gap", kernel="cc", scale=18, num_trials=6, seed=seed
        ),
        "gap-bc": WorkloadSpec(
            "gap", kernel="bc", scale=18, num_trials=6, seed=seed
        ),
        "gap-pr": WorkloadSpec(
            "gap", kernel="pr", scale=18, num_trials=4, seed=seed
        ),
        "xgboost": WorkloadSpec("xgboost", num_rounds=80, seed=seed),
        "zipf": WorkloadSpec("zipf", num_pages=16_384, alpha=1.2, seed=seed),
    }


def _policy_registry(seed: int) -> dict[str, Callable]:
    return {
        "freqtier": PolicySpec("freqtier", seed=seed),
        "hybridtier": PolicySpec("hybridtier", seed=seed),
        "autonuma": PolicySpec("autonuma", seed=seed),
        "tpp": PolicySpec("tpp", seed=seed),
        "hemem": PolicySpec("hemem", seed=seed),
        "multiclock": PolicySpec("multiclock", seed=seed),
        "damon": PolicySpec("damon", seed=seed),
        "static": PolicySpec("static"),
    }


def _executor_from_args(args: argparse.Namespace) -> ParallelExecutor:
    return ParallelExecutor(
        jobs=getattr(args, "jobs", 1),
        cache=getattr(args, "cache_dir", None),
        cell_timeout=getattr(args, "cell_timeout", None),
        retries=getattr(args, "retries", 0),
        keep_going=getattr(args, "keep_going", False),
        checkpoint_root=getattr(args, "checkpoint_dir", None),
        checkpoint_every=getattr(args, "checkpoint_every", None) or 25,
    )


def _partial_exit_code(args: argparse.Namespace, num_failed: int) -> int:
    """1 when any cell failed permanently, unless ``--ok-on-partial``."""
    if num_failed and not getattr(args, "ok_on_partial", False):
        return 1
    return 0


def _faults_from_args(args: argparse.Namespace) -> FaultPlan | None:
    spec = getattr(args, "faults", None)
    if spec is None:
        return None
    try:
        return parse_fault_spec(spec)
    except ValueError as exc:
        raise SystemExit(str(exc))


def _report_failed_cells(results: dict) -> dict:
    """Print FailedCell entries to stderr; return the survivors."""
    for name, res in results.items():
        if isinstance(res, FailedCell):
            print(
                f"cell {name!r} FAILED after {res.attempts} attempt(s): "
                f"{res.error}",
                file=sys.stderr,
            )
    return {
        name: res
        for name, res in results.items()
        if not isinstance(res, FailedCell)
    }


@contextlib.contextmanager
def _maybe_profile(args: argparse.Namespace, default_stem: str):
    """cProfile the wrapped block when ``--profile`` was given.

    The stats dump lands next to the trace destination when one was
    requested (``<trace>.pstats`` for files, ``<dir>/profile.pstats``
    for trace directories), else at ``<default_stem>.pstats`` in the
    working directory.  Profiling covers *this* process only: under
    ``--jobs != 1`` the cells execute in workers, so profile with
    ``--jobs 1`` to capture cell execution itself.
    """
    if not getattr(args, "profile", False):
        yield
        return
    import cProfile
    import pstats

    profiler = cProfile.Profile()
    profiler.enable()
    try:
        yield
    finally:
        profiler.disable()
        # Resolve the destination after the run: a compare --trace
        # directory exists by now even if it did not at startup.
        trace = getattr(args, "trace", None)
        if trace and os.path.isdir(trace):
            dump = os.path.join(trace, "profile.pstats")
        elif trace:
            dump = f"{trace}.pstats"
        else:
            dump = f"{default_stem}.pstats"
        pstats.Stats(profiler).dump_stats(dump)
        print(f"profile written to {dump}", file=sys.stderr)


def _config_from_args(args: argparse.Namespace) -> ExperimentConfig:
    memory = CXL2_CONFIG if args.cxl == 2 else CXL1_CONFIG
    return ExperimentConfig(
        local_fraction=args.local_fraction,
        ratio_label=args.ratio,
        memory=memory,
        max_batches=args.batches,
        seed=args.seed,
    )


def _result_dict(result: ExperimentResult) -> dict:
    summary = result.summary()
    summary["total_time_ms"] = result.total_time_ns / 1e6
    summary["mean_time_per_label_ms"] = (
        result.mean_time_per_label_ns() / 1e6
        if result.mean_time_per_label_ns()
        else None
    )
    return summary


def _add_common_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--workload", required=True)
    parser.add_argument("--local-fraction", type=float, default=0.06)
    parser.add_argument("--ratio", default="1:32")
    parser.add_argument(
        "--cxl", type=int, choices=(1, 2), default=1, help="CXL device config"
    )
    parser.add_argument("--batches", type=int, default=300)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--json", action="store_true")


def _nonneg_int(text: str) -> int:
    value = int(text)
    if value < 0:
        raise argparse.ArgumentTypeError(f"must be >= 0, got {value}")
    return value


def _add_fault_args(parser: argparse.ArgumentParser) -> None:
    presets = ", ".join(sorted(FAULT_PRESETS))
    parser.add_argument(
        "--faults",
        default=None,
        metavar="PRESET|JSON",
        help="inject deterministic faults: a preset name "
        f"({presets}) or an inline FaultPlan JSON object",
    )


def _add_exec_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs",
        type=_nonneg_int,
        default=1,
        help="worker processes: 1 = serial (default), 0 = all CPUs, N = pool of N",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="content-addressed result cache directory (skips "
        "already-computed cells; results are bit-identical)",
    )
    parser.add_argument(
        "--cell-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="fail one cell attempt after this many wall-clock seconds "
        "(pool mode only, i.e. --jobs != 1)",
    )
    parser.add_argument(
        "--retries",
        type=_nonneg_int,
        default=0,
        help="failed attempts allowed per cell beyond the first",
    )
    parser.add_argument(
        "--keep-going",
        action="store_true",
        help="on a cell's permanent failure, report it and keep the "
        "rest of the grid instead of aborting",
    )
    parser.add_argument(
        "--ok-on-partial",
        action="store_true",
        help="exit 0 even when --keep-going left failed cells in the "
        "grid (default: any permanently failed cell means exit 1)",
    )
    parser.add_argument(
        "--checkpoint-dir",
        default=None,
        metavar="DIR",
        help="durable run state under DIR: per-cell rotated snapshots "
        "(crash/timeout retries resume mid-run) plus a sweep journal "
        "(re-invoking the same grid skips completed cells)",
    )
    parser.add_argument(
        "--checkpoint-every",
        type=_nonneg_int,
        default=25,
        metavar="N",
        help="snapshot cadence in batches for checkpointed cells "
        "(default 25; needs --checkpoint-dir)",
    )


def cmd_list(args: argparse.Namespace) -> int:
    workloads = sorted(_workload_registry(0))
    policies = sorted(_policy_registry(0))
    if args.json:
        print(json.dumps({"workloads": workloads, "policies": policies}))
    else:
        print("workloads: " + ", ".join(workloads))
        print("policies:  " + ", ".join(policies))
    return 0


def _lookup(registry: dict[str, Callable], name: str, kind: str) -> Callable:
    try:
        return registry[name]
    except KeyError:
        valid = ", ".join(sorted(registry))
        raise SystemExit(f"unknown {kind} {name!r}; choose from: {valid}")


def cmd_run(args: argparse.Namespace) -> int:
    workload = _lookup(_workload_registry(args.seed), args.workload, "workload")
    policy = _lookup(_policy_registry(args.seed), args.policy, "policy")
    config = _config_from_args(args)
    max_batches = None if args.batches <= 0 else args.batches
    config.max_batches = max_batches
    faults = _faults_from_args(args)
    if args.resume and not args.checkpoint_dir:
        raise SystemExit("--resume requires --checkpoint-dir")
    with _maybe_profile(args, "repro-run"), trace_to(args.trace) as tracer:
        result = run_experiment(
            workload,
            policy,
            config,
            tracer=tracer,
            faults=faults,
            checkpoint_dir=args.checkpoint_dir,
            checkpoint_every_batches=(
                args.checkpoint_every if args.checkpoint_dir else 0
            ),
            resume_from=args.checkpoint_dir if args.resume else None,
        )
    payload = _result_dict(result)
    if args.baseline:
        base = run_all_local(workload, config)
        rel = result.relative_to(base)
        payload["pct_all_local_throughput"] = rel["throughput"]
        payload["pct_all_local_p50"] = rel["p50_latency"]
        payload["pct_all_local_label_time"] = rel["label_time"]
    if args.json:
        print(json.dumps(payload, default=str))
    else:
        rows = [[k, v] for k, v in payload.items()]
        print(format_rows(["metric", "value"], rows))
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    workload = _lookup(_workload_registry(args.seed), args.workload, "workload")
    registry = _policy_registry(args.seed)
    names = (
        [n.strip() for n in args.policies.split(",")]
        if args.policies
        else ["freqtier", "autonuma", "tpp", "hemem"]
    )
    policies = {name: _lookup(registry, name, "policy") for name in names}
    config = _config_from_args(args)
    config.max_batches = None if args.batches <= 0 else args.batches
    with _maybe_profile(args, "repro-compare"):
        results = compare_policies(
            workload,
            policies,
            config,
            executor=_executor_from_args(args),
            trace_dir=args.trace,
            faults=_faults_from_args(args),
        )
    num_failed = sum(
        isinstance(res, FailedCell) for res in results.values()
    )
    results = _report_failed_cells(results)
    if args.trace:
        print(f"per-cell traces written under {args.trace}/", file=sys.stderr)
    if args.report:
        from repro.analysis.report import markdown_report

        with open(args.report, "w") as fh:
            fh.write(
                markdown_report(
                    results,
                    title=f"{args.workload} @ {args.ratio} "
                    f"({args.local_fraction:.0%} local)",
                )
            )
        print(f"report written to {args.report}")
    if args.json:
        print(
            json.dumps(
                {name: _result_dict(res) for name, res in results.items()},
                default=str,
            )
        )
    else:
        print(format_comparison_table(results))
    return _partial_exit_code(args, num_failed)


def cmd_record(args: argparse.Namespace) -> int:
    """Capture a workload's access stream to a replayable .npz file."""
    from repro.workloads.traceio import save_trace

    workload_factory = _lookup(
        _workload_registry(args.seed), args.workload, "workload"
    )
    workload = workload_factory()
    config = _config_from_args(args)
    from repro.core.runner import build_machine

    machine = build_machine(workload.footprint_pages, config)
    workload.setup(machine)
    count = save_trace(
        args.out,
        workload.batches(),
        workload.footprint_pages,
        max_batches=args.batches if args.batches > 0 else None,
    )
    payload = {
        "path": args.out,
        "batches": count,
        "footprint_pages": workload.footprint_pages,
    }
    if args.json:
        print(json.dumps(payload))
    else:
        print(f"recorded {count} batches to {args.out}")
    return 0


def cmd_replay(args: argparse.Namespace) -> int:
    """Run a policy over a previously recorded trace file."""
    from repro.workloads.traceio import TraceFileWorkload

    policy = _lookup(_policy_registry(args.seed), args.policy, "policy")
    config = _config_from_args(args)
    config.max_batches = None if args.batches <= 0 else args.batches
    result = run_experiment(
        lambda: TraceFileWorkload(args.trace), policy, config
    )
    payload = _result_dict(result)
    if args.json:
        print(json.dumps(payload, default=str))
    else:
        print(format_rows(["metric", "value"], [[k, v] for k, v in payload.items()]))
    return 0


def cmd_trace_summarize(args: argparse.Namespace) -> int:
    """Summarize a JSONL trace: counts, timeline, adaptation latencies."""
    from repro.analysis.tracetool import (
        format_trace_summary,
        read_events,
        summarize_trace,
    )

    summary = summarize_trace(read_events(args.path))
    if args.json:
        print(json.dumps(summary, default=str))
    else:
        print(format_trace_summary(summary))
    return 0


def cmd_trace_validate(args: argparse.Namespace) -> int:
    """Validate every line of a JSONL trace against the event schema."""
    from repro.analysis.tracetool import validate_trace

    outcome = validate_trace(args.path)
    if args.json:
        print(
            json.dumps(
                {
                    "path": args.path,
                    "events": len(outcome.events),
                    "errors": [
                        {"line": line, "error": msg}
                        for line, msg in outcome.errors
                    ],
                    "ok": outcome.ok,
                }
            )
        )
    else:
        for line, msg in outcome.errors:
            print(f"{args.path}:{line}: {msg}", file=sys.stderr)
        verdict = "OK" if outcome.ok else f"{len(outcome.errors)} invalid line(s)"
        print(f"{args.path}: {len(outcome.events)} valid events, {verdict}")
    return 0 if outcome.ok else 1


def cmd_checkpoint_inspect(args: argparse.Namespace) -> int:
    """Report every snapshot generation in a checkpoint directory.

    Exit 0 when at least one generation verifies (a resume would
    succeed), 1 otherwise -- so scripts can probe resumability.
    """
    from repro.state import CheckpointManager

    if not os.path.isdir(args.dir):
        raise SystemExit(f"not a checkpoint directory: {args.dir}")
    report = CheckpointManager(args.dir).inspect()
    any_valid = any(entry.get("valid") for entry in report)
    if args.json:
        print(
            json.dumps(
                {"dir": args.dir, "generations": report, "resumable": any_valid},
                default=str,
            )
        )
        return 0 if any_valid else 1
    if not report:
        print(f"{args.dir}: no snapshot generations")
        return 1
    for entry in report:
        if entry.get("valid"):
            progress = entry.get("progress") or {}
            batches = progress.get("batches_done", "?")
            now_ns = progress.get("now_ns")
            when = f", t={now_ns / 1e6:.3f} ms" if now_ns is not None else ""
            print(
                f"  gen {entry['generation']:>4} {entry['file']:<20} "
                f"valid   batches={batches}{when} ({entry['bytes']} bytes)"
            )
        else:
            print(
                f"  gen {entry['generation']:>4} {entry['file']:<20} "
                f"INVALID {entry.get('error', '')}"
            )
    verdict = "resumable" if any_valid else "NOT resumable"
    print(f"{args.dir}: {len(report)} generation(s), {verdict}")
    return 0 if any_valid else 1


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the tiering daemon under the deterministic virtual-time
    driver and report its SLO summary (see docs/API.md "Serving &
    overload protection")."""
    from repro.serve import ServeConfig, TieringDaemon, VirtualTimeDriver

    workload_registry = _workload_registry(args.seed)
    names = [n.strip() for n in args.workload.split(",")]
    factories: dict[str, Callable] = {}
    for i, name in enumerate(names):
        factory = _lookup(workload_registry, name, "workload")
        tenant = name if name not in factories else f"{name}-{i}"
        factories[tenant] = factory
    policy = _lookup(_policy_registry(args.seed), args.policy, "policy")
    config = _config_from_args(args)
    config.max_batches = None
    try:
        serve = ServeConfig(
            queue_capacity=args.queue_capacity,
            backpressure=args.backpressure,
            tick_budget_ns=args.tick_budget_ns,
            max_batches_per_tick=args.max_batches_per_tick,
            sample_only_stride=args.sample_stride,
            max_restarts=args.max_restarts,
            checkpoint_every_ticks=args.checkpoint_every,
        )
    except ValueError as exc:
        raise SystemExit(str(exc))
    with trace_to(args.trace) as tracer:
        daemon = TieringDaemon(
            factories,
            policy,
            config,
            serve=serve,
            tracer=tracer,
            faults=_faults_from_args(args),
            checkpoint_dir=args.checkpoint_dir,
        )
        driver = VirtualTimeDriver(
            daemon, arrivals=args.arrivals, max_offers=args.offers
        )
        if args.rounds > 0:
            driver.run(args.rounds)
            daemon.drain()
            daemon.finalize()
        else:
            driver.finish()
    payload = daemon.slo_summary()
    payload["restarts_recovered"] = driver.restarts_seen
    if args.json:
        print(json.dumps(payload, default=str))
    else:
        rows = [[k, v] for k, v in payload.items()]
        print(format_rows(["metric", "value"], rows))
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    workload = _lookup(_workload_registry(args.seed), args.workload, "workload")
    policy = _lookup(_policy_registry(args.seed), args.policy, "policy")
    fractions = [float(f) for f in args.fractions.split(",")]
    # Submit every (policy, all-local) pair across all fractions as one
    # batch, so --jobs parallelizes the whole sweep and --cache-dir
    # skips already-computed points.
    executor = _executor_from_args(args)
    faults = _faults_from_args(args)
    cells = []
    for frac in fractions:
        config = ExperimentConfig(
            local_fraction=frac,
            ratio_label=args.ratio,
            memory=CXL2_CONFIG if args.cxl == 2 else CXL1_CONFIG,
            max_batches=None if args.batches <= 0 else args.batches,
            seed=args.seed,
        )
        cells.append(
            CellSpec(workload, policy, config, label=str(frac), faults=faults)
        )
        cells.append(
            CellSpec(
                workload, None, config, label=f"{frac}-base", faults=faults
            )
        )
    with _maybe_profile(args, "repro-sweep"):
        cell_results = executor.run(cells)
    rows = []
    payload = {}
    num_failed = sum(isinstance(res, FailedCell) for res in cell_results)
    for i, frac in enumerate(fractions):
        result, base = cell_results[2 * i], cell_results[2 * i + 1]
        if isinstance(result, FailedCell) or isinstance(base, FailedCell):
            failed = result if isinstance(result, FailedCell) else base
            print(
                f"fraction {frac}: cell {failed.label!r} FAILED after "
                f"{failed.attempts} attempt(s): {failed.error}",
                file=sys.stderr,
            )
            rows.append([f"{frac:.2%}", "FAILED", "-", "-"])
            payload[str(frac)] = {"failed": True, "error": failed.error}
            continue
        rel = result.relative_to(base)["throughput"]
        rows.append(
            [
                f"{frac:.2%}",
                f"{rel:.1%}" if rel else "-",
                f"{result.steady_hit_ratio:.1%}",
                result.pages_migrated,
            ]
        )
        payload[str(frac)] = _result_dict(result)
    if args.json:
        print(json.dumps(payload, default=str))
    else:
        print(
            format_rows(
                ["%local", "%all-local thr", "hit ratio", "migrated"], rows
            )
        )
    return _partial_exit_code(args, num_failed)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.cli", description="FreqTier/HybridTier experiment runner"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_list = sub.add_parser("list", help="list workloads and policies")
    p_list.add_argument("--json", action="store_true")
    p_list.set_defaults(func=cmd_list)

    p_run = sub.add_parser("run", help="run one experiment cell")
    _add_common_args(p_run)
    _add_fault_args(p_run)
    p_run.add_argument("--policy", required=True)
    p_run.add_argument(
        "--baseline",
        action="store_true",
        help="also run the all-local baseline and report %%all-local",
    )
    p_run.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="write a JSONL event trace of the run to PATH",
    )
    p_run.add_argument(
        "--checkpoint-dir",
        default=None,
        metavar="DIR",
        help="write rotated, integrity-checked state snapshots to DIR",
    )
    p_run.add_argument(
        "--checkpoint-every",
        type=_nonneg_int,
        default=25,
        metavar="N",
        help="snapshot every N batches (default 25; needs --checkpoint-dir)",
    )
    p_run.add_argument(
        "--resume",
        action="store_true",
        help="restore the newest valid snapshot in --checkpoint-dir "
        "before running (fresh start if none exists)",
    )
    p_run.add_argument(
        "--profile",
        action="store_true",
        help="cProfile the run; pstats dump lands next to --trace "
        "(<trace>.pstats) or at ./repro-run.pstats",
    )
    p_run.set_defaults(func=cmd_run)

    p_cmp = sub.add_parser("compare", help="compare several policies")
    _add_common_args(p_cmp)
    _add_exec_args(p_cmp)
    _add_fault_args(p_cmp)
    p_cmp.add_argument(
        "--policies",
        default=None,
        help="comma-separated policy names (default: the paper line-up)",
    )
    p_cmp.add_argument(
        "--report", default=None, help="also write a markdown report here"
    )
    p_cmp.add_argument(
        "--trace",
        default=None,
        metavar="DIR",
        help="write one JSONL event trace per cell under DIR "
        "(cache hits record a single cache_hit event)",
    )
    p_cmp.add_argument(
        "--profile",
        action="store_true",
        help="cProfile this process (cells run here only with --jobs 1); "
        "pstats dump lands in the --trace dir or at "
        "./repro-compare.pstats",
    )
    p_cmp.set_defaults(func=cmd_compare)

    p_trace = sub.add_parser("trace", help="inspect JSONL trace files")
    trace_sub = p_trace.add_subparsers(dest="trace_command", required=True)
    p_sum = trace_sub.add_parser(
        "summarize",
        help="event counts, state/level timeline, adaptation latencies",
    )
    p_sum.add_argument("path", help="JSONL trace file")
    p_sum.add_argument("--json", action="store_true")
    p_sum.set_defaults(func=cmd_trace_summarize)
    p_val = trace_sub.add_parser(
        "validate", help="check every line against the event schema"
    )
    p_val.add_argument("path", help="JSONL trace file")
    p_val.add_argument("--json", action="store_true")
    p_val.set_defaults(func=cmd_trace_validate)

    p_ckpt = sub.add_parser("checkpoint", help="inspect checkpoint state")
    ckpt_sub = p_ckpt.add_subparsers(dest="checkpoint_command", required=True)
    p_ins = ckpt_sub.add_parser(
        "inspect",
        help="verify every snapshot generation in a checkpoint directory",
    )
    p_ins.add_argument("dir", help="checkpoint directory")
    p_ins.add_argument("--json", action="store_true")
    p_ins.set_defaults(func=cmd_checkpoint_inspect)

    p_serve = sub.add_parser(
        "serve",
        help="run the tiering daemon (bounded queues, deadline "
        "budgets, degradation ladder, watchdog) under the "
        "deterministic virtual-time driver",
    )
    p_serve.add_argument(
        "--workload",
        required=True,
        help="comma-separated workload names; each becomes one tenant "
        "with its own bounded queue",
    )
    p_serve.add_argument("--policy", required=True)
    p_serve.add_argument("--local-fraction", type=float, default=0.06)
    p_serve.add_argument("--ratio", default="1:32")
    p_serve.add_argument("--cxl", type=int, choices=(1, 2), default=1)
    p_serve.add_argument("--batches", type=int, default=0, help=argparse.SUPPRESS)
    p_serve.add_argument("--seed", type=int, default=0)
    p_serve.add_argument("--json", action="store_true")
    _add_fault_args(p_serve)
    p_serve.add_argument(
        "--offers",
        type=_nonneg_int,
        default=200,
        metavar="N",
        help="batches each tenant's stream supplies in total (default 200)",
    )
    p_serve.add_argument(
        "--arrivals",
        type=_nonneg_int,
        default=2,
        metavar="N",
        help="batches offered per tenant per driver round (default 2)",
    )
    p_serve.add_argument(
        "--rounds",
        type=_nonneg_int,
        default=0,
        metavar="N",
        help="driver rounds to run before draining (default 0 = run "
        "until every stream is exhausted and drained)",
    )
    p_serve.add_argument(
        "--queue-capacity", type=int, default=64, metavar="N",
        help="bounded per-tenant queue depth (default 64)",
    )
    p_serve.add_argument(
        "--backpressure",
        choices=("block", "shed-oldest", "reject"),
        default="shed-oldest",
        help="full-queue behaviour (default shed-oldest)",
    )
    p_serve.add_argument(
        "--tick-budget-ns", type=float, default=0.0, metavar="NS",
        help="per-tick policy overhead budget in simulated ns "
        "(default 0 = no deadline)",
    )
    p_serve.add_argument(
        "--max-batches-per-tick", type=int, default=8, metavar="N",
        help="batches serviced per tick at most (default 8)",
    )
    p_serve.add_argument(
        "--sample-stride", type=int, default=4, metavar="N",
        help="policy runs every Nth batch in sample_only mode (default 4)",
    )
    p_serve.add_argument(
        "--max-restarts", type=_nonneg_int, default=3, metavar="N",
        help="watchdog restarts allowed before giving up (default 3)",
    )
    p_serve.add_argument(
        "--checkpoint-dir",
        default=None,
        metavar="DIR",
        help="durable daemon checkpoints (engine + serving state) "
        "under DIR; the watchdog restores the newest valid one",
    )
    p_serve.add_argument(
        "--checkpoint-every",
        type=_nonneg_int,
        default=0,
        metavar="N",
        help="checkpoint every N ticks (default 0 = final drain "
        "checkpoint only; needs --checkpoint-dir)",
    )
    p_serve.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="write a JSONL event trace of the serving run to PATH",
    )
    p_serve.set_defaults(func=cmd_serve)

    p_sweep = sub.add_parser("sweep", help="sweep local DRAM fractions")
    _add_common_args(p_sweep)
    _add_exec_args(p_sweep)
    _add_fault_args(p_sweep)
    p_sweep.add_argument("--policy", required=True)
    p_sweep.add_argument(
        "--fractions",
        default="0.03,0.06,0.12,0.24",
        help="comma-separated local fractions",
    )
    p_sweep.add_argument(
        "--profile",
        action="store_true",
        help="cProfile this process (cells run here only with --jobs 1); "
        "pstats dump lands at ./repro-sweep.pstats",
    )
    p_sweep.set_defaults(func=cmd_sweep)

    p_rec = sub.add_parser("record", help="record a workload trace to .npz")
    _add_common_args(p_rec)
    p_rec.add_argument("--out", required=True, help="output .npz path")
    p_rec.set_defaults(func=cmd_record)

    p_rep = sub.add_parser("replay", help="replay a recorded trace")
    p_rep.add_argument("--trace", required=True, help=".npz trace path")
    p_rep.add_argument("--policy", required=True)
    p_rep.add_argument("--local-fraction", type=float, default=0.06)
    p_rep.add_argument("--ratio", default="1:32")
    p_rep.add_argument("--cxl", type=int, choices=(1, 2), default=1)
    p_rep.add_argument("--batches", type=int, default=0)
    p_rep.add_argument("--seed", type=int, default=0)
    p_rep.add_argument("--json", action="store_true")
    p_rep.set_defaults(func=cmd_replay)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    # `sweep`/`compare` reuse the common --local-fraction even when
    # unused; argparse guarantees presence.
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
