"""Versioned, integrity-checked snapshots of a live experiment.

A :class:`Snapshot` wraps one encoded state payload (see
:mod:`repro.state.codec`) with a schema version and a sha256 digest of
the payload's canonical JSON rendering.  The digest makes torn or
bit-rotted checkpoint files detectable *before* any state is restored
into a half-built engine; the schema version makes snapshots from
incompatible layouts miss cleanly instead of resurrecting garbage
(same discipline as :data:`repro.core.cache.SCHEMA_VERSION`).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Any

from repro.state.codec import decode_state, encode_state

#: Bump whenever the snapshot payload layout changes incompatibly;
#: every older generation then fails verification and is skipped.
STATE_SCHEMA_VERSION = 1


class SnapshotError(ValueError):
    """A snapshot failed schema or integrity verification."""


def payload_digest(encoded_payload: Any) -> str:
    """sha256 hex digest of the canonical JSON form of the payload."""
    canonical = json.dumps(
        encoded_payload, sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class Snapshot:
    """One schema-stamped, digest-protected state payload."""

    schema: int
    digest: str
    #: Codec-encoded (JSON-safe) payload; decode with :meth:`decoded`.
    payload: Any

    @classmethod
    def create(cls, payload: Any) -> Snapshot:
        """Snapshot a live (un-encoded) state payload."""
        encoded = encode_state(payload)
        return cls(
            schema=STATE_SCHEMA_VERSION,
            digest=payload_digest(encoded),
            payload=encoded,
        )

    def verify(self) -> None:
        """Raise :class:`SnapshotError` unless schema and digest check out."""
        if self.schema != STATE_SCHEMA_VERSION:
            raise SnapshotError(
                f"snapshot schema {self.schema} != supported "
                f"{STATE_SCHEMA_VERSION}"
            )
        actual = payload_digest(self.payload)
        if actual != self.digest:
            raise SnapshotError(
                f"snapshot digest mismatch: recorded {self.digest[:12]}..., "
                f"computed {actual[:12]}..."
            )

    def decoded(self) -> Any:
        """The payload with ndarray markers decoded back to arrays."""
        return decode_state(self.payload)

    def to_json_dict(self) -> dict[str, Any]:
        return {
            "schema": self.schema,
            "digest": self.digest,
            "payload": self.payload,
        }

    @classmethod
    def from_json_dict(cls, data: Any) -> Snapshot:
        """Parse a loaded JSON document; raises SnapshotError on shape
        problems (verification is separate -- call :meth:`verify`)."""
        if not isinstance(data, dict):
            raise SnapshotError(f"snapshot document must be a dict, got {type(data).__name__}")
        missing = {"schema", "digest", "payload"} - set(data)
        if missing:
            raise SnapshotError(f"snapshot document missing keys: {sorted(missing)}")
        schema, digest = data["schema"], data["digest"]
        if not isinstance(schema, int) or not isinstance(digest, str):
            raise SnapshotError("snapshot schema/digest have wrong types")
        return cls(schema=schema, digest=digest, payload=data["payload"])
