"""Append-only sweep journal: completed cells survive interruption.

The parallel executor's result cache already makes *cached* cells
free to recompute, but a sweep interrupted between ``put`` calls still
re-plans every cell.  The journal records each completed cell --
``{"fingerprint": ..., "result": ...}`` as one JSON line, flushed and
fsync'd immediately -- so a re-invoked ``sweep``/``compare`` skips
cells that already finished even when the cache was disabled or lives
elsewhere.  A crash mid-append leaves at most one truncated final
line, which loading tolerates (the entry is simply not yet durable).
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.core.metrics import ExperimentResult


class SweepJournal:
    """One JSONL file mapping cell fingerprints to finished results."""

    def __init__(self, path: str | os.PathLike):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._results: dict[str, dict] = {}
        self.dropped_lines = 0
        self._load()

    def _load(self) -> None:
        try:
            with open(self.path, encoding="utf-8") as fh:
                lines = fh.readlines()
        except FileNotFoundError:
            return
        for line in lines:
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except json.JSONDecodeError:
                # A torn final append from a killed run -- or any other
                # damaged line -- costs one entry, never the journal.
                self.dropped_lines += 1
                continue
            if (
                isinstance(entry, dict)
                and isinstance(entry.get("fingerprint"), str)
                and isinstance(entry.get("result"), dict)
            ):
                self._results[entry["fingerprint"]] = entry["result"]
            else:
                self.dropped_lines += 1

    def __len__(self) -> int:
        return len(self._results)

    def __contains__(self, fingerprint: str) -> bool:
        return fingerprint in self._results

    def completed(self, fingerprint: str) -> ExperimentResult | None:
        """The journalled result for ``fingerprint``, or None.

        An entry whose payload no longer deserializes (schema drift) is
        treated as absent rather than raising.
        """
        payload = self._results.get(fingerprint)
        if payload is None:
            return None
        try:
            return ExperimentResult.from_dict(payload)
        except (KeyError, TypeError, ValueError, AttributeError):
            return None

    def record(self, fingerprint: str, result: ExperimentResult) -> None:
        """Append one completed cell durably (flush + fsync)."""
        payload = result.to_dict()
        line = json.dumps({"fingerprint": fingerprint, "result": payload})
        with open(self.path, "a", encoding="utf-8") as fh:
            fh.write(line + "\n")
            fh.flush()
            os.fsync(fh.fileno())
        self._results[fingerprint] = payload
