"""Durable checkpoint/restore for crash-survivable experiments.

The state layer turns a live experiment into a versioned, integrity-
checked document and back:

- :mod:`repro.state.codec` -- JSON-safe encoding of numpy arrays, numpy
  scalars and RNG bit-generator states;
- :mod:`repro.state.snapshot` -- the :class:`Snapshot` schema (schema
  version + sha256 payload digest);
- :mod:`repro.state.checkpoint` -- :class:`CheckpointManager`: atomic
  rotated generations with corruption quarantine and newest-valid
  fallback;
- :mod:`repro.state.journal` -- :class:`SweepJournal`: append-only
  completed-cell log so interrupted sweeps skip finished cells.

Every stateful simulator component exposes ``state_dict()`` /
``load_state()``; the engine composes them into one payload (see
``SimulationEngine.capture_state``) and
``run_experiment(..., resume_from=...)`` restores it.  For fixed seeds
a resumed run is bit-identical to an uninterrupted one (see DESIGN.md
"Determinism").
"""

from repro.state.checkpoint import CheckpointManager, LoadedCheckpoint
from repro.state.codec import (
    decode_state,
    encode_state,
    rng_state,
    set_rng_state,
)
from repro.state.journal import SweepJournal
from repro.state.snapshot import (
    STATE_SCHEMA_VERSION,
    Snapshot,
    SnapshotError,
    payload_digest,
)

__all__ = [
    "STATE_SCHEMA_VERSION",
    "CheckpointManager",
    "LoadedCheckpoint",
    "Snapshot",
    "SnapshotError",
    "SweepJournal",
    "decode_state",
    "encode_state",
    "payload_digest",
    "rng_state",
    "set_rng_state",
]
