"""Durable checkpoint generations with corruption fallback.

A :class:`CheckpointManager` owns one directory of rotated snapshot
generations (``snap-<seq>.json``).  Writes are atomic (temp file +
``os.replace``, the :meth:`repro.core.cache.ResultCache.put`
discipline), so a crash mid-save can never leave a half-written
generation that a resume would read.  Loads walk generations newest
first, verify schema + digest, and *quarantine* anything invalid
(renamed ``*.corrupt``, kept for diagnosis) before falling back to the
next-newest valid generation -- a single corrupted file costs one
checkpoint interval of progress, never the run.
"""

from __future__ import annotations

import json
import os
import re
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.state.snapshot import Snapshot, SnapshotError

_SNAP_RE = re.compile(r"^snap-(\d{8})\.(?:json|corrupt)$")


@dataclass(frozen=True)
class LoadedCheckpoint:
    """A successfully verified generation, decoded and ready to restore."""

    payload: Any
    path: Path
    generation: int


class CheckpointManager:
    """Directory-backed store of rotated, verified snapshot generations."""

    def __init__(self, directory: str | os.PathLike, keep: int = 3):
        if keep < 1:
            raise ValueError(f"keep must be >= 1, got {keep}")
        self.directory = Path(directory)
        if self.directory.exists() and not self.directory.is_dir():
            raise NotADirectoryError(
                f"checkpoint path exists and is not a directory: "
                f"{self.directory}"
            )
        self.directory.mkdir(parents=True, exist_ok=True)
        self.keep = int(keep)
        self.saves = 0

    # -- naming -----------------------------------------------------------

    @staticmethod
    def _seq_of(path: Path) -> int | None:
        match = _SNAP_RE.match(path.name)
        return int(match.group(1)) if match else None

    def generations(self) -> list[Path]:
        """Valid-named generation files, oldest first (corrupt excluded)."""
        found = [
            path
            for path in self.directory.glob("snap-*.json")
            if self._seq_of(path) is not None
        ]
        return sorted(found, key=lambda p: self._seq_of(p))

    def _next_seq(self) -> int:
        """One past the highest sequence ever used (corrupt files count,
        so a quarantined generation's number is never reused)."""
        highest = 0
        for path in self.directory.iterdir():
            seq = self._seq_of(path)
            if seq is not None:
                highest = max(highest, seq)
        return highest + 1

    # -- save -------------------------------------------------------------

    def save(self, payload: Any) -> Path:
        """Write ``payload`` as the newest generation (atomic), rotate."""
        snapshot = Snapshot.create(payload)
        seq = self._next_seq()
        path = self.directory / f"snap-{seq:08d}.json"
        fd, tmp = tempfile.mkstemp(
            dir=self.directory, prefix=".tmp-", suffix=".json"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(snapshot.to_json_dict(), fh)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except FileNotFoundError:
                pass
            raise
        self.saves += 1
        self._rotate()
        return path

    def _rotate(self) -> None:
        generations = self.generations()
        for stale in generations[: max(0, len(generations) - self.keep)]:
            stale.unlink(missing_ok=True)

    # -- load -------------------------------------------------------------

    def _quarantine(self, path: Path) -> None:
        """Move an invalid generation aside (best-effort, never raises)."""
        try:
            os.replace(path, path.with_suffix(".corrupt"))
        except OSError:
            pass

    def load_latest(self) -> LoadedCheckpoint | None:
        """Newest generation that verifies, or None if none does.

        Invalid generations (unreadable, bad JSON, wrong schema, digest
        mismatch) are quarantined on the way down, so the next load
        does not re-verify known-bad files.
        """
        for path in reversed(self.generations()):
            try:
                with open(path, encoding="utf-8") as fh:
                    document = json.load(fh)
                snapshot = Snapshot.from_json_dict(document)
                snapshot.verify()
            except (OSError, json.JSONDecodeError, UnicodeDecodeError,
                    SnapshotError):
                self._quarantine(path)
                continue
            seq = self._seq_of(path)
            return LoadedCheckpoint(
                payload=snapshot.decoded(),
                path=path,
                generation=seq if seq is not None else 0,
            )
        return None

    # -- introspection ----------------------------------------------------

    def inspect(self) -> list[dict[str, Any]]:
        """Verification status of every generation (no quarantining).

        Used by ``repro.cli checkpoint inspect``: each entry reports the
        generation number, file, validity, and -- for valid snapshots --
        the recorded progress summary when present.
        """
        report: list[dict[str, Any]] = []
        for path in self.generations():
            entry: dict[str, Any] = {
                "generation": self._seq_of(path),
                "file": path.name,
                "bytes": path.stat().st_size if path.exists() else 0,
            }
            try:
                with open(path, encoding="utf-8") as fh:
                    document = json.load(fh)
                snapshot = Snapshot.from_json_dict(document)
                snapshot.verify()
            except (OSError, json.JSONDecodeError, UnicodeDecodeError,
                    SnapshotError) as exc:
                entry.update(valid=False, error=str(exc))
            else:
                entry.update(
                    valid=True,
                    schema=snapshot.schema,
                    digest=snapshot.digest,
                )
                payload = snapshot.payload
                if isinstance(payload, dict):
                    for section in ("identity", "progress"):
                        value = payload.get(section)
                        if isinstance(value, dict):
                            entry[section] = value
            report.append(entry)
        return report
