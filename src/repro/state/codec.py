"""JSON-safe encoding of live simulator state.

Snapshot payloads are nested dicts assembled from ``state_dict()``
methods all over the simulator.  Most values are already plain JSON
scalars (numpy RNG bit-generator states, counters, cursors), but two
kinds are not:

- **numpy arrays** (page placements, CBF counter stores, per-page
  timestamps) -- encoded as a marker dict carrying base64 raw bytes,
  dtype and shape, so the round trip is *bit-exact* (no float
  stringification, no precision loss);
- **numpy scalars** -- collapsed to the equivalent Python scalar.

Tuples become lists (JSON has no tuple); ``state_dict()`` producers
must accept lists back in ``load_state()``.
"""

from __future__ import annotations

import base64
from typing import Any

import numpy as np

#: Marker key identifying an encoded ndarray.  The key is not a valid
#: Python identifier on purpose, so no state dict can collide with it.
NDARRAY_KEY = "__ndarray__"

_NDARRAY_FIELDS = frozenset({NDARRAY_KEY, "dtype", "shape"})


def encode_state(obj: Any) -> Any:
    """Recursively convert ``obj`` into JSON-serializable values.

    Raises TypeError for anything that cannot round-trip (sets,
    arbitrary objects, non-string dict keys): state dicts must be
    explicit about their representation rather than rely on lossy
    coercion.
    """
    if isinstance(obj, np.ndarray):
        data = np.ascontiguousarray(obj)
        return {
            NDARRAY_KEY: base64.b64encode(data.tobytes()).decode("ascii"),
            "dtype": str(data.dtype),
            "shape": list(data.shape),
        }
    if isinstance(obj, np.generic):
        return obj.item()
    if isinstance(obj, dict):
        out = {}
        for key, value in obj.items():
            if not isinstance(key, str):
                raise TypeError(
                    f"state dict keys must be str, got {key!r} "
                    f"({type(key).__name__}); serialize as a list of pairs"
                )
            out[key] = encode_state(value)
        return out
    if isinstance(obj, (list, tuple)):
        return [encode_state(item) for item in obj]
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    raise TypeError(f"cannot encode {type(obj).__name__} into snapshot state")


def decode_state(obj: Any) -> Any:
    """Inverse of :func:`encode_state` (ndarray markers come back as
    writable arrays)."""
    if isinstance(obj, dict):
        if set(obj) == _NDARRAY_FIELDS:
            raw = base64.b64decode(obj[NDARRAY_KEY])
            arr = np.frombuffer(raw, dtype=np.dtype(obj["dtype"]))
            return arr.reshape(obj["shape"]).copy()
        return {key: decode_state(value) for key, value in obj.items()}
    if isinstance(obj, list):
        return [decode_state(item) for item in obj]
    return obj


def rng_state(rng: np.random.Generator) -> dict[str, Any]:
    """The full bit-generator state of ``rng`` (JSON-safe as-is)."""
    return rng.bit_generator.state


def set_rng_state(rng: np.random.Generator, state: dict[str, Any]) -> None:
    """Restore a state captured by :func:`rng_state`."""
    rng.bit_generator.state = state
