"""DAMON/DAOS-style region-based tiering (paper Section IX-a).

DAOS (Data Access-aware Operating System) monitors and migrates in
units of *variable-sized memory regions*, where every page in a region
shares one access frequency.  Regions adapt: hot, large regions split
so the monitor can refine them; adjacent regions with similar access
rates merge to bound the total region count.  The paper's criticism:
whole-region classification is coarse -- a region mixing hot and cold
pages is migrated wholesale either way.

This implementation follows the DAMON design at the simulator's scale:

- regions are contiguous page ranges partitioning the address space;
- PEBS samples are binned per region each adjustment window;
- the hottest *split-worthy* regions split in two, similar neighbors
  merge, keeping the region count within ``[min_regions, max_regions]``;
- placement: hottest regions (by per-page access density) are promoted
  into local DRAM, coldest local regions demoted, watermark-gated.
"""

from __future__ import annotations

import numpy as np

from repro.memsim.machine import Machine
from repro.memsim.pagetable import CXL_TIER, LOCAL_TIER
from repro.policies.base import TieringPolicy
from repro.sampling.events import AccessBatch
from repro.sampling.pebs import PEBSSampler, SamplingLevel


class DAMONRegion(TieringPolicy):
    """Adaptive-region access monitoring and wholesale region migration."""

    name = "DAMON"
    #: PEBS samples by access position, so run-compressed batches are
    #: sampled via ``pages_at`` without expansion.  Bit-identical: the
    #: RNG draws depend only on the access count and sampling period.
    needs_access_stream = False

    def __init__(
        self,
        min_regions: int = 16,
        max_regions: int = 256,
        adjust_interval_accesses: int = 500_000,
        pebs_base_period: int = 64,
        merge_similarity: float = 0.25,
        seed: int = 0,
    ):
        super().__init__()
        if not 1 <= min_regions <= max_regions:
            raise ValueError(
                f"need 1 <= min_regions <= max_regions, got "
                f"{min_regions}, {max_regions}"
            )
        self.min_regions = int(min_regions)
        self.max_regions = int(max_regions)
        self.adjust_interval = int(adjust_interval_accesses)
        self.merge_similarity = float(merge_similarity)
        self.pebs_base_period = int(pebs_base_period)
        self.seed = int(seed)
        self.pebs: PEBSSampler | None = None
        #: Region boundaries: pages [bounds[i], bounds[i+1]) = region i.
        self._bounds: np.ndarray | None = None
        self._region_hits: np.ndarray | None = None
        self._accesses_since_adjust = 0

    # -- lifecycle --------------------------------------------------------

    def attach(self, machine: Machine) -> None:
        super().attach(machine)
        self.pebs = PEBSSampler(base_period=self.pebs_base_period, seed=self.seed)
        self.pebs.set_level(SamplingLevel.HIGH)
        self.pebs.fault_injector = self.fault_injector
        total = machine.config.total_capacity_pages
        initial = min(self.min_regions * 4, self.max_regions)
        self._bounds = np.linspace(0, total, initial + 1).astype(np.int64)
        self._region_hits = np.zeros(initial, dtype=np.float64)

    @property
    def num_regions(self) -> int:
        assert self._bounds is not None
        return len(self._bounds) - 1

    def region_sizes(self) -> np.ndarray:
        assert self._bounds is not None
        return np.diff(self._bounds)

    # -- checkpointing ----------------------------------------------------

    def state_dict(self) -> dict:
        assert (
            self.pebs is not None
            and self._bounds is not None
            and self._region_hits is not None
        ), "state_dict requires attach()"
        state = super().state_dict()
        state.update(
            {
                "pebs": self.pebs.state_dict(),
                "bounds": self._bounds.copy(),
                "region_hits": self._region_hits.copy(),
                "accesses_since_adjust": self._accesses_since_adjust,
            }
        )
        return state

    def load_state(self, state: dict) -> None:
        assert self.pebs is not None, "load_state requires attach()"
        super().load_state(state)
        self.pebs.load_state(state["pebs"])
        self._bounds = np.asarray(state["bounds"], dtype=np.int64).copy()
        self._region_hits = np.asarray(
            state["region_hits"], dtype=np.float64
        ).copy()
        self._accesses_since_adjust = int(state["accesses_since_adjust"])

    # -- main hook ----------------------------------------------------------

    def on_batch(
        self,
        batch: AccessBatch,
        tiers: np.ndarray | None,
        now_ns: float,
        counts: tuple[int, int] | None = None,
    ) -> float:
        assert (
            self.pebs is not None
            and self._bounds is not None
            and self._region_hits is not None
        )
        overhead = 0.0
        before = self.pebs.total_samples
        self.pebs.observe(
            batch, tiers, placement=self.machine.page_table.placement_view()
        )
        overhead += self.pebs.overhead_ns(self.pebs.total_samples - before)

        self._accesses_since_adjust += batch.num_accesses
        if self._accesses_since_adjust >= self.adjust_interval:
            self._accesses_since_adjust = 0
            overhead += self._adjustment_pass()

        self.stats.overhead_ns += overhead
        return overhead

    # -- DAMON adjustment: bin, split, merge, migrate ---------------------------

    def _adjustment_pass(self) -> float:
        assert self.pebs is not None and self._bounds is not None
        samples = self.pebs.drain()
        overhead = 20_000.0  # region bookkeeping walk
        page_ids = self._filter_corrupt_sample_ids(samples.page_ids)
        if page_ids.size:
            idx = (
                np.searchsorted(self._bounds, page_ids, side="right") - 1
            )
            idx = np.clip(idx, 0, self.num_regions - 1)
            hits = np.bincount(idx, minlength=self.num_regions).astype(
                np.float64
            )
        else:
            hits = np.zeros(self.num_regions, dtype=np.float64)
        # Exponential decay keeps history without unbounded growth.
        self._region_hits = 0.5 * self._region_hits + hits

        # Merge first, split second: a freshly split pair starts with
        # identical (estimated) densities and must be re-measured for a
        # full window before it can become a merge candidate, exactly
        # as DAMON's aging works.
        self._merge_similar_regions()
        self._split_hot_regions()
        overhead += self._migrate_by_density()
        return overhead

    def _density(self) -> np.ndarray:
        sizes = np.maximum(self.region_sizes(), 1)
        return self._region_hits / sizes

    def _split_hot_regions(self) -> None:
        """Split the hottest splittable regions in half."""
        assert self._bounds is not None and self._region_hits is not None
        budget = self.max_regions - self.num_regions
        if budget <= 0:
            return
        sizes = self.region_sizes()
        splittable = np.nonzero(sizes >= 2)[0]
        if splittable.size == 0:
            return
        order = splittable[np.argsort(self._density()[splittable])[::-1]]
        to_split = order[: min(budget, max(1, self.num_regions // 4))]
        new_bounds = list(self._bounds)
        new_hits = list(self._region_hits)
        # Insert from the back so earlier indices stay valid.
        for i in sorted(to_split.tolist(), reverse=True):
            lo, hi = self._bounds[i], self._bounds[i + 1]
            mid = (lo + hi) // 2
            new_bounds.insert(i + 1, mid)
            half = self._region_hits[i] / 2
            new_hits[i] = half
            new_hits.insert(i + 1, half)
        self._bounds = np.asarray(new_bounds, dtype=np.int64)
        self._region_hits = np.asarray(new_hits, dtype=np.float64)

    def _merge_similar_regions(self) -> None:
        """Merge adjacent regions whose densities are within tolerance."""
        assert self._bounds is not None and self._region_hits is not None
        while self.num_regions > self.min_regions:
            density = self._density()
            left, right = density[:-1], density[1:]
            scale = np.maximum(np.maximum(left, right), 1e-9)
            diff = np.abs(left - right) / scale
            candidates = np.nonzero(diff <= self.merge_similarity)[0]
            if candidates.size == 0:
                break
            i = int(candidates[np.argmin(diff[candidates])])
            self._region_hits[i] += self._region_hits[i + 1]
            self._region_hits = np.delete(self._region_hits, i + 1)
            self._bounds = np.delete(self._bounds, i + 1)
            if self.num_regions <= self.min_regions:
                break

    def _region_tier_counts(self, tier: int) -> np.ndarray:
        """Pages of each region currently placed on ``tier``.

        One prefix sum over the placement array replaces a per-region
        gather: region ``i`` holds ``prefix[hi] - prefix[lo]`` such
        pages.  The migration loops use this to skip regions with
        nothing to move, which is where almost all their iterations
        land once the local tier is full.
        """
        assert self._bounds is not None
        view = self.machine.page_table.placement_view()
        prefix = np.empty(view.size + 1, dtype=np.int64)
        prefix[0] = 0
        np.cumsum(view == tier, dtype=np.int64, out=prefix[1:])
        bounds = np.minimum(self._bounds, view.size)
        return prefix[bounds[1:]] - prefix[bounds[:-1]]

    def _region_pages_in_tier(self, i: int, tier: int) -> np.ndarray:
        """Page ids of region ``i`` on ``tier`` (ascending).

        Regions are contiguous, so this is a zero-copy slice of the
        placement array -- no index re-validation and no materialized
        ``arange`` for pages that are then masked away.
        """
        assert self._bounds is not None
        lo, hi = int(self._bounds[i]), int(self._bounds[i + 1])
        view = self.machine.page_table.placement_view()
        return np.nonzero(view[lo:hi] == tier)[0] + lo

    def _migrate_by_density(self) -> float:
        """Promote hottest regions, demote coldest, wholesale."""
        assert self._bounds is not None
        machine = self.machine
        density = self._density()
        order = np.argsort(density)[::-1]
        overhead = 0.0
        budget = machine.config.local_capacity_pages // 4

        promoted_total = 0
        cxl_counts = self._region_tier_counts(CXL_TIER)
        for i in order:
            if promoted_total >= budget or density[i] <= 0:
                break
            if cxl_counts[i] == 0:
                continue
            pages = self._region_pages_in_tier(int(i), CXL_TIER)
            if pages.size == 0:
                continue
            if machine.local_free_pages < pages.size:
                overhead += self._demote_coldest(
                    int(pages.size) - machine.local_free_pages, density
                )
                # Demotions push pages of colder regions into CXL, so
                # the skip counts must be rebuilt to stay exact.
                cxl_counts = self._region_tier_counts(CXL_TIER)
            moved = self._promote_pages(
                pages[: machine.local_free_pages]
            ).num_moved
            if moved:
                promoted_total += moved
                overhead += 5_000.0
        return overhead

    def _demote_coldest(self, num_pages: int, density: np.ndarray) -> float:
        assert self._bounds is not None
        overhead = 0.0
        demoted_total = 0
        # Demoting region i only drains region i's own local pages, so
        # one snapshot of the counts stays exact across the loop.
        local_counts = self._region_tier_counts(LOCAL_TIER)
        for i in np.argsort(density):
            if demoted_total >= num_pages:
                break
            if local_counts[i] == 0:
                continue
            pages = self._region_pages_in_tier(int(i), LOCAL_TIER)
            if pages.size == 0:
                continue
            moved = self._demote_pages(
                pages[: num_pages - demoted_total]
            ).num_moved
            if moved:
                demoted_total += moved
                overhead += 5_000.0
        return overhead
