"""TPP: Transparent Page Placement (paper Sections II-C1, VI-B).

TPP shares AutoNUMA's hint-fault sampling but differs in both
directions of migration:

- **Promotion**: a faulted page is promoted only if it is on the
  *active LRU list* -- i.e. it has been observed at least twice within
  the activation window.  All active pages are treated equally
  regardless of how hot they actually are (the inaccuracy the paper
  calls out), and promotion is not rate-limited, which is why TPP's
  migration traffic in the paper's Figure 2 is the largest of all
  systems (up to 43.5% of total traffic).
- **Demotion**: plain LRU (the paper evaluates TPP on kernel v6.0,
  which lacks MGLRU-based demotion), modeled as recency derived only
  from fault observations -- a staler, noisier signal than AutoNUMA's.
"""

from __future__ import annotations

import numpy as np

from repro.memsim.machine import Machine
from repro.memsim.pagetable import CXL_TIER, LOCAL_TIER
from repro.policies.base import TieringPolicy
from repro.sampling.events import AccessBatch
from repro.sampling.recency import HintFaultScanner


class TPP(TieringPolicy):
    """Hint faults + active-LRU promotion, plain-LRU demotion."""

    name = "TPP"
    #: Hint faults and reference-bit sampling both run directly on
    #: run-compressed batches (``hint_faults`` / ``strided_pages``), so
    #: the engine may skip stream expansion.  Bit-identical either way.
    needs_access_stream = False

    def __init__(
        self,
        scan_period_accesses: int = 25_000,
        window_fraction: float = 0.01,
        active_window_ns: float = 2.0e7,
        lru_sample_stride: int = 16,
        lru_snapshot_interval_accesses: int = 1_500_000,
        headroom_fraction: float = 0.10,
        seed: int = 0,
    ):
        super().__init__()
        self.scan_period_accesses = int(scan_period_accesses)
        self.window_fraction = float(window_fraction)
        self.active_window_ns = float(active_window_ns)
        self.lru_sample_stride = max(1, int(lru_sample_stride))
        self.lru_snapshot_interval_accesses = int(lru_snapshot_interval_accesses)
        if not 0.0 <= headroom_fraction < 1.0:
            raise ValueError(
                f"headroom_fraction must be in [0, 1), got {headroom_fraction}"
            )
        self.headroom_fraction = float(headroom_fraction)
        self.seed = int(seed)
        self.scanner: HintFaultScanner | None = None
        self._last_fault_ns: np.ndarray | None = None
        self._last_ref_ns: np.ndarray | None = None
        self._lru_snapshot: np.ndarray | None = None
        self._accesses_since_scan = 0
        self._accesses_since_snapshot = 0

    def attach(self, machine: Machine) -> None:
        super().attach(machine)
        total = machine.config.total_capacity_pages
        window_pages = max(16, int(self.window_fraction * total))
        self.scanner = HintFaultScanner(
            total_pages=total, window_pages=window_pages, seed=self.seed
        )
        self._last_fault_ns = np.full(total, -np.inf, dtype=np.float64)
        # Plain (non-MGLRU) LRU recency from page reference bits: a
        # sparser, staler sample than AutoNUMA's generation walks.
        # -inf = never referenced (so a fresh page is never "active").
        self._last_ref_ns = np.full(total, -np.inf, dtype=np.float64)
        # Demotion works off a periodic snapshot of the LRU ordering:
        # the active/inactive lists lag real access recency, so
        # recently-hot (even just-promoted) pages can sit at the
        # inactive tail and get demoted again -- the ping-pong the
        # paper blames for TPP's poor low-capacity behaviour.
        self._lru_snapshot = self._last_ref_ns.copy()

    # -- checkpointing ----------------------------------------------------

    def state_dict(self) -> dict:
        assert (
            self.scanner is not None
            and self._last_fault_ns is not None
            and self._last_ref_ns is not None
            and self._lru_snapshot is not None
        ), "state_dict requires attach()"
        state = super().state_dict()
        state.update(
            {
                "scanner": self.scanner.state_dict(),
                "last_fault_ns": self._last_fault_ns.copy(),
                "last_ref_ns": self._last_ref_ns.copy(),
                "lru_snapshot": self._lru_snapshot.copy(),
                "accesses_since_scan": self._accesses_since_scan,
                "accesses_since_snapshot": self._accesses_since_snapshot,
            }
        )
        return state

    def load_state(self, state: dict) -> None:
        assert self.scanner is not None, "load_state requires attach()"
        super().load_state(state)
        self.scanner.load_state(state["scanner"])
        self._last_fault_ns = np.asarray(
            state["last_fault_ns"], dtype=np.float64
        ).copy()
        self._last_ref_ns = np.asarray(
            state["last_ref_ns"], dtype=np.float64
        ).copy()
        self._lru_snapshot = np.asarray(
            state["lru_snapshot"], dtype=np.float64
        ).copy()
        self._accesses_since_scan = int(state["accesses_since_scan"])
        self._accesses_since_snapshot = int(state["accesses_since_snapshot"])

    def on_batch(
        self,
        batch: AccessBatch,
        tiers: np.ndarray | None,
        now_ns: float,
        counts: tuple[int, int] | None = None,
    ) -> float:
        assert self.scanner is not None and self._last_fault_ns is not None
        overhead = 0.0

        # Faults first: activation is judged against recency recorded
        # in *earlier* quanta, not this batch's own touches.  ``tiers
        # is None`` = the engine's compressed fast path; the scanner
        # and LRU sampling then stay on the compressed form too.
        assert self._last_ref_ns is not None and self._lru_snapshot is not None
        faults = self.scanner.observe(
            batch, now_ns, prefer_expanded=tiers is not None
        )
        if faults.count:
            overhead += self.scanner.overhead_ns(faults.count)
            # Promote iff the faulted page is on the active LRU list,
            # i.e. it was referenced recently (before this fault).
            # Every active page is treated equally however hot it is --
            # the inaccuracy the paper attributes to TPP.
            previous = np.maximum(
                self._last_fault_ns[faults.page_ids],
                self._last_ref_ns[faults.page_ids],
            )
            active = (now_ns - previous) < self.active_window_ns
            self._last_fault_ns[faults.page_ids] = now_ns
            overhead += self._promote_active(faults.page_ids[active])

        # Reference-bit LRU sampling (coarser than AutoNUMA's MGLRU).
        if tiers is None:
            touched = np.unique(batch.strided_pages(self.lru_sample_stride))
        else:
            touched = np.unique(batch.page_ids[:: self.lru_sample_stride])
        if touched.size:
            self._last_ref_ns[touched] = now_ns
            overhead += 2_000.0
        self._accesses_since_snapshot += batch.num_accesses
        if self._accesses_since_snapshot >= self.lru_snapshot_interval_accesses:
            self._lru_snapshot = self._last_ref_ns.copy()
            self._accesses_since_snapshot = 0
            overhead += 20_000.0  # LRU list rebalancing pass

        self._accesses_since_scan += batch.num_accesses
        while self._accesses_since_scan >= self.scan_period_accesses:
            self.scanner.scan_tick(now_ns)
            self._accesses_since_scan -= self.scan_period_accesses
            overhead += 10_000.0

        # TPP's signature: keep an allocation headroom free on the top
        # tier by demoting proactively, not just on promotion pressure.
        headroom = int(
            self.headroom_fraction * self.machine.config.local_capacity_pages
        )
        deficit = headroom - self.machine.local_free_pages
        if deficit > 0:
            overhead += self._demote_lru(deficit)

        self.stats.overhead_ns += overhead
        return overhead

    # -- promotion ------------------------------------------------------------

    def _promote_active(self, active_pages: np.ndarray) -> float:
        machine = self.machine
        if active_pages.size == 0:
            return 0.0
        placement = machine.placement_of(active_pages)
        candidates = active_pages[placement == CXL_TIER]
        if candidates.size == 0:
            return 0.0
        overhead = 0.0
        # No rate limit: TPP makes room for every active faulted page.
        if machine.below_promo_wmark() or machine.local_free_pages < candidates.size:
            overhead += self._demote_lru(
                max(machine.demotion_deficit_pages(), int(candidates.size))
            )
        promoted = self._promote_pages(candidates).num_moved
        if promoted:
            overhead += 5_000.0
        return overhead

    # -- demotion (plain LRU on fault recency) -------------------------------------

    def _demote_lru(self, num_pages: int) -> float:
        assert self._lru_snapshot is not None
        machine = self.machine
        local_pages = machine.page_table.pages_in_tier(LOCAL_TIER)
        if local_pages.size == 0 or num_pages <= 0:
            return 0.0
        num_pages = min(num_pages, int(local_pages.size))
        recency = self._lru_snapshot[local_pages]
        coldest_idx = np.argpartition(recency, num_pages - 1)[:num_pages]
        demoted = self._demote_pages(local_pages[coldest_idx]).num_moved
        if demoted:
            return 5_000.0 + demoted * 50.0
        return 0.0
