"""HeMem reimplemented for CXL (paper Sections II-C2, VI-B, VII-C).

HeMem is the state-of-the-art *frequency-based* tiering system the
paper compares against.  Like FreqTier it samples accesses with PEBS
and tracks per-page frequency -- but *exactly*, in a hash table with
168 bytes of metadata per page.  Consequences modeled here, matching
the paper's analysis of why HeMem loses despite good hit ratios:

- **Memory overhead**: the metadata (~4% of footprint) is pinned in
  local DRAM, shrinking the capacity left for hot application pages
  (:meth:`repro.memsim.machine.Machine.reserve_local_pages`).
- **Runtime overhead**: every sample updates the hash table (no
  coalescing), sampling always runs at the highest rate (no adaptive
  intensity), and periodic aging walks all metadata entries.
- **Classification**: exact frequencies with aging -- genuinely good,
  which is why HeMem's hit ratio beats the recency systems in Fig. 9.
"""

from __future__ import annotations

import numpy as np

from repro._units import PAGE_SIZE
from repro.cbf.exact import ExactFrequencyTracker, HEMEM_BYTES_PER_PAGE
from repro.memsim.machine import Machine
from repro.memsim.pagetable import CXL_TIER, LOCAL_TIER
from repro.policies.base import TieringPolicy
from repro.sampling.events import AccessBatch
from repro.sampling.pebs import PEBSSampler, SamplingLevel


class HeMem(TieringPolicy):
    """Exact per-page frequency tiering with heavyweight metadata."""

    name = "HeMem"
    #: PEBS samples by access position, so run-compressed batches are
    #: sampled via ``pages_at`` without expansion.  Bit-identical: the
    #: RNG draws depend only on the access count and sampling period.
    needs_access_stream = False

    def __init__(
        self,
        hot_threshold: int = 8,
        sample_batch_size: int = 10_000,
        aging_interval_samples: int = 200_000,
        pebs_base_period: int = 64,
        sample_cost_ns: float = 120.0,
        table_update_ns: float = 1_500.0,
        seed: int = 0,
    ):
        super().__init__()
        if hot_threshold < 1:
            raise ValueError(f"hot_threshold must be >= 1, got {hot_threshold}")
        self.hot_threshold = int(hot_threshold)
        self.sample_batch_size = int(sample_batch_size)
        self.aging_interval_samples = int(aging_interval_samples)
        self.pebs_base_period = int(pebs_base_period)
        self.sample_cost_ns = float(sample_cost_ns)
        self.table_update_ns = float(table_update_ns)
        self.seed = int(seed)
        self.tracker = ExactFrequencyTracker(
            bytes_per_entry=HEMEM_BYTES_PER_PAGE
        )
        self.pebs: PEBSSampler | None = None
        self._samples_since_aging = 0

    # -- lifecycle --------------------------------------------------------

    def attach(self, machine: Machine) -> None:
        super().attach(machine)
        self.pebs = PEBSSampler(
            base_period=self.pebs_base_period,
            sample_cost_ns=self.sample_cost_ns,
            seed=self.seed + 1,
        )
        self.pebs.set_level(SamplingLevel.HIGH)
        self.pebs.fault_injector = self.fault_injector
        # Total metadata is 168 B for every page under management --
        # ~4% of the footprint, the paper's Section VII-C comparison
        # point (11 GB for 267 GB, 110x FreqTier).  The *hot* slice of
        # it (entries for local-resident pages, touched on every
        # sample and ranking pass) competes for local DRAM; the cold
        # remainder spills to CXL.  We pin the hot slice.
        total_metadata = (
            machine.config.total_capacity_pages * HEMEM_BYTES_PER_PAGE
        )
        hot_metadata_pages = -(
            -machine.config.local_capacity_pages
            * HEMEM_BYTES_PER_PAGE
            // PAGE_SIZE
        )
        hot_metadata_pages = min(
            hot_metadata_pages, max(machine.local_free_pages - 1, 0)
        )
        machine.reserve_local_pages(hot_metadata_pages)
        self.stats.metadata_bytes = total_metadata

    # -- checkpointing ----------------------------------------------------

    def state_dict(self) -> dict:
        assert self.pebs is not None, "state_dict requires attach()"
        state = super().state_dict()
        state.update(
            {
                "tracker": self.tracker.state_dict(),
                "pebs": self.pebs.state_dict(),
                "samples_since_aging": self._samples_since_aging,
            }
        )
        return state

    def load_state(self, state: dict) -> None:
        assert self.pebs is not None, "load_state requires attach()"
        super().load_state(state)
        self.tracker.load_state(state["tracker"])
        self.pebs.load_state(state["pebs"])
        self._samples_since_aging = int(state["samples_since_aging"])

    # -- main hook ----------------------------------------------------------

    def on_batch(
        self,
        batch: AccessBatch,
        tiers: np.ndarray | None,
        now_ns: float,
        counts: tuple[int, int] | None = None,
    ) -> float:
        assert self.pebs is not None
        overhead = 0.0
        before = self.pebs.total_samples
        self.pebs.observe(
            batch, tiers, placement=self.machine.page_table.placement_view()
        )
        overhead += self.pebs.overhead_ns(self.pebs.total_samples - before)
        if self.pebs.pending_samples >= self.sample_batch_size:
            overhead += self._process_samples()
        self.stats.overhead_ns += overhead
        return overhead

    def _process_samples(self) -> float:
        assert self.pebs is not None
        samples = self.pebs.drain()
        if samples.num_samples == 0:
            return 0.0
        page_ids = self._filter_corrupt_sample_ids(samples.page_ids)
        if page_ids.size == 0:
            return 0.0
        # No coalescing: one hash-table update per sample.
        freqs = self.tracker.increment(page_ids)
        overhead = int(page_ids.size) * self.table_update_ns
        self.stats.samples_processed += int(page_ids.size)

        self._samples_since_aging += samples.num_samples
        if self._samples_since_aging >= self.aging_interval_samples:
            # Aging walks every metadata entry.
            overhead += self.tracker.num_entries * 20.0
            self.tracker.age()
            self._samples_since_aging = 0

        hot = page_ids[freqs >= self.hot_threshold]
        if hot.size:
            hot = np.unique(hot)
            # Hottest first, and never churn more than half the local
            # tier in one round.
            order = np.argsort(self.tracker.get(hot))[::-1]
            hot = hot[order][: max(self.machine.config.local_capacity_pages // 2, 1)]
            placement = self.machine.placement_of(hot)
            candidates = hot[placement == CXL_TIER]
            if candidates.size:
                overhead += self._promote(candidates)
        return overhead

    def _promote(self, candidates: np.ndarray) -> float:
        machine = self.machine
        overhead = 0.0
        if machine.below_promo_wmark() or machine.local_free_pages < candidates.size:
            overhead += self._demote_coldest(
                max(machine.demotion_deficit_pages(), int(candidates.size))
            )
        promoted = self._promote_pages(candidates).num_moved
        if promoted:
            overhead += 5_000.0
        return overhead

    def _demote_coldest(self, num_pages: int) -> float:
        """Demote the local pages with the lowest exact frequency."""
        machine = self.machine
        local_pages = machine.page_table.pages_in_tier(LOCAL_TIER)
        if local_pages.size == 0 or num_pages <= 0:
            return 0.0
        num_pages = min(num_pages, int(local_pages.size))
        freqs = self.tracker.get(local_pages)
        coldest_idx = np.argpartition(freqs, num_pages - 1)[:num_pages]
        demoted = self._demote_pages(local_pages[coldest_idx]).num_moved
        overhead = local_pages.size * 10.0  # metadata walk to rank pages
        if demoted:
            overhead += 5_000.0
        return overhead

    def describe(self) -> dict[str, object]:
        base = super().describe()
        base.update(
            {
                "hot_threshold": self.hot_threshold,
                "tracker_entries": self.tracker.num_entries,
                "metadata_bytes": self.stats.metadata_bytes,
            }
        )
        return base
