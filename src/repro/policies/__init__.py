"""Tiering policies: FreqTier (the paper's contribution) and baselines.

- :class:`~repro.policies.freqtier.policy.FreqTier` -- CBF-based
  frequency tiering with dynamic threshold and adaptive intensity
  (``HybridTier`` is the camera-ready name; exported as an alias).
- :class:`~repro.policies.autonuma.AutoNUMA` -- Linux hint-fault
  recency tiering (kernel v6.x behaviour incl. TPP-derived features).
- :class:`~repro.policies.tpp.TPP` -- hint faults + active-LRU
  promotion, plain LRU demotion.
- :class:`~repro.policies.hemem.HeMem` -- exact hash-table frequency
  tiering with heavyweight per-page metadata.
- :class:`~repro.policies.alllocal.AllLocal` -- everything in local
  DRAM (upper bound).
- :class:`~repro.policies.static_policy.StaticNoMigration` -- default
  placement, no migration (lower bound).
- :class:`~repro.policies.multiclock.MultiClock` -- the MULTI-CLOCK
  related-work policy (accessed-once vs accessed-many classification).
"""

from repro.policies.alllocal import AllLocal
from repro.policies.autonuma import AutoNUMA
from repro.policies.base import PolicyStats, TieringPolicy
from repro.policies.damon import DAMONRegion
from repro.policies.freqtier import FreqTier, FreqTierConfig
from repro.policies.hemem import HeMem
from repro.policies.multiclock import MultiClock
from repro.policies.static_policy import StaticNoMigration
from repro.policies.tpp import TPP

#: Camera-ready (ASPLOS'25) name of the same system.
HybridTier = FreqTier

__all__ = [
    "AllLocal",
    "AutoNUMA",
    "DAMONRegion",
    "FreqTier",
    "FreqTierConfig",
    "HeMem",
    "HybridTier",
    "MultiClock",
    "PolicyStats",
    "StaticNoMigration",
    "TieringPolicy",
    "TPP",
]
