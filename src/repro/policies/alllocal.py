"""All-local baseline: everything fits in local DRAM (paper Section VI-B).

Represents the performance upper bound: every access is serviced at
local-DRAM latency and no tiering work happens.  Use with a machine
whose local capacity covers the workload footprint (the
:func:`repro.core.runner` facade builds that machine automatically).
"""

from __future__ import annotations

import numpy as np

from repro.memsim.machine import Machine
from repro.policies.base import TieringPolicy
from repro.sampling.events import AccessBatch


class AllLocal(TieringPolicy):
    """No-op policy for the all-in-local-DRAM upper bound."""

    name = "AllLocal"
    #: No-op hook: never reads the stream, so compressed batches need
    #: no expansion at all.
    needs_access_stream = False

    def attach(self, machine: Machine) -> None:
        super().attach(machine)
        if machine.config.local_capacity_pages < machine.config.cxl_capacity_pages:
            # Not an error (partially-local runs are allowed in tests),
            # but the canonical all-local machine is local-dominated.
            pass

    def on_batch(
        self,
        batch: AccessBatch,
        tiers: np.ndarray | None,
        now_ns: float,
        counts: tuple[int, int] | None = None,
    ) -> float:
        return 0.0
