"""Static placement baseline: default allocation, no migration.

Pages land wherever the default local-first allocation policy put
them and never move.  This is the tiering lower bound (any policy
should beat it on skewed workloads) and is useful for isolating how
much of a policy's win comes from migration at all.
"""

from __future__ import annotations

import numpy as np

from repro.policies.base import TieringPolicy
from repro.sampling.events import AccessBatch


class StaticNoMigration(TieringPolicy):
    """No-op policy over the default first-touch placement."""

    name = "Static"
    #: No-op hook: never reads the stream, so compressed batches need
    #: no expansion at all.
    needs_access_stream = False

    def on_batch(
        self,
        batch: AccessBatch,
        tiers: np.ndarray | None,
        now_ns: float,
        counts: tuple[int, int] | None = None,
    ) -> float:
        return 0.0
