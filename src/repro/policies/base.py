"""Tiering-policy protocol and shared bookkeeping.

A policy sees the machine through three narrow interfaces, matching
what a real userspace tiering runtime gets:

- its **sampler(s)** (PEBS, perf-stat or hint faults) for access
  information -- never the raw access stream as ground truth;
- the **page table / address space** query interfaces
  (``/proc``-style, batched);
- the **migration** calls (``promote`` / ``demote``).

The engine calls :meth:`TieringPolicy.on_batch` once per access batch
with the placement of each access *at service time* (this is what the
memory controller counters observed, i.e. what PEBS would tag) and the
current simulated time.  The policy returns its CPU overhead for the
batch in nanoseconds; migrations it performed are visible to the
engine through the machine's traffic meter.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.memsim.machine import Machine, MoveOutcome
from repro.memsim.pagetable import LOCAL_TIER
from repro.obs import NULL_TRACER, Tracer
from repro.sampling.events import AccessBatch

if TYPE_CHECKING:
    from repro.faults import FaultInjector

_NO_PAGES = np.zeros(0, dtype=np.int64)


@dataclass
class PolicyStats:
    """Uniform per-policy counters for reports and overhead studies."""

    promotions: int = 0
    demotions: int = 0
    promotion_calls: int = 0
    demotion_calls: int = 0
    overhead_ns: float = 0.0
    samples_processed: int = 0
    #: Modeled metadata memory (bytes) the policy holds in local DRAM.
    metadata_bytes: int = 0
    extra: dict[str, float] = field(default_factory=dict)

    def as_dict(self) -> dict[str, float]:
        out = {
            "promotions": self.promotions,
            "demotions": self.demotions,
            "promotion_calls": self.promotion_calls,
            "demotion_calls": self.demotion_calls,
            "overhead_ns": self.overhead_ns,
            "samples_processed": self.samples_processed,
            "metadata_bytes": self.metadata_bytes,
        }
        out.update(self.extra)
        return out

    # -- checkpointing ---------------------------------------------------

    def state_dict(self) -> dict:
        return {
            "promotions": self.promotions,
            "demotions": self.demotions,
            "promotion_calls": self.promotion_calls,
            "demotion_calls": self.demotion_calls,
            "overhead_ns": self.overhead_ns,
            "samples_processed": self.samples_processed,
            "metadata_bytes": self.metadata_bytes,
            "extra": dict(self.extra),
        }

    def load_state(self, state: dict) -> None:
        self.promotions = int(state["promotions"])
        self.demotions = int(state["demotions"])
        self.promotion_calls = int(state["promotion_calls"])
        self.demotion_calls = int(state["demotion_calls"])
        self.overhead_ns = float(state["overhead_ns"])
        self.samples_processed = int(state["samples_processed"])
        self.metadata_bytes = int(state["metadata_bytes"])
        self.extra = dict(state["extra"])


class MigrationRetryQueue:
    """Bounded retry queue with capped exponential backoff (in batches).

    Models how a robust userspace daemon treats per-page migration
    failures (``-EBUSY``, target ENOMEM): the page is *re-queued*, not
    retried immediately -- the condition that failed it usually needs
    wall-clock time to clear -- with the backoff doubling per failed
    attempt up to a cap.  Pages that keep failing are **blacklisted**
    (the pinned-page model: a long-term GUP pin never unpins because we
    asked again), after which they are never re-enqueued and callers
    should exclude them from candidate selection via
    :meth:`filter_allowed`.

    Invariants (property-tested):

    - an entry's backoff never exceeds ``max_backoff_batches``;
    - a blacklisted page is never re-enqueued;
    - the queue never holds more than ``capacity`` entries (failures
      beyond capacity are dropped -- they will re-qualify through the
      normal candidate path);
    - absent new failures, :meth:`due` drains the queue completely
      within ``max_backoff_batches`` batches.
    """

    def __init__(
        self,
        capacity: int = 4096,
        base_backoff_batches: int = 1,
        max_backoff_batches: int = 32,
        max_attempts: int = 5,
    ):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if base_backoff_batches < 1:
            raise ValueError(
                f"base_backoff_batches must be >= 1, got {base_backoff_batches}"
            )
        if max_backoff_batches < base_backoff_batches:
            raise ValueError(
                "need max_backoff_batches >= base_backoff_batches, got "
                f"{max_backoff_batches} < {base_backoff_batches}"
            )
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
        self.capacity = int(capacity)
        self.base_backoff_batches = int(base_backoff_batches)
        self.max_backoff_batches = int(max_backoff_batches)
        self.max_attempts = int(max_attempts)
        #: page -> (failed attempts so far, batch index when due).
        self._entries: dict[int, tuple[int, int]] = {}
        self._blacklist: set[int] = set()
        self._blacklist_arr: np.ndarray | None = None  # rebuilt lazily

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def num_blacklisted(self) -> int:
        return len(self._blacklist)

    def backoff_for_attempt(self, attempts: int) -> int:
        """Backoff in batches after the ``attempts``-th failure (capped)."""
        shift = min(attempts - 1, 62)  # avoid silly overflow
        return min(self.base_backoff_batches << shift, self.max_backoff_batches)

    #: Sentinel due-batch for entries handed out by :meth:`due` and not
    #: yet resolved (so a double drain can never return them twice).
    _IN_FLIGHT = -1

    def record_failures(
        self, pages: np.ndarray, now_batch: int
    ) -> np.ndarray:
        """Register failed migrations; returns newly blacklisted pages.

        A page already in the queue (including one handed out by
        :meth:`due` whose retry just failed) keeps its attempt count;
        a page at ``max_attempts`` failures moves to the blacklist.
        """
        newly_blacklisted: list[int] = []
        for page in np.asarray(pages, dtype=np.int64).tolist():
            if page in self._blacklist:
                continue
            prior = self._entries.get(page)
            attempts = (prior[0] if prior is not None else 0) + 1
            if attempts >= self.max_attempts:
                self._entries.pop(page, None)
                self._blacklist.add(page)
                self._blacklist_arr = None
                newly_blacklisted.append(page)
                continue
            if prior is None and len(self._entries) >= self.capacity:
                continue  # bounded: overflow failures are dropped
            due = now_batch + self.backoff_for_attempt(attempts)
            self._entries[page] = (attempts, due)
        return np.asarray(newly_blacklisted, dtype=np.int64)

    def due(self, now_batch: int) -> np.ndarray:
        """Pages whose backoff has expired, marked in-flight.

        The caller must resolve each returned page by either
        :meth:`mark_succeeded` (retry worked, or the page no longer
        needs moving) or :meth:`record_failures` (retry failed again) --
        until then the page is not returned by further :meth:`due`
        calls but still counts against the queue bound.
        """
        if not self._entries:
            return _NO_PAGES
        ready = [
            p
            for p, (_, due) in self._entries.items()
            if due != self._IN_FLIGHT and due <= now_batch
        ]
        if not ready:
            return _NO_PAGES
        for page in ready:
            attempts, _ = self._entries[page]
            self._entries[page] = (attempts, self._IN_FLIGHT)
        return np.asarray(sorted(ready), dtype=np.int64)

    def mark_succeeded(self, pages: np.ndarray) -> None:
        """Drop queue entries for pages that no longer need retrying."""
        for page in np.asarray(pages, dtype=np.int64).tolist():
            self._entries.pop(page, None)

    def filter_allowed(self, pages: np.ndarray) -> np.ndarray:
        """Drop blacklisted pages from a candidate array."""
        if not self._blacklist or pages.size == 0:
            return pages
        if self._blacklist_arr is None:
            self._blacklist_arr = np.fromiter(
                sorted(self._blacklist), dtype=np.int64, count=len(self._blacklist)
            )
        return pages[~np.isin(pages, self._blacklist_arr)]

    def is_blacklisted(self, page: int) -> bool:
        return int(page) in self._blacklist

    # -- checkpointing ---------------------------------------------------

    def state_dict(self) -> dict:
        """Queue contents (entries, including in-flight sentinels, plus
        the blacklist) as JSON-safe lists."""
        return {
            "entries": [
                [page, attempts, due]
                for page, (attempts, due) in sorted(self._entries.items())
            ],
            "blacklist": sorted(self._blacklist),
        }

    def load_state(self, state: dict) -> None:
        self._entries = {
            int(page): (int(attempts), int(due))
            for page, attempts, due in state["entries"]
        }
        self._blacklist = {int(p) for p in state["blacklist"]}
        self._blacklist_arr = None  # lazy cache; rebuilt on demand


class TieringPolicy(abc.ABC):
    """Base class for all tiering systems."""

    name: str = "policy"

    def __init__(self):
        self.stats = PolicyStats()
        self.tracer: Tracer = NULL_TRACER
        self.fault_injector: FaultInjector | None = None
        self._machine: Machine | None = None

    # -- lifecycle --------------------------------------------------------

    def attach(self, machine: Machine) -> None:
        """Bind to a machine.  Subclasses must call super().attach()."""
        self._machine = machine

    def set_tracer(self, tracer: Tracer) -> None:
        """Install an observability tracer (before or after attach).

        Subclasses owning instrumented components built at attach time
        should override this to propagate the tracer to them.
        """
        self.tracer = tracer

    def set_fault_injector(self, injector: FaultInjector | None) -> None:
        """Install a fault injector (call before attach).

        The base class just records it; policies owning PEBS samplers
        built at attach time propagate it there (sample-loss and
        corruption faults), and the machine applies migration faults
        independently.
        """
        self.fault_injector = injector

    @property
    def machine(self) -> Machine:
        if self._machine is None:
            raise RuntimeError(f"policy {self.name!r} used before attach()")
        return self._machine

    def reconfigure(self, overrides: dict) -> list[str]:
        """Hot-swap config fields on a live policy; returns applied keys.

        The serving daemon applies this at a tick boundary
        (``TieringDaemon.swap_config(policy_overrides=...)``), so a
        long-lived loop can retune thresholds, batch sizes or scan
        cadences without a restart.  The base implementation sets
        matching attributes on ``self.config`` (policies without a
        ``config`` accept nothing); unknown keys raise -- a typo must
        not silently no-op on a production daemon.  Structures *sized*
        from config at attach time (e.g. a CBF sized for a target FPR)
        are not rebuilt: swaps take effect on forward-looking decisions
        only.
        """
        config = getattr(self, "config", None)
        unknown = [
            key for key in overrides
            if config is None or not hasattr(config, key)
        ]
        if unknown:
            raise ValueError(
                f"policy {self.name!r} has no config field(s) "
                f"{sorted(unknown)}"
            )
        applied = []
        for key, value in overrides.items():
            setattr(config, key, value)
            applied.append(key)
        return sorted(applied)

    # -- main hook ----------------------------------------------------------

    #: Whether on_batch() needs the materialized per-access stream
    #: (``batch.page_ids`` and the full ``tiers`` array).  Policies
    #: that consume only the ``(n_local, n_cxl)`` split and
    #: position-sampled accesses (e.g. FreqTier's PEBS path) override
    #: this to False; the engine then services run-compressed batches
    #: without expanding them and passes ``tiers=None``.
    needs_access_stream: bool = True

    @abc.abstractmethod
    def on_batch(
        self,
        batch: AccessBatch,
        tiers: np.ndarray | None,
        now_ns: float,
        counts: tuple[int, int] | None = None,
    ) -> float:
        """Observe one serviced access batch; return overhead in ns.

        ``tiers[i]`` is the tier that serviced ``batch.page_ids[i]``.
        ``counts``, when given, is ``(n_local, n_cxl)`` for this batch
        as already tallied by the engine -- policies that need the
        split (e.g. FreqTier's intensity monitor) use it instead of
        re-scanning ``tiers``.  ``tiers`` is None only for policies
        that declare ``needs_access_stream = False`` (the engine always
        supplies ``counts`` in that case).  Any promotions/demotions
        the policy performs here are recorded by the machine's traffic
        meter.
        """

    def _batch_counts(
        self,
        batch: AccessBatch,
        tiers: np.ndarray,
        counts: tuple[int, int] | None,
    ) -> tuple[int, int]:
        """The ``(n_local, n_cxl)`` split, scanning ``tiers`` only if
        the caller did not supply it."""
        if counts is not None:
            return int(counts[0]), int(counts[1])
        if tiers is None:
            raise ValueError("_batch_counts needs counts when tiers is None")
        n_local = int(np.count_nonzero(np.asarray(tiers) == LOCAL_TIER))
        return n_local, batch.num_accesses - n_local

    # -- shared helpers --------------------------------------------------------

    def _record_migrations(self, promoted: int, demoted: int) -> None:
        if promoted:
            self.stats.promotions += promoted
            self.stats.promotion_calls += 1
        if demoted:
            self.stats.demotions += demoted
            self.stats.demotion_calls += 1

    def _count_extra(self, name: str, amount: int) -> None:
        if amount:
            self.stats.extra[name] = self.stats.extra.get(name, 0) + amount

    def _filter_corrupt_sample_ids(self, page_ids: np.ndarray) -> np.ndarray:
        """Drop sample ids outside the mapped page range.

        Real PEBS records can carry bogus linear addresses (a race with
        unmap, or a decoding error); a policy indexing per-page metadata
        with such an id would crash or pollute a neighbour's counters.
        Dropped ids are tallied in ``stats.extra["corrupt_samples_filtered"]``.
        """
        total = self.machine.config.total_capacity_pages
        valid = (page_ids >= 0) & (page_ids < total)
        if valid.all():
            return page_ids
        dropped = int(page_ids.size - np.count_nonzero(valid))
        self._count_extra("corrupt_samples_filtered", dropped)
        if self.tracer.enabled:
            self.tracer.count("corrupt_samples_filtered", dropped)
        return page_ids[valid]

    def _promote_pages(self, pages: np.ndarray) -> MoveOutcome:
        """Promote with full stats accounting, partial-success aware.

        ``stats.promotions`` counts only pages that *actually moved*
        (so it always reconciles with the machine's traffic meter, even
        under injected faults), and fault-failed pages are tallied in
        ``stats.extra["promotions_failed"]``.
        """
        outcome = self.machine.promote_ex(pages)
        self._record_migrations(outcome.num_moved, 0)
        self._count_extra("promotions_failed", outcome.num_failed)
        return outcome

    def _demote_pages(self, pages: np.ndarray) -> MoveOutcome:
        """Demote with full stats accounting (see :meth:`_promote_pages`)."""
        outcome = self.machine.demote_ex(pages)
        self._record_migrations(0, outcome.num_moved)
        self._count_extra("demotions_failed", outcome.num_failed)
        return outcome

    # -- checkpointing ---------------------------------------------------

    def state_dict(self) -> dict:
        """Snapshot all mutable policy state for checkpointing.

        The contract (paired with :meth:`load_state`): after
        ``p2.load_state(p1.state_dict())`` on a freshly attached policy
        of the same class and configuration, ``p2`` behaves
        bit-identically to ``p1`` for every subsequent ``on_batch``
        call.  Subclasses override both methods, call ``super()``, and
        add their own mutable fields.  Must be called after
        :meth:`attach` (components built at attach time are part of the
        state).
        """
        return {"stats": self.stats.state_dict()}

    def load_state(self, state: dict) -> None:
        """Restore state captured by :meth:`state_dict`.

        Must be called on an attached policy of the same class and
        configuration as the one that produced ``state``.
        """
        self.stats.load_state(state["stats"])

    def describe(self) -> dict[str, object]:
        """Metadata for benchmark reports."""
        return {"name": self.name}
