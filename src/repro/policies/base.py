"""Tiering-policy protocol and shared bookkeeping.

A policy sees the machine through three narrow interfaces, matching
what a real userspace tiering runtime gets:

- its **sampler(s)** (PEBS, perf-stat or hint faults) for access
  information -- never the raw access stream as ground truth;
- the **page table / address space** query interfaces
  (``/proc``-style, batched);
- the **migration** calls (``promote`` / ``demote``).

The engine calls :meth:`TieringPolicy.on_batch` once per access batch
with the placement of each access *at service time* (this is what the
memory controller counters observed, i.e. what PEBS would tag) and the
current simulated time.  The policy returns its CPU overhead for the
batch in nanoseconds; migrations it performed are visible to the
engine through the machine's traffic meter.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

import numpy as np

from repro.memsim.machine import Machine
from repro.memsim.pagetable import LOCAL_TIER
from repro.obs import NULL_TRACER, Tracer
from repro.sampling.events import AccessBatch


@dataclass
class PolicyStats:
    """Uniform per-policy counters for reports and overhead studies."""

    promotions: int = 0
    demotions: int = 0
    promotion_calls: int = 0
    demotion_calls: int = 0
    overhead_ns: float = 0.0
    samples_processed: int = 0
    #: Modeled metadata memory (bytes) the policy holds in local DRAM.
    metadata_bytes: int = 0
    extra: dict[str, float] = field(default_factory=dict)

    def as_dict(self) -> dict[str, float]:
        out = {
            "promotions": self.promotions,
            "demotions": self.demotions,
            "promotion_calls": self.promotion_calls,
            "demotion_calls": self.demotion_calls,
            "overhead_ns": self.overhead_ns,
            "samples_processed": self.samples_processed,
            "metadata_bytes": self.metadata_bytes,
        }
        out.update(self.extra)
        return out


class TieringPolicy(abc.ABC):
    """Base class for all tiering systems."""

    name: str = "policy"

    def __init__(self):
        self.stats = PolicyStats()
        self.tracer: Tracer = NULL_TRACER
        self._machine: Machine | None = None

    # -- lifecycle --------------------------------------------------------

    def attach(self, machine: Machine) -> None:
        """Bind to a machine.  Subclasses must call super().attach()."""
        self._machine = machine

    def set_tracer(self, tracer: Tracer) -> None:
        """Install an observability tracer (before or after attach).

        Subclasses owning instrumented components built at attach time
        should override this to propagate the tracer to them.
        """
        self.tracer = tracer

    @property
    def machine(self) -> Machine:
        if self._machine is None:
            raise RuntimeError(f"policy {self.name!r} used before attach()")
        return self._machine

    # -- main hook ----------------------------------------------------------

    @abc.abstractmethod
    def on_batch(
        self,
        batch: AccessBatch,
        tiers: np.ndarray,
        now_ns: float,
        counts: tuple[int, int] | None = None,
    ) -> float:
        """Observe one serviced access batch; return overhead in ns.

        ``tiers[i]`` is the tier that serviced ``batch.page_ids[i]``.
        ``counts``, when given, is ``(n_local, n_cxl)`` for this batch
        as already tallied by the engine -- policies that need the
        split (e.g. FreqTier's intensity monitor) use it instead of
        re-scanning ``tiers``.  Any promotions/demotions the policy
        performs here are recorded by the machine's traffic meter.
        """

    def _batch_counts(
        self,
        batch: AccessBatch,
        tiers: np.ndarray,
        counts: tuple[int, int] | None,
    ) -> tuple[int, int]:
        """The ``(n_local, n_cxl)`` split, scanning ``tiers`` only if
        the caller did not supply it."""
        if counts is not None:
            return int(counts[0]), int(counts[1])
        n_local = int(np.count_nonzero(np.asarray(tiers) == LOCAL_TIER))
        return n_local, batch.num_accesses - n_local

    # -- shared helpers --------------------------------------------------------

    def _record_migrations(self, promoted: int, demoted: int) -> None:
        if promoted:
            self.stats.promotions += promoted
            self.stats.promotion_calls += 1
        if demoted:
            self.stats.demotions += demoted
            self.stats.demotion_calls += 1

    def describe(self) -> dict[str, object]:
        """Metadata for benchmark reports."""
        return {"name": self.name}
