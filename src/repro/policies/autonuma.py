"""AutoNUMA: the Linux kernel's recency-based tiering (paper Section II-C1).

Mechanism reproduced (kernel v6.x with the TPP-derived tiering
patches merged, per the paper's Section VI-B):

- a scanner periodically unmaps one *scan window* of pages; the next
  access to an unmapped page raises a hint fault;
- a faulted page is promoted when its *hint fault latency* (time since
  unmap) is below the hot threshold;
- the hot threshold is adjusted dynamically so promotion traffic
  tracks a rate limit (the kernel's ``numa_balancing_rate_limit``
  behaviour);
- demotion is MGLRU-style: when free local memory falls below the
  promotion watermark, the coldest local pages by (fault-derived)
  recency are demoted until the demotion watermark is restored.

The fundamental limitation the paper exploits survives intact: only
the *first* access after an unmap is observed, so access frequency is
invisible (Fig. 3) -- one lucky access promotes a cold page, and a hot
page whose accesses miss the window stays put.
"""

from __future__ import annotations

import numpy as np

from repro.memsim.machine import Machine
from repro.memsim.pagetable import CXL_TIER, LOCAL_TIER
from repro.policies.base import TieringPolicy
from repro.sampling.events import AccessBatch
from repro.sampling.recency import HintFaultScanner


class AutoNUMA(TieringPolicy):
    """Hint-fault latency promotion + MGLRU-recency demotion."""

    name = "AutoNUMA"
    #: Hint faults and the MGLRU touched-set walk both run directly on
    #: run-compressed batches (``hint_faults`` / ``strided_pages``), so
    #: the engine may skip stream expansion.  Bit-identical either way.
    needs_access_stream = False

    def __init__(
        self,
        scan_period_accesses: int = 25_000,
        window_fraction: float = 0.01,
        initial_hot_threshold_ns: float = 1.0e6,
        rate_limit_pages_per_window: int = 2_000,
        rate_window_accesses: int = 1_000_000,
        mglru_sample_stride: int = 16,
        seed: int = 0,
    ):
        super().__init__()
        if not 0.0 < window_fraction <= 1.0:
            raise ValueError(
                f"window_fraction must be in (0, 1], got {window_fraction}"
            )
        self.scan_period_accesses = int(scan_period_accesses)
        self.window_fraction = float(window_fraction)
        self.hot_threshold_ns = float(initial_hot_threshold_ns)
        self.rate_limit_pages = int(rate_limit_pages_per_window)
        self.rate_window_accesses = int(rate_window_accesses)
        self.mglru_sample_stride = max(1, int(mglru_sample_stride))
        self.seed = int(seed)
        self.scanner: HintFaultScanner | None = None
        self._last_seen_ns: np.ndarray | None = None
        # MGLRU generations: pages referenced across several recent
        # aging windows climb to older ("younger" in kernel terms =
        # hotter) generations, a coarse frequency signal layered on
        # recency.  Demotion evicts generation 0 first.
        self._generation: np.ndarray | None = None
        self._seen_this_window: np.ndarray | None = None
        self._accesses_since_scan = 0
        self._accesses_in_rate_window = 0
        self._promoted_in_rate_window = 0

    #: Number of MGLRU generations (the kernel uses 4).
    MAX_GENERATION = 3

    # -- lifecycle --------------------------------------------------------

    def attach(self, machine: Machine) -> None:
        super().attach(machine)
        total = machine.config.total_capacity_pages
        window_pages = max(16, int(self.window_fraction * total))
        self.scanner = HintFaultScanner(
            total_pages=total, window_pages=window_pages, seed=self.seed
        )
        # Fault-derived recency; 0 = never observed (coldest).
        self._last_seen_ns = np.zeros(total, dtype=np.float64)
        self._generation = np.zeros(total, dtype=np.int8)
        self._seen_this_window = np.zeros(total, dtype=bool)

    # -- checkpointing ----------------------------------------------------

    def state_dict(self) -> dict:
        assert (
            self.scanner is not None
            and self._last_seen_ns is not None
            and self._generation is not None
            and self._seen_this_window is not None
        ), "state_dict requires attach()"
        state = super().state_dict()
        state.update(
            {
                "hot_threshold_ns": self.hot_threshold_ns,
                "scanner": self.scanner.state_dict(),
                "last_seen_ns": self._last_seen_ns.copy(),
                "generation": self._generation.copy(),
                "seen_this_window": self._seen_this_window.copy(),
                "accesses_since_scan": self._accesses_since_scan,
                "accesses_in_rate_window": self._accesses_in_rate_window,
                "promoted_in_rate_window": self._promoted_in_rate_window,
            }
        )
        return state

    def load_state(self, state: dict) -> None:
        assert self.scanner is not None, "load_state requires attach()"
        super().load_state(state)
        self.hot_threshold_ns = float(state["hot_threshold_ns"])
        self.scanner.load_state(state["scanner"])
        self._last_seen_ns = np.asarray(
            state["last_seen_ns"], dtype=np.float64
        ).copy()
        self._generation = np.asarray(state["generation"], dtype=np.int8).copy()
        self._seen_this_window = np.asarray(
            state["seen_this_window"], dtype=bool
        ).copy()
        self._accesses_since_scan = int(state["accesses_since_scan"])
        self._accesses_in_rate_window = int(state["accesses_in_rate_window"])
        self._promoted_in_rate_window = int(state["promoted_in_rate_window"])

    # -- main hook ----------------------------------------------------------

    def on_batch(
        self,
        batch: AccessBatch,
        tiers: np.ndarray | None,
        now_ns: float,
        counts: tuple[int, int] | None = None,
    ) -> float:
        assert self.scanner is not None and self._last_seen_ns is not None
        overhead = 0.0

        # Hint faults raised by this batch (before this batch's scan
        # tick and generation walk touch the bookkeeping: the fault
        # happened first in program order, so its latency is measured
        # against the *previous* unmap).  ``tiers is None`` means the
        # engine took the compressed fast path and never expanded the
        # stream; the scanner and touched-set walk then stay on the
        # compressed form too.
        faults = self.scanner.observe(
            batch, now_ns, prefer_expanded=tiers is not None
        )
        if faults.count:
            overhead += self.scanner.overhead_ns(faults.count)
            overhead += self._maybe_promote(faults.page_ids, faults.latencies_ns)
            self._last_seen_ns[faults.page_ids] = now_ns

        # MGLRU generation update: the kernel's page-table walks see
        # accessed bits for *all* resident pages, not just faulting
        # ones.  Model it as a strided subsample of the pages touched
        # this batch (an accessed bit records "touched since last
        # walk", so subsampling loses little).
        if tiers is None:
            touched = np.unique(batch.strided_pages(self.mglru_sample_stride))
        else:
            touched = np.unique(batch.page_ids[:: self.mglru_sample_stride])
        if touched.size:
            self._last_seen_ns[touched] = now_ns
            self._seen_this_window[touched] = True
            overhead += 2_000.0  # one generation-walk slice

        # Periodic address-space scan (unmap the next window) at the
        # end of the quantum.
        self._accesses_since_scan += batch.num_accesses
        while self._accesses_since_scan >= self.scan_period_accesses:
            self.scanner.scan_tick(now_ns)
            self._accesses_since_scan -= self.scan_period_accesses
            overhead += 10_000.0  # one scan pass over the window PTEs

        # Promotion-rate-limit controller (kernel hot-threshold tuning).
        self._accesses_in_rate_window += batch.num_accesses
        if self._accesses_in_rate_window >= self.rate_window_accesses:
            self._adjust_threshold()

        self.stats.overhead_ns += overhead
        return overhead

    # -- promotion ---------------------------------------------------------------

    def _maybe_promote(
        self, faulted: np.ndarray, latencies_ns: np.ndarray
    ) -> float:
        machine = self.machine
        hot = faulted[latencies_ns < self.hot_threshold_ns]
        if hot.size == 0:
            return 0.0
        placement = machine.placement_of(hot)
        candidates = hot[placement == CXL_TIER]
        # Hard rate limit: the kernel drops promotions beyond the
        # per-window migration budget regardless of the threshold.
        budget = self.rate_limit_pages - self._promoted_in_rate_window
        if budget <= 0:
            return 0.0
        candidates = candidates[:budget]
        if candidates.size == 0:
            return 0.0
        overhead = 0.0
        if machine.below_promo_wmark() or machine.local_free_pages < candidates.size:
            overhead += self._demote_cold(
                max(machine.demotion_deficit_pages(), int(candidates.size))
            )
        promoted = self._promote_pages(candidates).num_moved
        if promoted:
            overhead += 5_000.0  # move_pages syscall
            self._promoted_in_rate_window += promoted
        return overhead

    def _adjust_threshold(self) -> None:
        """Track the promotion rate limit by tuning the hot threshold."""
        assert self._generation is not None and self._seen_this_window is not None
        promoted = self._promoted_in_rate_window
        if promoted >= self.rate_limit_pages:
            # The hard cap was hit: tighten so fewer pages qualify.
            self.hot_threshold_ns *= 0.75
        elif promoted < self.rate_limit_pages // 2:
            self.hot_threshold_ns *= 1.25
        self.hot_threshold_ns = float(np.clip(self.hot_threshold_ns, 1e3, 1e10))
        self._accesses_in_rate_window = 0
        self._promoted_in_rate_window = 0
        # MGLRU aging: referenced pages climb a generation, idle pages
        # fall one.
        seen = self._seen_this_window
        self._generation[seen] = np.minimum(
            self._generation[seen] + 1, self.MAX_GENERATION
        )
        self._generation[~seen] = np.maximum(self._generation[~seen] - 1, 0)
        self._seen_this_window[:] = False

    # -- demotion (MGLRU-recency) ----------------------------------------------------

    def _demote_cold(self, num_pages: int) -> float:
        assert self._last_seen_ns is not None and self._generation is not None
        machine = self.machine
        local_pages = machine.page_table.pages_in_tier(LOCAL_TIER)
        if local_pages.size == 0 or num_pages <= 0:
            return 0.0
        num_pages = min(num_pages, int(local_pages.size))
        # Rank by generation first (coarse frequency), recency second.
        # Generations dominate any plausible timestamp (ns ~ 1e12).
        rank = (
            self._generation[local_pages].astype(np.float64) * 1e15
            + self._last_seen_ns[local_pages]
        )
        coldest_idx = np.argpartition(rank, num_pages - 1)[:num_pages]
        demoted = self._demote_pages(local_pages[coldest_idx]).num_moved
        if demoted:
            return 5_000.0 + demoted * 50.0  # syscall + LRU bookkeeping
        return 0.0
