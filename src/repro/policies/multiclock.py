"""MULTI-CLOCK (related work, paper Section IX-a).

MULTI-CLOCK (Maruf et al., HPCA'22) differentiates pages accessed
exactly once from pages accessed more than once, but treats all
multi-access pages equally -- the coarse two-level frequency signal
the paper contrasts with FreqTier's full frequency distribution.

Included as a related-work extension baseline: PEBS-sampled, promoting
pages on their second observed access, demoting pages with at most one
observed access since the last clock sweep.
"""

from __future__ import annotations

import numpy as np

from repro.memsim.machine import Machine
from repro.memsim.pagetable import CXL_TIER, LOCAL_TIER
from repro.policies.base import TieringPolicy
from repro.sampling.events import AccessBatch
from repro.sampling.pebs import PEBSSampler, SamplingLevel


class MultiClock(TieringPolicy):
    """Two-level (once vs many) access classification."""

    name = "MULTI-CLOCK"
    #: PEBS samples by access position, so run-compressed batches are
    #: sampled via ``pages_at`` without expansion.  Bit-identical: the
    #: RNG draws depend only on the access count and sampling period.
    needs_access_stream = False

    def __init__(
        self,
        sample_batch_size: int = 10_000,
        sweep_interval_samples: int = 200_000,
        pebs_base_period: int = 64,
        seed: int = 0,
    ):
        super().__init__()
        self.sample_batch_size = int(sample_batch_size)
        self.sweep_interval_samples = int(sweep_interval_samples)
        self.pebs_base_period = int(pebs_base_period)
        self.seed = int(seed)
        self.pebs: PEBSSampler | None = None
        # 0 = unseen, 1 = seen once, 2 = seen multiple times.
        self._seen: np.ndarray | None = None
        self._samples_since_sweep = 0

    def attach(self, machine: Machine) -> None:
        super().attach(machine)
        self.pebs = PEBSSampler(base_period=self.pebs_base_period, seed=self.seed)
        self.pebs.set_level(SamplingLevel.HIGH)
        self.pebs.fault_injector = self.fault_injector
        self._seen = np.zeros(machine.config.total_capacity_pages, dtype=np.int8)

    # -- checkpointing ----------------------------------------------------

    def state_dict(self) -> dict:
        assert self.pebs is not None and self._seen is not None, (
            "state_dict requires attach()"
        )
        state = super().state_dict()
        state.update(
            {
                "pebs": self.pebs.state_dict(),
                "seen": self._seen.copy(),
                "samples_since_sweep": self._samples_since_sweep,
            }
        )
        return state

    def load_state(self, state: dict) -> None:
        assert self.pebs is not None, "load_state requires attach()"
        super().load_state(state)
        self.pebs.load_state(state["pebs"])
        self._seen = np.asarray(state["seen"], dtype=np.int8).copy()
        self._samples_since_sweep = int(state["samples_since_sweep"])

    def on_batch(
        self,
        batch: AccessBatch,
        tiers: np.ndarray | None,
        now_ns: float,
        counts: tuple[int, int] | None = None,
    ) -> float:
        assert self.pebs is not None and self._seen is not None
        overhead = 0.0
        before = self.pebs.total_samples
        self.pebs.observe(
            batch, tiers, placement=self.machine.page_table.placement_view()
        )
        overhead += self.pebs.overhead_ns(self.pebs.total_samples - before)
        if self.pebs.pending_samples >= self.sample_batch_size:
            overhead += self._process_samples()
        self.stats.overhead_ns += overhead
        return overhead

    def _process_samples(self) -> float:
        assert self.pebs is not None and self._seen is not None
        samples = self.pebs.drain()
        if samples.num_samples == 0:
            return 0.0
        page_ids = self._filter_corrupt_sample_ids(samples.page_ids)
        if page_ids.size == 0:
            return 0.0
        self.stats.samples_processed += int(page_ids.size)
        pages, counts = np.unique(page_ids, return_counts=True)
        prior = self._seen[pages]
        new_state = np.minimum(prior + np.minimum(counts, 2), 2).astype(np.int8)
        self._seen[pages] = new_state
        overhead = pages.size * 30.0

        # Promote pages that crossed into "accessed more than once",
        # capped at half the local tier per round.
        multi = pages[new_state >= 2]
        multi = multi[: max(self.machine.config.local_capacity_pages // 2, 1)]
        if multi.size:
            placement = self.machine.placement_of(multi)
            candidates = multi[placement == CXL_TIER]
            if candidates.size:
                overhead += self._promote(candidates)

        self._samples_since_sweep += samples.num_samples
        if self._samples_since_sweep >= self.sweep_interval_samples:
            # Clock sweep: everyone's classification resets.
            self._seen[:] = 0
            self._samples_since_sweep = 0
        return overhead

    def _promote(self, candidates: np.ndarray) -> float:
        machine = self.machine
        overhead = 0.0
        if machine.below_promo_wmark() or machine.local_free_pages < candidates.size:
            overhead += self._demote_singletons(
                max(machine.demotion_deficit_pages(), int(candidates.size))
            )
        promoted = self._promote_pages(candidates).num_moved
        if promoted:
            overhead += 5_000.0
        return overhead

    def _demote_singletons(self, num_pages: int) -> float:
        """Demote local pages seen at most once this sweep."""
        assert self._seen is not None
        machine = self.machine
        local_pages = machine.page_table.pages_in_tier(LOCAL_TIER)
        if local_pages.size == 0 or num_pages <= 0:
            return 0.0
        seen = self._seen[local_pages]
        # Coldest first: unseen (0), then seen-once (1).
        order = np.argsort(seen, kind="stable")[: min(num_pages, local_pages.size)]
        demoted = self._demote_pages(local_pages[order]).num_moved
        if demoted:
            return 5_000.0
        return 0.0
