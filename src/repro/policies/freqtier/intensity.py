"""Dynamic tiering intensity (paper Sections IV-C and V-B2, Fig. 6).

FreqTier modulates how hard it works based on whether tiering is still
paying off:

- Sampling runs at one of three levels (100/10/1 kHz).  Each window,
  if the local-DRAM hit ratio was *stable* (within 0.5% across
  windows) the level drops one step; if unstable it rises one step.
- At the lowest level, a stable window sends the system into
  **monitoring mode**: PEBS off, perf-stat counting only.
- Two more triggers enter monitoring mode directly: a **promotion
  plateau** (no pages promoted in the last window -- relevant for
  GAP-like workloads whose hit ratio is naturally noisy) and an
  **empty demotion scan** (a full pass over the address space found no
  cold pages in local DRAM).
- In monitoring mode, a hit-ratio deviation beyond the stability
  epsilon from the reference ratio means the access distribution
  changed: sampling restarts at the highest level (Fig. 11 shows this
  detection within one window).

State and level changes are emitted as ``state_transition`` /
``level_change`` trace events through the controller's tracer (see
:mod:`repro.obs`); pass a recording tracer to observe them.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.obs import NULL_TRACER, Tracer
from repro.sampling.pebs import SamplingLevel
from repro.sampling.perf_stat import PerfStatCounter


class TieringState(enum.Enum):
    """Top-level runtime state (paper Fig. 6)."""

    SAMPLING = "sampling"
    MONITORING = "monitoring"


@dataclass
class WindowReport:
    """What happened during one observation window."""

    hit_ratio: float | None
    pages_promoted: int
    empty_demotion_scan: bool
    #: Promotion passes (sample-batch processings) run this window.
    #: A promotion plateau is only meaningful if tiering actually ran:
    #: a window with zero passes (e.g. the very first, before the
    #: sample buffer fills) must not trigger monitoring mode.
    processing_rounds: int = 0


class IntensityController:
    """The sampling-level / monitoring-mode state machine."""

    def __init__(
        self,
        stability_epsilon: float = 0.005,
        initial_level: SamplingLevel = SamplingLevel.HIGH,
        tracer: Tracer = NULL_TRACER,
    ):
        self.perf = PerfStatCounter(stability_epsilon=stability_epsilon)
        self.state = TieringState.SAMPLING
        self.level = SamplingLevel(initial_level)
        self._reference_ratio: float | None = None
        self.tracer = tracer

    # -- events -----------------------------------------------------------

    def count_accesses(self, local: int, cxl: int) -> None:
        """Feed the always-on counting monitor."""
        self.perf.count(local, cxl)

    def end_window(self, report: WindowReport, now_ns: float) -> None:
        """Close a window and run the state machine once."""
        ratio = self.perf.close_window()
        if self.state == TieringState.MONITORING:
            self._monitoring_step(ratio, now_ns)
        else:
            self._sampling_step(report, now_ns)

    # -- state steps -----------------------------------------------------------

    def _sampling_step(self, report: WindowReport, now_ns: float) -> None:
        if report.empty_demotion_scan:
            self._enter_monitoring(now_ns, reason="empty-demotion-scan")
            return
        if report.processing_rounds > 0 and report.pages_promoted == 0:
            self._enter_monitoring(now_ns, reason="promotion-plateau")
            return
        if self.perf.is_stable():
            if self.level > SamplingLevel.LOW:
                self._set_level(
                    SamplingLevel(self.level - 1), now_ns, reason="stable"
                )
            else:
                self._enter_monitoring(now_ns, reason="stable-at-lowest")
        else:
            if self.level < SamplingLevel.HIGH:
                self._set_level(
                    SamplingLevel(self.level + 1), now_ns, reason="unstable"
                )

    def _monitoring_step(self, ratio: float | None, now_ns: float) -> None:
        if ratio is None:
            return
        if self._reference_ratio is None:
            # The window closed at monitoring entry can be empty (e.g.
            # an empty-demotion-scan trigger before any traffic), so
            # adopt the first ratio observed *while* monitoring as the
            # reference -- otherwise the check below can never fire and
            # the policy is stuck in monitoring mode for good.
            self._reference_ratio = ratio
            return
        if abs(ratio - self._reference_ratio) > self.perf.stability_epsilon:
            # Distribution changed: back to full-rate sampling.
            self.state = TieringState.SAMPLING
            self.level = SamplingLevel.HIGH
            self._reference_ratio = None
            if self.tracer.enabled:
                self.tracer.emit(
                    "state_transition",
                    t_ns=now_ns,
                    **{
                        "from": TieringState.MONITORING.value,
                        "to": TieringState.SAMPLING.value,
                        "reason": "distribution-change",
                        "level": self.level.name,
                    },
                )

    def _enter_monitoring(self, now_ns: float, reason: str) -> None:
        self.state = TieringState.MONITORING
        self.level = SamplingLevel.OFF
        self._reference_ratio = self.perf.last_window_hit_ratio
        if self.tracer.enabled:
            self.tracer.emit(
                "state_transition",
                t_ns=now_ns,
                **{
                    "from": TieringState.SAMPLING.value,
                    "to": TieringState.MONITORING.value,
                    "reason": reason,
                    "level": self.level.name,
                },
            )

    def _set_level(
        self, level: SamplingLevel, now_ns: float, reason: str
    ) -> None:
        old = self.level
        self.level = level
        if self.tracer.enabled:
            self.tracer.emit(
                "level_change",
                t_ns=now_ns,
                **{"from": old.name, "to": level.name, "reason": reason},
            )

    # -- queries ---------------------------------------------------------------

    @property
    def sampling_active(self) -> bool:
        return self.state == TieringState.SAMPLING

    # -- checkpointing ---------------------------------------------------------

    def state_dict(self) -> dict:
        return {
            "state": self.state.value,
            "level": int(self.level),
            "reference_ratio": self._reference_ratio,
            "perf": self.perf.state_dict(),
        }

    def load_state(self, state: dict) -> None:
        self.state = TieringState(state["state"])
        self.level = SamplingLevel(int(state["level"]))
        reference = state["reference_ratio"]
        self._reference_ratio = None if reference is None else float(reference)
        self.perf.load_state(state["perf"])
