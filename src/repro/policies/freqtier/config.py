"""FreqTier configuration (the paper's defaults, Section V).

All tunables the paper names are here with their published defaults:
4-bit counters, hot threshold 5, 100k sample batches, 1e-3 CBF false
positive rate sized against local-DRAM page count, three sampling
levels, 0.5% hit-ratio stability epsilon.

Time-based intervals in the paper (one-minute windows, periodic aging)
are expressed in *observed accesses* here so simulations of any length
behave identically; the defaults keep the paper's proportions at the
simulator's scale.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cbf.sizing import counters_for_fpr


@dataclass
class FreqTierConfig:
    """Tunables of the FreqTier runtime."""

    # --- counting bloom filter (Section V-A) ---
    #: Counter array size; None sizes it for `cbf_target_fpr` over the
    #: machine's local-DRAM page count at attach time.
    cbf_num_counters: int | None = None
    cbf_num_hashes: int = 3
    cbf_bits: int = 4
    #: Target false positive rate used when auto-sizing (paper: 1e-3).
    cbf_target_fpr: float = 1e-3
    #: Use the blocked (single-cache-line) CBF variant (Section V-C(b)).
    blocked_cbf: bool = True
    #: Aging cadence: halve counters every this many processed samples.
    #: Roughly two agings per observation window at the HIGH sampling
    #: level, so stale hotness decays within a few windows -- the
    #: freshness the paper's churn experiment (Fig. 11) depends on.
    aging_interval_samples: int = 30_000

    # --- tracking granularity ---
    #: Pages per tracking/migration unit.  1 = the paper's 4 KB default
    #: (the smallest Linux migration granularity).  Larger values model
    #: the huge-page-granularity tracking of prior works, which the
    #: paper criticizes (Section III Challenge 2): less metadata, but
    #: hot and cold 4 KB pages get fused into one classification.
    granularity_pages: int = 1

    # --- promotion (Algorithm 1, Section V-C(a)) ---
    #: Initial hot threshold (paper default: 5).
    initial_hot_threshold: int = 5
    #: Samples accumulated before one batched promotion pass
    #: (paper default 100k; scaled default keeps several passes per
    #: simulated window, preserving the paper's batches:window ratio).
    sample_batch_size: int = 5_000
    #: Dynamic-threshold controller bounds.
    min_hot_threshold: int = 1
    max_hot_threshold: int | None = None  # None -> CBF max count

    # --- demotion (Algorithm 2, Section V-B1) ---
    #: Pages per batched pagemap query during the linear scan.
    demotion_scan_chunk_pages: int = 512

    # --- dynamic intensity (Section V-B2) ---
    #: Observed accesses per hit-ratio window (the paper's one minute).
    window_accesses: int = 1_000_000
    #: Hit-ratio stability epsilon (paper: 0.5%).
    stability_epsilon: float = 0.005
    #: PEBS accesses-per-sample at the HIGH level (levels below are
    #: 10x and 100x sparser, the paper's 100/10/1 kHz ladder).
    pebs_base_period: int = 64
    #: CPU cost per PEBS sample (collection + parse), ns.
    sample_cost_ns: float = 120.0
    #: PEBS ring-buffer capacity in samples.  None sizes it a few
    #: sample batches deep (the paper's 512 KB/counter/core rule scaled
    #: to the simulated sampling volume); set explicitly to model
    #: constrained rings (overflow/sample-loss studies).
    pebs_ring_capacity: int | None = None

    # --- migration retry / blacklist (robustness under faults) ---
    #: Maximum pages queued for migration retry per direction.
    retry_queue_capacity: int = 4096
    #: Backoff after the first failed attempt, in batches.
    retry_base_backoff_batches: int = 1
    #: Backoff cap: doubling per failed attempt never exceeds this.
    retry_max_backoff_batches: int = 32
    #: Failed attempts before a page is blacklisted (pinned-page model).
    retry_max_attempts: int = 5

    # --- runtime placement (paper Section VIII-c) ---
    #: "userspace" (the paper's implementation: LD_PRELOAD runtime
    #: thread, maximum flexibility, pays syscall/context-switch costs)
    #: or "kernel" (the discussed alternative: no syscall boundary for
    #: migrations and pseudo-fs reads, at the cost of flexibility).
    runtime_mode: str = "userspace"

    # --- modeled management costs (userspace-mode values) ---
    #: CPU cost of one batched pagemap read (scan overhead), ns.
    pagemap_read_ns: float = 2_000.0
    #: CPU cost per CBF update/query call, ns.
    cbf_op_ns: float = 25.0
    #: Fixed syscall cost per move_pages() invocation, ns.
    move_pages_syscall_ns: float = 5_000.0

    #: Crossing-the-boundary discount for kernel mode: syscall-priced
    #: operations (migration calls, pagemap reads) become direct
    #: function calls.
    KERNEL_BOUNDARY_DISCOUNT = 0.2

    def __post_init__(self) -> None:
        if self.initial_hot_threshold < 1:
            raise ValueError(
                f"initial_hot_threshold must be >= 1, got "
                f"{self.initial_hot_threshold}"
            )
        if self.sample_batch_size < 1:
            raise ValueError(
                f"sample_batch_size must be >= 1, got {self.sample_batch_size}"
            )
        if not 0.0 < self.cbf_target_fpr < 1.0:
            raise ValueError(
                f"cbf_target_fpr must be in (0, 1), got {self.cbf_target_fpr}"
            )
        if self.window_accesses < 1:
            raise ValueError(
                f"window_accesses must be >= 1, got {self.window_accesses}"
            )
        if self.granularity_pages < 1:
            raise ValueError(
                f"granularity_pages must be >= 1, got {self.granularity_pages}"
            )
        if self.runtime_mode not in ("userspace", "kernel"):
            raise ValueError(
                f"runtime_mode must be 'userspace' or 'kernel', got "
                f"{self.runtime_mode!r}"
            )

    @property
    def effective_move_pages_ns(self) -> float:
        """Per-migration-call cost after the runtime-mode discount."""
        if self.runtime_mode == "kernel":
            return self.move_pages_syscall_ns * self.KERNEL_BOUNDARY_DISCOUNT
        return self.move_pages_syscall_ns

    @property
    def effective_pagemap_read_ns(self) -> float:
        """Per-pagemap-batch cost after the runtime-mode discount."""
        if self.runtime_mode == "kernel":
            return self.pagemap_read_ns * self.KERNEL_BOUNDARY_DISCOUNT
        return self.pagemap_read_ns

    def resolve_cbf_size(self, local_capacity_pages: int) -> int:
        """Counter-array size: explicit, or sized for the target FPR.

        The paper sizes the CBF "large enough to store all pages in
        local DRAM while achieving a false positive rate of 1e-3".
        """
        if self.cbf_num_counters is not None:
            return self.cbf_num_counters
        return counters_for_fpr(
            max(local_capacity_pages, 1),
            self.cbf_target_fpr,
            self.cbf_num_hashes,
        )
