"""Dynamic hot-threshold controller (paper Section V-C(a)).

The hot threshold is the minimum CBF frequency a page needs to be
promoted.  FreqTier keeps it calibrated so that *the set of hot pages
is roughly the size of local DRAM*: a threshold too low floods local
DRAM (promote-demote churn); too high leaves local DRAM underused.

The CBF cannot enumerate its keys, so the controller estimates the hot
page count from the counter-value histogram: a page at frequency >= t
raises ~``k`` counters to >= t, so ``#counters >= t / k`` upper-bounds
the hot-page count (collisions only inflate it, making the controller
conservative about lowering the threshold).
"""

from __future__ import annotations

from repro.cbf.cbf import CountingBloomFilter


class HotThresholdController:
    """Adjusts the hot threshold toward local-DRAM-sized hot sets."""

    def __init__(
        self,
        cbf: CountingBloomFilter,
        local_capacity_pages: int,
        initial_threshold: int = 5,
        min_threshold: int = 1,
        max_threshold: int | None = None,
        high_fill: float = 1.25,
        low_fill: float = 0.5,
    ):
        if local_capacity_pages < 1:
            raise ValueError(
                f"local_capacity_pages must be >= 1, got {local_capacity_pages}"
            )
        if not 0.0 < low_fill < high_fill:
            raise ValueError(
                f"need 0 < low_fill < high_fill, got {low_fill}, {high_fill}"
            )
        self.cbf = cbf
        self.local_capacity_pages = int(local_capacity_pages)
        self.min_threshold = int(min_threshold)
        self.max_threshold = int(
            max_threshold if max_threshold is not None else cbf.max_count
        )
        if not self.min_threshold <= initial_threshold <= self.max_threshold:
            raise ValueError(
                f"initial_threshold {initial_threshold} outside "
                f"[{self.min_threshold}, {self.max_threshold}]"
            )
        self.threshold = int(initial_threshold)
        self.high_fill = float(high_fill)
        self.low_fill = float(low_fill)
        self.adjustments = 0

    def estimated_hot_pages(self, threshold: int | None = None) -> float:
        """Estimated pages with frequency >= threshold (histogram / k)."""
        t = self.threshold if threshold is None else threshold
        hist = self.cbf.counter_histogram()
        return float(hist[t:].sum()) / self.cbf.num_hashes

    def update(self) -> int:
        """One control step; returns the (possibly changed) threshold.

        Raises the threshold when the estimated hot set overflows
        local DRAM by ``high_fill``; lowers it when the hot set cannot
        fill ``low_fill`` of local DRAM (paper Section V-C(a)).
        """
        hist = self.cbf.counter_histogram()
        k = self.cbf.num_hashes
        est_hot = float(hist[self.threshold :].sum()) / k
        if (
            est_hot > self.high_fill * self.local_capacity_pages
            and self.threshold < self.max_threshold
        ):
            self.threshold += 1
            self.adjustments += 1
        elif (
            est_hot < self.low_fill * self.local_capacity_pages
            and self.threshold > self.min_threshold
        ):
            self.threshold -= 1
            self.adjustments += 1
        return self.threshold

    # -- checkpointing ---------------------------------------------------------

    def state_dict(self) -> dict:
        return {"threshold": self.threshold, "adjustments": self.adjustments}

    def load_state(self, state: dict) -> None:
        self.threshold = int(state["threshold"])
        self.adjustments = int(state["adjustments"])
