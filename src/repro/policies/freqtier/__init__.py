"""FreqTier / HybridTier: the paper's tiering system."""

from repro.policies.freqtier.config import FreqTierConfig
from repro.policies.freqtier.intensity import IntensityController, TieringState
from repro.policies.freqtier.policy import FreqTier
from repro.policies.freqtier.threshold import HotThresholdController

__all__ = [
    "FreqTier",
    "FreqTierConfig",
    "HotThresholdController",
    "IntensityController",
    "TieringState",
]
