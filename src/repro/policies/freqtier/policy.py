"""The FreqTier tiering policy (paper Sections IV-V).

Workflow per the paper's Figure 4: PEBS samples of local and CXL
accesses flow into the counting Bloom filter through the increment
coalescer; every ``sample_batch_size`` samples one batched promotion
pass runs (Algorithm 1); demotion is a resumable linear scan of the
virtual address space gated by the free-memory watermarks
(Algorithm 2, Figs. 6-7); the intensity controller adapts the sampling
level and drops into monitoring mode when tiering stops paying off.
"""

from __future__ import annotations

import numpy as np

from repro.cbf.blocked import BlockedCountingBloomFilter
from repro.cbf.cbf import CountingBloomFilter
from repro.cbf.coalescing import SampleCoalescer
from repro.memsim.machine import Machine
from repro.memsim.pagetable import CXL_TIER, LOCAL_TIER
from repro.obs import Tracer
from repro.policies.base import MigrationRetryQueue, TieringPolicy
from repro.policies.freqtier.config import FreqTierConfig
from repro.policies.freqtier.intensity import (
    IntensityController,
    TieringState,
    WindowReport,
)
from repro.policies.freqtier.threshold import HotThresholdController
from repro.sampling.events import AccessBatch
from repro.sampling.pebs import PEBSSampler, SAMPLE_RECORD_BYTES


class FreqTier(TieringPolicy):
    """Frequency-based tiering with probabilistic tracking.

    Published at ASPLOS'25 under the name **HybridTier**; the
    :data:`repro.policies.HybridTier` alias points here.
    """

    name = "FreqTier"

    # FreqTier consumes only the engine's (n_local, n_cxl) split and
    # PEBS position samples, so run-compressed batches are serviced
    # without expanding the access stream (tiers arrives as None).
    needs_access_stream = False

    def __init__(self, config: FreqTierConfig | None = None, seed: int = 0):
        super().__init__()
        self.config = config or FreqTierConfig()
        self.seed = int(seed)
        # Bound at attach():
        self.cbf: CountingBloomFilter | None = None
        self.coalescer: SampleCoalescer | None = None
        self.pebs: PEBSSampler | None = None
        self.intensity: IntensityController | None = None
        self.threshold_ctl: HotThresholdController | None = None
        self._promo_retry: MigrationRetryQueue | None = None
        self._demo_retry: MigrationRetryQueue | None = None
        self._batch_index = 0
        self._scan_cursor = 0
        # Per-page CBF slot indices for the whole address space, built
        # lazily on the first demotion scan.  Page ids and the CBF's
        # geometry/seed are both fixed after attach(), so slot indices
        # of scanned pages never change; one up-front hashing pass
        # replaces the per-chunk hashing that otherwise dominates every
        # scan (chunk boundaries drift between laps, so per-chunk
        # memoization would rarely hit).  Derived data: never
        # checkpointed, cleared on attach() (new CBF geometry/seed).
        self._scan_index_table: np.ndarray | None = None
        self._window_accesses = 0
        self._promoted_in_window = 0
        self._empty_scan_in_window = False
        self._rounds_in_window = 0
        self._samples_since_aging = 0

    # -- lifecycle --------------------------------------------------------

    def set_tracer(self, tracer: Tracer) -> None:
        super().set_tracer(tracer)
        if self.intensity is not None:
            self.intensity.tracer = tracer

    def set_fault_injector(self, injector) -> None:
        super().set_fault_injector(injector)
        if self.pebs is not None:
            self.pebs.fault_injector = injector

    # -- tracking-unit translation (granularity_pages) -----------------

    def _units_of(self, pages: np.ndarray) -> np.ndarray:
        """Tracking-unit id of each page (identity at 4 KB granularity)."""
        if self.config.granularity_pages == 1:
            return pages
        return np.asarray(pages, dtype=np.int64) // self.config.granularity_pages

    def _pages_of_units(self, units: np.ndarray) -> np.ndarray:
        """All page ids covered by the given tracking units."""
        g = self.config.granularity_pages
        if g == 1:
            return np.asarray(units, dtype=np.int64)
        units = np.asarray(units, dtype=np.int64)
        offsets = np.tile(np.arange(g, dtype=np.int64), len(units))
        return np.repeat(units * g, g) + offsets

    def attach(self, machine: Machine) -> None:
        super().attach(machine)
        cfg = self.config
        tracked_capacity = max(
            1, machine.config.local_capacity_pages // cfg.granularity_pages
        )
        num_counters = cfg.resolve_cbf_size(tracked_capacity)
        cbf_cls = BlockedCountingBloomFilter if cfg.blocked_cbf else CountingBloomFilter
        self._scan_index_table = None
        self.cbf = cbf_cls(
            num_counters,
            num_hashes=cfg.cbf_num_hashes,
            bits=cfg.cbf_bits,
            seed=self.seed,
        )
        self.coalescer = SampleCoalescer(self.cbf)
        # Ring sized a few batches deep (the paper's 512 KB/counter/core
        # rule scaled to the simulated sampling volume) unless the
        # config pins an explicit capacity.
        ring_capacity = cfg.pebs_ring_capacity
        if ring_capacity is None:
            ring_capacity = max(4 * cfg.sample_batch_size, 32_768)
        self.pebs = PEBSSampler(
            base_period=cfg.pebs_base_period,
            ring_capacity=ring_capacity,
            sample_cost_ns=cfg.sample_cost_ns,
            seed=self.seed + 1,
        )
        self.pebs.fault_injector = self.fault_injector
        self._promo_retry = MigrationRetryQueue(
            capacity=cfg.retry_queue_capacity,
            base_backoff_batches=cfg.retry_base_backoff_batches,
            max_backoff_batches=cfg.retry_max_backoff_batches,
            max_attempts=cfg.retry_max_attempts,
        )
        self._demo_retry = MigrationRetryQueue(
            capacity=cfg.retry_queue_capacity,
            base_backoff_batches=cfg.retry_base_backoff_batches,
            max_backoff_batches=cfg.retry_max_backoff_batches,
            max_attempts=cfg.retry_max_attempts,
        )
        self._batch_index = 0
        self.intensity = IntensityController(
            stability_epsilon=cfg.stability_epsilon, tracer=self.tracer
        )
        if self.tracer.enabled:
            # Traces are self-describing: record the initial state so
            # timeline reconstruction needs no out-of-band knowledge.
            self.tracer.emit(
                "state_transition",
                t_ns=0.0,
                **{
                    "from": "init",
                    "to": self.intensity.state.value,
                    "reason": "attach",
                    "level": self.intensity.level.name,
                },
            )
        self.threshold_ctl = HotThresholdController(
            self.cbf,
            tracked_capacity,
            initial_threshold=cfg.initial_hot_threshold,
            min_threshold=cfg.min_hot_threshold,
            max_threshold=cfg.max_hot_threshold,
        )
        self.stats.metadata_bytes = (
            self.cbf.nbytes + self.pebs.ring_capacity * SAMPLE_RECORD_BYTES
        )

    # -- main hook ----------------------------------------------------------

    def on_batch(
        self,
        batch: AccessBatch,
        tiers: np.ndarray | None,
        now_ns: float,
        counts: tuple[int, int] | None = None,
    ) -> float:
        assert self.pebs is not None and self.intensity is not None
        self._batch_index += 1
        n_local, n_cxl = self._batch_counts(batch, tiers, counts)
        self.intensity.count_accesses(n_local, n_cxl)

        overhead = self._drain_retries(now_ns)
        if self.intensity.sampling_active:
            self.pebs.set_level(self.intensity.level)
            before = self.pebs.total_samples
            self.pebs.observe(
                batch,
                tiers,
                placement=self.machine.page_table.placement_view(),
            )
            overhead += self.pebs.overhead_ns(self.pebs.total_samples - before)
            # Drain at the configured batch size -- or when the ring is
            # full, whichever comes first (a ring smaller than the
            # batch must not stall sampling forever).
            drain_at = min(
                self.config.sample_batch_size, self.pebs.ring_capacity
            )
            if self.pebs.pending_samples >= drain_at:
                overhead += self._process_samples(now_ns)

        self._window_accesses += batch.num_accesses
        if self._window_accesses >= self.config.window_accesses:
            overhead += self._close_window(now_ns)

        self.stats.overhead_ns += overhead
        return overhead

    # -- migration retry (fault resilience) ---------------------------------

    def _record_retry_failures(
        self,
        queue: MigrationRetryQueue,
        direction: str,
        failed: np.ndarray,
        now_ns: float | None,
    ) -> None:
        """Queue failed pages for backed-off retry; trace blacklisting."""
        newly = queue.record_failures(failed, self._batch_index)
        if newly.size:
            self._count_extra(f"{direction}s_blacklisted", int(newly.size))
            if self.tracer.enabled:
                self.tracer.count("pages_blacklisted", int(newly.size))
                self.tracer.emit(
                    "page_blacklisted",
                    t_ns=now_ns,
                    direction=direction,
                    count=int(newly.size),
                )

    def _drain_retries(self, now_ns: float) -> float:
        """Re-attempt previously failed migrations whose backoff expired.

        Demotions drain first so retried demotions can free the room
        that retried promotions then claim (the watermark protocol's
        ordering).  Pages whose placement already matches the wanted
        side -- moved by some other path meanwhile -- are dropped from
        the queue without a migration call.
        """
        assert self._promo_retry is not None and self._demo_retry is not None
        overhead = 0.0
        plan = (
            ("demote", self._demo_retry, LOCAL_TIER, self._demote_pages),
            ("promote", self._promo_retry, CXL_TIER, self._promote_pages),
        )
        for direction, queue, wanted_tier, mover in plan:
            due = queue.due(self._batch_index)
            if due.size == 0:
                continue
            placement = self.machine.placement_of(due)
            moot = due[placement != wanted_tier]
            if moot.size:
                queue.mark_succeeded(moot)
            still = due[placement == wanted_tier]
            moved = 0
            if still.size:
                if direction == "promote":
                    overhead += self._make_room(int(still.size))
                outcome = mover(still)
                moved = outcome.num_moved
                overhead += self.config.effective_move_pages_ns
                if direction == "promote":
                    self._promoted_in_window += moved
                # Moved pages leave the queue; capacity-rejected pages
                # also leave (not a fault -- they re-qualify through the
                # normal candidate path); fault-failed pages re-enter
                # with their attempt count intact.
                queue.mark_succeeded(outcome.moved)
                queue.mark_succeeded(outcome.rejected_capacity)
                if outcome.num_failed:
                    self._record_retry_failures(
                        queue, direction, outcome.failed, now_ns
                    )
            if self.tracer.enabled:
                self.tracer.count(f"{direction}_retries", int(due.size))
                self.tracer.emit(
                    "migration_retry",
                    t_ns=now_ns,
                    direction=direction,
                    count=int(due.size),
                    moved=int(moved),
                )
        return overhead

    # -- windows (dynamic intensity) --------------------------------------------

    def _close_window(self, now_ns: float) -> float:
        assert self.intensity is not None and self.pebs is not None
        overhead = 0.0
        # Flush a partially filled sample buffer so every sampling
        # window ends with at least one promotion pass (otherwise a
        # slow level could starve the plateau detector).
        if (
            self.intensity.sampling_active
            and self.pebs.pending_samples >= self.config.sample_batch_size // 4
        ):
            overhead += self._process_samples(now_ns)
        report = WindowReport(
            hit_ratio=None,
            pages_promoted=self._promoted_in_window,
            empty_demotion_scan=self._empty_scan_in_window,
            processing_rounds=self._rounds_in_window,
        )
        was_sampling = self.intensity.sampling_active
        self.intensity.end_window(report, now_ns)
        if was_sampling and not self.intensity.sampling_active:
            # Entering monitoring mode: samples still buffered in the
            # ring were taken against the current placement, which can
            # be arbitrarily stale by the time sampling resumes --
            # discard them (counted as lost) instead of replaying them
            # later.
            flushed = self.pebs.discard_pending()
            if flushed and self.tracer.enabled:
                self.tracer.count("samples_lost", flushed)
                self.tracer.emit(
                    "ring_overflow",
                    t_ns=now_ns,
                    lost=flushed,
                    reason="monitoring-flush",
                )
        if self.tracer.enabled:
            self.tracer.emit(
                "window_close",
                t_ns=now_ns,
                hit_ratio=self.intensity.perf.last_window_hit_ratio,
                pages_promoted=self._promoted_in_window,
                processing_rounds=self._rounds_in_window,
                state=self.intensity.state.value,
                level=self.intensity.level.name,
            )
        self._window_accesses = 0
        self._promoted_in_window = 0
        self._empty_scan_in_window = False
        self._rounds_in_window = 0
        return overhead

    # -- promotion (Algorithm 1) ---------------------------------------------------

    def _process_samples(self, now_ns: float) -> float:
        assert (
            self.cbf is not None
            and self.coalescer is not None
            and self.pebs is not None
            and self.threshold_ctl is not None
        )
        cfg = self.config
        samples = self.pebs.drain()
        if samples.lost and self.tracer.enabled:
            self.tracer.count("samples_lost", samples.lost)
            self.tracer.emit(
                "ring_overflow",
                t_ns=now_ns,
                lost=samples.lost,
                reason="capacity",
            )
        if samples.num_samples == 0:
            return 0.0
        # Discard corrupted sample ids *before* they touch the CBF: an
        # out-of-range id would otherwise pollute counters shared (via
        # hashing) with real pages.
        page_ids = self._filter_corrupt_sample_ids(samples.page_ids)
        if page_ids.size == 0:
            return 0.0
        self._rounds_in_window += 1
        unit_ids = self._units_of(page_ids)
        unique_units, freqs = self.coalescer.ingest(unit_ids)
        overhead = unique_units.size * cfg.cbf_op_ns
        self.stats.samples_processed += int(page_ids.size)
        if self.tracer.enabled:
            self.tracer.count("cbf_ops", int(unique_units.size))
            self.tracer.observe("sample_batch_size", int(page_ids.size))

        # Periodic aging keeps frequencies fresh (Section V-A).  The
        # interval is *subtracted*, not reset to zero: a sample batch
        # larger than the interval leaves its remainder behind, so the
        # long-run aging cadence stays one aging per
        # ``aging_interval_samples`` regardless of batch size.
        self._samples_since_aging += samples.num_samples
        if self._samples_since_aging >= cfg.aging_interval_samples:
            self.cbf.age()
            self._samples_since_aging -= cfg.aging_interval_samples
            if self.tracer.enabled:
                self.tracer.count("agings")
                self.tracer.emit(
                    "aging", t_ns=now_ns, samples=samples.num_samples
                )

        threshold = self.threshold_ctl.threshold
        hot_mask = freqs >= threshold
        hot_units = unique_units[hot_mask].astype(np.int64)
        if hot_units.size:
            # Hottest first: if local DRAM cannot absorb the whole
            # batch, the most frequent units win the free slots.  The
            # stable sort on negated frequencies keeps tied units in
            # coalescer order, making the promotion set deterministic.
            order = np.argsort(
                -freqs[hot_mask].astype(np.int64), kind="stable"
            )
            hot = self._pages_of_units(hot_units[order])
            # Guard against units extending past the mapped space.
            hot = hot[hot < self.machine.config.total_capacity_pages]
            placement = self.machine.placement_of(hot)
            candidates = hot[placement == CXL_TIER]
            # Blacklisted pages (repeated migration failures: the
            # pinned-page model) are excluded up front -- re-attempting
            # them is pure wasted syscall time.
            assert self._promo_retry is not None
            candidates = self._promo_retry.filter_allowed(candidates)
            if candidates.size:
                overhead += self._make_room(int(candidates.size))
                outcome = self._promote_pages(candidates)
                promoted = outcome.num_moved
                if promoted:
                    overhead += cfg.effective_move_pages_ns
                    self._promoted_in_window += promoted
                if outcome.num_failed:
                    self._record_retry_failures(
                        self._promo_retry, "promote", outcome.failed, now_ns
                    )
                if self.tracer.enabled:
                    self.tracer.emit(
                        "promotion",
                        t_ns=now_ns,
                        candidates=int(candidates.size),
                        promoted=int(promoted),
                        threshold=int(threshold),
                    )

        # One control step per processing round (Section V-C(a)).
        self.threshold_ctl.update()
        return overhead

    # -- demotion (Algorithm 2) --------------------------------------------------------

    def _make_room(self, incoming_pages: int) -> float:
        """Watermark-gated demotion ahead of a promotion batch.

        Demotes cold pages (frequency < hot threshold) found by the
        resumable linear scan until free local memory exceeds
        DEMOTE_WMARK and fits the incoming promotion batch.
        """
        machine = self.machine
        # Room for the whole promotion batch (capped at half the local
        # tier so one batch can never flush local DRAM wholesale), but
        # at least up to DEMOTE_WMARK per the watermark protocol.
        incoming = min(
            incoming_pages, machine.config.local_capacity_pages // 2
        )
        want_free = max(machine.demote_wmark_pages, incoming)
        if machine.local_free_pages >= want_free:
            return 0.0
        return self._demote_until(want_free)

    def _demote_until(self, target_free_pages: int) -> float:
        assert self.cbf is not None and self.threshold_ctl is not None
        assert self._demo_retry is not None
        cfg = self.config
        machine = self.machine
        space = machine.address_space
        table = machine.page_table
        threshold = self.threshold_ctl.threshold

        # Checkpoint: if the batched demotion at the end fails outright
        # (injected ENOMEM / transient faults), rewind the scan cursor
        # so the cold pages found this pass are rediscovered by the
        # next scan instead of being silently skipped for a full lap of
        # the address space.
        cursor_checkpoint = self._scan_cursor
        overhead = 0.0
        to_demote: list[np.ndarray] = []
        collected = 0
        scanned = 0
        chunks = 0
        scan_limit = space.total_pages  # one full pass at most per call
        while (
            machine.local_free_pages + collected < target_free_pages
            and scanned < scan_limit
        ):
            chunk, self._scan_cursor = space.scan_from(
                self._scan_cursor, cfg.demotion_scan_chunk_pages
            )
            if chunk.size == 0:
                break
            scanned += int(chunk.size)
            chunks += 1
            # scan_from only yields pages of mapped regions, which are
            # in-bounds by construction -- skip the per-chunk re-check.
            placement = table.pagemap_read_batch(chunk, check=False)
            overhead += cfg.effective_pagemap_read_ns
            local_pages = chunk[placement == LOCAL_TIER]
            if local_pages.size == 0:
                continue
            # Slot indices come from the precomputed per-page table (a
            # row gather), not per-chunk hashing.  Accounting
            # (cbf_op_ns) is unchanged: the real system pays the CBF
            # lookup either way.
            if (
                self._scan_index_table is None
                or self._scan_index_table.shape[0] != space.total_pages
            ):
                all_pages = np.arange(space.total_pages, dtype=np.int64)
                self._scan_index_table = self.cbf.slot_indices(
                    self._units_of(all_pages)
                )
            freqs = self.cbf.get_by_indices(
                self._scan_index_table[local_pages]
            )
            overhead += local_pages.size * cfg.cbf_op_ns
            cold = local_pages[freqs < threshold]
            cold = self._demo_retry.filter_allowed(cold)
            if cold.size:
                need = target_free_pages - machine.local_free_pages - collected
                cold = cold[: max(need, 0)]
                if cold.size:
                    to_demote.append(cold)
                    collected += int(cold.size)

        demoted = 0
        if to_demote:
            outcome = self._demote_pages(np.concatenate(to_demote))
            demoted = outcome.num_moved
            if demoted:
                overhead += cfg.effective_move_pages_ns
            if outcome.num_failed:
                self._record_retry_failures(
                    self._demo_retry, "demote", outcome.failed, None
                )
                if demoted == 0:
                    # Total fault failure: nothing moved, so keep the
                    # checkpoint where this pass started.
                    self._scan_cursor = cursor_checkpoint
        elif scanned >= scan_limit:
            # A full pass found nothing cold: local DRAM is all hot.
            self._empty_scan_in_window = True
        if self.tracer.enabled:
            self.tracer.count("scan_chunks", chunks)
            self.tracer.count("scan_pages", scanned)
            self.tracer.emit(
                "demotion_scan",
                chunks=chunks,
                scanned=scanned,
                demoted=int(demoted),
                empty=bool(scanned >= scan_limit and not to_demote),
            )
        return overhead

    # -- checkpointing ----------------------------------------------------------------------

    def state_dict(self) -> dict:
        assert (
            self.cbf is not None
            and self.coalescer is not None
            and self.pebs is not None
            and self.intensity is not None
            and self.threshold_ctl is not None
            and self._promo_retry is not None
            and self._demo_retry is not None
        ), "state_dict requires attach()"
        state = super().state_dict()
        state.update(
            {
                "cbf": self.cbf.state_dict(),
                "coalescer": self.coalescer.state_dict(),
                "pebs": self.pebs.state_dict(),
                "intensity": self.intensity.state_dict(),
                "threshold_ctl": self.threshold_ctl.state_dict(),
                "promo_retry": self._promo_retry.state_dict(),
                "demo_retry": self._demo_retry.state_dict(),
                "batch_index": self._batch_index,
                "scan_cursor": self._scan_cursor,
                "window_accesses": self._window_accesses,
                "promoted_in_window": self._promoted_in_window,
                "empty_scan_in_window": self._empty_scan_in_window,
                "rounds_in_window": self._rounds_in_window,
                "samples_since_aging": self._samples_since_aging,
            }
        )
        return state

    def load_state(self, state: dict) -> None:
        assert (
            self.cbf is not None
            and self.coalescer is not None
            and self.pebs is not None
            and self.intensity is not None
            and self.threshold_ctl is not None
            and self._promo_retry is not None
            and self._demo_retry is not None
        ), "load_state requires attach()"
        super().load_state(state)
        self.cbf.load_state(state["cbf"])
        self.coalescer.load_state(state["coalescer"])
        self.pebs.load_state(state["pebs"])
        self.intensity.load_state(state["intensity"])
        self.threshold_ctl.load_state(state["threshold_ctl"])
        self._promo_retry.load_state(state["promo_retry"])
        self._demo_retry.load_state(state["demo_retry"])
        self._batch_index = int(state["batch_index"])
        self._scan_cursor = int(state["scan_cursor"])
        self._window_accesses = int(state["window_accesses"])
        self._promoted_in_window = int(state["promoted_in_window"])
        self._empty_scan_in_window = bool(state["empty_scan_in_window"])
        self._rounds_in_window = int(state["rounds_in_window"])
        self._samples_since_aging = int(state["samples_since_aging"])

    # -- introspection ----------------------------------------------------------------------

    @property
    def hot_threshold(self) -> int:
        assert self.threshold_ctl is not None
        return self.threshold_ctl.threshold

    @property
    def state(self) -> TieringState:
        assert self.intensity is not None
        return self.intensity.state

    def describe(self) -> dict[str, object]:
        base = super().describe()
        if self.cbf is not None:
            base.update(
                {
                    "cbf_counters": self.cbf.num_counters,
                    "cbf_bytes": self.cbf.nbytes,
                    "blocked_cbf": self.config.blocked_cbf,
                    "hot_threshold": self.hot_threshold,
                }
            )
        return base
