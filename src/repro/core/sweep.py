"""Parameter-sweep helper for the sensitivity studies (Figs. 12-13)."""

from __future__ import annotations

from collections.abc import Callable, Iterable
from typing import TypeVar

from repro.core.config import ExperimentConfig
from repro.core.metrics import ExperimentResult
from repro.core.parallel import CellSpec, ParallelExecutor
from repro.core.runner import PolicyFactory, WorkloadFactory, run_experiment

T = TypeVar("T")


def sweep(
    workload_factory: WorkloadFactory,
    policy_factory_for: Callable[[T], PolicyFactory],
    values: Iterable[T],
    config: ExperimentConfig,
    executor: ParallelExecutor | None = None,
) -> dict[T, ExperimentResult]:
    """Run one experiment per parameter value.

    ``policy_factory_for(v)`` returns the policy factory configured
    with parameter value ``v`` (e.g. a CBF size or a sample batch
    size); workload and machine are identical across cells.

    With an ``executor`` all points are submitted at once and fan out
    across its process pool / result cache; for ``jobs>1`` the
    factories must be picklable (e.g.
    ``lambda v: PolicySpec("freqtier", cbf_num_counters=v)`` -- the
    *returned* spec is what crosses the process boundary).
    """
    values = list(values)
    if executor is not None:
        specs = [
            CellSpec(
                workload_factory,
                policy_factory_for(value),
                config,
                label=str(value),
            )
            for value in values
        ]
        return dict(zip(values, executor.run(specs)))
    results: dict[T, ExperimentResult] = {}
    for value in values:
        results[value] = run_experiment(
            workload_factory, policy_factory_for(value), config
        )
    return results
