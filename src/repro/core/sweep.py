"""Parameter-sweep helper for the sensitivity studies (Figs. 12-13)."""

from __future__ import annotations

from collections.abc import Callable, Iterable
from typing import TypeVar

from repro.core.config import ExperimentConfig
from repro.core.metrics import ExperimentResult
from repro.core.runner import PolicyFactory, WorkloadFactory, run_experiment

T = TypeVar("T")


def sweep(
    workload_factory: WorkloadFactory,
    policy_factory_for: Callable[[T], PolicyFactory],
    values: Iterable[T],
    config: ExperimentConfig,
) -> dict[T, ExperimentResult]:
    """Run one experiment per parameter value.

    ``policy_factory_for(v)`` returns the policy factory configured
    with parameter value ``v`` (e.g. a CBF size or a sample batch
    size); workload and machine are identical across cells.
    """
    results: dict[T, ExperimentResult] = {}
    for value in values:
        results[value] = run_experiment(
            workload_factory, policy_factory_for(value), config
        )
    return results
