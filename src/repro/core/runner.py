"""One-call experiment facade.

Every benchmark and example builds on three calls:

- :func:`run_experiment` -- one (workload, policy, config) cell;
- :func:`run_all_local` -- the all-local upper bound for the same
  workload (paper Section VI-B);
- :func:`compare_policies` -- a whole table row: several policies on
  identical machines/workloads plus %all-local columns.

Workloads and policies are passed as zero-argument factories so each
cell gets fresh, identically-seeded instances.  Factories that are
:class:`~repro.core.parallel.WorkloadSpec` /
:class:`~repro.core.parallel.PolicySpec` additionally allow the cells
to fan out across a process pool and to be served from the on-disk
result cache -- pass an ``executor`` to any of the entry points.
"""

from __future__ import annotations

import os
from collections.abc import Callable

from repro.core.config import ExperimentConfig
from repro.core.engine import SimulationEngine
from repro.core.metrics import ExperimentResult
from repro.core.parallel import CellSpec, ParallelExecutor
from repro.faults import FaultInjector, FaultPlan
from repro.memsim.machine import Machine, MachineConfig
from repro.memsim.tier import TieredMemoryConfig
from repro.obs import Tracer, trace_to
from repro.policies.alllocal import AllLocal
from repro.policies.base import TieringPolicy
from repro.workloads.spec import Workload

WorkloadFactory = Callable[[], Workload]
PolicyFactory = Callable[[], TieringPolicy]


def _build_injector(
    faults: FaultPlan | None, machine: Machine
) -> FaultInjector | None:
    """An injector for the plan, or None when nothing would inject."""
    if faults is None or not faults.active:
        return None
    return FaultInjector(faults, machine.config.total_capacity_pages)


def build_machine(
    footprint_pages: int, config: ExperimentConfig
) -> Machine:
    """Size a machine for one experiment cell.

    Local capacity is ``local_fraction x footprint`` (the paper's
    %local column); CXL capacity honours the 1:N ratio and is grown if
    needed so local + CXL can hold the whole footprint plus headroom
    for migration transients.
    """
    local = max(32, int(round(config.local_fraction * footprint_pages)))
    cxl = max(local * config.cxl_multiple, footprint_pages - local // 2)
    # Headroom: demotions must never fail for lack of CXL space.
    cxl = max(cxl, footprint_pages + local)
    return Machine(
        MachineConfig(
            local_capacity_pages=local,
            cxl_capacity_pages=cxl,
            memory=config.memory,
        )
    )


def build_all_local_machine(
    footprint_pages: int, memory: TieredMemoryConfig
) -> Machine:
    """A machine whose local DRAM holds the entire footprint."""
    return Machine(
        MachineConfig(
            local_capacity_pages=footprint_pages + 64,
            cxl_capacity_pages=64,
            memory=memory,
        )
    )


def run_experiment(
    workload_factory: WorkloadFactory,
    policy_factory: PolicyFactory,
    config: ExperimentConfig,
    executor: ParallelExecutor | None = None,
    tracer: Tracer | None = None,
    faults: FaultPlan | None = None,
    checkpoint_dir: str | os.PathLike | None = None,
    checkpoint_every_batches: int = 0,
    resume_from: str | os.PathLike | None = None,
) -> ExperimentResult:
    """Run one experiment cell and reduce its metrics.

    With an ``executor`` the cell goes through its result cache (and
    pool, though a single cell always runs inline).  A ``tracer``
    applies to the inline path only; to trace cells running under an
    executor, set ``CellSpec.trace_path`` instead (tracer objects hold
    open sinks and do not cross process boundaries).

    A ``faults`` plan (see :mod:`repro.faults`) injects deterministic
    migration/sampling failures into the run; an inactive plan is
    equivalent to None, and results under an active plan are cached
    under a distinct fingerprint.

    Checkpointing: with ``checkpoint_dir`` and a positive
    ``checkpoint_every_batches``, the engine snapshots its full state
    every N batches (atomic, integrity-checked, rotated generations --
    see :class:`repro.state.CheckpointManager`).  With ``resume_from``
    pointing at such a directory, the run restores the newest *valid*
    snapshot and continues bit-identically; a missing or fully corrupt
    directory falls back to a fresh start.  With an ``executor``, set
    ``CellSpec.checkpoint_dir`` / ``checkpoint_every`` instead (or use
    the executor's ``checkpoint_root``).
    """
    if executor is not None:
        if tracer is not None:
            raise ValueError(
                "tracer= only applies to inline runs; with an executor, "
                "set CellSpec.trace_path on the submitted cells"
            )
        return executor.run_one(
            CellSpec(
                workload_factory,
                policy_factory,
                config,
                faults=faults,
                checkpoint_dir=(
                    os.fspath(checkpoint_dir)
                    if checkpoint_dir is not None
                    else None
                ),
                checkpoint_every=checkpoint_every_batches,
            )
        )
    workload = workload_factory()
    machine = build_machine(workload.footprint_pages, config)
    policy = policy_factory()
    engine = SimulationEngine(
        machine,
        workload,
        policy,
        tracer=tracer,
        fault_injector=_build_injector(faults, machine),
        checkpoint_manager=_checkpoint_manager(checkpoint_dir),
        checkpoint_every_batches=checkpoint_every_batches,
    )
    _maybe_resume(engine, resume_from)
    return engine.run(
        max_batches=config.max_batches,
        max_accesses=config.max_accesses,
        warmup_fraction=config.warmup_fraction,
    )


def _checkpoint_manager(checkpoint_dir: str | os.PathLike | None):
    if checkpoint_dir is None:
        return None
    from repro.state import CheckpointManager

    return CheckpointManager(checkpoint_dir)


def _maybe_resume(
    engine: SimulationEngine, resume_from: str | os.PathLike | None
) -> None:
    """Restore the newest valid snapshot under ``resume_from``, if any.

    A missing directory or one holding no valid snapshot (all corrupt,
    or none written yet) means a fresh start -- resume is best-effort
    by design so crash-retry loops need no existence checks.
    """
    if resume_from is None:
        return
    from repro.state import CheckpointManager

    if not os.path.isdir(resume_from):
        return
    loaded = CheckpointManager(resume_from).load_latest()
    if loaded is not None:
        engine.restore_state(loaded.payload)


def run_all_local(
    workload_factory: WorkloadFactory,
    config: ExperimentConfig,
    executor: ParallelExecutor | None = None,
    tracer: Tracer | None = None,
    faults: FaultPlan | None = None,
) -> ExperimentResult:
    """The all-local upper bound for this workload and CXL device."""
    if executor is not None:
        if tracer is not None:
            raise ValueError(
                "tracer= only applies to inline runs; with an executor, "
                "set CellSpec.trace_path on the submitted cells"
            )
        return executor.run_one(
            CellSpec(workload_factory, None, config, faults=faults)
        )
    workload = workload_factory()
    machine = build_all_local_machine(workload.footprint_pages, config.memory)
    engine = SimulationEngine(
        machine,
        workload,
        AllLocal(),
        tracer=tracer,
        fault_injector=_build_injector(faults, machine),
    )
    return engine.run(
        max_batches=config.max_batches,
        max_accesses=config.max_accesses,
        warmup_fraction=config.warmup_fraction,
    )


def compare_policies(
    workload_factory: WorkloadFactory,
    policy_factories: dict[str, PolicyFactory],
    config: ExperimentConfig,
    include_all_local: bool = True,
    executor: ParallelExecutor | None = None,
    trace_dir: str | None = None,
    faults: FaultPlan | None = None,
) -> dict[str, ExperimentResult]:
    """Run several policies on identical cells; adds 'AllLocal' if asked.

    Returns ``{policy_name: result}``; compute the paper's %all-local
    columns via ``result.relative_to(results["AllLocal"])``.

    With an ``executor``, all cells (baseline included) are submitted
    at once -- fanned across its process pool and served from its
    result cache where possible.  Results are identical to the serial
    path (each cell seeds its own RNGs).

    With a ``trace_dir``, each cell writes its own JSONL event trace
    to ``<trace_dir>/<name>.jsonl`` (cache-served cells record a
    single ``cache_hit`` event) -- works on both the serial and the
    executor path.
    """
    def trace_path(name: str) -> str | None:
        if trace_dir is None:
            return None
        return os.path.join(trace_dir, f"{name}.jsonl")

    if executor is not None:
        specs = []
        if include_all_local:
            specs.append(
                CellSpec(
                    workload_factory,
                    None,
                    config,
                    label="AllLocal",
                    trace_path=trace_path("AllLocal"),
                    faults=faults,
                )
            )
        specs.extend(
            CellSpec(
                workload_factory,
                factory,
                config,
                label=name,
                trace_path=trace_path(name),
                faults=faults,
            )
            for name, factory in policy_factories.items()
        )
        return {
            spec.label: result
            for spec, result in zip(specs, executor.run(specs))
        }
    results: dict[str, ExperimentResult] = {}
    if include_all_local:
        with trace_to(trace_path("AllLocal")) as tracer:
            results["AllLocal"] = run_all_local(
                workload_factory, config, tracer=tracer, faults=faults
            )
    for name, factory in policy_factories.items():
        with trace_to(trace_path(name)) as tracer:
            results[name] = run_experiment(
                workload_factory, factory, config, tracer=tracer, faults=faults
            )
    return results
