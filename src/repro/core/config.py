"""Experiment configuration.

The paper parameterizes every experiment by (workload, tiering system,
local:CXL capacity ratio, CXL device).  ``ExperimentConfig`` carries
the same axes plus simulation-length limits.

Capacity convention: the paper quotes both a ratio ("1:32") and a
``%local`` column (local DRAM as a fraction of the workload
footprint); the two are linked through the fixed CXL capacity of the
testbed.  The simulator sizes machines from ``local_fraction`` x
footprint and gives CXL enough capacity to hold the ratio and the
spill (see :func:`repro.core.runner.build_machine`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.memsim.tier import CXL1_CONFIG, TieredMemoryConfig


def ratio_to_cxl_multiple(ratio_label: str) -> int:
    """Parse '1:N' into N (the CXL:local capacity multiple)."""
    parts = ratio_label.split(":")
    if len(parts) != 2 or parts[0] != "1":
        raise ValueError(f"ratio label must look like '1:N', got {ratio_label!r}")
    n = int(parts[1])
    if n < 1:
        raise ValueError(f"CXL multiple must be >= 1, got {n}")
    return n


@dataclass
class ExperimentConfig:
    """One experiment cell (a row x column of a paper table)."""

    #: Local DRAM capacity as a fraction of the workload footprint
    #: (the paper's %local column).
    local_fraction: float
    #: Capacity ratio label, e.g. "1:32" (paper's Config column).
    ratio_label: str = "1:32"
    memory: TieredMemoryConfig = field(default_factory=lambda: CXL1_CONFIG)
    #: Stop after this many workload batches (None = trace length).
    max_batches: int | None = 300
    #: Stop after this many accesses (None = unlimited).
    max_accesses: int | None = None
    #: Leading fraction of simulated time excluded from steady-state
    #: metrics (the paper discards warmup trials similarly).
    warmup_fraction: float = 0.25
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 < self.local_fraction <= 1.5:
            raise ValueError(
                f"local_fraction must be in (0, 1.5], got {self.local_fraction}"
            )
        if not 0.0 <= self.warmup_fraction < 1.0:
            raise ValueError(
                f"warmup_fraction must be in [0, 1), got {self.warmup_fraction}"
            )
        ratio_to_cxl_multiple(self.ratio_label)  # validate format

    @property
    def cxl_multiple(self) -> int:
        return ratio_to_cxl_multiple(self.ratio_label)
