"""The simulation event loop.

Order of operations per batch (mirrors how the real system overlaps):

1. Placement of every accessed page is read *before* this batch's
   migrations: accesses during the batch were serviced by wherever the
   pages lived when touched.
2. The policy observes the batch (via its samplers) and may migrate.
3. The cost model converts the batch's activity -- compute, per-tier
   accesses, migration volume, policy overhead -- into simulated time.

Virtual time only; nothing depends on the wall clock.
"""

from __future__ import annotations

import numpy as np

from repro.core.metrics import MetricsCollector
from repro.memsim.machine import Machine
from repro.memsim.pagetable import LOCAL_TIER
from repro.obs import NULL_TRACER, Tracer
from repro.policies.base import TieringPolicy
from repro.workloads.spec import Workload


class SimulationEngine:
    """Drives one (machine, workload, policy) experiment.

    Pass a :class:`~repro.obs.Tracer` to observe the run: the engine
    emits one ``batch`` event per serviced access batch, advances the
    tracer's virtual clock, and hands the same tracer to the policy
    (and machine) so their events share the timeline.  The default
    :data:`~repro.obs.NULL_TRACER` is a no-op.
    """

    def __init__(
        self,
        machine: Machine,
        workload: Workload,
        policy: TieringPolicy,
        tracer: Tracer | None = None,
        fault_injector=None,
    ):
        self.machine = machine
        self.workload = workload
        self.policy = policy
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.fault_injector = fault_injector
        self.metrics = MetricsCollector()
        self.now_ns = 0.0
        self._setup_done = False

    def setup(self) -> None:
        """Attach the policy, then lay out the workload.

        Policy first: systems that pin metadata in local DRAM (HeMem)
        must reserve it before the application's pages are placed.
        """
        if self._setup_done:
            return
        self.machine.tracer = self.tracer
        self.policy.set_tracer(self.tracer)
        if self.fault_injector is not None:
            # Before attach: policies propagate the injector into the
            # samplers they build at attach time.
            self.fault_injector.tracer = self.tracer
            self.machine.fault_injector = self.fault_injector
            self.policy.set_fault_injector(self.fault_injector)
        self.policy.attach(self.machine)
        self.workload.setup(self.machine)
        self._setup_done = True

    def run(
        self,
        max_batches: int | None = None,
        max_accesses: int | None = None,
        warmup_fraction: float = 0.25,
    ):
        """Run to a limit (or trace exhaustion); returns ExperimentResult."""
        self.setup()
        machine = self.machine
        tracer = self.tracer
        accesses_done = 0
        batches_done = 0
        for batch in self.workload.batches():
            if max_batches is not None and batches_done >= max_batches:
                break
            if max_accesses is not None and accesses_done >= max_accesses:
                break

            tracer.clock_ns = self.now_ns
            if self.fault_injector is not None:
                self.fault_injector.tick_batch()
            tiers = machine.placement_of(batch.page_ids)
            n_local = int(np.count_nonzero(tiers == LOCAL_TIER))
            n_cxl = batch.num_accesses - n_local
            machine.traffic.record_accesses(n_local, n_cxl)

            migrated_before = machine.traffic.pages_migrated
            # The (n_local, n_cxl) split rides along so policies do not
            # re-scan ``tiers`` for counts the engine just computed.
            overhead_ns = self.policy.on_batch(
                batch, tiers, self.now_ns, counts=(n_local, n_cxl)
            )
            migrated = machine.traffic.pages_migrated - migrated_before
            if tracer.enabled:
                tracer.emit(
                    "batch",
                    t_ns=self.now_ns,
                    n_local=n_local,
                    n_cxl=n_cxl,
                    pages_migrated=migrated,
                    overhead_ns=overhead_ns,
                )

            cost = machine.cost_model.batch_cost(
                cpu_ns=batch.cpu_ns,
                local_accesses=n_local,
                cxl_accesses=n_cxl,
                pages_migrated=migrated,
                overhead_ns=overhead_ns,
                bytes_per_access=batch.bytes_per_access,
            )
            self.metrics.record_batch(
                start_ns=self.now_ns,
                cost=cost,
                num_ops=batch.num_ops,
                local_accesses=n_local,
                cxl_accesses=n_cxl,
                pages_migrated=migrated,
                label=batch.label,
            )
            self.now_ns += cost.total_ns
            accesses_done += batch.num_accesses
            batches_done += 1

        policy_stats = self.policy.stats.as_dict()
        if tracer.enabled:
            # The tracer's per-run aggregates (samples lost, scan
            # chunks, CBF ops, migration batch sizes...) ride along in
            # policy_stats so reports need not parse the trace file.
            policy_stats.update(tracer.stats_dict())
        return self.metrics.finalize(
            policy_name=self.policy.name,
            workload_name=self.workload.name,
            traffic_breakdown=machine.traffic.breakdown(),
            migration_bytes=machine.traffic.migration_bytes,
            warmup_fraction=warmup_fraction,
            policy_stats=policy_stats,
        )
