"""The simulation event loop.

Order of operations per batch (mirrors how the real system overlaps):

1. Placement of every accessed page is read *before* this batch's
   migrations: accesses during the batch were serviced by wherever the
   pages lived when touched.
2. The policy observes the batch (via its samplers) and may migrate.
3. The cost model converts the batch's activity -- compute, per-tier
   accesses, migration volume, policy overhead -- into simulated time.

Virtual time only; nothing depends on the wall clock.

Checkpointing: pass a :class:`~repro.state.CheckpointManager` plus
``checkpoint_every_batches`` and the engine snapshots its full state
(progress, metrics, machine placement, policy, fault injector) every N
batches; :meth:`SimulationEngine.restore_state` resumes a fresh engine
from such a snapshot bit-identically (see docs/API.md "Checkpoint &
resume").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro import accel
from repro.core.metrics import MetricsCollector
from repro.memsim.machine import Machine
from repro.obs import NULL_TRACER, Tracer
from repro.policies.base import TieringPolicy
from repro.sampling.events import AccessBatch
from repro.workloads.spec import Workload

if TYPE_CHECKING:
    from repro.state import CheckpointManager


@dataclass(frozen=True)
class StepOutcome:
    """What one :meth:`SimulationEngine.step` call did.

    ``total_ns`` is the simulated time the batch consumed (the engine
    already advanced ``now_ns`` by it); ``overhead_ns`` is the policy's
    share, which serving-loop budgets charge against their per-tick
    deadline.
    """

    total_ns: float
    overhead_ns: float
    n_local: int
    n_cxl: int
    pages_migrated: int


class BatchContext:
    """Reusable per-batch scratch arrays, owned by the engine.

    The fused batch step writes each batch's placement gather into the
    same grow-only buffer instead of allocating a fresh array per
    batch; the policy receives a view of it through ``on_batch`` and
    must consume it within the call (every built-in policy copies what
    it keeps via fancy indexing).  Scratch is not checkpointed --
    contents never outlive one batch.
    """

    def __init__(self) -> None:
        self._tiers = np.empty(0, dtype=np.int8)
        self._prefix = np.empty(0, dtype=np.int64)
        self._prefix_key: tuple[int, int] | None = None

    def tiers_for(self, n: int) -> np.ndarray:
        """A length-``n`` int8 view for this batch's placement codes."""
        if self._tiers.size < n:
            self._tiers = np.empty(max(n, 2 * self._tiers.size), dtype=np.int8)
        return self._tiers[:n]

    def prefix_for(self, placement: np.ndarray, version: int) -> np.ndarray:
        """The local-placement prefix sum for ``placement``.

        Rebuilt only when the page table's mutation ``version`` (or the
        placement size) changes; most batches between migration windows
        reuse the cached sum, skipping the O(pages) cumsum.
        """
        n = placement.size
        if self._prefix.size < n + 1:
            self._prefix = np.empty(
                max(n + 1, 2 * self._prefix.size), dtype=np.int64
            )
            self._prefix_key = None
        view = self._prefix[: n + 1]
        key = (version, n)
        if self._prefix_key != key:
            accel.placement_prefix(placement, view)
            self._prefix_key = key
        return view


class SimulationEngine:
    """Drives one (machine, workload, policy) experiment.

    Pass a :class:`~repro.obs.Tracer` to observe the run: the engine
    emits one ``batch`` event per serviced access batch, advances the
    tracer's virtual clock, and hands the same tracer to the policy
    (and machine) so their events share the timeline.  The default
    :data:`~repro.obs.NULL_TRACER` is a no-op.
    """

    def __init__(
        self,
        machine: Machine,
        workload: Workload,
        policy: TieringPolicy,
        tracer: Tracer | None = None,
        fault_injector=None,
        checkpoint_manager: "CheckpointManager | None" = None,
        checkpoint_every_batches: int = 0,
    ):
        if checkpoint_every_batches < 0:
            raise ValueError(
                "checkpoint_every_batches must be >= 0, got "
                f"{checkpoint_every_batches}"
            )
        self.machine = machine
        self.workload = workload
        self.policy = policy
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.fault_injector = fault_injector
        self.checkpoint_manager = checkpoint_manager
        self.checkpoint_every_batches = int(checkpoint_every_batches)
        self.metrics = MetricsCollector()
        self.batch_ctx = BatchContext()
        self.now_ns = 0.0
        self.batches_done = 0
        self.accesses_done = 0
        self._setup_done = False

    def setup(self) -> None:
        """Attach the policy, then lay out the workload.

        Policy first: systems that pin metadata in local DRAM (HeMem)
        must reserve it before the application's pages are placed.
        """
        if self._setup_done:
            return
        self.machine.tracer = self.tracer
        self.policy.set_tracer(self.tracer)
        if self.fault_injector is not None:
            # Before attach: policies propagate the injector into the
            # samplers they build at attach time.
            self.fault_injector.tracer = self.tracer
            self.machine.fault_injector = self.fault_injector
            self.policy.set_fault_injector(self.fault_injector)
        self.policy.attach(self.machine)
        self.workload.setup(self.machine)
        if self.tracer.enabled:
            # Surface a requested-but-unavailable accel backend once
            # per run (the dispatch layer itself stays silent).
            event = accel.fallback_event()
            if event is not None:
                self.tracer.emit("accel_fallback", **event)
        self._setup_done = True

    # -- checkpointing ----------------------------------------------------

    def capture_state(self) -> dict:
        """Full engine state as a checkpoint payload.

        Captures everything :meth:`restore_state` needs to continue the
        run bit-identically: progress counters, per-batch metrics, the
        machine's placement/traffic, the policy's internal state and
        (when present) the fault injector.  The workload is *not*
        captured -- generator-based traces hold unpicklable locals --
        so resume rebuilds the workload from its factory and
        fast-forwards ``batches()`` past the completed prefix.
        """
        self.setup()
        payload = {
            "identity": {
                "policy": self.policy.name,
                "workload": self.workload.name,
                "local_capacity_pages": self.machine.config.local_capacity_pages,
                "cxl_capacity_pages": self.machine.config.cxl_capacity_pages,
            },
            "progress": {
                "now_ns": self.now_ns,
                "batches_done": self.batches_done,
                "accesses_done": self.accesses_done,
            },
            "metrics": self.metrics.state_dict(),
            "machine": self.machine.state_dict(),
            "policy": self.policy.state_dict(),
            "faults": (
                self.fault_injector.state_dict()
                if self.fault_injector is not None
                else None
            ),
        }
        return payload

    def restore_state(self, payload: dict) -> None:
        """Restore a :meth:`capture_state` payload onto this engine.

        Must be called before :meth:`run`; the engine/machine/policy
        must be configured identically to the run that produced the
        snapshot (identity fields are validated).  The next ``run()``
        fast-forwards the workload's batch stream past the completed
        prefix, then continues bit-identically.
        """
        self.setup()
        identity = payload["identity"]
        expected = {
            "policy": self.policy.name,
            "workload": self.workload.name,
            "local_capacity_pages": self.machine.config.local_capacity_pages,
            "cxl_capacity_pages": self.machine.config.cxl_capacity_pages,
        }
        mismatched = {
            key: (identity.get(key), want)
            for key, want in expected.items()
            if identity.get(key) != want
        }
        if mismatched:
            raise ValueError(
                f"snapshot does not match this experiment: {mismatched}"
            )
        progress = payload["progress"]
        self.now_ns = float(progress["now_ns"])
        self.batches_done = int(progress["batches_done"])
        self.accesses_done = int(progress["accesses_done"])
        self.metrics.load_state(payload["metrics"])
        self.machine.load_state(payload["machine"])
        self.policy.load_state(payload["policy"])
        if payload.get("faults") is not None:
            if self.fault_injector is None:
                raise ValueError(
                    "snapshot carries fault-injector state but this engine "
                    "has no fault injector"
                )
            self.fault_injector.load_state(payload["faults"])
        if self.tracer.enabled:
            self.tracer.emit(
                "checkpoint_restored",
                t_ns=self.now_ns,
                batch=self.batches_done,
            )

    def _save_checkpoint(self) -> None:
        assert self.checkpoint_manager is not None
        path = self.checkpoint_manager.save(self.capture_state())
        if self.tracer.enabled:
            self.tracer.emit(
                "checkpoint_saved",
                t_ns=self.now_ns,
                batch=self.batches_done,
                file=path.name,
            )

    def step(
        self, batch: AccessBatch, *, invoke_policy: bool = True
    ) -> StepOutcome:
        """Service one access batch (the body of :meth:`run`'s loop).

        Reads placement, records traffic, optionally invokes the
        policy, charges the cost model, advances ``now_ns`` and the
        progress counters, and saves a checkpoint when the cadence is
        due.  :meth:`run` calls this for every batch of the workload
        stream; the serving daemon (:mod:`repro.serve`) calls it for
        batches dequeued from live tenant queues -- with
        ``invoke_policy=False`` when its degradation ladder has shut
        policy work off (accesses are still serviced and accounted).
        """
        machine = self.machine
        tracer = self.tracer
        tracer.clock_ns = self.now_ns
        if self.fault_injector is not None:
            self.fault_injector.tick_batch()
        # Fused placement readback.  The placement view is re-fetched
        # each batch because load_state() replaces it.
        placement = machine.page_table.placement_view()
        needs_stream = getattr(self.policy, "needs_access_stream", True)
        if batch.run_starts is not None and not needs_stream:
            # Run-compressed batch and a policy that only needs the
            # (n_local, n_cxl) split: count tiers over the runs via
            # a placement prefix sum -- the expanded stream is
            # never built.
            n_local, n_cxl = accel.compressed_placement_counts(
                placement,
                self.batch_ctx.prefix_for(
                    placement, machine.page_table.version
                ),
                batch.head_page_ids,
                batch.run_starts,
                batch.run_counts,
            )
            tiers = None
        else:
            # Gather each access's tier code into the reused
            # scratch buffer and count the split in one kernel --
            # no per-batch allocation.
            tiers = self.batch_ctx.tiers_for(batch.num_accesses)
            n_local, n_cxl = accel.placement_counts(
                placement, batch.page_ids, tiers
            )
        machine.traffic.record_accesses(n_local, n_cxl)

        migrated_before = machine.traffic.pages_migrated
        if invoke_policy:
            # The (n_local, n_cxl) split rides along so policies do not
            # re-scan ``tiers`` for counts the engine just computed.
            overhead_ns = self.policy.on_batch(
                batch, tiers, self.now_ns, counts=(n_local, n_cxl)
            )
        else:
            overhead_ns = 0.0
        migrated = machine.traffic.pages_migrated - migrated_before
        if tracer.enabled:
            tracer.emit(
                "batch",
                t_ns=self.now_ns,
                n_local=n_local,
                n_cxl=n_cxl,
                pages_migrated=migrated,
                overhead_ns=overhead_ns,
            )

        cost = machine.cost_model.batch_cost(
            cpu_ns=batch.cpu_ns,
            local_accesses=n_local,
            cxl_accesses=n_cxl,
            pages_migrated=migrated,
            overhead_ns=overhead_ns,
            bytes_per_access=batch.bytes_per_access,
        )
        self.metrics.record_batch(
            start_ns=self.now_ns,
            cost=cost,
            num_ops=batch.num_ops,
            local_accesses=n_local,
            cxl_accesses=n_cxl,
            pages_migrated=migrated,
            label=batch.label,
        )
        self.now_ns += cost.total_ns
        self.accesses_done += batch.num_accesses
        self.batches_done += 1
        if batch.run_starts is not None:
            # Generators may keep a reference to the batch they
            # yielded; dropping any cached expansion here keeps a
            # fast-path run's live memory at the compressed size.
            batch.release_expanded()

        if (
            self.checkpoint_manager is not None
            and self.checkpoint_every_batches
            and self.batches_done % self.checkpoint_every_batches == 0
        ):
            self._save_checkpoint()
        return StepOutcome(
            total_ns=cost.total_ns,
            overhead_ns=overhead_ns,
            n_local=n_local,
            n_cxl=n_cxl,
            pages_migrated=migrated,
        )

    def finalize(self, warmup_fraction: float = 0.25):
        """Reduce everything recorded so far to an ExperimentResult."""
        policy_stats = self.policy.stats.as_dict()
        if self.tracer.enabled:
            # The tracer's per-run aggregates (samples lost, scan
            # chunks, CBF ops, migration batch sizes...) ride along in
            # policy_stats so reports need not parse the trace file.
            policy_stats.update(self.tracer.stats_dict())
        return self.metrics.finalize(
            policy_name=self.policy.name,
            workload_name=self.workload.name,
            traffic_breakdown=self.machine.traffic.breakdown(),
            migration_bytes=self.machine.traffic.migration_bytes,
            warmup_fraction=warmup_fraction,
            policy_stats=policy_stats,
        )

    def run(
        self,
        max_batches: int | None = None,
        max_accesses: int | None = None,
        warmup_fraction: float = 0.25,
    ):
        """Run to a limit (or trace exhaustion); returns ExperimentResult."""
        self.setup()
        stream = self.workload.batches()
        if self.batches_done:
            # Resuming: replay the workload generator deterministically
            # over the already-completed prefix.  The generator's own
            # RNG draws reconstruct the exact state it had at the
            # snapshot; the batches themselves are discarded (their
            # effects live in the restored machine/policy/metrics).
            skip = self.batches_done
            for _ in range(skip):
                if next(stream, None) is None:
                    break
        for batch in stream:
            if max_batches is not None and self.batches_done >= max_batches:
                break
            if max_accesses is not None and self.accesses_done >= max_accesses:
                break
            self.step(batch)
        return self.finalize(warmup_fraction=warmup_fraction)
