"""Parallel experiment executor over picklable cell specs.

Every reproduction grid is embarrassingly parallel: each (workload,
policy, config) cell builds fresh, identically-seeded instances and
shares no state with its neighbours, so cells can fan out across
processes with **bit-identical** results to a serial run -- the only
randomness is per-cell seeded RNGs, never a shared global stream.

The unit of work is a :class:`CellSpec`.  For process pools the spec's
factories must pickle, so instead of closures the preferred factories
are :class:`WorkloadSpec` / :class:`PolicySpec`: tiny (name, params)
records that rebuild the object through a registry inside the worker.
Specs are also *content-addressable* -- their (name, params) dicts plus
the :class:`~repro.core.config.ExperimentConfig` hash into a stable
fingerprint -- which is what lets
:class:`~repro.core.cache.ResultCache` skip already-computed cells.

``jobs`` semantics (shared by the executor and the CLI flags):

- ``jobs=1`` -- inline serial execution in this process (debuggable,
  works with arbitrary closure factories);
- ``jobs=0`` -- one worker per available CPU;
- ``jobs=N`` -- a pool of N worker processes.
"""

from __future__ import annotations

import os
import pickle
import re
import time
from collections.abc import Callable, Sequence
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeout
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Any

from repro.core.cache import ResultCache, cell_fingerprint, config_to_dict
from repro.core.config import ExperimentConfig
from repro.core.metrics import ExperimentResult
from repro.faults import FaultPlan
from repro.obs import trace_to

# --------------------------------------------------------------------------
# Factory registries
# --------------------------------------------------------------------------

_WORKLOAD_BUILDERS: dict[str, Callable[..., Any]] = {}
_POLICY_BUILDERS: dict[str, Callable[..., Any]] = {}


def register_workload(name: str, builder: Callable[..., Any]) -> None:
    """Register a workload builder callable under ``name``.

    ``builder(**params)`` must return a fresh
    :class:`~repro.workloads.spec.Workload`.  Registration happens at
    import time of this module for the built-ins; user registrations
    must run in every worker process too (module top level), or be
    limited to ``jobs=1``.
    """
    _WORKLOAD_BUILDERS[name] = builder


def register_policy(name: str, builder: Callable[..., Any]) -> None:
    """Register a policy builder callable under ``name``."""
    _POLICY_BUILDERS[name] = builder


def _build_freqtier(seed: int = 0, **config_fields: Any):
    from repro.policies.freqtier import FreqTier, FreqTierConfig

    config = FreqTierConfig(**config_fields) if config_fields else None
    return FreqTier(config=config, seed=seed)


def _register_builtins() -> None:
    from repro.policies import (
        AllLocal,
        AutoNUMA,
        DAMONRegion,
        HeMem,
        MultiClock,
        StaticNoMigration,
        TPP,
    )
    from repro.workloads import (
        CacheLibWorkload,
        CDN_PROFILE,
        GapWorkload,
        SOCIAL_PROFILE,
        SyntheticZipfWorkload,
        XGBoostWorkload,
    )
    from repro.workloads.traceio import TraceFileWorkload

    register_workload(
        "cdn", lambda **p: CacheLibWorkload(CDN_PROFILE, **p)
    )
    register_workload(
        "social", lambda **p: CacheLibWorkload(SOCIAL_PROFILE, **p)
    )
    register_workload("gap", GapWorkload)
    register_workload("xgboost", XGBoostWorkload)
    register_workload("zipf", SyntheticZipfWorkload)
    register_workload("trace", TraceFileWorkload)

    register_policy("freqtier", _build_freqtier)
    register_policy("hybridtier", _build_freqtier)
    register_policy("autonuma", AutoNUMA)
    register_policy("tpp", TPP)
    register_policy("hemem", HeMem)
    register_policy("multiclock", MultiClock)
    register_policy("damon", DAMONRegion)
    register_policy("static", lambda **p: StaticNoMigration())
    register_policy("alllocal", lambda **p: AllLocal())


_register_builtins()


# --------------------------------------------------------------------------
# Picklable, content-addressable factories
# --------------------------------------------------------------------------


class _RegistrySpec:
    """(name, params) factory resolved through a builder registry.

    Instances are zero-argument callables -- drop-in replacements for
    the closure factories :func:`repro.core.runner.run_experiment`
    historically took -- but unlike closures they pickle by value and
    expose :meth:`spec_dict` for content addressing.
    """

    _registry: dict[str, Callable[..., Any]] = {}
    _kind = "spec"

    __slots__ = ("name", "params")

    def __init__(self, name: str, **params: Any):
        self.name = name
        self.params = params

    def __call__(self) -> Any:
        try:
            builder = self._registry[self.name]
        except KeyError:
            valid = ", ".join(sorted(self._registry))
            raise KeyError(
                f"unknown {self._kind} {self.name!r}; registered: {valid}"
            ) from None
        return builder(**self.params)

    def spec_dict(self) -> dict[str, Any]:
        """JSON-serializable identity for cache fingerprinting."""
        return {"name": self.name, "params": dict(self.params)}

    def with_params(self, **overrides: Any) -> "_RegistrySpec":
        """A copy with ``overrides`` merged into the params."""
        merged = {**self.params, **overrides}
        return type(self)(self.name, **merged)

    # __slots__ classes need explicit pickle support.
    def __getstate__(self):
        return (self.name, self.params)

    def __setstate__(self, state):
        self.name, self.params = state

    def __eq__(self, other: object) -> bool:
        return (
            type(other) is type(self)
            and other.name == self.name  # type: ignore[attr-defined]
            and other.params == self.params  # type: ignore[attr-defined]
        )

    def __repr__(self) -> str:
        kv = ", ".join(f"{k}={v!r}" for k, v in self.params.items())
        sep = ", " if kv else ""
        return f"{type(self).__name__}({self.name!r}{sep}{kv})"


class WorkloadSpec(_RegistrySpec):
    """Picklable workload factory: ``WorkloadSpec("cdn", slab_pages=...)()``."""

    _registry = _WORKLOAD_BUILDERS
    _kind = "workload"


class PolicySpec(_RegistrySpec):
    """Picklable policy factory: ``PolicySpec("freqtier", seed=1)()``."""

    _registry = _POLICY_BUILDERS
    _kind = "policy"


# --------------------------------------------------------------------------
# Cell specs
# --------------------------------------------------------------------------


@dataclass
class CellSpec:
    """One experiment cell, ready to run in any process.

    ``policy=None`` marks the all-local baseline cell (run on an
    all-DRAM machine via :func:`repro.core.runner.run_all_local`).
    ``label`` is carried through for callers that key results by name.
    ``trace_path`` (optional) makes the cell write a JSONL event trace
    there while it runs -- one file per cell, created inside whichever
    process executes it; cache-served cells record one ``cache_hit``
    event instead.  The trace destination is observability-only and
    deliberately excluded from the cache fingerprint.

    ``checkpoint_dir`` / ``checkpoint_every`` (optional) make the cell
    write rotated state snapshots there every N batches and *resume
    from* that directory's newest valid snapshot at the start of every
    attempt -- so a crashed or timed-out cell retries from its last
    checkpoint instead of from scratch.  Like ``trace_path``, these are
    execution-mechanics fields excluded from the cache fingerprint.
    """

    workload: Callable[[], Any]
    policy: Callable[[], Any] | None
    config: ExperimentConfig
    label: str = ""
    trace_path: str | None = None
    #: Optional fault plan injected into the cell's run.  Part of the
    #: cache fingerprint *only when active*, so fault-free grids keep
    #: their historical fingerprints (and cache entries).
    faults: FaultPlan | None = None
    #: Per-cell checkpoint directory (written to and resumed from).
    checkpoint_dir: str | None = None
    #: Snapshot every N batches (0 = checkpointing off).
    checkpoint_every: int = 0

    def fingerprint(self) -> str | None:
        """Content-address of this cell, or None if not addressable.

        Only cells whose factories are :class:`WorkloadSpec` /
        :class:`PolicySpec` (and whose params are JSON-serializable)
        can be cached; closure factories return None and always run.
        """
        if not isinstance(self.workload, _RegistrySpec):
            return None
        if self.policy is None:
            policy_part: Any = "all_local"
        elif isinstance(self.policy, _RegistrySpec):
            policy_part = self.policy.spec_dict()
        else:
            return None
        key = {
            "workload": self.workload.spec_dict(),
            "policy": policy_part,
            "config": config_to_dict(self.config),
        }
        if self.faults is not None and self.faults.active:
            key["faults"] = self.faults.to_dict()
        try:
            return cell_fingerprint(key)
        except (TypeError, ValueError):
            return None


@dataclass
class FailedCell:
    """Structured stand-in result for a cell that failed permanently.

    Returned (in the result list, at the cell's position) only under
    ``keep_going=True``; without it the executor re-raises the cell's
    last error instead.  Never written to the result cache.
    """

    label: str
    error: str
    attempts: int

    #: Class marker so callers can cheaply split results:
    #: ``[r for r in results if not getattr(r, "failed", False)]``.
    failed = True


def run_cell(spec: CellSpec) -> ExperimentResult:
    """Execute one cell (the process-pool work function)."""
    # Imported here, not at module top, so the registry imports above
    # cannot cycle through repro.core.runner.
    from repro.core.runner import run_all_local, run_experiment

    with trace_to(spec.trace_path) as tracer:
        if spec.policy is None:
            return run_all_local(
                spec.workload, spec.config, tracer=tracer, faults=spec.faults
            )
        return run_experiment(
            spec.workload,
            spec.policy,
            spec.config,
            tracer=tracer,
            faults=spec.faults,
            checkpoint_dir=spec.checkpoint_dir,
            checkpoint_every_batches=spec.checkpoint_every,
            # Resuming from the cell's own directory is what turns a
            # crash-retry into a continue-from-last-checkpoint: the
            # first attempt finds it empty and starts fresh.
            resume_from=spec.checkpoint_dir,
        )


# --------------------------------------------------------------------------
# The executor
# --------------------------------------------------------------------------


def resolve_jobs(jobs: int) -> int:
    """Map the ``--jobs`` convention onto a worker count (>= 1)."""
    if jobs < 0:
        raise ValueError(f"jobs must be >= 0, got {jobs}")
    if jobs > 0:
        return jobs
    try:
        return len(os.sched_getaffinity(0)) or 1
    except AttributeError:  # platforms without affinity masks
        return os.cpu_count() or 1


@dataclass
class ExecutorStats:
    """Where each submitted cell's result came from, and what it cost."""

    cache_hits: int = 0
    #: Cells skipped because the sweep journal already records them.
    journal_hits: int = 0
    executed: int = 0
    cached_results: int = 0  # results newly written to the cache
    #: Charged failed attempts across all cells (a resubmission after an
    #: unattributable pool break or a cancelled-before-start timeout is
    #: *not* charged and not counted here).
    retries: int = 0
    #: Cells that exhausted their retry budget.
    failures: int = 0
    #: Cells whose attempt exceeded ``cell_timeout`` while running.
    timeouts: int = 0
    #: Times the process pool died (BrokenProcessPool) or was killed
    #: (running-cell timeout) and was rebuilt.
    pool_rebuilds: int = 0
    #: Shared-memory stream segments published for this grid.
    shm_segments: int = 0
    #: Bytes of access-stream data served zero-copy from those segments.
    shm_bytes: int = 0
    #: Workload groups that fell back to per-cell generation after a
    #: publish attempt failed (platform without shared memory, etc.).
    shm_fallbacks: int = 0


class ParallelExecutor:
    """Fans experiment cells across a process pool, with result caching.

    Parameters
    ----------
    jobs:
        ``0`` = one worker per CPU, ``1`` = inline serial execution
        (no pool, works with closure factories), ``N`` = pool of N.
    cache:
        A :class:`~repro.core.cache.ResultCache`, a directory path to
        open one at, or None to disable caching.
    cell_timeout:
        Wall-clock seconds one attempt of one cell may run before it
        is failed (and its worker killed).  None = no limit.  Enforced
        on the pool path only; inline (``jobs=1``) execution cannot be
        preempted.
    retries:
        Charged failed attempts allowed per cell beyond the first
        (``retries=1`` means: try, and on failure try once more).
        Unattributable failures -- a pool break while several cells
        were in flight, a timeout cancelled before the cell started --
        are resubmitted without charge.
    keep_going:
        On a cell's permanent failure, record a :class:`FailedCell` at
        its position and keep running the rest of the grid, instead of
        raising (the default) and losing the in-flight results.
    checkpoint_root:
        Directory for durable run state.  Every submitted cell without
        an explicit ``checkpoint_dir`` gets its own subdirectory under
        ``<root>/cells/`` (named by its fingerprint when addressable,
        else by label/position), so crash/timeout retries resume from
        the cell's last checkpoint; a sweep journal at
        ``<root>/journal.jsonl`` additionally lets an interrupted
        re-invocation of the same grid skip cells that already
        completed.  All-local baseline cells (``policy=None``) do not
        checkpoint (they are cheap and cache-served) but do journal.
    checkpoint_every:
        Default snapshot cadence (batches) applied to cells that get a
        checkpoint directory from ``checkpoint_root`` and do not pin
        their own ``checkpoint_every``.
    share_streams:
        Zero-copy access-stream sharing (default on).  When several
        pool-bound cells run the same workload spec under the same
        batch budget, the parent generates the stream once, publishes
        it in a :mod:`multiprocessing.shared_memory` segment, and the
        workers replay read-only views instead of regenerating it
        (see :mod:`repro.core.shm`).  Results are bit-identical either
        way; ineligible cells (closure factories, unbounded budgets,
        ``max_accesses`` limits) and platforms without shared memory
        fall back to per-cell generation silently
        (``stats.shm_fallbacks``).  Segments are unlinked when the
        grid finishes (plus an ``atexit`` net).

    Determinism: each cell builds fresh workload/policy instances from
    its own seeds, so ``run()`` returns bit-identical results whatever
    the worker count or completion order.

    Crash recovery: a dead worker (segfault, ``os._exit``) breaks the
    whole ``ProcessPoolExecutor`` and cannot be attributed to one of
    the in-flight cells.  The executor rebuilds the pool and switches
    to *isolation mode* -- one cell in flight at a time -- where the
    next crash attributes unambiguously; innocent cells complete and
    only the crasher burns retry budget.
    """

    def __init__(
        self,
        jobs: int = 0,
        cache: ResultCache | str | os.PathLike | None = None,
        cell_timeout: float | None = None,
        retries: int = 0,
        keep_going: bool = False,
        checkpoint_root: str | os.PathLike | None = None,
        checkpoint_every: int = 25,
        share_streams: bool = True,
    ):
        self.jobs = resolve_jobs(jobs)
        if cache is not None and not isinstance(cache, ResultCache):
            cache = ResultCache(cache)
        if cell_timeout is not None and cell_timeout <= 0:
            raise ValueError(f"cell_timeout must be > 0, got {cell_timeout}")
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        if checkpoint_every < 1:
            raise ValueError(
                f"checkpoint_every must be >= 1, got {checkpoint_every}"
            )
        self.cache = cache
        self.cell_timeout = cell_timeout
        self.retries = int(retries)
        self.keep_going = bool(keep_going)
        self.checkpoint_root = (
            Path(checkpoint_root) if checkpoint_root is not None else None
        )
        self.checkpoint_every = int(checkpoint_every)
        self.share_streams = bool(share_streams)
        self.journal = None
        if self.checkpoint_root is not None:
            from repro.state import SweepJournal

            self.checkpoint_root.mkdir(parents=True, exist_ok=True)
            self.journal = SweepJournal(self.checkpoint_root / "journal.jsonl")
        self.stats = ExecutorStats()

    # -- execution -----------------------------------------------------

    def run(self, specs: Sequence[CellSpec]) -> list[ExperimentResult]:
        """Run all cells; results align with ``specs`` by position.

        Journal hits (a previous, interrupted invocation of the same
        grid already completed the cell) and cache hits never execute;
        misses run inline (``jobs=1``) or on the pool, then populate
        the journal and cache.
        """
        specs = [
            self._prepare_spec(spec, i) for i, spec in enumerate(specs)
        ]
        results: list[ExperimentResult | None] = [None] * len(specs)
        fingerprints: list[str | None] = [None] * len(specs)

        pending: list[int] = []
        for i, spec in enumerate(specs):
            if self.cache is not None or self.journal is not None:
                fingerprints[i] = spec.fingerprint()
            fp = fingerprints[i]
            if fp is not None and self.journal is not None:
                prior = self.journal.completed(fp)
                if prior is not None:
                    results[i] = prior
                    self.stats.journal_hits += 1
                    continue
            if fp is not None and self.cache is not None:
                hit = self.cache.get(fp)
                if hit is not None:
                    results[i] = hit
                    self.stats.cache_hits += 1
                    if spec.trace_path is not None:
                        self._record_cache_hit(spec, fp)
                    continue
            pending.append(i)

        if pending:
            computed = self._execute([specs[i] for i in pending])
            for i, res in zip(pending, computed):
                results[i] = res
                self.stats.executed += 1
                if isinstance(res, FailedCell):
                    continue  # never cache/journal failures
                if self.cache is not None and fingerprints[i] is not None:
                    self.cache.put(fingerprints[i], res)
                    self.stats.cached_results += 1
                if self.journal is not None and fingerprints[i] is not None:
                    self.journal.record(fingerprints[i], res)
        return results  # type: ignore[return-value]

    _LABEL_SAFE = re.compile(r"[^A-Za-z0-9._-]+")

    def _prepare_spec(self, spec: CellSpec, index: int) -> CellSpec:
        """Assign a per-cell checkpoint directory under the root.

        Fingerprint-named directories make resume survive process
        *re-invocation* (the crashed sweep rerun finds the same dir);
        non-addressable cells fall back to label/position names, which
        still cover crash-retries within one invocation.  All-local
        baseline cells never checkpoint.
        """
        if (
            self.checkpoint_root is None
            or spec.checkpoint_dir is not None
            or spec.policy is None
        ):
            return spec
        cell_id = spec.fingerprint()
        if cell_id is None:
            safe = self._LABEL_SAFE.sub("-", spec.label).strip("-")
            cell_id = f"{safe or 'cell'}-{index}"
        return replace(
            spec,
            checkpoint_dir=str(self.checkpoint_root / "cells" / cell_id),
            checkpoint_every=spec.checkpoint_every or self.checkpoint_every,
        )

    def run_one(self, spec: CellSpec) -> ExperimentResult:
        return self.run([spec])[0]

    @staticmethod
    def _record_cache_hit(spec: CellSpec, fingerprint: str) -> None:
        """A cache-served cell still leaves a (one-event) trace file."""
        with trace_to(spec.trace_path) as tracer:
            tracer.emit(
                "cache_hit",
                t_ns=0.0,
                label=spec.label,
                fingerprint=fingerprint,
            )

    def _execute(self, specs: list[CellSpec]) -> list[ExperimentResult]:
        if self.jobs == 1 or len(specs) == 1:
            return [self._run_serial(spec) for spec in specs]
        self._require_picklable(specs)
        specs, handles = self._substitute_shared(specs)
        try:
            return self._run_pool(specs)
        finally:
            for handle in handles:
                handle.unlink()

    # -- zero-copy stream sharing --------------------------------------

    @staticmethod
    def _stream_key(spec: CellSpec) -> tuple[str, int] | None:
        """Sharing key of a cell, or None when ineligible.

        Eligible cells have a content-addressable workload spec and a
        bounded batch budget (the recording length); a ``max_accesses``
        limit makes the effective batch count placement-dependent, so
        such cells keep per-cell generation.
        """
        if not isinstance(spec.workload, _RegistrySpec):
            return None
        config = spec.config
        if not config.max_batches or config.max_batches <= 0:
            return None
        if config.max_accesses is not None:
            return None
        try:
            fp = cell_fingerprint({"workload": spec.workload.spec_dict()})
        except (TypeError, ValueError):
            return None
        return fp, int(config.max_batches)

    def _substitute_shared(
        self, specs: list[CellSpec]
    ) -> tuple[list[CellSpec], list[Any]]:
        """Publish each multi-cell workload group's stream once.

        Returns the (possibly substituted) spec list plus the owned
        segment handles the caller must unlink after the grid runs.
        Single-cell groups gain nothing and keep per-cell generation;
        any publish failure falls back silently.
        """
        if not self.share_streams:
            return specs, []
        groups: dict[tuple[str, int], list[int]] = {}
        for idx, spec in enumerate(specs):
            key = self._stream_key(spec)
            if key is not None:
                groups.setdefault(key, []).append(idx)
        handles: list[Any] = []
        out = list(specs)
        for (_, max_batches), idxs in groups.items():
            if len(idxs) < 2:
                continue
            from repro.core.shm import SharedStreamFactory, publish_stream

            first = specs[idxs[0]]
            try:
                handle = publish_stream(first.workload, max_batches)
            except Exception:
                self.stats.shm_fallbacks += 1
                continue
            handles.append(handle)
            self.stats.shm_segments += 1
            self.stats.shm_bytes += handle.nbytes
            factory = SharedStreamFactory(first.workload, handle)
            for i in idxs:
                out[i] = replace(specs[i], workload=factory)
        return out, handles

    # -- inline path ---------------------------------------------------

    def _run_serial(self, spec: CellSpec):
        """One cell, this process, with the same retry/keep_going rules.

        ``cell_timeout`` is not enforceable here (nothing can preempt
        the running cell) and ``crash_hard`` plans kill this process --
        both need ``jobs > 1``.
        """
        attempts = 0
        while True:
            attempts += 1
            try:
                return run_cell(spec)
            except Exception as exc:
                if attempts <= self.retries:
                    self.stats.retries += 1
                    continue
                self.stats.failures += 1
                if self.keep_going:
                    return FailedCell(
                        label=spec.label, error=repr(exc), attempts=attempts
                    )
                raise

    # -- pool path -----------------------------------------------------

    def _run_pool(self, specs: list[CellSpec]):
        """Per-cell futures with timeout, retry, and crash recovery."""
        workers = min(self.jobs, len(specs))
        results: list[Any] = [None] * len(specs)
        charged: list[int] = [0] * len(specs)  # charged failed attempts
        todo = list(range(len(specs)))
        isolation = False
        pool = ProcessPoolExecutor(max_workers=workers)
        try:
            while todo:
                if isolation:
                    wave, todo = todo[:1], todo[1:]
                else:
                    wave, todo = todo, []
                resubmit, rebuild = self._run_wave(
                    pool, specs, wave, results, charged, isolation
                )
                todo = resubmit + todo
                if rebuild:
                    self._kill_pool(pool)
                    pool = ProcessPoolExecutor(max_workers=workers)
                    self.stats.pool_rebuilds += 1
                    isolation = True
        finally:
            pool.shutdown(wait=False, cancel_futures=True)
        return results

    def _run_wave(
        self,
        pool: ProcessPoolExecutor,
        specs: list[CellSpec],
        wave: list[int],
        results: list[Any],
        charged: list[int],
        isolation: bool,
    ) -> tuple[list[int], bool]:
        """Submit ``wave`` and collect it; returns (resubmit, rebuild).

        Waits on futures in submission order with each cell's deadline
        measured from its submission.  Once the pool must die (a break,
        or a running cell overshooting its timeout), the remaining
        futures are harvested if already done and resubmitted uncharged
        otherwise -- their fate on the dying pool proves nothing about
        them.
        """
        futures = []
        deadlines = []
        for i in wave:
            futures.append(pool.submit(run_cell, specs[i]))
            deadlines.append(
                None
                if self.cell_timeout is None
                else time.monotonic() + self.cell_timeout
            )
        resubmit: list[int] = []
        rebuild = False
        for pos, i in enumerate(wave):
            fut = futures[pos]
            if rebuild:
                # Pool is going down; salvage what already finished.
                if fut.done() and not fut.cancelled() and fut.exception() is None:
                    results[i] = fut.result()
                else:
                    fut.cancel()
                    resubmit.append(i)
                continue
            try:
                if deadlines[pos] is None:
                    results[i] = fut.result()
                else:
                    remaining = deadlines[pos] - time.monotonic()
                    results[i] = fut.result(timeout=max(remaining, 0.0))
            except FutureTimeout:
                if fut.cancel():
                    # Never started (queued behind slower cells): not
                    # the cell's fault, resubmit without charge.
                    resubmit.append(i)
                    continue
                # Genuinely running overtime: charge it and kill the
                # pool (the worker won't give the cell back).
                self.stats.timeouts += 1
                timeout_exc = TimeoutError(
                    f"cell {specs[i].label or i!r} exceeded "
                    f"cell_timeout={self.cell_timeout}s"
                )
                if not self._charge_failure(specs[i], i, timeout_exc, charged, results):
                    resubmit.append(i)
                rebuild = True
            except BrokenProcessPool as exc:
                if isolation:
                    # Exactly one cell was in flight: the crash is its.
                    if not self._charge_failure(specs[i], i, exc, charged, results):
                        resubmit.append(i)
                else:
                    # Cannot tell which in-flight cell killed the
                    # worker -- charge nobody, isolate, re-run.
                    resubmit.append(i)
                rebuild = True
            except Exception as exc:
                # An ordinary exception pickled back from the worker
                # attributes unambiguously, pool intact.
                if not self._charge_failure(specs[i], i, exc, charged, results):
                    resubmit.append(i)
        return resubmit, rebuild

    def _charge_failure(
        self,
        spec: CellSpec,
        i: int,
        exc: BaseException,
        charged: list[int],
        results: list[Any],
    ) -> bool:
        """Charge one failed attempt; True if the cell is now final.

        Finality means ``results[i]`` is set (a :class:`FailedCell`) or
        the error was raised; False means the caller should resubmit.
        """
        charged[i] += 1
        if charged[i] <= self.retries:
            self.stats.retries += 1
            return False
        self.stats.failures += 1
        if self.keep_going:
            results[i] = FailedCell(
                label=spec.label, error=repr(exc), attempts=charged[i]
            )
            return True
        raise exc

    @staticmethod
    def _kill_pool(pool: ProcessPoolExecutor) -> None:
        """Tear a pool down without waiting on a wedged worker."""
        processes = list(getattr(pool, "_processes", {}).values())
        for proc in processes:
            try:
                proc.terminate()
            except Exception:
                pass
        pool.shutdown(wait=False, cancel_futures=True)

    @staticmethod
    def _require_picklable(specs: list[CellSpec]) -> None:
        """Fail fast, with guidance, before feeding a pool bad specs."""
        for spec in specs:
            for role, factory in (("workload", spec.workload), ("policy", spec.policy)):
                if factory is None or isinstance(factory, _RegistrySpec):
                    continue
                try:
                    pickle.dumps(factory)
                except Exception as exc:
                    raise ValueError(
                        f"cell {spec.label or spec!r}: {role} factory "
                        f"{factory!r} is not picklable, so it cannot cross "
                        "process boundaries. Use WorkloadSpec/PolicySpec "
                        "(or a module-level function), or run with jobs=1."
                    ) from exc


def run_cells(
    specs: Sequence[CellSpec],
    jobs: int = 0,
    cache_dir: str | os.PathLike | None = None,
) -> list[ExperimentResult]:
    """One-call convenience: build an executor, run, return results."""
    return ParallelExecutor(jobs=jobs, cache=cache_dir).run(specs)


def executor_from_env(
    jobs: int | None = None,
    cache_dir: str | os.PathLike | None = None,
) -> ParallelExecutor:
    """Executor honouring ``REPRO_JOBS`` / ``REPRO_CACHE_DIR``.

    Explicit arguments win over the environment; the defaults (jobs=1,
    no cache) preserve historical serial behaviour for callers -- the
    benchmark harness routes through this so ``REPRO_JOBS=4 pytest
    benchmarks/`` parallelizes every grid without code changes.
    """
    if jobs is None:
        jobs = int(os.environ.get("REPRO_JOBS", "1"))
    if cache_dir is None:
        cache_dir = os.environ.get("REPRO_CACHE_DIR") or None
    return ParallelExecutor(jobs=jobs, cache=cache_dir)
