"""Metrics collection and the experiment result object.

Collects one :class:`BatchRecord` per simulated batch, then reduces to
the quantities the paper reports:

- **P50 op latency** -- median per-operation latency across
  steady-state batches (paper: P50 GET latency);
- **throughput** -- steady-state operations per simulated second;
- **local-DRAM hit ratio** -- overall and per-window timeline (Figs. 9
  and 11);
- **traffic breakdown** -- local/CXL/migration byte shares (Fig. 2);
- **per-label runtimes** -- simulated time per trial/round label
  (Tables IV and V report per-trial and per-round averages);
- ``%all-local`` via :meth:`ExperimentResult.relative_to`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.memsim.costmodel import BatchCost


@dataclass
class BatchRecord:
    """Everything remembered about one simulated batch."""

    start_ns: float
    duration_ns: float
    num_ops: float
    num_accesses: int
    local_accesses: int
    cxl_accesses: int
    pages_migrated: int
    overhead_ns: float
    label: str = ""

    @property
    def end_ns(self) -> float:
        return self.start_ns + self.duration_ns

    @property
    def per_op_latency_ns(self) -> float | None:
        if self.num_ops <= 0:
            return None
        return self.duration_ns / self.num_ops

    @property
    def hit_ratio(self) -> float | None:
        total = self.local_accesses + self.cxl_accesses
        if total == 0:
            return None
        return self.local_accesses / total


#: Column layout of the collector's storage, in BatchRecord field order.
_COLUMNS: tuple[tuple[str, type], ...] = (
    ("start_ns", np.float64),
    ("duration_ns", np.float64),
    ("num_ops", np.float64),
    ("num_accesses", np.int64),
    ("local_accesses", np.int64),
    ("cxl_accesses", np.int64),
    ("pages_migrated", np.int64),
    ("overhead_ns", np.float64),
)


class MetricsCollector:
    """Accumulates batch records during an engine run.

    Storage is columnar: one grow-doubling numpy array per numeric
    field plus a label list, so the per-batch cost is a handful of
    scalar stores instead of a dict/dataclass allocation.  Values pass
    through float64/int64 columns losslessly, and :attr:`records`
    materializes the familiar :class:`BatchRecord` list on demand (all
    consumers are read-only), so the result build and the checkpoint
    schema are unchanged.
    """

    def __init__(self):
        self._n = 0
        self._cap = 0
        self._cols: dict[str, np.ndarray] = {
            name: np.empty(0, dtype=dtype) for name, dtype in _COLUMNS
        }
        self._labels: list[str] = []

    def __len__(self) -> int:
        return self._n

    @property
    def records(self) -> list[BatchRecord]:
        """All batch records so far (materialized copy; do not mutate)."""
        n = self._n
        cols = [self._cols[name][:n].tolist() for name, __ in _COLUMNS]
        return [
            BatchRecord(*values, label=self._labels[i])
            for i, values in enumerate(zip(*cols))
        ]

    def _grow(self) -> None:
        new_cap = max(1024, 2 * self._cap)
        for name, dtype in _COLUMNS:
            grown = np.empty(new_cap, dtype=dtype)
            grown[: self._n] = self._cols[name][: self._n]
            self._cols[name] = grown
        self._cap = new_cap

    def record_batch(
        self,
        start_ns: float,
        cost: BatchCost,
        num_ops: float,
        local_accesses: int,
        cxl_accesses: int,
        pages_migrated: int,
        label: str = "",
    ) -> None:
        if self._n == self._cap:
            self._grow()
        i = self._n
        cols = self._cols
        cols["start_ns"][i] = start_ns
        cols["duration_ns"][i] = cost.total_ns
        cols["num_ops"][i] = num_ops
        cols["num_accesses"][i] = local_accesses + cxl_accesses
        cols["local_accesses"][i] = local_accesses
        cols["cxl_accesses"][i] = cxl_accesses
        cols["pages_migrated"][i] = pages_migrated
        cols["overhead_ns"][i] = cost.overhead_ns
        self._labels.append(label)
        self._n = i + 1

    # -- checkpointing -----------------------------------------------------

    def state_dict(self) -> dict:
        n = self._n
        columns = {
            name: self._cols[name][:n].tolist() for name, __ in _COLUMNS
        }
        return {
            "records": [
                {
                    **{name: columns[name][i] for name, __ in _COLUMNS},
                    "label": self._labels[i],
                }
                for i in range(n)
            ]
        }

    def load_state(self, state: dict) -> None:
        records = state["records"]
        self._n = 0
        self._cap = 0
        self._cols = {
            name: np.empty(0, dtype=dtype) for name, dtype in _COLUMNS
        }
        self._labels = []
        while self._cap < len(records):
            self._grow()
        for i, record in enumerate(records):
            for name, __ in _COLUMNS:
                self._cols[name][i] = record[name]
            self._labels.append(record.get("label", ""))
        self._n = len(records)

    def finalize(
        self,
        policy_name: str,
        workload_name: str,
        traffic_breakdown: dict[str, float],
        migration_bytes: int,
        warmup_fraction: float = 0.25,
        policy_stats: dict[str, float] | None = None,
    ) -> "ExperimentResult":
        # Materialize once at result build; the reduction itself is
        # unchanged, so finalized numbers are bit-identical to the
        # list-of-records implementation.
        return ExperimentResult.from_records(
            self.records,
            policy_name=policy_name,
            workload_name=workload_name,
            traffic_breakdown=traffic_breakdown,
            migration_bytes=migration_bytes,
            warmup_fraction=warmup_fraction,
            policy_stats=policy_stats or {},
        )


@dataclass
class ExperimentResult:
    """Reduced metrics for one experiment cell."""

    policy_name: str
    workload_name: str
    total_time_ns: float
    steady_p50_latency_ns: float | None
    steady_throughput_ops_per_s: float | None
    overall_hit_ratio: float
    steady_hit_ratio: float
    traffic_breakdown: dict[str, float]
    migration_bytes: int
    pages_migrated: int
    total_ops: float
    total_accesses: int
    #: (end_time_ns, windowed hit ratio) timeline points.
    hit_ratio_timeline: list[tuple[float, float]] = field(default_factory=list)
    #: (end_time_ns, per-op latency ns) timeline points.
    latency_timeline: list[tuple[float, float]] = field(default_factory=list)
    #: Simulated time per batch label (e.g. GAP trials, XGBoost rounds).
    time_per_label_ns: dict[str, float] = field(default_factory=dict)
    policy_stats: dict[str, float] = field(default_factory=dict)

    # -- construction ------------------------------------------------------

    @staticmethod
    def from_records(
        records: list[BatchRecord],
        policy_name: str,
        workload_name: str,
        traffic_breakdown: dict[str, float],
        migration_bytes: int,
        warmup_fraction: float = 0.25,
        policy_stats: dict[str, float] | None = None,
    ) -> "ExperimentResult":
        if not records:
            raise ValueError("cannot reduce an empty record list")
        total_time = records[-1].end_ns
        cutoff = total_time * warmup_fraction
        steady = [r for r in records if r.start_ns >= cutoff] or records

        latencies = [
            lat for r in steady if (lat := r.per_op_latency_ns) is not None
        ]
        p50 = float(np.median(latencies)) if latencies else None

        steady_ops = sum(r.num_ops for r in steady)
        steady_span = steady[-1].end_ns - steady[0].start_ns
        throughput = (
            steady_ops / (steady_span / 1e9) if steady_span > 0 and steady_ops else None
        )

        total_local = sum(r.local_accesses for r in records)
        total_cxl = sum(r.cxl_accesses for r in records)
        overall_hit = total_local / max(total_local + total_cxl, 1)
        s_local = sum(r.local_accesses for r in steady)
        s_cxl = sum(r.cxl_accesses for r in steady)
        steady_hit = s_local / max(s_local + s_cxl, 1)

        hit_timeline = [
            (r.end_ns, hr) for r in records if (hr := r.hit_ratio) is not None
        ]
        lat_timeline = [
            (r.end_ns, lat)
            for r in records
            if (lat := r.per_op_latency_ns) is not None
        ]

        per_label: dict[str, float] = {}
        for r in records:
            if r.label:
                per_label[r.label] = per_label.get(r.label, 0.0) + r.duration_ns

        return ExperimentResult(
            policy_name=policy_name,
            workload_name=workload_name,
            total_time_ns=total_time,
            steady_p50_latency_ns=p50,
            steady_throughput_ops_per_s=throughput,
            overall_hit_ratio=overall_hit,
            steady_hit_ratio=steady_hit,
            traffic_breakdown=dict(traffic_breakdown),
            migration_bytes=migration_bytes,
            pages_migrated=sum(r.pages_migrated for r in records),
            total_ops=sum(r.num_ops for r in records),
            total_accesses=sum(r.num_accesses for r in records),
            hit_ratio_timeline=hit_timeline,
            latency_timeline=lat_timeline,
            time_per_label_ns=per_label,
            policy_stats=policy_stats or {},
        )

    # -- serialization -----------------------------------------------------

    def to_dict(self) -> dict[str, object]:
        """JSON-serializable dict that round-trips via :meth:`from_dict`.

        Timeline tuples become 2-element lists (JSON has no tuples);
        everything else is already plain python scalars/dicts.
        """
        return {
            "policy_name": self.policy_name,
            "workload_name": self.workload_name,
            "total_time_ns": self.total_time_ns,
            "steady_p50_latency_ns": self.steady_p50_latency_ns,
            "steady_throughput_ops_per_s": self.steady_throughput_ops_per_s,
            "overall_hit_ratio": self.overall_hit_ratio,
            "steady_hit_ratio": self.steady_hit_ratio,
            "traffic_breakdown": dict(self.traffic_breakdown),
            "migration_bytes": self.migration_bytes,
            "pages_migrated": self.pages_migrated,
            "total_ops": self.total_ops,
            "total_accesses": self.total_accesses,
            "hit_ratio_timeline": [list(p) for p in self.hit_ratio_timeline],
            "latency_timeline": [list(p) for p in self.latency_timeline],
            "time_per_label_ns": dict(self.time_per_label_ns),
            "policy_stats": dict(self.policy_stats),
        }

    @staticmethod
    def from_dict(data: dict[str, object]) -> "ExperimentResult":
        """Inverse of :meth:`to_dict` (bit-identical for JSON round-trips)."""
        fields = dict(data)
        fields["hit_ratio_timeline"] = [
            (float(t), float(v)) for t, v in fields.get("hit_ratio_timeline", [])
        ]
        fields["latency_timeline"] = [
            (float(t), float(v)) for t, v in fields.get("latency_timeline", [])
        ]
        return ExperimentResult(**fields)

    # -- derived ----------------------------------------------------------------

    def mean_time_per_label_ns(self, skip_fraction: float = 0.25) -> float | None:
        """Average simulated time per label, skipping leading labels.

        Reproduces the paper's GAP methodology: "average runtimes
        exclude the first 1/4 of trials, considered warmup".
        """
        if not self.time_per_label_ns:
            return None
        items = list(self.time_per_label_ns.values())
        skip = int(len(items) * skip_fraction)
        kept = items[skip:] or items
        return float(np.mean(kept))

    def relative_to(self, baseline: "ExperimentResult") -> dict[str, float | None]:
        """The paper's %all-local columns (higher is better for all).

        Latency and per-label time are inverted (baseline/self) so a
        slower system scores below 1.0, matching the tables.
        """
        out: dict[str, float | None] = {}
        if self.steady_p50_latency_ns and baseline.steady_p50_latency_ns:
            out["p50_latency"] = (
                baseline.steady_p50_latency_ns / self.steady_p50_latency_ns
            )
        else:
            out["p50_latency"] = None
        if self.steady_throughput_ops_per_s and baseline.steady_throughput_ops_per_s:
            out["throughput"] = (
                self.steady_throughput_ops_per_s
                / baseline.steady_throughput_ops_per_s
            )
        else:
            out["throughput"] = None
        mine = self.mean_time_per_label_ns()
        theirs = baseline.mean_time_per_label_ns()
        out["label_time"] = (theirs / mine) if mine and theirs else None
        return out

    def summary(self) -> dict[str, object]:
        """Flat dict for table printing."""
        return {
            "policy": self.policy_name,
            "workload": self.workload_name,
            "p50_latency_us": (
                self.steady_p50_latency_ns / 1e3
                if self.steady_p50_latency_ns is not None
                else None
            ),
            "throughput_mops": (
                self.steady_throughput_ops_per_s / 1e6
                if self.steady_throughput_ops_per_s is not None
                else None
            ),
            "hit_ratio": self.steady_hit_ratio,
            "migration_share": self.traffic_breakdown.get("migration", 0.0),
            "pages_migrated": self.pages_migrated,
        }
