"""Content-addressed on-disk cache for experiment results.

An experiment cell is fully determined by its spec -- workload name +
parameters, policy name + parameters, and the
:class:`~repro.core.config.ExperimentConfig` (the simulator is
deterministic given a seed, see DESIGN.md).  The cache therefore keys a
serialized :class:`~repro.core.metrics.ExperimentResult` by a stable
hash of the spec: a sorted-key JSON rendering of every parameter plus a
schema version.  Any change to a parameter, to the config, or to the
result schema changes the key and misses cleanly; stale entries are
never returned, only orphaned.

Layout: one ``<sha256>.json`` file per cell under ``cache_dir``.
Writes are atomic (temp file + ``os.replace``) so a crashed or
concurrent run can never leave a half-written entry that a later run
would read.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Any

from repro.core.config import ExperimentConfig
from repro.core.metrics import ExperimentResult

#: Bump whenever the meaning of a cell spec or the ExperimentResult
#: schema changes; every old entry then misses.
SCHEMA_VERSION = 1


def config_to_dict(config: ExperimentConfig) -> dict[str, Any]:
    """All cell-identity-relevant fields of a config, JSON-ready."""
    memory = config.memory
    return {
        "local_fraction": config.local_fraction,
        "ratio_label": config.ratio_label,
        "max_batches": config.max_batches,
        "max_accesses": config.max_accesses,
        "warmup_fraction": config.warmup_fraction,
        "seed": config.seed,
        "memory": {
            "name": memory.name,
            "local": dataclasses.asdict(memory.local),
            "cxl": dataclasses.asdict(memory.cxl),
        },
    }


def cell_fingerprint(spec_dict: dict[str, Any]) -> str:
    """Stable sha256 hex digest of a cell-spec dict.

    ``spec_dict`` must be JSON-serializable; key order never matters
    (``sort_keys=True``), and the schema version is folded in so cache
    entries from incompatible layouts can never be confused.
    """
    payload = {"schema": SCHEMA_VERSION, "cell": spec_dict}
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


class ResultCache:
    """Directory-backed ``fingerprint -> ExperimentResult`` store."""

    def __init__(self, cache_dir: str | os.PathLike):
        self.cache_dir = Path(cache_dir)
        if self.cache_dir.exists() and not self.cache_dir.is_dir():
            raise NotADirectoryError(
                f"cache path exists and is not a directory: {self.cache_dir}"
            )
        self.cache_dir.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0

    def path_for(self, fingerprint: str) -> Path:
        return self.cache_dir / f"{fingerprint}.json"

    def get(self, fingerprint: str) -> ExperimentResult | None:
        """Cached result for ``fingerprint``, or None on a miss.

        A corrupt entry -- truncated write survived by a crash, stray
        bytes, a payload that no longer deserializes -- is treated as a
        miss and **quarantined** (renamed to ``<fingerprint>.corrupt``)
        so it is never re-read, never silently deleted (it stays on
        disk for diagnosis), and the recomputed result can take its
        place.
        """
        path = self.path_for(fingerprint)
        try:
            with open(path, encoding="utf-8") as fh:
                payload = json.load(fh)
        except FileNotFoundError:
            self.misses += 1
            return None
        except (json.JSONDecodeError, UnicodeDecodeError, OSError):
            self.misses += 1
            self._quarantine(path)
            return None
        if not isinstance(payload, dict) or payload.get("schema") != SCHEMA_VERSION:
            self.misses += 1
            return None
        try:
            return_value = ExperimentResult.from_dict(payload["result"])
        except (KeyError, TypeError, ValueError, AttributeError):
            self.misses += 1
            self._quarantine(path)
            return None
        self.hits += 1
        return return_value

    def _quarantine(self, path: Path) -> None:
        """Move a corrupt entry aside (best-effort, never raises)."""
        try:
            os.replace(path, path.with_suffix(".corrupt"))
        except OSError:
            pass

    def put(self, fingerprint: str, result: ExperimentResult) -> None:
        """Store ``result`` under ``fingerprint`` (atomic write)."""
        payload = {"schema": SCHEMA_VERSION, "result": result.to_dict()}
        fd, tmp = tempfile.mkstemp(
            dir=self.cache_dir, prefix=".tmp-", suffix=".json"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(payload, fh)
            os.replace(tmp, self.path_for(fingerprint))
        except BaseException:
            try:
                os.unlink(tmp)
            except FileNotFoundError:
                pass
            raise

    def __contains__(self, fingerprint: str) -> bool:
        return self.path_for(fingerprint).exists()

    def _entries(self) -> list[Path]:
        """Real cache entries -- excludes in-flight ``.tmp-*`` files
        left by a writer that is still running (or crashed mid-put)."""
        return [
            path
            for path in self.cache_dir.glob("*.json")
            if not path.name.startswith(".tmp-")
        ]

    def __len__(self) -> int:
        return len(self._entries())

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        removed = 0
        for path in self._entries():
            path.unlink(missing_ok=True)
            removed += 1
        return removed

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ResultCache({str(self.cache_dir)!r}, entries={len(self)}, "
            f"hits={self.hits}, misses={self.misses})"
        )
