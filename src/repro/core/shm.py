"""Zero-copy access-stream sharing across worker processes.

A reproduction grid typically runs the *same* workload cell against
many policies: N workers each rebuild the workload and regenerate an
identical multi-megabyte access stream.  This module removes that
redundancy.  The parent process generates the stream **once**, packs
every batch's arrays into a single :mod:`multiprocessing.shared_memory`
segment, and ships workers a tiny picklable handle; each worker maps
the segment read-only and replays the recorded batches as zero-copy
NumPy views.

Design points:

- **Keyed by workload fingerprint.**  A segment serves every cell whose
  (workload spec, batch budget) content-hash matches; cells that differ
  in policy or machine shape share freely.
- **Replay wraps the real workload.**  :class:`SharedStreamWorkload`
  builds the true workload inside the worker (cheap: O(setup), not
  O(batches)) and delegates ``setup()`` / ``footprint_pages`` /
  ``name`` to it, so region allocation, placement and checkpoint
  identity are *bit-identical* to the per-cell path -- only
  ``batches()`` is overridden to read the shared arrays.  Resume
  fast-forward works unchanged (the engine skips already-completed
  batches of the replay iterator).
- **Strict fallback.**  Publishing is best-effort: unbounded streams,
  closure factories, or a platform without shared memory simply fall
  back to per-cell generation.  Nothing observable changes but speed.
- **Lifecycle.**  The creating executor unlinks every segment when its
  grid finishes (plus an ``atexit`` net for crashed runs).  Worker
  attachments re-register the name with :mod:`multiprocessing`'s
  resource tracker (CPython < 3.13, bpo-38119), but under the default
  fork start method that tracker is shared with the owner, whose name
  cache dedups the entries -- the owner's single unlink settles them.
"""

from __future__ import annotations

import atexit
from collections.abc import Iterator
from multiprocessing import shared_memory
from typing import Any, Callable

import numpy as np

from repro.sampling.events import AccessBatch

#: Alignment of each array inside the segment (int64-friendly).
_ALIGN = 8


def _aligned(n: int) -> int:
    return (n + _ALIGN - 1) // _ALIGN * _ALIGN


# ---------------------------------------------------------------------------
# recording (parent side)
# ---------------------------------------------------------------------------


def record_stream(
    workload_factory: Callable[[], Any], max_batches: int
) -> tuple[list[dict], list[np.ndarray], bool]:
    """Generate up to ``max_batches`` batches and flatten them.

    Returns ``(records, arrays, exhausted)``: one metadata dict per
    batch referencing its arrays by position in ``arrays``, and whether
    the stream ended on its own before the budget (finite traces).
    Compressed batches keep their compressed form -- replay must not
    force the expansion the producer avoided.

    The workload is set up on a scratch all-local machine first.  Page
    ids in the stream depend only on the workload's own region
    allocation order (``AddressSpace.map_region`` assigns start pages
    sequentially; policy-side reservations debit capacity without
    mapping), so the scratch machine's tier shape cannot leak into the
    recording.
    """
    # Local imports: repro.core.runner imports this package's siblings.
    from repro.core.runner import build_all_local_machine
    from repro.memsim.tier import CXL1_CONFIG

    workload = workload_factory()
    workload.setup(
        build_all_local_machine(workload.footprint_pages, CXL1_CONFIG)
    )
    records: list[dict] = []
    arrays: list[np.ndarray] = []
    exhausted = True
    stream = workload.batches()
    for _ in range(max_batches):
        batch = next(stream, None)
        if batch is None:
            break
        record: dict[str, Any] = {
            "num_ops": batch.num_ops,
            "cpu_ns": batch.cpu_ns,
            "label": batch.label,
            "bytes_per_access": batch.bytes_per_access,
        }
        if batch.run_starts is not None:
            for field, arr in (
                ("head_page_ids", batch.head_page_ids),
                ("run_starts", batch.run_starts),
                ("run_counts", batch.run_counts),
            ):
                record[field] = len(arrays)
                arrays.append(arr)
        else:
            record["page_ids"] = len(arrays)
            arrays.append(batch.page_ids)
        records.append(record)
    else:
        exhausted = next(stream, None) is None
    return records, arrays, exhausted


def publish_stream(
    workload_factory: Callable[[], Any], max_batches: int
) -> "SharedStreamHandle":
    """Record a workload's stream into a fresh shared-memory segment.

    Raises whatever the platform raises when shared memory is
    unavailable; callers treat any exception as "fall back to per-cell
    generation".  The caller owns the segment and must eventually call
    :meth:`SharedStreamHandle.unlink`.
    """
    records, arrays, exhausted = record_stream(workload_factory, max_batches)
    total = sum(_aligned(a.nbytes) for a in arrays)
    shm = shared_memory.SharedMemory(create=True, size=max(total, 1))
    try:
        layout: list[tuple[int, str, tuple[int, ...]]] = []
        offset = 0
        for arr in arrays:
            view = np.ndarray(arr.shape, dtype=arr.dtype, buffer=shm.buf, offset=offset)
            view[...] = arr
            layout.append((offset, arr.dtype.str, arr.shape))
            offset += _aligned(arr.nbytes)
        handle = SharedStreamHandle(
            segment=shm.name,
            records=records,
            layout=layout,
            exhausted=exhausted,
            nbytes=total,
        )
    except BaseException:
        shm.close()
        shm.unlink()
        raise
    # Keep the mapping open in the parent for the segment's lifetime:
    # closing the last mapping before workers attach would let the OS
    # reclaim the name on some platforms.
    handle._shm = shm
    handle._owner = True
    _OWNED_HANDLES.append(handle)
    return handle


#: Owner-side handles still holding live segments (atexit safety net).
_OWNED_HANDLES: list["SharedStreamHandle"] = []


def _cleanup_owned() -> None:
    for handle in list(_OWNED_HANDLES):
        handle.unlink()


atexit.register(_cleanup_owned)


# ---------------------------------------------------------------------------
# the picklable handle
# ---------------------------------------------------------------------------


class SharedStreamHandle:
    """Names a published stream: segment + per-batch array layout.

    Pickles by value (segment name and metadata only); the receiving
    process attaches lazily on first :meth:`attach`.  The *creating*
    process is the owner and the only one that may :meth:`unlink`.
    """

    def __init__(
        self,
        segment: str,
        records: list[dict],
        layout: list[tuple[int, str, tuple[int, ...]]],
        exhausted: bool,
        nbytes: int,
    ):
        self.segment = segment
        self.records = records
        self.layout = layout
        self.exhausted = exhausted
        self.nbytes = nbytes
        self._shm: shared_memory.SharedMemory | None = None
        self._owner = False
        self._views: list[np.ndarray] | None = None

    def __getstate__(self):
        return {
            "segment": self.segment,
            "records": self.records,
            "layout": self.layout,
            "exhausted": self.exhausted,
            "nbytes": self.nbytes,
        }

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._shm = None
        self._owner = False
        self._views = None

    # -- mapping ------------------------------------------------------

    def attach(self) -> list[np.ndarray]:
        """Read-only NumPy views over every recorded array (cached)."""
        if self._views is not None:
            return self._views
        if self._shm is None:
            # CPython < 3.13 registers this attachment with the resource
            # tracker (bpo-38119).  Under the default fork start method
            # pool workers share the parent's tracker process, whose
            # name cache dedups the double registration and is cleared
            # exactly once by the owner's unlink -- so no compensating
            # unregister is needed (and issuing one here would make the
            # owner's later unregister a tracker-side KeyError).
            self._shm = shared_memory.SharedMemory(
                name=self.segment, create=False
            )
        views = []
        for offset, dtype, shape in self.layout:
            view = np.ndarray(
                shape, dtype=np.dtype(dtype), buffer=self._shm.buf, offset=offset
            )
            view.flags.writeable = False
            views.append(view)
        self._views = views
        return views

    def close(self) -> None:
        """Drop this process's mapping (views become invalid)."""
        self._views = None
        if self._shm is not None:
            try:
                self._shm.close()
            except BufferError:
                # A live numpy view still pins the buffer somewhere;
                # leave the mapping to process exit.
                pass
            self._shm = None

    def unlink(self) -> None:
        """Destroy the segment (owner only; idempotent)."""
        if not self._owner:
            self.close()
            return
        self._owner = False
        if self in _OWNED_HANDLES:
            _OWNED_HANDLES.remove(self)
        shm = self._shm
        self._views = None
        self._shm = None
        if shm is None:
            try:
                shm = shared_memory.SharedMemory(name=self.segment, create=False)
            except FileNotFoundError:
                return
        try:
            shm.close()
        except BufferError:
            pass
        try:
            shm.unlink()
        except FileNotFoundError:
            pass


# ---------------------------------------------------------------------------
# replay (worker side)
# ---------------------------------------------------------------------------


class SharedStreamWorkload:
    """A workload whose ``batches()`` replays a shared recorded stream.

    Wraps the real workload (built from ``inner_factory`` in this
    process) for everything *except* batch generation: layout,
    allocation, naming, description and checkpoint state all come from
    the genuine instance, so an engine driving this workload is
    indistinguishable from one driving the original -- the recorded
    batches are, by construction, exactly what the original would have
    generated.
    """

    def __init__(
        self, inner_factory: Callable[[], Any], handle: SharedStreamHandle
    ):
        self._inner = inner_factory()
        self._handle = handle

    # -- delegation ---------------------------------------------------

    @property
    def name(self) -> str:
        return self._inner.name

    @property
    def seed(self) -> int:
        return self._inner.seed

    @property
    def footprint_pages(self) -> int:
        return self._inner.footprint_pages

    @property
    def machine(self):
        return self._inner.machine

    def setup(self, machine) -> None:
        self._inner.setup(machine)

    def state_dict(self) -> dict:
        return self._inner.state_dict()

    def load_state(self, state: dict) -> None:
        self._inner.load_state(state)

    def describe(self) -> dict[str, object]:
        description = self._inner.describe()
        description["shared_stream"] = True
        return description

    # -- replay -------------------------------------------------------

    def batches(self) -> Iterator[AccessBatch]:
        views = self._handle.attach()
        for record in self._handle.records:
            if "page_ids" in record:
                yield AccessBatch(
                    page_ids=views[record["page_ids"]],
                    num_ops=record["num_ops"],
                    cpu_ns=record["cpu_ns"],
                    label=record["label"],
                    bytes_per_access=record["bytes_per_access"],
                )
            else:
                yield AccessBatch(
                    page_ids=None,
                    num_ops=record["num_ops"],
                    cpu_ns=record["cpu_ns"],
                    label=record["label"],
                    bytes_per_access=record["bytes_per_access"],
                    head_page_ids=views[record["head_page_ids"]],
                    run_starts=views[record["run_starts"]],
                    run_counts=views[record["run_counts"]],
                )
        # Ending here is exact, not a truncation: the executor records
        # precisely the cell's ``max_batches`` budget, and the engine
        # pulls one batch past its budget before breaking -- a finite
        # iterator and a break-after-pull produce identical results.
        # (Reusing a handle under a *larger* budget than it was
        # recorded for is unsupported; the executor never does.)


class SharedStreamFactory:
    """Picklable factory: builds :class:`SharedStreamWorkload` in workers.

    Drop-in replacement for a cell's workload factory.  Keeps the
    original factory around so consumers that introspect it (cache
    fingerprinting happens *before* substitution, but defensive) see
    the real spec via ``inner``.
    """

    __slots__ = ("inner", "handle")

    def __init__(self, inner: Callable[[], Any], handle: SharedStreamHandle):
        self.inner = inner
        self.handle = handle

    def __call__(self) -> SharedStreamWorkload:
        return SharedStreamWorkload(self.inner, self.handle)

    def __getstate__(self):
        return (self.inner, self.handle)

    def __setstate__(self, state):
        self.inner, self.handle = state
