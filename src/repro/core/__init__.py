"""Experiment engine: drives workload traces through machine + policy.

- :class:`~repro.core.engine.SimulationEngine` -- the event loop.
- :class:`~repro.core.metrics.ExperimentResult` -- everything the
  paper's tables report (P50 latency, throughput, hit ratio, traffic
  breakdown, per-trial runtimes, %all-local).
- :mod:`~repro.core.runner` -- one-call experiment facade used by the
  examples and every benchmark.
"""

from repro.core.config import ExperimentConfig, ratio_to_cxl_multiple
from repro.core.engine import SimulationEngine
from repro.core.metrics import BatchRecord, ExperimentResult, MetricsCollector
from repro.core.runner import (
    build_machine,
    compare_policies,
    run_all_local,
    run_experiment,
)
from repro.core.sweep import sweep

__all__ = [
    "BatchRecord",
    "ExperimentConfig",
    "ExperimentResult",
    "MetricsCollector",
    "SimulationEngine",
    "build_machine",
    "compare_policies",
    "ratio_to_cxl_multiple",
    "run_all_local",
    "run_experiment",
    "sweep",
]
