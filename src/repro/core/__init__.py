"""Experiment engine: drives workload traces through machine + policy.

- :class:`~repro.core.engine.SimulationEngine` -- the event loop.
- :class:`~repro.core.metrics.ExperimentResult` -- everything the
  paper's tables report (P50 latency, throughput, hit ratio, traffic
  breakdown, per-trial runtimes, %all-local).
- :mod:`~repro.core.runner` -- one-call experiment facade used by the
  examples and every benchmark.
- :mod:`~repro.core.parallel` -- process-pool executor fanning out
  picklable cell specs with bit-identical-to-serial results.
- :mod:`~repro.core.cache` -- content-addressed on-disk result cache
  keyed by a stable hash of the cell spec.
"""

from repro.core.cache import ResultCache, SCHEMA_VERSION, cell_fingerprint
from repro.core.config import ExperimentConfig, ratio_to_cxl_multiple
from repro.core.engine import SimulationEngine
from repro.core.metrics import BatchRecord, ExperimentResult, MetricsCollector
from repro.core.parallel import (
    CellSpec,
    FailedCell,
    ParallelExecutor,
    PolicySpec,
    WorkloadSpec,
    executor_from_env,
    register_policy,
    register_workload,
    run_cells,
)
from repro.core.runner import (
    build_machine,
    compare_policies,
    run_all_local,
    run_experiment,
)
from repro.core.sweep import sweep

__all__ = [
    "BatchRecord",
    "CellSpec",
    "ExperimentConfig",
    "ExperimentResult",
    "FailedCell",
    "MetricsCollector",
    "ParallelExecutor",
    "PolicySpec",
    "ResultCache",
    "SCHEMA_VERSION",
    "SimulationEngine",
    "WorkloadSpec",
    "build_machine",
    "cell_fingerprint",
    "compare_policies",
    "executor_from_env",
    "ratio_to_cxl_multiple",
    "register_policy",
    "register_workload",
    "run_all_local",
    "run_cells",
    "run_experiment",
    "sweep",
]
