"""Deterministic fault injection for the simulated tiering stack.

One :class:`FaultInjector` instance is built per experiment from a
:class:`~repro.faults.plan.FaultPlan` and wired into the three contact
points a real tiering daemon has with the kernel:

- :meth:`~repro.memsim.machine.Machine.move_pages` consults
  :meth:`FaultInjector.filter_migration` (per-page EBUSY, pinned pages,
  target-node ENOMEM bursts);
- :meth:`~repro.sampling.pebs.PEBSSampler.observe` consults
  :meth:`FaultInjector.sample_loss` and
  :meth:`FaultInjector.corrupt_samples`;
- the engine (or :meth:`Machine.service_accesses` when driven
  directly) calls :meth:`FaultInjector.tick_batch` once per batch,
  which advances the crash countdown.

All randomness comes from one ``numpy`` Generator seeded with the
plan's fault seed, so a faulted run is **bit-identical across
repeats** -- the property the chaos suite asserts.  Every injected
fault is traced as a ``fault_injected`` event and tallied in
:attr:`FaultInjector.counters` for assertions that need no tracer.
"""

from __future__ import annotations

import os

import numpy as np

from repro.faults.plan import FaultPlan
from repro.obs import NULL_TRACER, Tracer

_EMPTY = np.zeros(0, dtype=np.int64)


class InjectedCrash(RuntimeError):
    """The fault plan scheduled a daemon crash at this point."""


class FaultInjector:
    """Executes a :class:`FaultPlan` against one simulated machine.

    Parameters
    ----------
    plan:
        The fault plan to execute.
    total_pages:
        The machine's total page count -- bounds the pinned-page draw
        and positions corrupted sample ids *out of* range.
    tracer:
        Observability handle (``fault_injected`` events); usually
        installed later by the engine, alongside the machine's.
    """

    def __init__(
        self,
        plan: FaultPlan,
        total_pages: int,
        tracer: Tracer = NULL_TRACER,
    ):
        if total_pages < 1:
            raise ValueError(f"total_pages must be >= 1, got {total_pages}")
        self.plan = plan
        self.total_pages = int(total_pages)
        self.tracer = tracer
        self._rng = np.random.default_rng(np.random.SeedSequence([plan.seed, 0xFA]))
        self._pinned_mask = np.zeros(self.total_pages, dtype=bool)
        if plan.pinned_fraction > 0.0:
            n_pinned = int(round(plan.pinned_fraction * self.total_pages))
            if n_pinned:
                drawn = self._rng.choice(
                    self.total_pages, size=n_pinned, replace=False
                )
                self._pinned_mask[drawn] = True
        for page in plan.pinned_pages:
            if page < self.total_pages:
                self._pinned_mask[page] = True
        #: Remaining ENOMEM-burst calls per target tier id.
        self._enomem_left: dict[int, int] = {}
        #: Remaining sample-loss-burst observed batches.
        self._loss_left = 0
        self.batch_index = 0
        #: Set when state was restored from a checkpoint: the restored
        #: incarnation *is* the post-crash run, so the scheduled crash
        #: must not re-fire on every subsequent batch.
        self._crash_disarmed = False
        #: Injected-fault tallies by kind (mirrors the traced events).
        self.counters: dict[str, int] = {
            "migration_transient": 0,
            "migration_pinned": 0,
            "migration_enomem": 0,
            "samples_lost": 0,
            "samples_corrupted": 0,
        }

    # -- time base ---------------------------------------------------------

    def tick_batch(self) -> None:
        """Advance one simulated batch; fires any scheduled crash."""
        self.batch_index += 1
        after = self.plan.crash_after_batches
        if after is not None and not self._crash_disarmed and (
            self.batch_index >= after
        ):
            if self.plan.crash_hard:
                # A segfaulting daemon does not unwind its stack; this
                # is what produces BrokenProcessPool under a pool.
                os._exit(13)
            raise InjectedCrash(
                f"injected crash after {self.batch_index} batches"
            )

    def disarm_crash(self) -> None:
        """Prevent the scheduled crash from (re)firing.

        :meth:`load_state` disarms implicitly (a restored incarnation
        is the post-crash run); supervisors that restart *without* a
        checkpoint -- e.g. the serving daemon's watchdog on a fresh
        restart -- must disarm explicitly, or the rebuilt injector
        would re-fire the same crash forever.
        """
        self._crash_disarmed = True

    # -- migration faults --------------------------------------------------

    @property
    def pinned_pages(self) -> np.ndarray:
        """The resolved pinned-page set (sorted page ids)."""
        return np.flatnonzero(self._pinned_mask).astype(np.int64)

    def filter_migration(
        self, pages: np.ndarray, target_tier: int
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, bool]:
        """Partition one migration batch into (allowed, pinned, transient).

        Returns ``(allowed, failed_pinned, failed_transient, enomem)``.
        During an ENOMEM burst on ``target_tier`` the whole call fails:
        ``allowed`` is empty, every page lands in ``failed_transient``
        (the caller cannot distinguish why the node refused), and
        ``enomem`` is True.
        """
        plan = self.plan
        n = int(pages.size)
        if n == 0:
            return pages, _EMPTY, _EMPTY, False
        if self._enomem_active(target_tier):
            self.counters["migration_enomem"] += n
            self._trace("migration_enomem", n)
            return _EMPTY, _EMPTY, pages, True
        pinned = self._pinned_mask[pages]
        if plan.migration_fail_prob > 0.0:
            transient = self._rng.random(n) < plan.migration_fail_prob
        else:
            transient = np.zeros(n, dtype=bool)
        transient &= ~pinned  # pinned dominates
        allowed = pages[~pinned & ~transient]
        n_pinned = int(np.count_nonzero(pinned))
        n_transient = int(np.count_nonzero(transient))
        if n_pinned:
            self.counters["migration_pinned"] += n_pinned
            self._trace("migration_pinned", n_pinned)
        if n_transient:
            self.counters["migration_transient"] += n_transient
            self._trace("migration_transient", n_transient)
        return allowed, pages[pinned], pages[transient], False

    def _enomem_active(self, target_tier: int) -> bool:
        """One ENOMEM-burst state step for a move_pages call."""
        left = self._enomem_left.get(target_tier, 0)
        if left > 0:
            self._enomem_left[target_tier] = left - 1
            return True
        if self.plan.enomem_prob > 0.0 and (
            float(self._rng.random()) < self.plan.enomem_prob
        ):
            self._enomem_left[target_tier] = self.plan.enomem_burst_calls - 1
            return True
        return False

    # -- sampling faults ---------------------------------------------------

    def sample_loss(self, num_samples: int) -> int:
        """Samples (out of ``num_samples``) lost to an overrun burst.

        Bursts are all-or-nothing per observed batch, matching how a
        ring overrun drops whole drain intervals.
        """
        if num_samples <= 0:
            return 0
        if self._loss_left > 0:
            self._loss_left -= 1
            self.counters["samples_lost"] += num_samples
            self._trace("samples_lost", num_samples)
            return num_samples
        if self.plan.sample_loss_prob > 0.0 and (
            float(self._rng.random()) < self.plan.sample_loss_prob
        ):
            self._loss_left = self.plan.sample_loss_burst_batches - 1
            self.counters["samples_lost"] += num_samples
            self._trace("samples_lost", num_samples)
            return num_samples
        return 0

    def corrupt_samples(self, page_ids: np.ndarray) -> np.ndarray:
        """Replace a random subset of sample ids with out-of-range garbage.

        Returns a copy when anything is corrupted; the input is never
        mutated (the sampler hands us views into the workload batch).
        """
        prob = self.plan.sample_corrupt_prob
        n = int(page_ids.size)
        if prob <= 0.0 or n == 0:
            return page_ids
        mask = self._rng.random(n) < prob
        n_bad = int(np.count_nonzero(mask))
        if n_bad == 0:
            return page_ids
        corrupted = page_ids.copy()
        # Garbage ids beyond the mapped space, as a torn 16-byte PEBS
        # record read would yield.
        corrupted[mask] = self.total_pages + self._rng.integers(
            0, 1 << 20, size=n_bad, dtype=np.int64
        )
        self.counters["samples_corrupted"] += n_bad
        self._trace("samples_corrupted", n_bad)
        return corrupted

    # -- checkpointing -----------------------------------------------------

    def state_dict(self) -> dict:
        """All mutable injector state (the pinned mask is a pure
        function of the plan seed, so it is not duplicated here)."""
        return {
            "rng": self._rng.bit_generator.state,
            "enomem_left": [
                [int(tier), int(left)]
                for tier, left in sorted(self._enomem_left.items())
            ],
            "loss_left": self._loss_left,
            "batch_index": self.batch_index,
            "counters": dict(self.counters),
        }

    def load_state(self, state: dict) -> None:
        """Restore injector state; disarms any scheduled crash.

        The restored incarnation is the run *after* the injected crash:
        the crash check consumes no RNG, so a crashed-then-resumed run
        stays bit-identical to an uninterrupted run whose plan never
        scheduled the crash.
        """
        self._rng.bit_generator.state = state["rng"]
        self._enomem_left = {
            int(tier): int(left) for tier, left in state["enomem_left"]
        }
        self._loss_left = int(state["loss_left"])
        self.batch_index = int(state["batch_index"])
        self.counters = {
            str(kind): int(count) for kind, count in state["counters"].items()
        }
        self._crash_disarmed = True

    # -- tracing -----------------------------------------------------------

    def _trace(self, kind: str, count: int) -> None:
        if self.tracer.enabled:
            self.tracer.count(f"faults_{kind}", count)
            self.tracer.emit("fault_injected", kind=kind, count=count)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FaultInjector(batch={self.batch_index}, "
            f"counters={self.counters})"
        )
