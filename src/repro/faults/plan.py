"""Declarative fault plans: what goes wrong, how often, under which seed.

A :class:`FaultPlan` is the picklable, JSON-serializable description of
every fault class the simulator can inject -- the adversarial
conditions a production tiering daemon meets routinely (ARMS makes
robustness under exactly these the headline property):

- **transient migration failures** -- ``numa_move_pages`` returning
  per-page ``-EBUSY``/``-EAGAIN`` (page under writeback, refcount
  pinned for a moment);
- **pinned pages** -- pages that *permanently* fail to migrate
  (long-term GUP pins, DMA buffers): same errno at the call site, but
  retrying forever is wasted work;
- **target-node ENOMEM bursts** -- the destination node transiently
  out of free pages, failing whole ``move_pages()`` calls for a spell;
- **PEBS sample loss bursts** -- ring-buffer overruns dropping every
  sample for several drain intervals;
- **corrupted samples** -- records with garbage (out-of-range) page
  ids, as a torn PEBS read would produce;
- **crashes** -- the daemon (or the whole experiment process) dying
  mid-run, for exercising executor recovery.

Plans are *deterministic*: the same plan (same ``seed``) injected into
the same simulation produces bit-identical faults, so a chaos run is
as reproducible as a clean one.  Plans hash into the result-cache
fingerprint (only when active), so faulted and fault-free results can
never collide.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass
from typing import Any


@dataclass(frozen=True)
class FaultPlan:
    """Seeded, picklable description of the faults to inject."""

    #: Seed of the fault RNG stream (independent of every other seed in
    #: the simulation, so adding faults never perturbs workload/policy
    #: randomness).
    seed: int = 0

    # --- migration faults (numa_move_pages analogues) ---
    #: Per-page probability that one migration attempt fails
    #: transiently (EBUSY-style); the page stays put and may be retried.
    migration_fail_prob: float = 0.0
    #: Fraction of the machine's pages that are pinned: every migration
    #: attempt on them fails, forever.  The set is drawn once per
    #: machine from ``seed``.
    pinned_fraction: float = 0.0
    #: Explicit pinned page ids (unioned with the drawn set).
    pinned_pages: tuple[int, ...] = ()
    #: Per-``move_pages``-call probability that the *target node* enters
    #: an ENOMEM burst: this call and the next ``enomem_burst_calls - 1``
    #: calls targeting the same tier fail wholesale.
    enomem_prob: float = 0.0
    #: Length of one ENOMEM burst, in ``move_pages`` calls.
    enomem_burst_calls: int = 4

    # --- sampling faults (PEBS analogues) ---
    #: Per-``observe``-call probability that a sample-loss burst starts:
    #: every sample in this and the next ``sample_loss_burst_batches - 1``
    #: observed batches is dropped (counted as lost).
    sample_loss_prob: float = 0.0
    #: Length of one sample-loss burst, in observed batches.
    sample_loss_burst_batches: int = 4
    #: Per-sample probability that the recorded page id is corrupted to
    #: an out-of-range value (torn record read).
    sample_corrupt_prob: float = 0.0

    # --- process faults (executor recovery) ---
    #: Raise :class:`~repro.faults.injector.InjectedCrash` after this
    #: many simulated batches (None = never).
    crash_after_batches: int | None = None
    #: With ``crash_after_batches``: kill the process outright
    #: (``os._exit``) instead of raising -- produces the
    #: ``BrokenProcessPool`` a worker segfault would.
    crash_hard: bool = False

    def __post_init__(self) -> None:
        for name in ("migration_fail_prob", "pinned_fraction",
                     "enomem_prob", "sample_loss_prob",
                     "sample_corrupt_prob"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        if self.enomem_burst_calls < 1:
            raise ValueError(
                f"enomem_burst_calls must be >= 1, got {self.enomem_burst_calls}"
            )
        if self.sample_loss_burst_batches < 1:
            raise ValueError(
                "sample_loss_burst_batches must be >= 1, got "
                f"{self.sample_loss_burst_batches}"
            )
        if self.crash_after_batches is not None and self.crash_after_batches < 1:
            raise ValueError(
                f"crash_after_batches must be >= 1, got {self.crash_after_batches}"
            )
        if any(p < 0 for p in self.pinned_pages):
            raise ValueError(f"pinned_pages must be >= 0, got {self.pinned_pages}")

    # -- identity ---------------------------------------------------------

    @property
    def active(self) -> bool:
        """True if this plan injects anything at all."""
        return bool(
            self.migration_fail_prob
            or self.pinned_fraction
            or self.pinned_pages
            or self.enomem_prob
            or self.sample_loss_prob
            or self.sample_corrupt_prob
            or self.crash_after_batches is not None
        )

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready rendering (cache fingerprinting, CLI round-trip)."""
        out = dataclasses.asdict(self)
        out["pinned_pages"] = list(self.pinned_pages)
        return out

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "FaultPlan":
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown FaultPlan fields {sorted(unknown)}; "
                f"known: {sorted(known)}"
            )
        fields = dict(data)
        if "pinned_pages" in fields:
            fields["pinned_pages"] = tuple(int(p) for p in fields["pinned_pages"])
        return cls(**fields)

    def replace(self, **overrides: Any) -> "FaultPlan":
        return dataclasses.replace(self, **overrides)


#: Named plans for the CLI and the chaos suite.  ``transient`` is the
#: default chaos preset the acceptance criteria reference: 1% per-page
#: migration failure.
FAULT_PRESETS: dict[str, FaultPlan] = {
    "none": FaultPlan(),
    "transient": FaultPlan(migration_fail_prob=0.01),
    "pinned": FaultPlan(pinned_fraction=0.01),
    "enomem": FaultPlan(enomem_prob=0.02, enomem_burst_calls=8),
    "sample-loss": FaultPlan(sample_loss_prob=0.05, sample_loss_burst_batches=8),
    "corrupt": FaultPlan(sample_corrupt_prob=0.02),
    "chaos": FaultPlan(
        migration_fail_prob=0.01,
        pinned_fraction=0.005,
        enomem_prob=0.01,
        enomem_burst_calls=4,
        sample_loss_prob=0.02,
        sample_loss_burst_batches=4,
        sample_corrupt_prob=0.01,
    ),
}


def parse_fault_spec(text: str) -> FaultPlan:
    """Parse a CLI ``--faults`` value: a preset name or inline JSON.

    ``"transient"`` -> the named preset;
    ``'{"migration_fail_prob": 0.05, "seed": 7}'`` -> a custom plan.
    """
    text = text.strip()
    if text in FAULT_PRESETS:
        return FAULT_PRESETS[text]
    if text.startswith("{"):
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ValueError(f"--faults JSON is invalid: {exc}") from exc
        return FaultPlan.from_dict(data)
    valid = ", ".join(sorted(FAULT_PRESETS))
    raise ValueError(
        f"unknown fault preset {text!r} (and not inline JSON); "
        f"presets: {valid}"
    )
