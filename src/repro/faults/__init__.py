"""Deterministic fault injection and graceful-degradation support.

- :class:`~repro.faults.plan.FaultPlan` -- picklable, seeded
  description of what to inject (presets in
  :data:`~repro.faults.plan.FAULT_PRESETS`);
- :class:`~repro.faults.injector.FaultInjector` -- executes a plan
  against one machine/sampler, deterministically;
- :class:`~repro.faults.injector.InjectedCrash` -- the scheduled-crash
  exception used to exercise executor recovery.

See docs/API.md "Fault injection & resilience".
"""

from repro.faults.injector import FaultInjector, InjectedCrash
from repro.faults.plan import FAULT_PRESETS, FaultPlan, parse_fault_spec

__all__ = [
    "FAULT_PRESETS",
    "FaultInjector",
    "FaultPlan",
    "InjectedCrash",
    "parse_fault_spec",
]
