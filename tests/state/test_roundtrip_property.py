"""Property: every policy and workload round-trips its state dict.

``p2.load_state(p1.state_dict())`` on a freshly built, attached
instance must reproduce ``p1``'s state bit-identically -- including
through a JSON serialization boundary (the form snapshots take on
disk).  Parametrized over every registered policy x every workload
family; workload generators additionally prove their *future draws*
are frozen by the round trip.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.config import ExperimentConfig
from repro.core.engine import SimulationEngine
from repro.core.parallel import PolicySpec, WorkloadSpec
from repro.core.runner import build_machine
from repro.state import decode_state, encode_state

CONFIG = ExperimentConfig(local_fraction=0.1, ratio_label="1:8", seed=3)

POLICY_NAMES = [
    "freqtier",
    "hybridtier",
    "autonuma",
    "tpp",
    "hemem",
    "multiclock",
    "damon",
    "static",
]

WORKLOADS = {
    "zipf": WorkloadSpec("zipf", num_pages=1024, alpha=1.1, seed=3),
    "cdn": WorkloadSpec("cdn", slab_pages=1024, ops_per_batch=2000, seed=3),
    "social": WorkloadSpec(
        "social", slab_pages=1024, ops_per_batch=2000, seed=3
    ),
    "gap-bfs": WorkloadSpec("gap", kernel="bfs", scale=11, num_trials=2, seed=3),
    "xgboost": WorkloadSpec("xgboost", num_rounds=4, seed=3),
}


def _policy_spec(name: str) -> PolicySpec:
    return PolicySpec(name) if name == "static" else PolicySpec(name, seed=3)


def _engine(policy_name: str, workload_key: str) -> SimulationEngine:
    workload = WORKLOADS[workload_key]()
    machine = build_machine(workload.footprint_pages, CONFIG)
    return SimulationEngine(machine, workload, _policy_spec(policy_name)())


def _json_round_trip(state: dict) -> dict:
    return decode_state(json.loads(json.dumps(encode_state(state))))


@pytest.mark.parametrize("workload_key", sorted(WORKLOADS))
@pytest.mark.parametrize("policy_name", POLICY_NAMES)
def test_policy_state_round_trips(policy_name, workload_key):
    engine = _engine(policy_name, workload_key)
    engine.run(max_batches=6)
    state = engine.policy.state_dict()
    canonical = encode_state(state)

    fresh = _engine(policy_name, workload_key)
    fresh.capture_state()  # forces setup: components attached
    fresh.policy.load_state(_json_round_trip(state))
    assert encode_state(fresh.policy.state_dict()) == canonical


@pytest.mark.parametrize("workload_key", sorted(WORKLOADS))
def test_workload_state_round_trips_and_freezes_draws(workload_key):
    spec = WORKLOADS[workload_key]
    w1, w2 = spec(), spec()
    m1 = build_machine(w1.footprint_pages, CONFIG)
    m2 = build_machine(w2.footprint_pages, CONFIG)
    w1.setup(m1)
    w2.setup(m2)

    # Advance w1 mid-stream so its RNG state is non-trivial.
    stream = w1.batches()
    for _ in range(4):
        if next(stream, None) is None:
            break

    state = w1.state_dict()
    canonical = encode_state(state)
    w2.load_state(_json_round_trip(state))
    assert encode_state(w2.state_dict()) == canonical

    # Identical restored state must produce identical future draws.
    b1 = next(w1.batches(), None)
    b2 = next(w2.batches(), None)
    assert (b1 is None) == (b2 is None)
    if b1 is not None:
        assert np.array_equal(b1.page_ids, b2.page_ids)
        assert b1.num_ops == b2.num_ops
        assert b1.cpu_ns == b2.cpu_ns
