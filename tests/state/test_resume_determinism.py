"""Acceptance property: kill-at-any-batch resume is bit-identical.

For fixed seeds, a run checkpointed and killed mid-flight, then
resumed, must produce an :class:`ExperimentResult` exactly equal to an
uninterrupted run -- across seeds, across policies, and with an active
fault plan injecting migration/sampling failures.
"""

from __future__ import annotations

import json

import pytest

from repro.core.config import ExperimentConfig
from repro.core.parallel import PolicySpec, WorkloadSpec
from repro.core.runner import run_experiment
from repro.faults import FaultPlan
from repro.state import CheckpointManager

TOTAL_BATCHES = 36
KILL_AT = 17  # not a checkpoint multiple: resume replays a partial interval
EVERY = 5

ACTIVE_PLAN = FaultPlan(
    migration_fail_prob=0.1, sample_loss_prob=0.05, seed=11
)


def _cfg(seed: int, batches: int) -> ExperimentConfig:
    return ExperimentConfig(
        local_fraction=0.1, ratio_label="1:8", max_batches=batches, seed=seed
    )


def _specs(policy: str, seed: int):
    workload = WorkloadSpec("zipf", num_pages=2048, alpha=1.2, seed=seed)
    return workload, PolicySpec(policy, seed=seed)


@pytest.mark.parametrize("faults", [None, ACTIVE_PLAN], ids=["nofaults", "faults"])
@pytest.mark.parametrize("policy", ["freqtier", "hemem"])
@pytest.mark.parametrize("seed", [0, 1, 2])
def test_kill_resume_is_bit_identical(tmp_path, seed, policy, faults):
    workload, pol = _specs(policy, seed)
    reference = run_experiment(
        workload, pol, _cfg(seed, TOTAL_BATCHES), faults=faults
    )

    # "Kill at batch KILL_AT": run only that far, checkpointing as we go.
    ckpt = tmp_path / "ck"
    run_experiment(
        workload,
        pol,
        _cfg(seed, KILL_AT),
        faults=faults,
        checkpoint_dir=ckpt,
        checkpoint_every_batches=EVERY,
    )
    resumed = run_experiment(
        workload, pol, _cfg(seed, TOTAL_BATCHES), faults=faults, resume_from=ckpt
    )
    assert resumed.to_dict() == reference.to_dict()


@pytest.mark.parametrize(
    "policy", ["autonuma", "tpp", "multiclock", "hemem", "damon"]
)
@pytest.mark.parametrize("seed", [0, 1])
def test_kill_resume_on_compressed_workload(tmp_path, seed, policy):
    """Kill-resume stays bit-identical on the run-compressed fast path.

    The cdn workload emits run-compressed batches and every policy here
    opts out of stream materialization, so this drives resume through
    the compressed observers (position-sampled PEBS, compressed hint
    faults, strided touched sets) rather than the zipf matrix's
    expanded streams.
    """
    workload = WorkloadSpec(
        "cdn", slab_pages=2_048, ops_per_batch=2_000, seed=seed
    )
    pol = PolicySpec(policy, seed=seed)
    reference = run_experiment(workload, pol, _cfg(seed, TOTAL_BATCHES))
    ckpt = tmp_path / "ck"
    run_experiment(
        workload,
        pol,
        _cfg(seed, KILL_AT),
        checkpoint_dir=ckpt,
        checkpoint_every_batches=EVERY,
    )
    resumed = run_experiment(
        workload, pol, _cfg(seed, TOTAL_BATCHES), resume_from=ckpt
    )
    assert resumed.to_dict() == reference.to_dict()


def test_checkpointing_itself_does_not_perturb_results(tmp_path):
    workload, pol = _specs("freqtier", 4)
    reference = run_experiment(workload, pol, _cfg(4, TOTAL_BATCHES))
    checkpointed = run_experiment(
        workload,
        pol,
        _cfg(4, TOTAL_BATCHES),
        checkpoint_dir=tmp_path / "ck",
        checkpoint_every_batches=EVERY,
    )
    assert checkpointed.to_dict() == reference.to_dict()


def test_corrupt_newest_generation_falls_back_and_completes(tmp_path):
    workload, pol = _specs("freqtier", 7)
    reference = run_experiment(workload, pol, _cfg(7, TOTAL_BATCHES))

    ckpt = tmp_path / "ck"
    run_experiment(
        workload,
        pol,
        _cfg(7, KILL_AT),
        checkpoint_dir=ckpt,
        checkpoint_every_batches=EVERY,
    )
    generations = CheckpointManager(ckpt).generations()
    assert len(generations) >= 2
    generations[-1].write_text("{ torn mid-write", encoding="utf-8")

    resumed = run_experiment(
        workload, pol, _cfg(7, TOTAL_BATCHES), resume_from=ckpt
    )
    assert resumed.to_dict() == reference.to_dict()
    # The bad generation was quarantined for diagnosis.
    assert list(ckpt.glob("*.corrupt"))


def test_resume_from_missing_directory_is_a_fresh_start(tmp_path):
    workload, pol = _specs("freqtier", 5)
    reference = run_experiment(workload, pol, _cfg(5, 12))
    resumed = run_experiment(
        workload, pol, _cfg(5, 12), resume_from=tmp_path / "never-written"
    )
    assert resumed.to_dict() == reference.to_dict()


def test_identity_mismatch_is_rejected(tmp_path):
    workload, pol = _specs("freqtier", 6)
    ckpt = tmp_path / "ck"
    run_experiment(
        workload,
        pol,
        _cfg(6, KILL_AT),
        checkpoint_dir=ckpt,
        checkpoint_every_batches=EVERY,
    )
    other_workload, other_pol = _specs("hemem", 6)
    with pytest.raises(ValueError, match="does not match"):
        run_experiment(
            other_workload,
            other_pol,
            _cfg(6, TOTAL_BATCHES),
            resume_from=ckpt,
        )


def test_snapshots_are_json_documents(tmp_path):
    """Checkpoint files are plain JSON (inspectable, diffable)."""
    workload, pol = _specs("freqtier", 8)
    ckpt = tmp_path / "ck"
    run_experiment(
        workload,
        pol,
        _cfg(8, 10),
        checkpoint_dir=ckpt,
        checkpoint_every_batches=5,
    )
    paths = CheckpointManager(ckpt).generations()
    assert paths
    doc = json.loads(paths[-1].read_text())
    assert doc["schema"] == 1
    assert doc["payload"]["progress"]["batches_done"] == 10
