"""Snapshot codec and integrity envelope."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.state import (
    STATE_SCHEMA_VERSION,
    Snapshot,
    SnapshotError,
    decode_state,
    encode_state,
    payload_digest,
    rng_state,
    set_rng_state,
)


class TestCodec:
    @pytest.mark.parametrize(
        "dtype", ["int8", "int64", "uint16", "float32", "float64", "bool"]
    )
    def test_ndarray_round_trip_is_bit_exact(self, dtype):
        rng = np.random.default_rng(1)
        arr = (rng.random((7, 3)) * 100).astype(dtype)
        back = decode_state(json.loads(json.dumps(encode_state(arr))))
        assert back.dtype == arr.dtype
        assert back.shape == arr.shape
        assert np.array_equal(back, arr)
        # Restored arrays must be writable (they are restored *into*
        # live state, not read-only views of the decode buffer).
        back[0, 0] = back[0, 0]

    def test_nan_and_inf_survive(self):
        arr = np.array([np.nan, np.inf, -np.inf, 0.1])
        back = decode_state(json.loads(json.dumps(encode_state(arr))))
        assert np.array_equal(back, arr, equal_nan=True)

    def test_nested_structures(self):
        payload = {
            "a": [1, 2.5, None, True, "x"],
            "b": {"inner": np.arange(4, dtype=np.int32)},
            "scalar": np.int64(7),
            "tup": (1, 2),
        }
        back = decode_state(json.loads(json.dumps(encode_state(payload))))
        assert back["a"] == [1, 2.5, None, True, "x"]
        assert np.array_equal(back["b"]["inner"], np.arange(4))
        assert back["scalar"] == 7
        assert back["tup"] == [1, 2]  # tuples become lists by contract

    def test_non_string_keys_rejected(self):
        with pytest.raises(TypeError, match="keys must be str"):
            encode_state({1: "x"})

    def test_unencodable_objects_rejected(self):
        with pytest.raises(TypeError, match="cannot encode"):
            encode_state({"bad": {1, 2}})

    def test_rng_state_round_trip_freezes_draws(self):
        rng1 = np.random.default_rng(9)
        rng1.random(13)  # advance mid-stream
        state = json.loads(json.dumps(encode_state(rng_state(rng1))))
        rng2 = np.random.default_rng(0)
        set_rng_state(rng2, decode_state(state))
        assert np.array_equal(rng1.random(8), rng2.random(8))


class TestSnapshot:
    def test_create_verify_decode(self):
        payload = {"x": np.arange(5), "n": 3}
        snap = Snapshot.create(payload)
        assert snap.schema == STATE_SCHEMA_VERSION
        snap.verify()
        decoded = snap.decoded()
        assert np.array_equal(decoded["x"], np.arange(5))
        assert decoded["n"] == 3

    def test_json_document_round_trip(self):
        snap = Snapshot.create({"v": [1, 2, 3]})
        doc = json.loads(json.dumps(snap.to_json_dict()))
        clone = Snapshot.from_json_dict(doc)
        clone.verify()
        assert clone.decoded() == {"v": [1, 2, 3]}

    def test_tampered_payload_fails_digest(self):
        snap = Snapshot.create({"v": 1})
        doc = snap.to_json_dict()
        doc["payload"]["v"] = 2
        with pytest.raises(SnapshotError, match="digest mismatch"):
            Snapshot.from_json_dict(doc).verify()

    def test_wrong_schema_rejected(self):
        snap = Snapshot.create({"v": 1})
        doc = snap.to_json_dict()
        doc["schema"] = STATE_SCHEMA_VERSION + 1
        with pytest.raises(SnapshotError, match="schema"):
            Snapshot.from_json_dict(doc).verify()

    @pytest.mark.parametrize(
        "doc",
        [
            "not a dict",
            {},
            {"schema": 1, "digest": 0, "payload": {}},
            {"schema": "1", "digest": "x", "payload": {}},
        ],
    )
    def test_malformed_documents_rejected(self, doc):
        with pytest.raises(SnapshotError):
            Snapshot.from_json_dict(doc)

    def test_digest_is_key_order_independent(self):
        assert payload_digest({"a": 1, "b": 2}) == payload_digest(
            {"b": 2, "a": 1}
        )
