"""CheckpointManager: rotation, corruption fallback, inspection."""

from __future__ import annotations

import json

import pytest

from repro.state import CheckpointManager


def _payload(n: int) -> dict:
    return {"progress": {"batches_done": n, "now_ns": float(n)}}


class TestRotation:
    def test_keeps_only_newest_generations(self, tmp_path):
        mgr = CheckpointManager(tmp_path, keep=3)
        for n in range(5):
            mgr.save(_payload(n))
        names = [p.name for p in mgr.generations()]
        assert names == [
            "snap-00000003.json",
            "snap-00000004.json",
            "snap-00000005.json",
        ]

    def test_load_latest_returns_newest(self, tmp_path):
        mgr = CheckpointManager(tmp_path)
        for n in range(3):
            mgr.save(_payload(n))
        loaded = mgr.load_latest()
        assert loaded is not None
        assert loaded.payload["progress"]["batches_done"] == 2
        assert loaded.generation == 3

    def test_empty_directory_loads_none(self, tmp_path):
        assert CheckpointManager(tmp_path).load_latest() is None

    def test_keep_must_be_positive(self, tmp_path):
        with pytest.raises(ValueError, match="keep"):
            CheckpointManager(tmp_path, keep=0)

    def test_path_collision_with_file(self, tmp_path):
        target = tmp_path / "occupied"
        target.write_text("")
        with pytest.raises(NotADirectoryError):
            CheckpointManager(target)


class TestCorruptionFallback:
    def test_corrupt_newest_falls_back_to_previous(self, tmp_path):
        mgr = CheckpointManager(tmp_path)
        mgr.save(_payload(1))
        newest = mgr.save(_payload(2))
        newest.write_text("{ torn", encoding="utf-8")
        loaded = CheckpointManager(tmp_path).load_latest()
        assert loaded is not None
        assert loaded.payload["progress"]["batches_done"] == 1
        # The bad generation was quarantined, not deleted.
        assert (tmp_path / "snap-00000002.corrupt").exists()

    def test_digest_mismatch_is_treated_as_corrupt(self, tmp_path):
        mgr = CheckpointManager(tmp_path)
        mgr.save(_payload(1))
        newest = mgr.save(_payload(2))
        doc = json.loads(newest.read_text())
        doc["payload"]["progress"]["batches_done"] = 99  # bit-rot
        newest.write_text(json.dumps(doc), encoding="utf-8")
        loaded = mgr.load_latest()
        assert loaded is not None
        assert loaded.payload["progress"]["batches_done"] == 1

    def test_all_corrupt_loads_none(self, tmp_path):
        mgr = CheckpointManager(tmp_path)
        for n in range(2):
            path = mgr.save(_payload(n))
            path.write_text("garbage")
        assert mgr.load_latest() is None
        assert len(list(tmp_path.glob("*.corrupt"))) == 2

    def test_quarantined_sequence_numbers_never_reused(self, tmp_path):
        mgr = CheckpointManager(tmp_path)
        path = mgr.save(_payload(1))
        path.write_text("garbage")
        assert mgr.load_latest() is None  # quarantines snap-...1
        newest = mgr.save(_payload(2))
        assert newest.name == "snap-00000002.json"


class TestInspect:
    def test_reports_validity_and_progress(self, tmp_path):
        mgr = CheckpointManager(tmp_path)
        mgr.save(_payload(10))
        bad = mgr.save(_payload(20))
        bad.write_text("{ torn")
        report = mgr.inspect()
        assert len(report) == 2
        good, torn = report
        assert good["valid"] is True
        assert good["progress"]["batches_done"] == 10
        assert torn["valid"] is False
        assert "error" in torn
        # inspect() never quarantines -- the torn file stays in place.
        assert bad.exists()
