"""Executor-level durability: crash-retry resume and the sweep journal."""

from __future__ import annotations

import dataclasses

import pytest

from repro.core.config import ExperimentConfig
from repro.core.parallel import (
    CellSpec,
    FailedCell,
    ParallelExecutor,
    PolicySpec,
    WorkloadSpec,
)
from repro.core.runner import run_experiment
from repro.faults import FaultPlan

WORKLOAD = WorkloadSpec("zipf", num_pages=2048, alpha=1.2, seed=5)
POLICY = PolicySpec("freqtier", seed=5)
CONFIG = ExperimentConfig(
    local_fraction=0.1, ratio_label="1:8", max_batches=36, seed=5
)

CRASH_PLAN = FaultPlan(migration_fail_prob=0.05, crash_after_batches=18, seed=5)
#: The crash check consumes no RNG, so a crashed-then-resumed run must
#: equal a run under the same plan with the crash removed.
REFERENCE_PLAN = dataclasses.replace(CRASH_PLAN, crash_after_batches=None)


def _reference():
    return run_experiment(WORKLOAD, POLICY, CONFIG, faults=REFERENCE_PLAN)


def test_crash_retry_resumes_from_checkpoint(tmp_path):
    executor = ParallelExecutor(
        jobs=2, retries=1, checkpoint_root=tmp_path, checkpoint_every=5
    )
    result = executor.run_one(
        CellSpec(WORKLOAD, POLICY, CONFIG, label="crash", faults=CRASH_PLAN)
    )
    assert not isinstance(result, FailedCell)
    assert result.to_dict() == _reference().to_dict()
    assert executor.stats.retries == 1
    # The cell got its own directory under <root>/cells/ with snapshots.
    cells = list((tmp_path / "cells").iterdir())
    assert len(cells) == 1
    assert list(cells[0].glob("snap-*.json"))


def test_hard_crash_retry_resumes_after_pool_rebuild(tmp_path):
    # A second, innocent cell forces the pool path (a lone cell runs
    # serially in this process, which a hard crash would take down).
    plan = dataclasses.replace(CRASH_PLAN, crash_hard=True)
    executor = ParallelExecutor(
        jobs=2, retries=1, checkpoint_root=tmp_path, checkpoint_every=5
    )
    crasher = CellSpec(WORKLOAD, POLICY, CONFIG, label="hardcrash", faults=plan)
    innocent = CellSpec(WORKLOAD, POLICY, CONFIG, label="innocent")
    crashed, clean = executor.run([crasher, innocent])
    assert not isinstance(crashed, FailedCell)
    assert crashed.to_dict() == _reference().to_dict()
    assert clean.to_dict() == run_experiment(WORKLOAD, POLICY, CONFIG).to_dict()
    assert executor.stats.pool_rebuilds >= 1


def test_journal_skips_completed_cells_across_invocations(tmp_path):
    spec = CellSpec(WORKLOAD, POLICY, CONFIG, label="cell")
    first = ParallelExecutor(jobs=1, checkpoint_root=tmp_path)
    res1 = first.run_one(spec)
    assert first.stats.journal_hits == 0

    second = ParallelExecutor(jobs=1, checkpoint_root=tmp_path)
    res2 = second.run_one(spec)
    assert second.stats.journal_hits == 1
    assert second.stats.executed == 0
    assert res2.to_dict() == res1.to_dict()


def test_journal_results_match_fresh_computation(tmp_path):
    inline = run_experiment(WORKLOAD, POLICY, CONFIG)
    executor = ParallelExecutor(jobs=1, checkpoint_root=tmp_path)
    journalled = executor.run_one(CellSpec(WORKLOAD, POLICY, CONFIG))
    assert journalled.to_dict() == inline.to_dict()


def test_all_local_cells_journal_but_do_not_checkpoint(tmp_path):
    executor = ParallelExecutor(jobs=1, checkpoint_root=tmp_path)
    executor.run_one(CellSpec(WORKLOAD, None, CONFIG, label="base"))
    assert not (tmp_path / "cells").exists()
    again = ParallelExecutor(jobs=1, checkpoint_root=tmp_path)
    again.run_one(CellSpec(WORKLOAD, None, CONFIG, label="base"))
    assert again.stats.journal_hits == 1


def test_checkpoint_every_must_be_positive(tmp_path):
    with pytest.raises(ValueError, match="checkpoint_every"):
        ParallelExecutor(checkpoint_root=tmp_path, checkpoint_every=0)
