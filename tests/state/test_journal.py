"""Sweep journal: durable append, torn-line tolerance."""

from __future__ import annotations

from repro.core.config import ExperimentConfig
from repro.core.parallel import PolicySpec, WorkloadSpec, run_cell
from repro.state import SweepJournal

SPEC_RESULT = None


def _result():
    global SPEC_RESULT
    if SPEC_RESULT is None:
        from repro.core.parallel import CellSpec

        SPEC_RESULT = run_cell(
            CellSpec(
                WorkloadSpec("zipf", num_pages=512, alpha=1.1, seed=2),
                PolicySpec("freqtier", seed=2),
                ExperimentConfig(local_fraction=0.1, max_batches=6, seed=2),
            )
        )
    return SPEC_RESULT


def test_record_then_completed_round_trips(tmp_path):
    journal = SweepJournal(tmp_path / "journal.jsonl")
    result = _result()
    journal.record("fp-1", result)
    assert "fp-1" in journal
    assert len(journal) == 1
    assert journal.completed("fp-1").to_dict() == result.to_dict()
    assert journal.completed("fp-other") is None


def test_reload_from_disk(tmp_path):
    path = tmp_path / "journal.jsonl"
    SweepJournal(path).record("fp-1", _result())
    reloaded = SweepJournal(path)
    assert reloaded.completed("fp-1").to_dict() == _result().to_dict()


def test_torn_final_line_is_tolerated(tmp_path):
    path = tmp_path / "journal.jsonl"
    SweepJournal(path).record("fp-1", _result())
    with open(path, "a", encoding="utf-8") as fh:
        fh.write('{"fingerprint": "fp-2", "result": {"trunc')  # killed mid-append
    reloaded = SweepJournal(path)
    assert reloaded.completed("fp-1") is not None
    assert "fp-2" not in reloaded
    assert reloaded.dropped_lines == 1


def test_malformed_entries_dropped_not_fatal(tmp_path):
    path = tmp_path / "journal.jsonl"
    path.write_text(
        '\n{"fingerprint": 7, "result": {}}\n["not", "a", "dict"]\n',
        encoding="utf-8",
    )
    journal = SweepJournal(path)
    assert len(journal) == 0
    assert journal.dropped_lines == 2
