"""Tests for the multi-host CXL pooling extension (Section VIII-b)."""

import pytest

from repro.policies.freqtier import FreqTier, FreqTierConfig
from repro.policies.static_policy import StaticNoMigration
from repro.pooling import CXLPool, HostSpec, MultiHostSimulation
from repro.workloads.trace import SyntheticZipfWorkload


def fast_freqtier(seed=0):
    return FreqTier(
        config=FreqTierConfig(
            sample_batch_size=500, pebs_base_period=4, window_accesses=100_000
        ),
        seed=seed,
    )


class TestCXLPool:
    def test_registration_and_accounting(self):
        pool = CXLPool(total_pages=1000)
        pool.register_host("a", 400)
        pool.register_host("b", 300)
        assert pool.granted_total == 700
        assert pool.unallocated_pages == 300

    def test_over_grant_rejected(self):
        pool = CXLPool(total_pages=100)
        pool.register_host("a", 80)
        with pytest.raises(ValueError):
            pool.register_host("b", 30)

    def test_duplicate_host_rejected(self):
        pool = CXLPool(total_pages=100)
        pool.register_host("a", 10)
        with pytest.raises(ValueError):
            pool.register_host("a", 10)

    def test_usage_validation(self):
        pool = CXLPool(total_pages=100)
        pool.register_host("a", 50)
        pool.report_usage("a", 50)
        with pytest.raises(ValueError):
            pool.report_usage("a", 51)

    def test_rebalance_moves_unallocated_first(self):
        pool = CXLPool(total_pages=1000)
        pool.register_host("needy", 100)
        pool.report_usage("needy", 100)  # fully pressured
        deltas = pool.rebalance()
        assert deltas["needy"] > 0
        assert pool.share_of("needy").granted_pages > 100

    def test_rebalance_takes_from_slack_host(self):
        pool = CXLPool(total_pages=1000)
        pool.register_host("needy", 500)
        pool.register_host("slack", 500)
        pool.report_usage("needy", 500)
        pool.report_usage("slack", 10)
        deltas = pool.rebalance()
        assert deltas["needy"] > 0
        assert deltas.get("slack", 0) < 0
        assert pool.granted_total <= pool.total_pages

    def test_no_rebalance_without_pressure(self):
        pool = CXLPool(total_pages=1000)
        pool.register_host("a", 500)
        pool.report_usage("a", 100)
        assert pool.rebalance() == {}
        assert pool.rebalances == 0

    def test_invariant_grants_never_exceed_pool(self):
        pool = CXLPool(total_pages=600)
        pool.register_host("a", 300)
        pool.register_host("b", 300)
        for usage_a, usage_b in [(300, 10), (290, 250), (250, 290)]:
            pool.report_usage("a", min(usage_a, pool.share_of("a").granted_pages))
            pool.report_usage("b", min(usage_b, pool.share_of("b").granted_pages))
            pool.rebalance()
            assert pool.granted_total <= pool.total_pages


class TestMultiHostSimulation:
    def make_sim(self, rebalance_interval=10) -> MultiHostSimulation:
        pool = CXLPool(total_pages=16_000)
        hosts = [
            HostSpec(
                name=f"h{i}",
                workload=SyntheticZipfWorkload(
                    num_pages=4000,
                    alpha=1.2 + 0.1 * i,
                    accesses_per_batch=5_000,
                    seed=i,
                ),
                policy=fast_freqtier(seed=i),
                local_pages=256,
                initial_grant_pages=5_000,
            )
            for i in range(2)
        ]
        return MultiHostSimulation(
            pool, hosts, rebalance_interval_rounds=rebalance_interval
        )

    def test_hosts_run_independently(self):
        sim = self.make_sim()
        results = sim.run(rounds=30)
        assert set(results) == {"h0", "h1"}
        for res in results.values():
            assert res.total_accesses == 30 * 5_000

    def test_tiering_works_per_host(self):
        sim = self.make_sim()
        results = sim.run(rounds=60)
        for res in results.values():
            # Zipf + FreqTier: hit ratio far above the ~6% local share.
            assert res.steady_hit_ratio > 0.3

    def test_grants_never_revoke_used_pages(self):
        sim = self.make_sim(rebalance_interval=5)
        sim.run(rounds=50)
        for state in sim.host_state():
            assert state["cxl_granted"] >= state["cxl_used"]

    def test_empty_hosts_rejected(self):
        with pytest.raises(ValueError):
            MultiHostSimulation(CXLPool(100), [])

    def test_pressured_host_gains_capacity(self):
        """A host whose demotions exhaust its grant receives more."""
        pool = CXLPool(total_pages=20_000)
        tight = HostSpec(
            name="tight",
            workload=SyntheticZipfWorkload(
                num_pages=4000, alpha=1.3, accesses_per_batch=5_000, seed=1
            ),
            policy=fast_freqtier(seed=1),
            local_pages=256,
            # Just enough for the spill at setup; demotions need more.
            initial_grant_pages=3_800,
        )
        slack = HostSpec(
            name="slack",
            workload=SyntheticZipfWorkload(
                num_pages=1000, alpha=1.0, accesses_per_batch=5_000, seed=2
            ),
            policy=StaticNoMigration(),
            local_pages=256,
            initial_grant_pages=10_000,
        )
        sim = MultiHostSimulation(
            pool, [tight, slack], rebalance_interval_rounds=5
        )
        sim.run(rounds=40)
        states = {s["host"]: s for s in sim.host_state()}
        assert states["tight"]["cxl_granted"] > 3_800
