"""Tests for the policy base class and stats."""

import pytest

from repro.memsim.machine import Machine, MachineConfig
from repro.policies.base import PolicyStats, TieringPolicy


class _Recorder(TieringPolicy):
    name = "recorder"

    def __init__(self):
        super().__init__()
        self.calls = []

    def on_batch(self, batch, tiers, now_ns):
        self.calls.append((batch.num_accesses, now_ns))
        return 1.5


class TestTieringPolicy:
    def test_machine_property_requires_attach(self):
        policy = _Recorder()
        with pytest.raises(RuntimeError):
            policy.machine

    def test_attach_binds_machine(self):
        policy = _Recorder()
        machine = Machine(MachineConfig(local_capacity_pages=8, cxl_capacity_pages=8))
        policy.attach(machine)
        assert policy.machine is machine

    def test_record_migrations_updates_stats(self):
        policy = _Recorder()
        policy._record_migrations(10, 0)
        policy._record_migrations(0, 5)
        policy._record_migrations(3, 2)
        assert policy.stats.promotions == 13
        assert policy.stats.demotions == 7
        assert policy.stats.promotion_calls == 2
        assert policy.stats.demotion_calls == 2

    def test_zero_migrations_not_counted_as_calls(self):
        policy = _Recorder()
        policy._record_migrations(0, 0)
        assert policy.stats.promotion_calls == 0
        assert policy.stats.demotion_calls == 0

    def test_describe(self):
        assert _Recorder().describe() == {"name": "recorder"}


class TestPolicyStats:
    def test_as_dict_includes_extra(self):
        stats = PolicyStats()
        stats.extra["custom"] = 7.0
        d = stats.as_dict()
        assert d["custom"] == 7.0
        assert d["promotions"] == 0
