"""Tests for the policy base class and stats."""

import numpy as np
import pytest

from repro.memsim.machine import Machine, MachineConfig
from repro.policies.base import PolicyStats, TieringPolicy
from repro.sampling.events import AccessBatch


class _Recorder(TieringPolicy):
    name = "recorder"

    def __init__(self):
        super().__init__()
        self.calls = []

    def on_batch(self, batch, tiers, now_ns, counts=None):
        self.calls.append((batch.num_accesses, now_ns, counts))
        return 1.5


class TestTieringPolicy:
    def test_machine_property_requires_attach(self):
        policy = _Recorder()
        with pytest.raises(RuntimeError):
            policy.machine

    def test_attach_binds_machine(self):
        policy = _Recorder()
        machine = Machine(MachineConfig(local_capacity_pages=8, cxl_capacity_pages=8))
        policy.attach(machine)
        assert policy.machine is machine

    def test_record_migrations_updates_stats(self):
        policy = _Recorder()
        policy._record_migrations(10, 0)
        policy._record_migrations(0, 5)
        policy._record_migrations(3, 2)
        assert policy.stats.promotions == 13
        assert policy.stats.demotions == 7
        assert policy.stats.promotion_calls == 2
        assert policy.stats.demotion_calls == 2

    def test_zero_migrations_not_counted_as_calls(self):
        policy = _Recorder()
        policy._record_migrations(0, 0)
        assert policy.stats.promotion_calls == 0
        assert policy.stats.demotion_calls == 0

    def test_describe(self):
        assert _Recorder().describe() == {"name": "recorder"}


class TestBatchCounts:
    def _batch_and_tiers(self):
        batch = AccessBatch(
            page_ids=np.arange(10), num_ops=1.0, cpu_ns=0.0
        )
        tiers = np.array([0, 0, 0, 1, 1, 1, 1, 0, 1, 1], dtype=np.int8)
        return batch, tiers

    def test_uses_precomputed_counts_when_given(self):
        policy = _Recorder()
        batch, tiers = self._batch_and_tiers()
        # Deliberately wrong counts prove the tiers array is not rescanned.
        assert policy._batch_counts(batch, tiers, (9, 1)) == (9, 1)

    def test_falls_back_to_counting_tiers(self):
        policy = _Recorder()
        batch, tiers = self._batch_and_tiers()
        assert policy._batch_counts(batch, tiers, None) == (4, 6)

    def test_engine_passes_counts_to_on_batch(self):
        from repro.core.engine import SimulationEngine
        from repro.workloads.trace import SyntheticZipfWorkload

        policy = _Recorder()
        machine = Machine(
            MachineConfig(local_capacity_pages=64, cxl_capacity_pages=64)
        )
        workload = SyntheticZipfWorkload(
            num_pages=128, alpha=1.0, accesses_per_batch=500, seed=0
        )
        engine = SimulationEngine(machine, workload, policy)
        engine.setup()
        engine.run(max_batches=3)
        assert len(policy.calls) == 3
        for num_accesses, __, counts in policy.calls:
            assert counts is not None
            n_local, n_cxl = counts
            assert n_local >= 0 and n_cxl >= 0
            assert n_local + n_cxl == num_accesses


class TestPolicyStats:
    def test_as_dict_includes_extra(self):
        stats = PolicyStats()
        stats.extra["custom"] = 7.0
        d = stats.as_dict()
        assert d["custom"] == 7.0
        assert d["promotions"] == 0
