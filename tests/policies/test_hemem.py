"""Tests for the HeMem baseline."""

import numpy as np
import pytest

from repro._units import PAGE_SIZE
from repro.cbf.exact import HEMEM_BYTES_PER_PAGE
from repro.memsim.machine import Machine, MachineConfig
from repro.memsim.pagetable import LOCAL_TIER
from repro.policies.hemem import HeMem
from repro.sampling.events import AccessBatch


def make_setup(local=128, cxl=4096, footprint=2048, **kwargs):
    machine = Machine(
        MachineConfig(local_capacity_pages=local, cxl_capacity_pages=cxl)
    )
    policy = HeMem(
        sample_batch_size=kwargs.pop("sample_batch_size", 200),
        pebs_base_period=kwargs.pop("pebs_base_period", 4),
        **kwargs,
    )
    policy.attach(machine)
    machine.allocate(footprint)
    return machine, policy


def drive(machine, policy, pages, now=0.0):
    batch = AccessBatch(page_ids=np.asarray(pages), num_ops=1.0, cpu_ns=0.0)
    tiers = machine.placement_of(batch.page_ids)
    return policy.on_batch(batch, tiers, now)


class TestMetadata:
    def test_total_metadata_covers_whole_footprint(self):
        machine, policy = make_setup()
        expected = machine.config.total_capacity_pages * HEMEM_BYTES_PER_PAGE
        assert policy.stats.metadata_bytes == expected

    def test_hot_metadata_reserved_in_local(self):
        machine, __ = make_setup(local=1024)
        expected_pages = -(-1024 * HEMEM_BYTES_PER_PAGE // PAGE_SIZE)
        assert machine.reserved_local_pages == expected_pages

    def test_metadata_is_110x_freqtier_scale(self):
        """Paper Section VII-C: HeMem uses ~110x FreqTier's memory."""
        from repro.cbf.sizing import cbf_bytes_for_fpr

        footprint_pages = 267 * (1 << 30) // PAGE_SIZE
        local_pages = 16 * (1 << 30) // PAGE_SIZE
        hemem_bytes = footprint_pages * HEMEM_BYTES_PER_PAGE
        freqtier_bytes = cbf_bytes_for_fpr(local_pages, 1e-3, 3) + 16 * (1 << 20)
        assert 40 < hemem_bytes / freqtier_bytes < 300


class TestBehaviour:
    def test_tracks_exact_frequencies(self):
        machine, policy = make_setup()
        hot = np.arange(1000, 1010)
        for i in range(10):
            drive(machine, policy, np.tile(hot, 100), now=float(i))
        assert policy.tracker.num_entries > 0

    def test_promotes_hot_pages(self):
        machine, policy = make_setup()
        hot = np.arange(1000, 1040)
        for i in range(30):
            drive(machine, policy, np.tile(hot, 30), now=float(i))
        placement = machine.placement_of(hot)
        assert np.count_nonzero(placement == LOCAL_TIER) > 10

    def test_demotes_by_exact_coldness(self):
        machine, policy = make_setup(local=64, footprint=1024)
        hot_local = np.arange(0, 20)
        hot_cxl = np.arange(500, 540)
        for i in range(30):
            drive(
                machine,
                policy,
                np.concatenate([np.tile(hot_local, 30), np.tile(hot_cxl, 30)]),
                now=float(i),
            )
        # Accessed local pages survive; never-accessed ones go first.
        placement_hot = machine.placement_of(hot_local)
        assert np.count_nonzero(placement_hot == LOCAL_TIER) >= 15

    def test_overhead_grows_with_samples(self):
        machine, policy = make_setup(table_update_ns=500.0)
        drive(machine, policy, np.arange(0, 2000))
        assert policy.stats.overhead_ns > 0

    def test_no_adaptive_intensity(self):
        """HeMem samples at full rate forever (vs FreqTier's ladder)."""
        machine, policy = make_setup()
        stable = np.arange(0, 50)
        for i in range(50):
            drive(machine, policy, np.tile(stable, 20), now=float(i))
        from repro.sampling.pebs import SamplingLevel

        assert policy.pebs.level == SamplingLevel.HIGH

    def test_validation(self):
        with pytest.raises(ValueError):
            HeMem(hot_threshold=0)
