"""Tests for the TPP baseline."""

import numpy as np
import pytest

from repro.memsim.machine import Machine, MachineConfig
from repro.memsim.pagetable import LOCAL_TIER
from repro.policies.tpp import TPP
from repro.sampling.events import AccessBatch


def make_setup(local=128, cxl=4096, footprint=2048, **kwargs):
    machine = Machine(
        MachineConfig(local_capacity_pages=local, cxl_capacity_pages=cxl)
    )
    policy = TPP(
        scan_period_accesses=kwargs.pop("scan_period_accesses", 500),
        window_fraction=kwargs.pop("window_fraction", 0.5),
        **kwargs,
    )
    policy.attach(machine)
    machine.allocate(footprint)
    return machine, policy


def drive(machine, policy, pages, now=0.0):
    batch = AccessBatch(page_ids=np.asarray(pages), num_ops=1.0, cpu_ns=0.0)
    tiers = machine.placement_of(batch.page_ids)
    return policy.on_batch(batch, tiers, now)


class TestPromotion:
    def test_active_pages_promoted_on_fault(self):
        machine, policy = make_setup()
        hot_cxl = np.arange(1000, 1050)
        for i in range(20):
            drive(machine, policy, np.tile(hot_cxl, 20), now=float(i * 1000))
        assert policy.stats.promotions > 0
        placement = machine.placement_of(hot_cxl)
        assert np.count_nonzero(placement == LOCAL_TIER) > 0

    def test_inactive_pages_not_promoted(self):
        machine, policy = make_setup(active_window_ns=1.0)
        # Window so small nothing is ever "recently referenced".
        hot_cxl = np.arange(1000, 1050)
        for i in range(10):
            drive(machine, policy, np.tile(hot_cxl, 20), now=float(i * 1e9))
        assert policy.stats.promotions == 0

    def test_no_rate_limit(self):
        """TPP promotes every active faulted page (the churn source)."""
        machine, policy = make_setup(local=256)
        wide = np.arange(1000, 1800)
        for i in range(20):
            drive(machine, policy, np.tile(wide, 3), now=float(i * 1000))
        # Promotions can exceed local capacity within the run.
        assert policy.stats.promotions + policy.stats.demotions > 256


class TestDemotion:
    def test_headroom_demotion_keeps_local_free(self):
        machine, policy = make_setup(local=100, headroom_fraction=0.2)
        drive(machine, policy, np.arange(0, 50), now=0.0)
        assert machine.local_free_pages >= 20

    def test_headroom_validation(self):
        with pytest.raises(ValueError):
            TPP(headroom_fraction=1.0)

    def test_demotion_uses_stale_snapshot(self):
        machine, policy = make_setup(
            local=64,
            footprint=1024,
            lru_snapshot_interval_accesses=10_000_000,  # never refreshes
        )
        # Warm up pages 0-63 via ref sampling, but the snapshot stays
        # at its initial state: demotion candidates look uniformly cold.
        for i in range(5):
            drive(machine, policy, np.tile(np.arange(0, 64), 20), now=float(i * 1e4))
        assert np.all(np.isneginf(policy._lru_snapshot[:64]))

    def test_snapshot_refreshes_on_interval(self):
        machine, policy = make_setup(lru_snapshot_interval_accesses=1_000)
        drive(machine, policy, np.tile(np.arange(0, 64), 20), now=123.0)
        assert policy._lru_snapshot[:64].max() == 123.0


class TestChurn:
    def test_tpp_migrates_more_than_it_keeps(self):
        """The paper's Fig. 2 point: TPP's migration traffic is huge."""
        machine, policy = make_setup(local=64, footprint=1024)
        rng = np.random.default_rng(0)
        from repro.workloads.zipfian import ZipfianSampler

        z = ZipfianSampler(1024, 1.2, seed=1)
        for i in range(50):
            drive(machine, policy, z.sample(1500), now=float(i * 2000))
        migrated = policy.stats.promotions + policy.stats.demotions
        assert migrated > machine.config.local_capacity_pages
