"""MigrationRetryQueue invariants (the docstring's property list).

- backoff never exceeds ``max_backoff_batches``;
- a blacklisted page is never re-enqueued;
- the queue never exceeds ``capacity``;
- absent new failures the queue drains within ``max_backoff_batches``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.policies.base import MigrationRetryQueue

def _ids(*pages: int) -> np.ndarray:
    return np.asarray(pages, dtype=np.int64)


class TestValidation:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError, match="capacity"):
            MigrationRetryQueue(capacity=0)
        with pytest.raises(ValueError, match="base_backoff_batches"):
            MigrationRetryQueue(base_backoff_batches=0)
        with pytest.raises(ValueError, match="max_backoff_batches"):
            MigrationRetryQueue(base_backoff_batches=4, max_backoff_batches=2)
        with pytest.raises(ValueError, match="max_attempts"):
            MigrationRetryQueue(max_attempts=0)


class TestBackoff:
    def test_doubles_then_caps(self):
        q = MigrationRetryQueue(base_backoff_batches=1, max_backoff_batches=32)
        got = [q.backoff_for_attempt(a) for a in range(1, 9)]
        assert got == [1, 2, 4, 8, 16, 32, 32, 32]

    def test_never_exceeds_cap_even_for_huge_attempt_counts(self):
        q = MigrationRetryQueue(base_backoff_batches=3, max_backoff_batches=24)
        for attempts in (1, 10, 63, 64, 1000):
            assert 1 <= q.backoff_for_attempt(attempts) <= 24


class TestLifecycle:
    def test_entry_not_due_before_backoff(self):
        q = MigrationRetryQueue(base_backoff_batches=2)
        q.record_failures(_ids(5), now_batch=10)
        assert q.due(11).size == 0
        assert q.due(12).tolist() == [5]

    def test_in_flight_entries_not_returned_twice(self):
        q = MigrationRetryQueue()
        q.record_failures(_ids(5), now_batch=0)
        assert q.due(100).tolist() == [5]
        assert q.due(100).size == 0  # in flight until resolved
        assert len(q) == 1  # still counts against the bound

    def test_mark_succeeded_clears_entries(self):
        q = MigrationRetryQueue()
        q.record_failures(_ids(1, 2, 3), now_batch=0)
        q.due(100)
        q.mark_succeeded(_ids(1, 2, 3))
        assert len(q) == 0
        assert q.due(200).size == 0

    def test_refailed_retry_keeps_attempt_count(self):
        q = MigrationRetryQueue(base_backoff_batches=1, max_attempts=5)
        q.record_failures(_ids(9), now_batch=0)  # attempt 1, due at 1
        assert q.due(1).tolist() == [9]
        q.record_failures(_ids(9), now_batch=1)  # attempt 2, due at 1+2
        assert q.due(2).size == 0
        assert q.due(3).tolist() == [9]

    def test_capacity_bound_drops_overflow(self):
        q = MigrationRetryQueue(capacity=8)
        q.record_failures(np.arange(100, dtype=np.int64), now_batch=0)
        assert len(q) == 8

    def test_requeue_of_resident_page_not_blocked_by_full_queue(self):
        q = MigrationRetryQueue(capacity=2, base_backoff_batches=1)
        q.record_failures(_ids(1, 2), now_batch=0)  # full
        q.due(1)
        q.record_failures(_ids(1), now_batch=1)  # already resident: allowed
        assert q.due(3).tolist() == [1]


class TestBlacklist:
    def test_blacklisted_after_max_attempts(self):
        q = MigrationRetryQueue(base_backoff_batches=1, max_attempts=3)
        assert q.record_failures(_ids(7), 0).size == 0
        assert q.record_failures(_ids(7), 1).size == 0
        assert q.record_failures(_ids(7), 2).tolist() == [7]  # newly blacklisted
        assert q.is_blacklisted(7)
        assert q.num_blacklisted == 1
        assert len(q) == 0  # removed from the retry queue

    def test_blacklisted_page_never_reenqueued(self):
        q = MigrationRetryQueue(max_attempts=1)
        assert q.record_failures(_ids(7), 0).tolist() == [7]
        assert q.record_failures(_ids(7), 1).size == 0  # reported once only
        assert len(q) == 0
        for batch in range(2, 100):
            assert q.due(batch).size == 0

    def test_filter_allowed_drops_blacklisted(self):
        q = MigrationRetryQueue(max_attempts=1)
        q.record_failures(_ids(3, 5), 0)
        kept = q.filter_allowed(np.arange(8, dtype=np.int64))
        assert kept.tolist() == [0, 1, 2, 4, 6, 7]
        # Cached blacklist array invalidates when the blacklist grows.
        q.record_failures(_ids(6), 0)
        assert q.filter_allowed(np.arange(8, dtype=np.int64)).tolist() == [
            0, 1, 2, 4, 7,
        ]

    def test_filter_allowed_identity_when_nothing_blacklisted(self):
        q = MigrationRetryQueue()
        pages = np.arange(4, dtype=np.int64)
        assert q.filter_allowed(pages) is pages


class TestDrain:
    def test_drains_completely_within_max_backoff(self):
        q = MigrationRetryQueue(base_backoff_batches=1, max_backoff_batches=8)
        q.record_failures(np.arange(20, dtype=np.int64), now_batch=0)
        for batch in range(1, 9):  # max_backoff_batches batches
            q.mark_succeeded(q.due(batch))
        assert len(q) == 0


class TestRandomizedInvariants:
    """Seeded random driver exercising every transition; invariants
    checked at every step."""

    def test_invariants_hold_over_random_schedule(self):
        rng = np.random.default_rng(1234)
        q = MigrationRetryQueue(
            capacity=16,
            base_backoff_batches=1,
            max_backoff_batches=8,
            max_attempts=3,
        )
        blacklisted: set[int] = set()
        last_due_batch: dict[int, int] = {}  # page -> batch it became due
        for batch in range(400):
            due = q.due(batch)
            for page in due.tolist():
                # Never handed out a blacklisted page.
                assert page not in blacklisted
                # Backoff to this hand-out never exceeded the cap.
                enqueued_at = last_due_batch.get(page)
                if enqueued_at is not None:
                    assert batch - enqueued_at <= q.max_backoff_batches
            # In-flight pages are not re-issued.
            assert q.due(batch).size == 0

            succeed_mask = rng.random(due.size) < 0.5
            q.mark_succeeded(due[succeed_mask])
            newly = q.record_failures(due[~succeed_mask], batch)
            blacklisted.update(newly.tolist())
            for page in due[~succeed_mask].tolist():
                last_due_batch[page] = batch

            fresh = rng.integers(0, 64, size=int(rng.integers(0, 6)))
            fresh = np.asarray(
                [p for p in fresh.tolist() if p not in blacklisted],
                dtype=np.int64,
            )
            newly = q.record_failures(fresh, batch)
            blacklisted.update(newly.tolist())
            for page in fresh.tolist():
                last_due_batch[page] = batch

            assert len(q) <= q.capacity
            assert q.num_blacklisted == len(blacklisted)

        # Stop injecting: everything still queued drains within the cap.
        final_batch = 400
        for batch in range(final_batch, final_batch + q.max_backoff_batches + 1):
            q.mark_succeeded(q.due(batch))
        assert len(q) == 0
