"""Tests for the DAMON/DAOS-style region-based baseline."""

import numpy as np
import pytest

from repro.memsim.machine import Machine, MachineConfig
from repro.memsim.pagetable import LOCAL_TIER
from repro.policies.damon import DAMONRegion
from repro.sampling.events import AccessBatch


def make_setup(local=128, footprint=2048, **kwargs):
    machine = Machine(
        MachineConfig(local_capacity_pages=local, cxl_capacity_pages=4096)
    )
    policy = DAMONRegion(
        adjust_interval_accesses=kwargs.pop("adjust_interval_accesses", 2_000),
        pebs_base_period=kwargs.pop("pebs_base_period", 4),
        **kwargs,
    )
    policy.attach(machine)
    machine.allocate(footprint)
    return machine, policy


def drive(machine, policy, pages, now=0.0):
    batch = AccessBatch(page_ids=np.asarray(pages), num_ops=1.0, cpu_ns=0.0)
    return policy.on_batch(batch, machine.placement_of(batch.page_ids), now)


class TestRegions:
    def test_initial_partition_covers_space(self):
        machine, policy = make_setup()
        assert policy._bounds[0] == 0
        assert policy._bounds[-1] == machine.config.total_capacity_pages
        assert np.all(np.diff(policy._bounds) > 0)

    def test_region_count_bounded(self):
        machine, policy = make_setup(min_regions=8, max_regions=64)
        rng = np.random.default_rng(0)
        for i in range(30):
            drive(machine, policy, rng.integers(0, 2048, 1000), now=float(i))
        assert 8 <= policy.num_regions <= 64

    def test_validation(self):
        with pytest.raises(ValueError):
            DAMONRegion(min_regions=10, max_regions=5)

    def test_bounds_stay_sorted_through_adjustments(self):
        machine, policy = make_setup()
        rng = np.random.default_rng(1)
        for i in range(20):
            drive(machine, policy, rng.integers(0, 2048, 1000), now=float(i))
            assert np.all(np.diff(policy._bounds) > 0)
            assert len(policy._region_hits) == policy.num_regions


class TestSplitMerge:
    def test_hot_region_gets_refined(self):
        machine, policy = make_setup(min_regions=4, max_regions=128)
        initial_size = int(np.diff(policy._bounds).max())
        hot = np.full(1_000, 1500, dtype=np.int64)
        for i in range(10):
            drive(machine, policy, hot, now=float(i))
        # The region containing the hot page shrank (splits refined it),
        # even if merges collapsed cold regions elsewhere.
        idx = int(np.searchsorted(policy._bounds, 1500, side="right")) - 1
        hot_region_size = int(
            policy._bounds[idx + 1] - policy._bounds[idx]
        )
        assert hot_region_size < initial_size

    def test_uniform_regions_merge(self):
        machine, policy = make_setup(min_regions=4, max_regions=256)
        rng = np.random.default_rng(2)
        for i in range(40):
            drive(machine, policy, rng.integers(0, 2048, 1500), now=float(i))
        # Uniform traffic: merges keep the region count near the floor.
        assert policy.num_regions < 128


class TestMigration:
    def test_hot_region_promoted_wholesale(self):
        machine, policy = make_setup()
        hot = np.concatenate(
            [np.full(500, p, dtype=np.int64) for p in range(1500, 1510)]
        )
        for i in range(15):
            drive(machine, policy, hot, now=float(i))
        placement = machine.placement_of(np.arange(1500, 1510))
        assert np.count_nonzero(placement == LOCAL_TIER) > 0
        assert policy.stats.promotions > 0

    def test_region_granularity_is_coarse(self):
        """The paper's criticism: cold pages ride along with hot ones."""
        machine, policy = make_setup()
        one_hot_page = np.full(3_000, 1500, dtype=np.int64)
        for i in range(15):
            drive(machine, policy, one_hot_page, now=float(i))
        # More pages were promoted than were ever accessed.
        if policy.stats.promotions:
            assert policy.stats.promotions > 1
