"""Tests for the dynamic hot-threshold controller (Section V-C(a))."""

import numpy as np
import pytest

from repro.cbf.cbf import CountingBloomFilter
from repro.policies.freqtier.threshold import HotThresholdController


def cbf_with_hot_pages(num_hot: int, freq: int = 10) -> CountingBloomFilter:
    cbf = CountingBloomFilter(num_counters=16_384, num_hashes=3, bits=4, seed=1)
    if num_hot:
        cbf.increase(
            np.arange(num_hot, dtype=np.uint64), np.full(num_hot, freq)
        )
    return cbf


class TestConstruction:
    def test_defaults(self):
        ctl = HotThresholdController(cbf_with_hot_pages(0), 100)
        assert ctl.threshold == 5

    def test_initial_threshold_validated(self):
        with pytest.raises(ValueError):
            HotThresholdController(
                cbf_with_hot_pages(0), 100, initial_threshold=99
            )

    def test_fill_bounds_validated(self):
        with pytest.raises(ValueError):
            HotThresholdController(
                cbf_with_hot_pages(0), 100, high_fill=0.4, low_fill=0.5
            )

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            HotThresholdController(cbf_with_hot_pages(0), 0)


class TestEstimation:
    def test_estimates_scale_with_hot_pages(self):
        small = HotThresholdController(cbf_with_hot_pages(50), 100)
        large = HotThresholdController(cbf_with_hot_pages(500), 100)
        assert large.estimated_hot_pages() > small.estimated_hot_pages() * 5

    def test_estimate_close_to_truth_at_low_load(self):
        ctl = HotThresholdController(cbf_with_hot_pages(100, freq=10), 100)
        est = ctl.estimated_hot_pages(threshold=5)
        assert est == pytest.approx(100, rel=0.25)


class TestControl:
    def test_raises_threshold_when_hot_set_too_big(self):
        ctl = HotThresholdController(
            cbf_with_hot_pages(1_000, freq=10), local_capacity_pages=100
        )
        before = ctl.threshold
        ctl.update()
        assert ctl.threshold == before + 1
        assert ctl.adjustments == 1

    def test_lowers_threshold_when_hot_set_too_small(self):
        ctl = HotThresholdController(
            cbf_with_hot_pages(10, freq=10), local_capacity_pages=1_000
        )
        before = ctl.threshold
        ctl.update()
        assert ctl.threshold == before - 1

    def test_stable_when_hot_set_fits(self):
        ctl = HotThresholdController(
            cbf_with_hot_pages(100, freq=10),
            local_capacity_pages=100,
        )
        before = ctl.threshold
        ctl.update()
        assert ctl.threshold == before

    def test_respects_bounds(self):
        ctl = HotThresholdController(
            cbf_with_hot_pages(1_000, freq=15),
            local_capacity_pages=10,
            initial_threshold=14,
            max_threshold=15,
        )
        for __ in range(5):
            ctl.update()
        assert ctl.threshold <= 15

        ctl2 = HotThresholdController(
            cbf_with_hot_pages(0),
            local_capacity_pages=1_000,
            initial_threshold=2,
            min_threshold=1,
        )
        for __ in range(5):
            ctl2.update()
        assert ctl2.threshold >= 1

    def test_converges_to_capacity_matched_threshold(self):
        """Feedback drives the hot-set size toward local capacity."""
        cbf = CountingBloomFilter(num_counters=65_536, num_hashes=3, bits=4, seed=2)
        # 100 very hot pages, 900 medium, 4000 cool.
        cbf.increase(np.arange(100, dtype=np.uint64), 15)
        cbf.increase(np.arange(100, 1000, dtype=np.uint64), 8)
        cbf.increase(np.arange(1000, 5000, dtype=np.uint64), 2)
        ctl = HotThresholdController(cbf, local_capacity_pages=150, initial_threshold=5)
        for __ in range(20):
            ctl.update()
        # Threshold must exceed the medium tier (8) to fit ~150 pages.
        assert ctl.threshold > 8
