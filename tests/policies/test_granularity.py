"""Tests for FreqTier's tracking-granularity support."""

import numpy as np
import pytest

from repro.memsim.machine import Machine, MachineConfig
from repro.memsim.pagetable import LOCAL_TIER
from repro.policies.freqtier import FreqTier, FreqTierConfig
from repro.sampling.events import AccessBatch


def make_setup(granularity: int, local=128, footprint=2048):
    machine = Machine(
        MachineConfig(local_capacity_pages=local, cxl_capacity_pages=4096)
    )
    policy = FreqTier(
        config=FreqTierConfig(
            granularity_pages=granularity,
            sample_batch_size=500,
            pebs_base_period=4,
            window_accesses=100_000,
        ),
        seed=1,
    )
    policy.attach(machine)
    machine.allocate(footprint)
    return machine, policy


def drive(machine, policy, pages, now=0.0):
    batch = AccessBatch(page_ids=np.asarray(pages), num_ops=1.0, cpu_ns=0.0)
    return policy.on_batch(batch, machine.placement_of(batch.page_ids), now)


class TestUnitTranslation:
    def test_identity_at_4k(self):
        __, policy = make_setup(1)
        pages = np.array([0, 5, 100])
        assert np.array_equal(policy._units_of(pages), pages)
        assert np.array_equal(policy._pages_of_units(pages), pages)

    def test_units_group_pages(self):
        __, policy = make_setup(8)
        assert np.array_equal(
            policy._units_of(np.array([0, 7, 8, 63])), [0, 0, 1, 7]
        )

    def test_unit_expansion(self):
        __, policy = make_setup(4)
        pages = policy._pages_of_units(np.array([2]))
        assert np.array_equal(pages, [8, 9, 10, 11])

    def test_validation(self):
        with pytest.raises(ValueError):
            FreqTierConfig(granularity_pages=0)


class TestCoarseBehaviour:
    def test_whole_units_promoted(self):
        machine, policy = make_setup(8)
        # Hammer a single page: its whole 8-page unit should move.
        hot = np.full(400, 1000, dtype=np.int64)
        for i in range(40):
            drive(machine, policy, hot, now=float(i))
        unit_pages = np.arange(1000 - 1000 % 8, 1000 - 1000 % 8 + 8)
        placement = machine.placement_of(unit_pages)
        assert np.all(placement == LOCAL_TIER)

    def test_smaller_cbf_for_coarse_units(self):
        __, fine = make_setup(1)
        __, coarse = make_setup(16)
        assert coarse.cbf.num_counters <= fine.cbf.num_counters

    def test_coarse_tracking_loses_accuracy(self):
        """The paper's Challenge-2 criticism, in miniature: with hot
        pages scattered one-per-unit, coarse promotion wastes local
        DRAM on the units' cold remainder."""
        from repro.workloads.zipfian import ZipfianSampler

        def run(granularity: int) -> float:
            machine, policy = make_setup(granularity, local=128, footprint=4096)
            z = ZipfianSampler(4096, 1.3, seed=3)
            hits = total = 0
            for i in range(60):
                pages = z.sample(2000)
                tiers = machine.placement_of(pages)
                if i >= 20:  # skip warmup
                    hits += int(np.count_nonzero(tiers == LOCAL_TIER))
                    total += len(pages)
                drive(machine, policy, pages, now=float(i))
            return hits / max(total, 1)

        assert run(1) > run(32) + 0.1
