"""Tests for FreqTierConfig validation and derived values."""

import pytest

from repro.cbf.sizing import counters_for_fpr
from repro.policies.freqtier.config import FreqTierConfig


class TestValidation:
    def test_defaults_valid(self):
        cfg = FreqTierConfig()
        assert cfg.initial_hot_threshold == 5  # the paper's default
        assert cfg.cbf_bits == 4
        assert cfg.cbf_target_fpr == 1e-3

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"initial_hot_threshold": 0},
            {"sample_batch_size": 0},
            {"cbf_target_fpr": 0.0},
            {"cbf_target_fpr": 1.0},
            {"window_accesses": 0},
            {"granularity_pages": 0},
            {"runtime_mode": "hypervisor"},
        ],
    )
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ValueError):
            FreqTierConfig(**kwargs)


class TestCBFSizing:
    def test_auto_size_uses_fpr_rule(self):
        cfg = FreqTierConfig()
        assert cfg.resolve_cbf_size(4096) == counters_for_fpr(4096, 1e-3, 3)

    def test_explicit_size_wins(self):
        cfg = FreqTierConfig(cbf_num_counters=1234)
        assert cfg.resolve_cbf_size(4096) == 1234

    def test_zero_capacity_clamped(self):
        cfg = FreqTierConfig()
        assert cfg.resolve_cbf_size(0) >= 1


class TestRuntimeMode:
    def test_userspace_costs_undiscounted(self):
        cfg = FreqTierConfig(runtime_mode="userspace")
        assert cfg.effective_move_pages_ns == cfg.move_pages_syscall_ns
        assert cfg.effective_pagemap_read_ns == cfg.pagemap_read_ns

    def test_kernel_costs_discounted(self):
        cfg = FreqTierConfig(runtime_mode="kernel")
        assert cfg.effective_move_pages_ns < cfg.move_pages_syscall_ns
        assert cfg.effective_pagemap_read_ns < cfg.pagemap_read_ns
        assert cfg.effective_move_pages_ns == pytest.approx(
            cfg.move_pages_syscall_ns * FreqTierConfig.KERNEL_BOUNDARY_DISCOUNT
        )
