"""Tests for the FreqTier policy (promotion, demotion, integration)."""

import numpy as np
import pytest

from repro.memsim.machine import Machine, MachineConfig
from repro.memsim.pagetable import CXL_TIER, LOCAL_TIER
from repro.policies.freqtier import FreqTier, FreqTierConfig
from repro.policies.freqtier.intensity import TieringState
from repro.sampling.events import AccessBatch
from repro.workloads.trace import SyntheticZipfWorkload


def make_setup(local=128, cxl=4096, footprint=2048, **cfg_kwargs):
    """Machine + attached FreqTier + allocated flat region."""
    machine = Machine(
        MachineConfig(local_capacity_pages=local, cxl_capacity_pages=cxl)
    )
    config = FreqTierConfig(
        sample_batch_size=cfg_kwargs.pop("sample_batch_size", 500),
        pebs_base_period=cfg_kwargs.pop("pebs_base_period", 4),
        window_accesses=cfg_kwargs.pop("window_accesses", 100_000),
        **cfg_kwargs,
    )
    policy = FreqTier(config=config, seed=1)
    policy.attach(machine)
    machine.allocate(footprint)
    return machine, policy


def drive(machine, policy, pages: np.ndarray, now: float = 0.0) -> float:
    batch = AccessBatch(page_ids=pages, num_ops=1.0, cpu_ns=0.0)
    tiers = machine.placement_of(batch.page_ids)
    return policy.on_batch(batch, tiers, now)


class TestAttach:
    def test_cbf_sized_from_local_capacity(self):
        __, policy = make_setup(local=256)
        assert policy.cbf is not None
        # Sized for >= 256 keys at 1e-3 FPR.
        assert policy.cbf.num_counters >= 256 * 10

    def test_explicit_cbf_size_respected(self):
        __, policy = make_setup(cbf_num_counters=2048)
        assert policy.cbf.num_counters >= 2048  # blocked rounds up

    def test_blocked_by_default(self):
        __, policy = make_setup()
        assert policy.cbf.counters_per_block == 128

    def test_classic_cbf_optional(self):
        __, policy = make_setup(blocked_cbf=False)
        assert not hasattr(policy.cbf, "counters_per_block")

    def test_metadata_accounted(self):
        __, policy = make_setup()
        assert policy.stats.metadata_bytes > policy.cbf.nbytes

    def test_use_before_attach_raises(self):
        policy = FreqTier()
        with pytest.raises(RuntimeError):
            policy.machine


class TestPromotion:
    def test_hot_cxl_pages_get_promoted(self):
        machine, policy = make_setup()
        # Pages 1000-1019 live on CXL (local holds 0-127).
        hot = np.arange(1000, 1020)
        for i in range(40):
            drive(machine, policy, np.tile(hot, 50), now=float(i))
        placement = machine.placement_of(hot)
        assert np.count_nonzero(placement == LOCAL_TIER) >= 15
        assert policy.stats.promotions > 0

    def test_cold_pages_not_promoted(self):
        machine, policy = make_setup()
        rng = np.random.default_rng(0)
        # Uniform accesses over a wide range: nothing crosses threshold
        # fast, promotions stay far below the touched-page count.
        for i in range(10):
            drive(machine, policy, rng.integers(128, 2048, 500), now=float(i))
        assert policy.stats.promotions < 200

    def test_promotion_batched_through_one_syscall(self):
        machine, policy = make_setup()
        hot = np.arange(1000, 1050)
        for i in range(40):
            drive(machine, policy, np.tile(hot, 20), now=float(i))
        # Far fewer syscalls than promoted pages.
        assert policy.stats.promotion_calls < max(policy.stats.promotions, 1)


class TestDemotion:
    def test_demotes_cold_local_pages_to_make_room(self):
        machine, policy = make_setup(local=64, footprint=1024)
        # Local pages 0-63 are never accessed; CXL pages 500-540 are hot.
        hot = np.arange(500, 540)
        for i in range(40):
            drive(machine, policy, np.tile(hot, 25), now=float(i))
        assert policy.stats.demotions > 0
        placement = machine.placement_of(np.arange(0, 64))
        assert np.count_nonzero(placement == CXL_TIER) > 0

    def test_hot_local_pages_survive_demotion(self):
        machine, policy = make_setup(local=64, footprint=1024)
        hot_local = np.arange(0, 32)  # resident and hot
        hot_cxl = np.arange(500, 532)  # should displace pages 32-63
        mix = np.concatenate([np.tile(hot_local, 20), np.tile(hot_cxl, 20)])
        for i in range(40):
            drive(machine, policy, mix, now=float(i))
        placement = machine.placement_of(hot_local)
        assert np.count_nonzero(placement == LOCAL_TIER) >= 24

    def test_scan_cursor_persists(self):
        machine, policy = make_setup(local=64, footprint=1024)
        hot = np.arange(500, 540)
        for i in range(20):
            drive(machine, policy, np.tile(hot, 25), now=float(i))
        assert policy._scan_cursor != 0  # scan made progress and saved it


class TestIntensityIntegration:
    def test_windows_advance_and_can_reach_monitoring(self):
        machine, policy = make_setup(window_accesses=2_000)
        stable = np.arange(0, 50)  # all local, fully stable
        for i in range(40):
            drive(machine, policy, np.tile(stable, 20), now=float(i))
        # Stable hit ratio + no promotions: must leave HIGH sampling.
        assert policy.state == TieringState.MONITORING

    def test_overhead_reported(self):
        machine, policy = make_setup()
        overhead = drive(machine, policy, np.arange(0, 100))
        assert overhead >= 0.0
        assert policy.stats.overhead_ns == pytest.approx(overhead)


class TestEndToEndOnZipf:
    def test_beats_static_placement_hit_ratio(self):
        workload = SyntheticZipfWorkload(
            num_pages=4096, alpha=1.3, accesses_per_batch=20_000, seed=3
        )
        machine = Machine(
            MachineConfig(local_capacity_pages=256, cxl_capacity_pages=8192)
        )
        config = FreqTierConfig(
            sample_batch_size=2_000, pebs_base_period=8, window_accesses=200_000
        )
        policy = FreqTier(config=config, seed=3)
        policy.attach(machine)
        workload.setup(machine)
        static_hit = 256 / 4096  # uniform spread would be ~6%; Zipf
        # permuted hot pages make static placement ~footprint share.
        gen = iter(workload.batches())
        for i in range(60):
            batch = next(gen)
            tiers = machine.placement_of(batch.page_ids)
            machine.traffic.record_accesses(
                int(np.count_nonzero(tiers == LOCAL_TIER)),
                int(np.count_nonzero(tiers == CXL_TIER)),
            )
            policy.on_batch(batch, tiers, float(i))
        assert machine.traffic.local_hit_ratio > 0.5  # >> static share

    def test_hot_threshold_exposed(self):
        __, policy = make_setup()
        assert policy.hot_threshold >= 1
