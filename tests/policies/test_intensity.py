"""Tests for the dynamic tiering-intensity state machine (Fig. 6)."""

import pytest

from repro.obs import ListSink, Tracer
from repro.policies.freqtier.intensity import (
    IntensityController,
    TieringState,
    WindowReport,
)
from repro.sampling.pebs import SamplingLevel


def window(promoted=10, empty_scan=False, rounds=1) -> WindowReport:
    return WindowReport(
        hit_ratio=None,
        pages_promoted=promoted,
        empty_demotion_scan=empty_scan,
        processing_rounds=rounds,
    )


def feed_stable(ctl: IntensityController, local=900, cxl=100):
    ctl.count_accesses(local, cxl)


def traced_controller(**kwargs) -> tuple[IntensityController, ListSink]:
    """Controller wired to a recording tracer (the transitions log)."""
    sink = ListSink()
    ctl = IntensityController(tracer=Tracer(sinks=[sink]), **kwargs)
    return ctl, sink


class TestLevelLadder:
    def test_starts_sampling_high(self):
        ctl = IntensityController()
        assert ctl.state == TieringState.SAMPLING
        assert ctl.level == SamplingLevel.HIGH

    def test_stable_windows_step_down(self):
        # Stability needs two closed windows, so the ladder moves from
        # the second stable window onward.
        ctl = IntensityController()
        feed_stable(ctl)
        ctl.end_window(window(), now_ns=0.0)
        assert ctl.level == SamplingLevel.HIGH
        for expected in (SamplingLevel.MEDIUM, SamplingLevel.LOW):
            feed_stable(ctl)
            ctl.end_window(window(), now_ns=0.0)
            assert ctl.level == expected
        # One more stable window at LOW -> monitoring.
        feed_stable(ctl)
        ctl.end_window(window(), now_ns=0.0)
        assert ctl.state == TieringState.MONITORING
        assert ctl.level == SamplingLevel.OFF

    def test_unstable_window_steps_up(self):
        ctl = IntensityController()
        # Three stable windows: HIGH (no info) -> MEDIUM -> LOW.
        for __ in range(3):
            feed_stable(ctl)
            ctl.end_window(window(), 0.0)
        assert ctl.level == SamplingLevel.LOW
        # Unstable ratio: jump from 0.9 to 0.5.
        ctl.count_accesses(500, 500)
        ctl.end_window(window(), 0.0)
        assert ctl.level == SamplingLevel.MEDIUM

    def test_level_capped_at_high(self):
        ctl = IntensityController()
        ctl.count_accesses(900, 100)
        ctl.end_window(window(), 0.0)
        ctl.count_accesses(100, 900)
        ctl.end_window(window(), 0.0)
        assert ctl.level <= SamplingLevel.HIGH

    def test_first_window_never_steps(self):
        # A single window has no stability information.
        ctl = IntensityController()
        feed_stable(ctl)
        ctl.end_window(window(), 0.0)
        assert ctl.level == SamplingLevel.HIGH


class TestMonitoringTriggers:
    def test_promotion_plateau_enters_monitoring(self):
        ctl, sink = traced_controller()
        feed_stable(ctl)
        ctl.end_window(window(promoted=0, rounds=3), 0.0)
        assert ctl.state == TieringState.MONITORING
        assert any(
            e["reason"] == "promotion-plateau"
            for e in sink.of_type("state_transition")
        )

    def test_plateau_requires_processing_rounds(self):
        """No promotion pass ran -> not a plateau (e.g. first window)."""
        ctl = IntensityController()
        feed_stable(ctl)
        ctl.end_window(window(promoted=0, rounds=0), 0.0)
        assert ctl.state == TieringState.SAMPLING

    def test_empty_demotion_scan_enters_monitoring(self):
        ctl, sink = traced_controller()
        feed_stable(ctl)
        ctl.end_window(window(empty_scan=True), 0.0)
        assert ctl.state == TieringState.MONITORING
        assert any(
            e["reason"] == "empty-demotion-scan"
            for e in sink.of_type("state_transition")
        )


class TestMonitoringMode:
    def make_monitoring(self) -> IntensityController:
        ctl = IntensityController()
        feed_stable(ctl)
        ctl.end_window(window(promoted=0, rounds=1), 0.0)
        assert ctl.state == TieringState.MONITORING
        return ctl

    def make_traced_monitoring(self) -> tuple[IntensityController, "ListSink"]:
        ctl, sink = traced_controller()
        feed_stable(ctl)
        ctl.end_window(window(promoted=0, rounds=1), 0.0)
        assert ctl.state == TieringState.MONITORING
        return ctl, sink

    def test_stays_monitoring_while_stable(self):
        ctl = self.make_monitoring()
        for __ in range(5):
            feed_stable(ctl)
            ctl.end_window(window(), 0.0)
        assert ctl.state == TieringState.MONITORING

    def test_distribution_change_resumes_sampling_at_high(self):
        """Paper Fig. 11: monitoring detects the shift and re-arms."""
        ctl, sink = self.make_traced_monitoring()
        ctl.count_accesses(300, 700)  # hit ratio collapsed
        ctl.end_window(window(), now_ns=42.0)
        assert ctl.state == TieringState.SAMPLING
        assert ctl.level == SamplingLevel.HIGH
        resumes = [
            e
            for e in sink.of_type("state_transition")
            if e["to"] == "sampling"
        ]
        assert len(resumes) == 1
        assert resumes[0]["reason"] == "distribution-change"
        assert resumes[0]["t_ns"] == 42.0

    def test_empty_monitoring_window_is_ignored(self):
        ctl = self.make_monitoring()
        ctl.end_window(window(), 0.0)  # no accesses counted
        assert ctl.state == TieringState.MONITORING

    def test_sampling_active_flag(self):
        ctl = IntensityController()
        assert ctl.sampling_active
        ctl2 = self.make_monitoring()
        assert not ctl2.sampling_active


class TestTraceEvents:
    def test_level_changes_emitted(self):
        ctl, sink = traced_controller()
        for __ in range(3):
            feed_stable(ctl)
            ctl.end_window(window(), 0.0)
        downs = sink.of_type("level_change")
        assert [(e["from"], e["to"]) for e in downs] == [
            ("HIGH", "MEDIUM"),
            ("MEDIUM", "LOW"),
        ]
        assert all(e["reason"] == "stable" for e in downs)

    def test_level_up_emitted_on_instability(self):
        ctl, sink = traced_controller()
        for __ in range(3):
            feed_stable(ctl)
            ctl.end_window(window(), 0.0)
        ctl.count_accesses(500, 500)
        ctl.end_window(window(), 0.0)
        last = sink.of_type("level_change")[-1]
        assert (last["from"], last["to"], last["reason"]) == (
            "LOW",
            "MEDIUM",
            "unstable",
        )

    def test_default_tracer_is_noop(self):
        ctl = IntensityController()
        feed_stable(ctl)
        ctl.end_window(window(empty_scan=True), 0.0)
        assert ctl.state == TieringState.MONITORING  # no tracer needed


class TestMonitoringDeadlockRegression:
    """The None-reference monitoring deadlock (pre-fix: stuck forever).

    Entering monitoring mode off a window that closed empty (e.g. an
    empty-demotion-scan trigger before any window saw traffic) used to
    store ``None`` as the reference hit ratio; ``_monitoring_step``
    then early-returned on every later window and sampling never
    resumed.  The fix adopts the first non-None ratio observed while
    monitoring as the reference.
    """

    def enter_with_none_reference(self):
        ctl, sink = traced_controller()
        # No traffic before entry: the closed window has no hit ratio.
        ctl.end_window(window(empty_scan=True), 0.0)
        assert ctl.state == TieringState.MONITORING
        assert ctl._reference_ratio is None
        return ctl, sink

    def test_first_ratio_becomes_reference_not_a_resume(self):
        ctl, __ = self.enter_with_none_reference()
        ctl.count_accesses(900, 100)
        ctl.end_window(window(), 1.0)
        assert ctl.state == TieringState.MONITORING
        assert ctl._reference_ratio == pytest.approx(0.9)

    def test_policy_resumes_sampling_after_distribution_change(self):
        ctl, sink = self.enter_with_none_reference()
        ctl.count_accesses(900, 100)
        ctl.end_window(window(), 1.0)  # adopted as reference
        ctl.count_accesses(100, 900)
        ctl.end_window(window(), 2.0)  # deviates: must resume
        assert ctl.state == TieringState.SAMPLING
        assert ctl.level == SamplingLevel.HIGH
        assert any(
            e["to"] == "sampling" for e in sink.of_type("state_transition")
        )

    def test_stable_ratio_after_adoption_keeps_monitoring(self):
        ctl, __ = self.enter_with_none_reference()
        for now in range(1, 6):
            ctl.count_accesses(900, 100)
            ctl.end_window(window(), float(now))
        assert ctl.state == TieringState.MONITORING

    def test_empty_windows_while_monitoring_still_ignored(self):
        ctl, __ = self.enter_with_none_reference()
        for now in range(1, 4):
            ctl.end_window(window(), float(now))  # no traffic at all
        assert ctl.state == TieringState.MONITORING
        assert ctl._reference_ratio is None
