"""Tests for the dynamic tiering-intensity state machine (Fig. 6)."""

import pytest

from repro.policies.freqtier.intensity import (
    IntensityController,
    TieringState,
    WindowReport,
)
from repro.sampling.pebs import SamplingLevel


def window(promoted=10, empty_scan=False, rounds=1) -> WindowReport:
    return WindowReport(
        hit_ratio=None,
        pages_promoted=promoted,
        empty_demotion_scan=empty_scan,
        processing_rounds=rounds,
    )


def feed_stable(ctl: IntensityController, local=900, cxl=100):
    ctl.count_accesses(local, cxl)


class TestLevelLadder:
    def test_starts_sampling_high(self):
        ctl = IntensityController()
        assert ctl.state == TieringState.SAMPLING
        assert ctl.level == SamplingLevel.HIGH

    def test_stable_windows_step_down(self):
        # Stability needs two closed windows, so the ladder moves from
        # the second stable window onward.
        ctl = IntensityController()
        feed_stable(ctl)
        ctl.end_window(window(), now_ns=0.0)
        assert ctl.level == SamplingLevel.HIGH
        for expected in (SamplingLevel.MEDIUM, SamplingLevel.LOW):
            feed_stable(ctl)
            ctl.end_window(window(), now_ns=0.0)
            assert ctl.level == expected
        # One more stable window at LOW -> monitoring.
        feed_stable(ctl)
        ctl.end_window(window(), now_ns=0.0)
        assert ctl.state == TieringState.MONITORING
        assert ctl.level == SamplingLevel.OFF

    def test_unstable_window_steps_up(self):
        ctl = IntensityController()
        # Three stable windows: HIGH (no info) -> MEDIUM -> LOW.
        for __ in range(3):
            feed_stable(ctl)
            ctl.end_window(window(), 0.0)
        assert ctl.level == SamplingLevel.LOW
        # Unstable ratio: jump from 0.9 to 0.5.
        ctl.count_accesses(500, 500)
        ctl.end_window(window(), 0.0)
        assert ctl.level == SamplingLevel.MEDIUM

    def test_level_capped_at_high(self):
        ctl = IntensityController()
        ctl.count_accesses(900, 100)
        ctl.end_window(window(), 0.0)
        ctl.count_accesses(100, 900)
        ctl.end_window(window(), 0.0)
        assert ctl.level <= SamplingLevel.HIGH

    def test_first_window_never_steps(self):
        # A single window has no stability information.
        ctl = IntensityController()
        feed_stable(ctl)
        ctl.end_window(window(), 0.0)
        assert ctl.level == SamplingLevel.HIGH


class TestMonitoringTriggers:
    def test_promotion_plateau_enters_monitoring(self):
        ctl = IntensityController()
        feed_stable(ctl)
        ctl.end_window(window(promoted=0, rounds=3), 0.0)
        assert ctl.state == TieringState.MONITORING
        assert any("plateau" in e for __, e in ctl.transitions)

    def test_plateau_requires_processing_rounds(self):
        """No promotion pass ran -> not a plateau (e.g. first window)."""
        ctl = IntensityController()
        feed_stable(ctl)
        ctl.end_window(window(promoted=0, rounds=0), 0.0)
        assert ctl.state == TieringState.SAMPLING

    def test_empty_demotion_scan_enters_monitoring(self):
        ctl = IntensityController()
        feed_stable(ctl)
        ctl.end_window(window(empty_scan=True), 0.0)
        assert ctl.state == TieringState.MONITORING
        assert any("empty-demotion-scan" in e for __, e in ctl.transitions)


class TestMonitoringMode:
    def make_monitoring(self) -> IntensityController:
        ctl = IntensityController()
        feed_stable(ctl)
        ctl.end_window(window(promoted=0, rounds=1), 0.0)
        assert ctl.state == TieringState.MONITORING
        return ctl

    def test_stays_monitoring_while_stable(self):
        ctl = self.make_monitoring()
        for __ in range(5):
            feed_stable(ctl)
            ctl.end_window(window(), 0.0)
        assert ctl.state == TieringState.MONITORING

    def test_distribution_change_resumes_sampling_at_high(self):
        """Paper Fig. 11: monitoring detects the shift and re-arms."""
        ctl = self.make_monitoring()
        ctl.count_accesses(300, 700)  # hit ratio collapsed
        ctl.end_window(window(), now_ns=42.0)
        assert ctl.state == TieringState.SAMPLING
        assert ctl.level == SamplingLevel.HIGH
        assert any("resume-sampling" in e for __, e in ctl.transitions)

    def test_empty_monitoring_window_is_ignored(self):
        ctl = self.make_monitoring()
        ctl.end_window(window(), 0.0)  # no accesses counted
        assert ctl.state == TieringState.MONITORING

    def test_sampling_active_flag(self):
        ctl = IntensityController()
        assert ctl.sampling_active
        ctl2 = self.make_monitoring()
        assert not ctl2.sampling_active
