"""Tests for AllLocal, StaticNoMigration and MULTI-CLOCK."""

import numpy as np

from repro.memsim.machine import Machine, MachineConfig
from repro.memsim.pagetable import LOCAL_TIER
from repro.policies.alllocal import AllLocal
from repro.policies.multiclock import MultiClock
from repro.policies.static_policy import StaticNoMigration
from repro.sampling.events import AccessBatch


def drive(machine, policy, pages, now=0.0):
    batch = AccessBatch(page_ids=np.asarray(pages), num_ops=1.0, cpu_ns=0.0)
    tiers = machine.placement_of(batch.page_ids)
    return policy.on_batch(batch, tiers, now)


class TestNoOpPolicies:
    def test_all_local_never_migrates(self):
        machine = Machine(
            MachineConfig(local_capacity_pages=1000, cxl_capacity_pages=64)
        )
        policy = AllLocal()
        policy.attach(machine)
        machine.allocate(500)
        assert drive(machine, policy, np.arange(0, 500)) == 0.0
        assert machine.traffic.pages_migrated == 0
        machine.service_accesses(np.arange(0, 500))
        assert machine.traffic.local_hit_ratio == 1.0

    def test_static_keeps_default_placement(self):
        machine = Machine(
            MachineConfig(local_capacity_pages=100, cxl_capacity_pages=1000)
        )
        policy = StaticNoMigration()
        policy.attach(machine)
        machine.allocate(500)
        for i in range(5):
            drive(machine, policy, np.arange(0, 500), now=float(i))
        assert machine.traffic.pages_migrated == 0
        assert machine.local_used_pages == 100


class TestMultiClock:
    def make_setup(self, local=128, footprint=2048):
        machine = Machine(
            MachineConfig(local_capacity_pages=local, cxl_capacity_pages=4096)
        )
        policy = MultiClock(sample_batch_size=200, pebs_base_period=4)
        policy.attach(machine)
        machine.allocate(footprint)
        return machine, policy

    def test_promotes_multi_access_pages(self):
        machine, policy = self.make_setup()
        hot = np.arange(1000, 1040)
        for i in range(20):
            drive(machine, policy, np.tile(hot, 30), now=float(i))
        placement = machine.placement_of(hot)
        assert np.count_nonzero(placement == LOCAL_TIER) > 0

    def test_single_access_pages_not_promoted(self):
        machine, policy = self.make_setup()
        # Each page seen at most once between sweeps.
        for i in range(10):
            drive(machine, policy, np.arange(1000 + i * 100, 1100 + i * 100), float(i))
        assert policy.stats.promotions < 10

    def test_sweep_resets_classification(self):
        machine, policy = self.make_setup()
        policy.sweep_interval_samples = 100
        hot = np.arange(1000, 1020)
        for i in range(10):
            drive(machine, policy, np.tile(hot, 50), now=float(i))
        # After enough samples, sweeps must have zeroed states at least once.
        assert policy._seen.max() <= 2
