"""Tests for the AutoNUMA baseline."""

import numpy as np
import pytest

from repro.memsim.machine import Machine, MachineConfig
from repro.memsim.pagetable import CXL_TIER, LOCAL_TIER
from repro.policies.autonuma import AutoNUMA
from repro.sampling.events import AccessBatch


def make_setup(local=128, cxl=4096, footprint=2048, **kwargs):
    machine = Machine(
        MachineConfig(local_capacity_pages=local, cxl_capacity_pages=cxl)
    )
    policy = AutoNUMA(
        scan_period_accesses=kwargs.pop("scan_period_accesses", 500),
        **kwargs,
    )
    policy.attach(machine)
    machine.allocate(footprint)
    return machine, policy


def drive(machine, policy, pages, now=0.0):
    batch = AccessBatch(page_ids=np.asarray(pages), num_ops=1.0, cpu_ns=0.0)
    tiers = machine.placement_of(batch.page_ids)
    return policy.on_batch(batch, tiers, now)


class TestScanning:
    def test_scanner_sized_from_machine(self):
        machine, policy = make_setup()
        assert policy.scanner.total_pages == machine.config.total_capacity_pages

    def test_scan_ticks_follow_access_volume(self):
        machine, policy = make_setup()
        drive(machine, policy, np.arange(0, 1000))
        assert policy.scanner.windows_scanned == 2  # 1000 / 500

    def test_window_fraction_validated(self):
        with pytest.raises(ValueError):
            AutoNUMA(window_fraction=0.0)


class TestPromotion:
    def test_promotes_refaulted_cxl_pages(self):
        machine, policy = make_setup(window_fraction=0.5)
        hot_cxl = np.arange(1000, 1050)
        for i in range(30):
            drive(machine, policy, np.tile(hot_cxl, 20), now=float(i * 1000))
        assert policy.stats.promotions > 0
        placement = machine.placement_of(hot_cxl)
        assert np.count_nonzero(placement == LOCAL_TIER) > 0

    def test_hot_threshold_gates_promotion(self):
        machine, policy = make_setup(
            window_fraction=0.5, initial_hot_threshold_ns=1e-9
        )
        # With an (effectively) zero threshold no fault qualifies.
        # (Start at now > 0 so a first-batch fault has nonzero latency.)
        hot_cxl = np.arange(1000, 1050)
        for i in range(10):
            drive(machine, policy, np.tile(hot_cxl, 20), now=float((i + 1) * 1000))
        assert policy.stats.promotions == 0

    def test_rate_limit_is_hard_cap(self):
        machine, policy = make_setup(
            window_fraction=1.0,
            rate_limit_pages_per_window=10,
            rate_window_accesses=10_000_000,  # never resets in test
        )
        wide = np.arange(1000, 2000)
        for i in range(20):
            drive(machine, policy, np.tile(wide, 2), now=float(i * 1000))
        assert policy.stats.promotions <= 10


class TestThresholdAdaptation:
    def test_threshold_tightens_when_over_limit(self):
        machine, policy = make_setup(
            window_fraction=1.0,
            rate_limit_pages_per_window=5,
            rate_window_accesses=2_000,
        )
        before = policy.hot_threshold_ns
        wide = np.arange(1000, 2000)
        for i in range(10):
            drive(machine, policy, np.tile(wide, 2), now=float(i * 1000))
        assert policy.hot_threshold_ns < before

    def test_threshold_loosens_when_idle(self):
        machine, policy = make_setup(rate_window_accesses=1_000)
        before = policy.hot_threshold_ns
        quiet = np.arange(0, 50)  # local-only, no faults promoted
        for i in range(30):
            drive(machine, policy, np.tile(quiet, 40), now=float(i * 1000))
        assert policy.hot_threshold_ns > before


class TestDemotion:
    def test_untouched_pages_demoted_first(self):
        machine, policy = make_setup(local=64, footprint=1024, window_fraction=0.5)
        # Keep pages 0-31 warm; 32-63 never touched; 500-550 hot on CXL.
        warm = np.arange(0, 32)
        hot_cxl = np.arange(500, 550)
        for i in range(30):
            drive(
                machine,
                policy,
                np.concatenate([np.tile(warm, 20), np.tile(hot_cxl, 20)]),
                now=float(i * 1000),
            )
        if policy.stats.demotions:
            placement_untouched = machine.placement_of(np.arange(32, 64))
            placement_warm = machine.placement_of(warm)
            demoted_untouched = np.count_nonzero(placement_untouched == CXL_TIER)
            demoted_warm = np.count_nonzero(placement_warm == CXL_TIER)
            assert demoted_untouched >= demoted_warm

    def test_mglru_generations_age(self):
        machine, policy = make_setup(rate_window_accesses=500)
        seen = np.arange(0, 50)
        for i in range(5):
            drive(machine, policy, np.tile(seen, 20), now=float(i))
        assert policy._generation[seen].max() > 0
        # Stop touching them: generations decay.
        for i in range(8):
            drive(machine, policy, np.tile(np.arange(60, 100), 25), now=float(i))
        assert policy._generation[seen].max() < policy.MAX_GENERATION
