"""Regression tests for the intensity/sampling state-machine bugfixes.

Three bugs shipped with the original FreqTier port:

1. entering monitoring mode off an empty window stored ``None`` as the
   reference hit ratio and monitoring never resumed sampling (covered
   at controller level in ``test_intensity.py``);
2. samples buffered in the PEBS ring at the SAMPLING -> MONITORING
   transition survived monitoring mode and were replayed -- arbitrarily
   stale -- when sampling resumed;
3. the aging counter was reset to zero instead of decremented by the
   interval, so sample batches larger than ``aging_interval_samples``
   silently stretched the aging cadence.

These tests drive the full policy and pin the fixed behaviour.
"""

import numpy as np

from repro.memsim.machine import Machine, MachineConfig
from repro.memsim.pagetable import LOCAL_TIER
from repro.obs import ListSink, Tracer
from repro.policies.freqtier import FreqTier, FreqTierConfig
from repro.policies.freqtier.intensity import TieringState
from repro.sampling.events import AccessBatch


def make_traced_setup(local=128, cxl=4096, footprint=2048, **cfg_kwargs):
    """Machine + FreqTier wired to a recording tracer + mapped region."""
    machine = Machine(
        MachineConfig(local_capacity_pages=local, cxl_capacity_pages=cxl)
    )
    policy = FreqTier(config=FreqTierConfig(**cfg_kwargs), seed=1)
    sink = ListSink()
    policy.set_tracer(Tracer(sinks=[sink]))
    policy.attach(machine)
    machine.allocate(footprint)
    return machine, policy, sink


def drive(machine, policy, pages: np.ndarray, now: float = 0.0) -> float:
    batch = AccessBatch(page_ids=pages, num_ops=1.0, cpu_ns=0.0)
    tiers = machine.placement_of(batch.page_ids)
    return policy.on_batch(batch, tiers, now)


class TestMonitoringRingFlush:
    """Bug 2: the PEBS ring must be discarded on entering monitoring."""

    def enter_monitoring(self):
        # Huge sample batch so nothing ever drains: every sample taken
        # is still in the ring when the stability ladder reaches
        # monitoring after four stable windows.
        machine, policy, sink = make_traced_setup(
            window_accesses=2_000,
            sample_batch_size=100_000,
            pebs_base_period=1,
        )
        stable = np.arange(0, 50)  # resident in local DRAM, ratio 1.0
        for i in range(8):  # 8 x 1000 accesses = 4 windows
            drive(machine, policy, np.tile(stable, 20), now=float(i))
        assert policy.state == TieringState.MONITORING
        return machine, policy, sink

    def test_ring_emptied_and_counted_as_lost(self):
        __, policy, __sink = self.enter_monitoring()
        assert policy.pebs.pending_samples == 0
        assert policy.pebs.total_lost > 0

    def test_flush_traced_as_ring_overflow(self):
        __, __, sink = self.enter_monitoring()
        flushes = [
            e
            for e in sink.of_type("ring_overflow")
            if e["reason"] == "monitoring-flush"
        ]
        assert len(flushes) == 1
        assert flushes[0]["lost"] > 0

    def test_discarded_samples_not_replayed_on_resume(self):
        __, policy, __sink = self.enter_monitoring()
        # The next drain must start from a clean ring: the discarded
        # samples are gone, not re-reported as a capacity overflow.
        batch = policy.pebs.drain()
        assert batch.num_samples == 0
        assert batch.lost == 0


class TestAgingCadence:
    """Bug 3: oversize sample batches must not stretch the aging cadence."""

    def test_remainder_carries_over(self):
        machine, policy, sink = make_traced_setup(
            aging_interval_samples=100,
            sample_batch_size=50,
            pebs_base_period=1,
        )
        # One 250-access batch drains as a single 250-sample pass.
        drive(machine, policy, np.arange(200, 450))
        assert len(sink.of_type("aging")) == 1
        # Pre-fix this reset to 0; the fix keeps the 150 remainder.
        assert policy._samples_since_aging == 150

    def test_long_run_cadence_is_one_aging_per_interval(self):
        machine, policy, sink = make_traced_setup(
            aging_interval_samples=100,
            sample_batch_size=50,
            pebs_base_period=1,
        )
        # 8 passes x 75 samples = 600 samples -> 6 agings.  The pre-fix
        # reset-to-zero yielded only 4 (one per two batches).
        for i in range(8):
            drive(machine, policy, np.arange(200, 275), now=float(i))
        assert len(sink.of_type("aging")) == 6
        assert sink.events[-1]  # tracer saw activity at all


class TestStablePromotionOrder:
    """Tied frequencies must promote in deterministic unit order."""

    def test_tied_candidates_promote_lowest_units_first(self):
        machine, policy, __ = make_traced_setup(
            local=32,
            footprint=1024,
            sample_batch_size=64,
            pebs_base_period=1,
            initial_hot_threshold=2,
            blocked_cbf=False,
            cbf_num_counters=1 << 15,
        )
        # 64 CXL pages, all with identical frequency: far more hot
        # candidates than local DRAM can absorb in one batch.
        hot = np.arange(500, 564)
        drive(machine, policy, np.tile(hot, 4))
        placement = machine.placement_of(hot)
        promoted = hot[placement == LOCAL_TIER]
        assert promoted.size > 0
        # The stable sort keeps tied units in ascending unit order, so
        # the winners are exactly the lowest-numbered pages.
        np.testing.assert_array_equal(
            promoted, np.arange(500, 500 + promoted.size)
        )

    def test_identical_runs_promote_identically(self):
        def run():
            machine, policy, __ = make_traced_setup(
                local=32,
                footprint=1024,
                sample_batch_size=64,
                pebs_base_period=1,
                initial_hot_threshold=2,
            )
            hot = np.arange(500, 564)
            drive(machine, policy, np.tile(hot, 4))
            return machine.placement_of(np.arange(0, 1024))

        np.testing.assert_array_equal(run(), run())
