"""Tests for units and scaling conventions."""

import pytest

from repro._units import (
    GiB,
    PAGE_SIZE,
    PAGES_PER_SIM_GB,
    SCALE_FACTOR,
    bytes_to_pages,
    pages_to_bytes,
    pages_to_sim_gb,
    sim_gb_to_pages,
)


class TestConstants:
    def test_page_size_is_4k(self):
        assert PAGE_SIZE == 4096

    def test_pages_per_sim_gb_consistent(self):
        assert PAGES_PER_SIM_GB == GiB // SCALE_FACTOR // PAGE_SIZE
        assert PAGES_PER_SIM_GB == 256


class TestConversions:
    def test_roundtrip(self):
        assert pages_to_sim_gb(sim_gb_to_pages(16)) == pytest.approx(16.0)

    def test_paper_sizes(self):
        # The paper's 16 GB local DRAM -> 4096 simulated pages.
        assert sim_gb_to_pages(16) == 4096
        # 267 GB footprint -> 68352 pages.
        assert sim_gb_to_pages(267) == 267 * 256

    def test_fractional_gb(self):
        assert sim_gb_to_pages(0.5) == 128

    def test_bytes_conversions(self):
        assert pages_to_bytes(2) == 8192
        assert bytes_to_pages(8192) == 2
        assert bytes_to_pages(8193) == 3  # ceiling
        assert bytes_to_pages(1) == 1
