"""Tests for the hot-path microbenchmark harness.

The harness lives in ``scripts/`` (not a package), so it is loaded via
importlib.  These tests cover the record schema validator and the
regression checker -- the parts CI relies on -- without running the
timed benchmarks themselves.
"""

import importlib.util
import pathlib

import pytest

_BENCH_PATH = (
    pathlib.Path(__file__).parent.parent / "scripts" / "bench_hotpath.py"
)


@pytest.fixture(scope="module")
def bench():
    spec = importlib.util.spec_from_file_location("bench_hotpath", _BENCH_PATH)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _minimal_record(bench):
    component = {
        "ns_per_op": 100.0,
        "ops": 1000,
        "reps": 3,
        "seconds_best": 1e-4,
    }
    engine = dict(component, batches_per_sec=10_000.0, backend="numpy")
    return {
        "schema_version": bench.SCHEMA_VERSION,
        "benchmark": "hot-path microbenchmarks",
        "smoke": True,
        "python": "0",
        "numpy": "0",
        "components": {
            "hashing": dict(component),
            "cbf_increase": dict(component),
            "engine_cdn": engine,
        },
        "sampler_rng": {
            "MEDIUM": {"offered": 1000, "drawn": 10, "reduction_x": 100.0},
            "LOW": {"offered": 1000, "drawn": 2, "reduction_x": 500.0},
        },
    }


class TestValidateRecord:
    def test_valid_record_passes(self, bench):
        assert bench.validate_record(_minimal_record(bench)) == []

    def test_non_dict_rejected(self, bench):
        assert bench.validate_record([]) == ["record is not an object"]

    def test_wrong_schema_version_flagged(self, bench):
        rec = _minimal_record(bench)
        rec["schema_version"] = 999
        assert any("schema_version" in e for e in bench.validate_record(rec))

    def test_missing_component_field_flagged(self, bench):
        rec = _minimal_record(bench)
        del rec["components"]["hashing"]["ns_per_op"]
        assert any("hashing" in e for e in bench.validate_record(rec))

    def test_empty_components_flagged(self, bench):
        rec = _minimal_record(bench)
        rec["components"] = {}
        assert any("components" in e for e in bench.validate_record(rec))

    def test_non_integral_ops_flagged(self, bench):
        rec = _minimal_record(bench)
        rec["components"]["hashing"]["ops"] = 12.5
        assert any("must be integral" in e for e in bench.validate_record(rec))

    def test_missing_rng_field_flagged(self, bench):
        rec = _minimal_record(bench)
        del rec["sampler_rng"]["LOW"]["reduction_x"]
        assert any("LOW" in e for e in bench.validate_record(rec))

    def test_engine_without_batches_per_sec_flagged(self, bench):
        rec = _minimal_record(bench)
        del rec["components"]["engine_cdn"]["batches_per_sec"]
        assert any("batches_per_sec" in e for e in bench.validate_record(rec))

    def test_engine_with_unknown_backend_flagged(self, bench):
        rec = _minimal_record(bench)
        rec["components"]["engine_cdn"]["backend"] = "cython"
        assert any("backend" in e for e in bench.validate_record(rec))

    def test_non_engine_component_needs_no_throughput(self, bench):
        # hashing has neither batches_per_sec nor backend: still valid.
        assert bench.validate_record(_minimal_record(bench)) == []


class TestCheckRegressions:
    def test_equal_times_pass(self, bench):
        rec = _minimal_record(bench)
        assert bench.check_regressions(rec, rec, 2.0, 5.0) == []

    def test_within_tolerance_passes(self, bench):
        rec = _minimal_record(bench)
        base = _minimal_record(bench)
        rec["components"]["hashing"]["ns_per_op"] = 199.0  # < 2x of 100
        assert bench.check_regressions(rec, base, 2.0, 5.0) == []

    def test_beyond_tolerance_fails(self, bench):
        rec = _minimal_record(bench)
        base = _minimal_record(bench)
        rec["components"]["hashing"]["ns_per_op"] = 250.0  # > 2x of 100
        errors = bench.check_regressions(rec, base, 2.0, 5.0)
        assert any("hashing" in e for e in errors)

    def test_new_component_without_baseline_ok(self, bench):
        rec = _minimal_record(bench)
        base = _minimal_record(bench)
        del base["components"]["engine_cdn"]
        rec["components"]["engine_cdn"]["ns_per_op"] = 1e9
        assert bench.check_regressions(rec, base, 2.0, 5.0) == []

    def test_rng_reduction_floor_enforced(self, bench):
        rec = _minimal_record(bench)
        rec["sampler_rng"]["MEDIUM"]["reduction_x"] = 2.0  # below 5x floor
        errors = bench.check_regressions(rec, _minimal_record(bench), 2.0, 5.0)
        assert any("MEDIUM" in e for e in errors)

    def test_engine_ceiling_enforced_on_full_records(self, bench):
        base = _minimal_record(bench)
        base["smoke"] = False
        over = bench._ENGINE_CEILINGS_NS["engine_cdn"] * 2
        base["components"]["engine_cdn"]["ns_per_op"] = over
        errors = bench.check_regressions(_minimal_record(bench), base, 1e9, 0.0)
        assert any("ceiling" in e for e in errors)

    def test_engine_relative_check_skipped_across_smoke_mismatch(self, bench):
        rec = _minimal_record(bench)  # smoke
        base = _minimal_record(bench)
        base["smoke"] = False
        rec["components"]["engine_cdn"]["ns_per_op"] = 300.0  # 3x of 100
        rec["components"]["hashing"]["ns_per_op"] = 300.0
        errors = bench.check_regressions(rec, base, 2.0, 0.0)
        assert any("hashing" in e for e in errors)
        assert not any("engine_cdn" in e for e in errors)

    def test_engine_ceiling_skipped_for_smoke_records(self, bench):
        rec = _minimal_record(bench)  # smoke record
        over = bench._ENGINE_CEILINGS_NS["engine_cdn"] * 2
        rec["components"]["engine_cdn"]["ns_per_op"] = over
        errors = bench.check_regressions(rec, _minimal_record(bench), 1e9, 0.0)
        assert errors == []
