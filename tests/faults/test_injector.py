"""FaultInjector: deterministic fault draws at each contact point."""

from __future__ import annotations

import numpy as np
import pytest

from repro.faults import FaultInjector, FaultPlan, InjectedCrash

PAGES = np.arange(10, dtype=np.int64)


def _inj(plan: FaultPlan, total_pages: int = 100) -> FaultInjector:
    return FaultInjector(plan, total_pages)


class TestConstruction:
    def test_total_pages_validated(self):
        with pytest.raises(ValueError, match="total_pages"):
            _inj(FaultPlan(), total_pages=0)

    def test_explicit_pinned_pages(self):
        inj = _inj(FaultPlan(pinned_pages=(3, 7, 500)))
        # Out-of-range pins are ignored (nothing there to pin).
        assert inj.pinned_pages.tolist() == [3, 7]

    def test_pinned_draw_deterministic(self):
        plan = FaultPlan(pinned_fraction=0.1, seed=5)
        a, b = _inj(plan), _inj(plan)
        assert a.pinned_pages.tolist() == b.pinned_pages.tolist()
        assert a.pinned_pages.size == 10  # 10% of 100


class TestMigrationFaults:
    def test_no_faults_passes_everything(self):
        allowed, pinned, transient, enomem = _inj(FaultPlan()).filter_migration(
            PAGES, target_tier=0
        )
        assert allowed.tolist() == PAGES.tolist()
        assert pinned.size == 0 and transient.size == 0 and not enomem

    def test_certain_transient_failure(self):
        inj = _inj(FaultPlan(migration_fail_prob=1.0))
        allowed, pinned, transient, enomem = inj.filter_migration(PAGES, 0)
        assert allowed.size == 0 and pinned.size == 0 and not enomem
        assert transient.tolist() == PAGES.tolist()
        assert inj.counters["migration_transient"] == PAGES.size

    def test_pinned_dominates_transient(self):
        inj = _inj(FaultPlan(migration_fail_prob=1.0, pinned_pages=(4,)))
        allowed, pinned, transient, _ = inj.filter_migration(PAGES, 0)
        assert pinned.tolist() == [4]
        assert 4 not in transient.tolist()
        assert inj.counters["migration_pinned"] == 1

    def test_empty_call_is_noop(self):
        inj = _inj(FaultPlan(migration_fail_prob=1.0, enomem_prob=1.0))
        empty = np.zeros(0, dtype=np.int64)
        allowed, pinned, transient, enomem = inj.filter_migration(empty, 0)
        assert allowed.size == 0 and not enomem
        assert all(v == 0 for v in inj.counters.values())

    def test_enomem_fails_whole_call(self):
        inj = _inj(FaultPlan(enomem_prob=1.0, enomem_burst_calls=3))
        allowed, pinned, transient, enomem = inj.filter_migration(PAGES, 0)
        assert enomem
        assert allowed.size == 0
        assert transient.tolist() == PAGES.tolist()  # caller can't tell why
        assert inj.counters["migration_enomem"] == PAGES.size

    def test_enomem_burst_is_per_tier(self):
        inj = _inj(FaultPlan(enomem_prob=1.0, enomem_burst_calls=4))
        inj.filter_migration(PAGES, target_tier=0)
        # Tier 0's burst has 3 calls left; tier 1 starts its own burst.
        assert inj._enomem_left[0] == 3
        inj.filter_migration(PAGES, target_tier=1)
        assert inj._enomem_left[0] == 3
        assert inj._enomem_left[1] == 3

    def test_enomem_burst_counts_down(self):
        inj = _inj(FaultPlan(enomem_prob=1.0, enomem_burst_calls=3))
        for expected_left in (2, 1, 0):
            _, _, _, enomem = inj.filter_migration(PAGES, 0)
            assert enomem
            assert inj._enomem_left[0] == expected_left


class TestSamplingFaults:
    def test_loss_burst_all_or_nothing(self):
        inj = _inj(FaultPlan(sample_loss_prob=1.0, sample_loss_burst_batches=2))
        assert inj.sample_loss(10) == 10
        assert inj.sample_loss(7) == 7
        assert inj.counters["samples_lost"] == 17

    def test_no_loss_without_plan(self):
        inj = _inj(FaultPlan())
        assert inj.sample_loss(10) == 0
        assert inj.sample_loss(0) == 0

    def test_corruption_is_out_of_range_and_copy_on_write(self):
        inj = _inj(FaultPlan(sample_corrupt_prob=1.0), total_pages=50)
        original = PAGES.copy()
        corrupted = inj.corrupt_samples(PAGES)
        assert PAGES.tolist() == original.tolist()  # input never mutated
        assert corrupted is not PAGES
        assert (corrupted >= 50).all()
        assert inj.counters["samples_corrupted"] == PAGES.size

    def test_zero_probability_returns_input(self):
        inj = _inj(FaultPlan())
        assert inj.corrupt_samples(PAGES) is PAGES

    def test_corruption_deterministic(self):
        plan = FaultPlan(sample_corrupt_prob=0.5, seed=9)
        a = _inj(plan).corrupt_samples(PAGES)
        b = _inj(plan).corrupt_samples(PAGES)
        assert a.tolist() == b.tolist()


class TestCrashSchedule:
    def test_crash_fires_at_exact_batch(self):
        inj = _inj(FaultPlan(crash_after_batches=3))
        inj.tick_batch()
        inj.tick_batch()
        with pytest.raises(InjectedCrash, match="after 3 batches"):
            inj.tick_batch()

    def test_no_crash_without_schedule(self):
        inj = _inj(FaultPlan())
        for _ in range(100):
            inj.tick_batch()
        assert inj.batch_index == 100


class TestDeterminism:
    def test_identical_call_sequences_identical_outcomes(self):
        plan = FaultPlan(
            migration_fail_prob=0.3,
            pinned_fraction=0.05,
            enomem_prob=0.1,
            sample_loss_prob=0.2,
            sample_corrupt_prob=0.1,
            seed=17,
        )
        trail_a, trail_b = [], []
        for trail in (trail_a, trail_b):
            inj = _inj(plan, total_pages=200)
            for i in range(20):
                pages = np.arange(i, i + 15, dtype=np.int64)
                allowed, pinned, transient, enomem = inj.filter_migration(
                    pages, target_tier=i % 2
                )
                trail.append(
                    (allowed.tolist(), pinned.tolist(), transient.tolist(), enomem)
                )
                trail.append(inj.sample_loss(i))
                trail.append(inj.corrupt_samples(pages).tolist())
            trail.append(dict(inj.counters))
        assert trail_a == trail_b
