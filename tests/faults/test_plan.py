"""FaultPlan: validation, identity, serialization, CLI parsing."""

from __future__ import annotations

import pickle

import pytest

from repro.faults import FAULT_PRESETS, FaultPlan, parse_fault_spec


class TestValidation:
    @pytest.mark.parametrize(
        "field",
        [
            "migration_fail_prob",
            "pinned_fraction",
            "enomem_prob",
            "sample_loss_prob",
            "sample_corrupt_prob",
        ],
    )
    def test_probabilities_bounded(self, field):
        FaultPlan(**{field: 0.0})
        FaultPlan(**{field: 1.0})
        with pytest.raises(ValueError, match=field):
            FaultPlan(**{field: -0.1})
        with pytest.raises(ValueError, match=field):
            FaultPlan(**{field: 1.1})

    def test_burst_lengths_positive(self):
        with pytest.raises(ValueError, match="enomem_burst_calls"):
            FaultPlan(enomem_burst_calls=0)
        with pytest.raises(ValueError, match="sample_loss_burst_batches"):
            FaultPlan(sample_loss_burst_batches=0)

    def test_crash_after_batches_positive(self):
        with pytest.raises(ValueError, match="crash_after_batches"):
            FaultPlan(crash_after_batches=0)

    def test_pinned_pages_nonnegative(self):
        with pytest.raises(ValueError, match="pinned_pages"):
            FaultPlan(pinned_pages=(3, -1))


class TestActive:
    def test_default_plan_is_inactive(self):
        assert not FaultPlan().active
        assert not FaultPlan(seed=42).active  # seed alone injects nothing

    @pytest.mark.parametrize(
        "fields",
        [
            {"migration_fail_prob": 0.01},
            {"pinned_fraction": 0.01},
            {"pinned_pages": (7,)},
            {"enomem_prob": 0.01},
            {"sample_loss_prob": 0.01},
            {"sample_corrupt_prob": 0.01},
            {"crash_after_batches": 5},
        ],
    )
    def test_each_fault_class_activates(self, fields):
        assert FaultPlan(**fields).active


class TestSerialization:
    def test_dict_round_trip(self):
        plan = FaultPlan(
            seed=9,
            migration_fail_prob=0.05,
            pinned_pages=(1, 2, 3),
            enomem_prob=0.02,
            crash_after_batches=7,
            crash_hard=True,
        )
        assert FaultPlan.from_dict(plan.to_dict()) == plan

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown FaultPlan fields"):
            FaultPlan.from_dict({"migration_fial_prob": 0.1})

    def test_replace(self):
        base = FaultPlan(migration_fail_prob=0.01)
        varied = base.replace(seed=3)
        assert varied.seed == 3
        assert varied.migration_fail_prob == 0.01
        assert base.seed == 0  # frozen original untouched

    def test_picklable(self):
        plan = FaultPlan(pinned_fraction=0.01, seed=4)
        assert pickle.loads(pickle.dumps(plan)) == plan


class TestPresets:
    def test_all_presets_are_plans(self):
        for name, plan in FAULT_PRESETS.items():
            assert isinstance(plan, FaultPlan), name

    def test_none_preset_inactive_others_active(self):
        assert not FAULT_PRESETS["none"].active
        for name, plan in FAULT_PRESETS.items():
            if name != "none":
                assert plan.active, name

    def test_transient_preset_is_one_percent(self):
        assert FAULT_PRESETS["transient"].migration_fail_prob == 0.01


class TestParseFaultSpec:
    def test_preset_name(self):
        assert parse_fault_spec("transient") == FAULT_PRESETS["transient"]
        assert parse_fault_spec("  chaos  ") == FAULT_PRESETS["chaos"]

    def test_inline_json(self):
        plan = parse_fault_spec('{"migration_fail_prob": 0.05, "seed": 7}')
        assert plan == FaultPlan(migration_fail_prob=0.05, seed=7)

    def test_invalid_json_raises(self):
        with pytest.raises(ValueError, match="invalid"):
            parse_fault_spec("{not json")

    def test_unknown_preset_lists_choices(self):
        with pytest.raises(ValueError, match="presets:"):
            parse_fault_spec("no-such-preset")
