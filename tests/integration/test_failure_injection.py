"""Failure injection and pathological-input tests.

The paper's system must behave sanely under conditions its mechanisms
assume away: saturated sample buffers, uniform (unskewed) workloads,
capacity so small nothing fits, and degenerate single-page traces.
"""

import numpy as np
import pytest

from repro import (
    ExperimentConfig,
    FreqTier,
    FreqTierConfig,
    SyntheticZipfWorkload,
    run_experiment,
)
from repro.memsim.machine import Machine, MachineConfig
from repro.policies.freqtier.intensity import TieringState
from repro.sampling.events import AccessBatch
from repro.sampling.pebs import PEBSSampler, SamplingLevel


class TestSampleLoss:
    def test_policy_survives_ring_overflow(self):
        """Saturated PEBS rings drop samples; tiering must continue."""
        machine = Machine(
            MachineConfig(local_capacity_pages=64, cxl_capacity_pages=2048)
        )
        config = FreqTierConfig(
            sample_batch_size=100_000,  # never drains by size
            pebs_base_period=1,  # sample everything
            window_accesses=50_000,
            pebs_ring_capacity=64,  # drastically constrained ring
        )
        policy = FreqTier(config=config, seed=1)
        policy.attach(machine)
        assert policy.pebs.ring_capacity == 64
        machine.allocate(1024)
        hot = np.arange(500, 540)
        for i in range(30):
            batch = AccessBatch(
                page_ids=np.tile(hot, 50), num_ops=1.0, cpu_ns=0.0
            )
            tiers = machine.placement_of(batch.page_ids)
            policy.on_batch(batch, tiers, float(i))
        assert policy.pebs.total_lost > 0
        # Flush-at-window-close still processed what survived.
        assert policy.stats.samples_processed > 0


class TestUnskewedWorkload:
    def test_uniform_accesses_bounded_migration(self):
        """Section VIII-a: no-skew apps see little benefit -- and the
        policy must not thrash trying to find nonexistent hot pages."""
        config = ExperimentConfig(local_fraction=0.1, max_batches=60, seed=2)
        result = run_experiment(
            lambda: SyntheticZipfWorkload(
                num_pages=4000, alpha=0.0, accesses_per_batch=20_000, seed=2
            ),
            lambda: FreqTier(seed=2),
            config,
        )
        # Hit ratio stays near the capacity share (no magic).
        assert result.steady_hit_ratio < 0.35
        # Migration traffic stays bounded (no unbounded churn): fewer
        # pages moved than accesses sampled.
        assert result.pages_migrated < result.total_accesses / 50


class TestDegenerateShapes:
    def test_single_hot_page(self):
        machine = Machine(
            MachineConfig(local_capacity_pages=32, cxl_capacity_pages=512)
        )
        policy = FreqTier(
            config=FreqTierConfig(sample_batch_size=200, pebs_base_period=2),
            seed=3,
        )
        policy.attach(machine)
        machine.allocate(256)
        one_page = np.full(2_000, 200, dtype=np.int64)
        for i in range(10):
            batch = AccessBatch(page_ids=one_page, num_ops=1.0, cpu_ns=0.0)
            policy.on_batch(batch, machine.placement_of(one_page), float(i))
        # The single hot page ends up local.
        assert machine.placement_of(np.array([200]))[0] == 0

    def test_empty_batches_are_noops(self):
        machine = Machine(
            MachineConfig(local_capacity_pages=32, cxl_capacity_pages=512)
        )
        policy = FreqTier(seed=4)
        policy.attach(machine)
        machine.allocate(64)
        empty = AccessBatch(
            page_ids=np.zeros(0, dtype=np.int64), num_ops=0.0, cpu_ns=0.0
        )
        overhead = policy.on_batch(empty, np.zeros(0, dtype=np.int64), 0.0)
        assert overhead == 0.0

    def test_footprint_smaller_than_local(self):
        """Everything fits: policy must settle into monitoring and stop."""
        config = ExperimentConfig(local_fraction=1.2, max_batches=80, seed=5)
        workload = lambda: SyntheticZipfWorkload(
            num_pages=500, alpha=1.2, accesses_per_batch=20_000, seed=5
        )
        policy_holder = {}

        def make_policy():
            p = FreqTier(
                config=FreqTierConfig(window_accesses=100_000), seed=5
            )
            policy_holder["p"] = p
            return p

        result = run_experiment(workload, make_policy, config)
        assert result.overall_hit_ratio == pytest.approx(1.0)
        assert policy_holder["p"].state == TieringState.MONITORING
        assert result.pages_migrated == 0


class TestSamplerEdgeCases:
    def test_off_then_on(self):
        sampler = PEBSSampler(base_period=2, seed=0)
        batch = AccessBatch(page_ids=np.arange(100), num_ops=1.0, cpu_ns=0.0)
        sampler.set_level(SamplingLevel.OFF)
        sampler.observe(batch, np.zeros(100))
        assert sampler.pending_samples == 0
        sampler.set_level(SamplingLevel.HIGH)
        sampler.observe(batch, np.zeros(100))
        assert sampler.pending_samples > 0
