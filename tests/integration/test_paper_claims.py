"""Small-scale checks of the paper's headline claims.

Full-size reproductions live in benchmarks/; these are fast versions
asserting the claims' *direction* so the unit suite guards them.
"""

import pytest

from repro import (
    AutoNUMA,
    CacheLibWorkload,
    CDN_PROFILE,
    ExperimentConfig,
    FreqTier,
    HeMem,
    SOCIAL_PROFILE,
    TPP,
    compare_policies,
)
from repro.memsim.tier import CXL2_CONFIG


def cdn_factory():
    return CacheLibWorkload(
        CDN_PROFILE, slab_pages=8192, ops_per_batch=6000, seed=21
    )


def freqtier():
    return FreqTier(seed=21)


POLICIES = {
    "FreqTier": freqtier,
    "AutoNUMA": AutoNUMA,
    "TPP": TPP,
    "HeMem": HeMem,
}


@pytest.fixture(scope="module")
def cdn_results_132():
    config = ExperimentConfig(
        local_fraction=0.06, ratio_label="1:32", max_batches=250, seed=21
    )
    return compare_policies(cdn_factory, POLICIES, config)


class TestHeadlineClaims:
    def test_freqtier_wins_at_1_32(self, cdn_results_132):
        """Table II: FreqTier outperforms every baseline at 1:32."""
        base = cdn_results_132["AllLocal"]
        rel = {
            name: res.relative_to(base)["throughput"]
            for name, res in cdn_results_132.items()
            if name != "AllLocal"
        }
        for name in ("AutoNUMA", "TPP", "HeMem"):
            assert rel["FreqTier"] > rel[name], (name, rel)

    def test_freqtier_highest_hit_ratio(self, cdn_results_132):
        """Fig. 9: FreqTier's local-DRAM hit ratio tops the baselines."""
        hits = {
            name: res.steady_hit_ratio for name, res in cdn_results_132.items()
        }
        for name in ("AutoNUMA", "TPP"):
            assert hits["FreqTier"] > hits[name]
        # The paper reports ~90% at full scale; this down-scaled cache
        # (coarser item granularity) lands slightly lower.
        assert hits["FreqTier"] >= 0.80

    def test_freqtier_migrates_far_less(self, cdn_results_132):
        """Section III: ~4.2x less migration traffic than prior works."""
        ft = cdn_results_132["FreqTier"].migration_bytes
        prior_avg = (
            cdn_results_132["AutoNUMA"].migration_bytes
            + cdn_results_132["TPP"].migration_bytes
        ) / 2
        assert prior_avg > 3 * ft

    def test_recency_systems_lose_accuracy_not_hemem(self, cdn_results_132):
        """Section II-C: frequency-based HeMem classifies better than
        the recency systems (its losses are overhead, not accuracy)."""
        assert (
            cdn_results_132["HeMem"].steady_hit_ratio
            > cdn_results_132["TPP"].steady_hit_ratio
        )


class TestCapacityScaling:
    def test_freqtier_at_1_32_matches_autonuma_at_1_16(self):
        """Table II's 2x-less-DRAM claim, small scale."""
        cfg_132 = ExperimentConfig(
            local_fraction=0.06, ratio_label="1:32", max_batches=200, seed=22
        )
        cfg_116 = ExperimentConfig(
            local_fraction=0.12, ratio_label="1:16", max_batches=200, seed=22
        )
        results_ft = compare_policies(cdn_factory, {"FreqTier": freqtier}, cfg_132)
        results_an = compare_policies(cdn_factory, {"AutoNUMA": AutoNUMA}, cfg_116)
        ft = results_ft["FreqTier"].relative_to(results_ft["AllLocal"])["throughput"]
        an = results_an["AutoNUMA"].relative_to(results_an["AllLocal"])["throughput"]
        assert ft >= an - 0.02  # FreqTier with half the DRAM keeps up

    def test_gap_narrows_with_more_dram(self):
        """Section VII-A observation 2: FreqTier's edge shrinks at 1:8."""
        gaps = {}
        for frac, label in [(0.06, "1:32"), (0.24, "1:8")]:
            cfg = ExperimentConfig(
                local_fraction=frac, ratio_label=label, max_batches=200, seed=23
            )
            res = compare_policies(
                cdn_factory, {"FreqTier": freqtier, "AutoNUMA": AutoNUMA}, cfg
            )
            base = res["AllLocal"]
            gaps[label] = (
                res["FreqTier"].relative_to(base)["throughput"]
                - res["AutoNUMA"].relative_to(base)["throughput"]
            )
        assert gaps["1:32"] > gaps["1:8"] - 0.01


class TestLowBandwidthCXL:
    def test_freqtier_beats_autonuma_on_cxl2(self):
        """Fig. 10: the advantage generalizes to low-bandwidth CXL."""
        config = ExperimentConfig(
            local_fraction=0.06,
            ratio_label="1:32",
            memory=CXL2_CONFIG,
            max_batches=200,
            seed=24,
        )
        res = compare_policies(
            lambda: CacheLibWorkload(
                SOCIAL_PROFILE, slab_pages=8192, ops_per_batch=6000, seed=24
            ),
            {"FreqTier": freqtier, "AutoNUMA": AutoNUMA},
            config,
        )
        base = res["AllLocal"]
        ft = res["FreqTier"].relative_to(base)["throughput"]
        an = res["AutoNUMA"].relative_to(base)["throughput"]
        assert ft > an
