"""Determinism: identical seeds must give identical results."""

import pytest

from repro import (
    CacheLibWorkload,
    CDN_PROFILE,
    ExperimentConfig,
    FreqTier,
    FreqTierConfig,
    GapWorkload,
    run_experiment,
)


def cdn_factory():
    return CacheLibWorkload(CDN_PROFILE, slab_pages=2048, ops_per_batch=2000, seed=5)


def freqtier_factory():
    return FreqTier(
        config=FreqTierConfig(
            sample_batch_size=500, pebs_base_period=4, window_accesses=100_000
        ),
        seed=5,
    )


CONFIG = ExperimentConfig(local_fraction=0.1, max_batches=25, seed=5)


class TestDeterminism:
    def test_identical_runs_identical_results(self):
        a = run_experiment(cdn_factory, freqtier_factory, CONFIG)
        b = run_experiment(cdn_factory, freqtier_factory, CONFIG)
        assert a.total_time_ns == b.total_time_ns
        assert a.overall_hit_ratio == b.overall_hit_ratio
        assert a.pages_migrated == b.pages_migrated
        assert a.policy_stats == b.policy_stats

    def test_different_seed_changes_trace(self):
        def other_workload():
            return CacheLibWorkload(
                CDN_PROFILE, slab_pages=2048, ops_per_batch=2000, seed=6
            )

        a = run_experiment(cdn_factory, freqtier_factory, CONFIG)
        b = run_experiment(other_workload, freqtier_factory, CONFIG)
        assert a.total_time_ns != b.total_time_ns

    def test_gap_trace_deterministic(self):
        config = ExperimentConfig(local_fraction=0.1, max_batches=None, seed=3)

        def factory():
            return GapWorkload("bfs", scale=12, num_trials=2, seed=3)

        a = run_experiment(factory, freqtier_factory, config)
        b = run_experiment(factory, freqtier_factory, config)
        assert a.total_time_ns == pytest.approx(b.total_time_ns)
        assert a.time_per_label_ns == b.time_per_label_ns
