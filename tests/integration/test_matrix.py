"""Smoke matrix: every workload family x every policy.

Small-scale runs of the full cross-product, guarding against pairings
that only break in combination (e.g. a policy assuming CacheLib-sized
batches meeting GAP's bursty levels).  Each cell checks the machine
invariants and that the run produced sensible metrics.
"""

import numpy as np
import pytest

from repro import (
    AutoNUMA,
    CacheLibWorkload,
    CDN_PROFILE,
    ExperimentConfig,
    FreqTier,
    FreqTierConfig,
    GapWorkload,
    HeMem,
    MultiClock,
    SOCIAL_PROFILE,
    StaticNoMigration,
    TPP,
    XGBoostWorkload,
)
from repro.core.engine import SimulationEngine
from repro.core.runner import build_machine
from repro.policies.damon import DAMONRegion

WORKLOADS = {
    "cdn": lambda: CacheLibWorkload(
        CDN_PROFILE, slab_pages=2048, ops_per_batch=1500, seed=31
    ),
    "social": lambda: CacheLibWorkload(
        SOCIAL_PROFILE, slab_pages=2048, ops_per_batch=1500, seed=31
    ),
    "gap-bfs": lambda: GapWorkload("bfs", scale=12, num_trials=2, seed=31),
    "gap-cc": lambda: GapWorkload("cc", scale=12, num_trials=2, seed=31),
    "gap-bc": lambda: GapWorkload("bc", scale=12, num_trials=1, seed=31),
    "gap-pr": lambda: GapWorkload("pr", scale=12, num_trials=1, seed=31),
    "xgboost": lambda: XGBoostWorkload(num_rounds=4, seed=31),
}

POLICIES = {
    "freqtier": lambda: FreqTier(
        config=FreqTierConfig(
            sample_batch_size=500, pebs_base_period=4, window_accesses=80_000
        ),
        seed=31,
    ),
    "freqtier-coarse": lambda: FreqTier(
        config=FreqTierConfig(
            granularity_pages=8,
            sample_batch_size=500,
            pebs_base_period=4,
            window_accesses=80_000,
        ),
        seed=31,
    ),
    "autonuma": lambda: AutoNUMA(scan_period_accesses=5_000, seed=31),
    "tpp": lambda: TPP(scan_period_accesses=5_000, seed=31),
    "hemem": lambda: HeMem(sample_batch_size=500, pebs_base_period=4, seed=31),
    "multiclock": lambda: MultiClock(
        sample_batch_size=500, pebs_base_period=4, seed=31
    ),
    "damon": lambda: DAMONRegion(
        adjust_interval_accesses=20_000, pebs_base_period=4, seed=31
    ),
    "static": StaticNoMigration,
}


@pytest.mark.parametrize("workload_name", list(WORKLOADS))
@pytest.mark.parametrize("policy_name", list(POLICIES))
def test_matrix_cell(workload_name, policy_name):
    workload = WORKLOADS[workload_name]()
    config = ExperimentConfig(
        local_fraction=0.08, ratio_label="1:16", max_batches=25, seed=31
    )
    machine = build_machine(workload.footprint_pages, config)
    policy = POLICIES[policy_name]()
    engine = SimulationEngine(machine, workload, policy)
    result = engine.run(max_batches=25)

    # Machine invariants survived the pairing.
    assert machine.page_table.mapped_pages == workload.footprint_pages
    assert (
        machine.local_used_pages + machine.reserved_local_pages
        <= machine.config.local_capacity_pages
    )
    assert machine.cxl_used_pages <= machine.config.cxl_capacity_pages
    placement = machine.page_table.tier_of(np.arange(workload.footprint_pages))
    assert np.all(placement >= 0)

    # Metrics are sane.
    assert result.total_time_ns > 0
    assert 0.0 <= result.overall_hit_ratio <= 1.0
    assert result.pages_migrated == (
        result.policy_stats["promotions"] + result.policy_stats["demotions"]
    )
