"""Chaos suite: fault-injected runs stay correct, deterministic, close.

The robustness acceptance criteria:

- a fixed fault seed makes a faulted run **bit-identical** across
  repeats (determinism survives injection);
- the default ``transient`` preset (1% per-page migration failure)
  keeps FreqTier's final hit ratio within 2pp of the fault-free run,
  and every other fault class converges within its own tolerance;
- an *inactive* plan is indistinguishable from passing no plan at all;
- policy migration stats reconcile exactly with the machine's traffic
  meter even when every move can partially fail (near-full local tier).
"""

from __future__ import annotations

import pytest

from repro import (
    ExperimentConfig,
    FAULT_PRESETS,
    FaultPlan,
    FreqTier,
    FreqTierConfig,
    InjectedCrash,
    SyntheticZipfWorkload,
    TPP,
    run_experiment,
)

CONFIG = ExperimentConfig(local_fraction=0.1, max_batches=60, seed=7)


def _workload():
    return SyntheticZipfWorkload(
        num_pages=2000, alpha=1.2, accesses_per_batch=20_000, seed=7
    )


def _run(faults=None, holder=None, config=CONFIG):
    def make_policy():
        policy = FreqTier(seed=7)
        if holder is not None:
            holder["policy"] = policy
        return policy

    return run_experiment(_workload, make_policy, config, faults=faults)


@pytest.fixture(scope="module")
def fault_free():
    return _run()


class TestConvergenceUnderFaults:
    #: Allowed |steady hit ratio - fault-free| per preset.  The
    #: acceptance bound is 2pp for ``transient``; ``pinned`` is allowed
    #: more because pinned hot pages *correctly* stay on CXL forever
    #: (their accesses are genuinely lost, not mishandled); burst-style
    #: classes get a little slack and ``chaos`` stacks every class.
    TOLERANCE = {
        "transient": 0.02,
        "pinned": 0.05,
        "corrupt": 0.02,
        "enomem": 0.03,
        "sample-loss": 0.03,
        "chaos": 0.06,
    }

    @pytest.mark.parametrize("preset", sorted(TOLERANCE))
    def test_hit_ratio_within_tolerance(self, fault_free, preset):
        faulted = _run(faults=FAULT_PRESETS[preset])
        assert faulted.steady_hit_ratio == pytest.approx(
            fault_free.steady_hit_ratio, abs=self.TOLERANCE[preset]
        ), preset

    def test_faults_actually_fired(self, fault_free):
        holder = {}
        _run(faults=FAULT_PRESETS["chaos"], holder=holder)
        extra = holder["policy"].stats.extra
        assert extra.get("corrupt_samples_filtered", 0) > 0
        failed = extra.get("promotions_failed", 0) + extra.get(
            "demotions_failed", 0
        )
        assert failed > 0


class TestDeterminism:
    def test_faulted_run_bit_identical_across_repeats(self):
        plan = FAULT_PRESETS["chaos"]
        assert _run(faults=plan).to_dict() == _run(faults=plan).to_dict()

    def test_fault_seed_perturbs_the_run(self):
        plan = FaultPlan(migration_fail_prob=0.05, pinned_fraction=0.02)
        assert (
            _run(faults=plan).to_dict()
            != _run(faults=plan.replace(seed=99)).to_dict()
        )

    def test_inactive_plan_identical_to_no_plan(self, fault_free):
        plan = FaultPlan(seed=123)  # a seed alone injects nothing
        assert not plan.active
        assert _run(faults=plan).to_dict() == fault_free.to_dict()


class TestRetryAndBlacklist:
    def test_pinned_pages_get_blacklisted_not_retried_forever(self):
        holder = {}
        _run(faults=FaultPlan(pinned_fraction=0.05, seed=3), holder=holder)
        extra = holder["policy"].stats.extra
        blacklisted = extra.get("promotes_blacklisted", 0) + extra.get(
            "demotes_blacklisted", 0
        )
        assert blacklisted > 0
        # Every blacklisting cost exactly max_attempts recorded failures
        # on its page, so total failures bound blacklistings from above.
        policy = holder["policy"]
        failed = extra.get("promotions_failed", 0) + extra.get(
            "demotions_failed", 0
        )
        assert failed >= blacklisted * policy.config.retry_max_attempts


class TestCrash:
    def test_scheduled_crash_raises_injected_crash(self):
        with pytest.raises(InjectedCrash, match="injected crash"):
            _run(faults=FaultPlan(crash_after_batches=5))


class TestPartialMoveAccounting:
    """Stats vs traffic meter under a near-full local tier + faults.

    Before the MoveOutcome rework, policies recorded *requested* page
    counts while the machine recorded *actual* moves; with every call
    able to partially fail the two books must still balance exactly.
    """

    PLAN = FaultPlan(
        migration_fail_prob=0.05,
        pinned_fraction=0.02,
        enomem_prob=0.02,
        enomem_burst_calls=4,
        seed=13,
    )

    def _reconcile(self, make_policy):
        holder = {}

        def factory():
            policy = make_policy()
            holder["policy"] = policy
            return policy

        config = ExperimentConfig(local_fraction=0.06, max_batches=50, seed=11)
        run_experiment(_workload, factory, config, faults=self.PLAN)
        policy = holder["policy"]
        traffic = policy.machine.traffic
        assert policy.stats.promotions == traffic.pages_promoted
        assert policy.stats.demotions == traffic.pages_demoted
        return policy

    def test_freqtier_books_balance(self):
        policy = self._reconcile(
            lambda: FreqTier(config=FreqTierConfig(), seed=11)
        )
        # The fault classes in PLAN actually produced partial moves.
        failed = policy.stats.extra.get(
            "promotions_failed", 0
        ) + policy.stats.extra.get("demotions_failed", 0)
        assert failed > 0

    def test_tpp_books_balance(self):
        self._reconcile(lambda: TPP(seed=11))
