"""End-to-end integration tests across all workloads and policies.

These run small but complete experiments through the public API and
check system-level invariants (capacity conservation, traffic
consistency, all-local dominance).
"""

import numpy as np
import pytest

from repro import (
    AutoNUMA,
    CacheLibWorkload,
    CDN_PROFILE,
    ExperimentConfig,
    FreqTier,
    FreqTierConfig,
    GapWorkload,
    HeMem,
    StaticNoMigration,
    TPP,
    XGBoostWorkload,
    compare_policies,
    run_all_local,
    run_experiment,
)
from repro.core.engine import SimulationEngine
from repro.core.runner import build_machine
from repro.memsim.pagetable import CXL_TIER, LOCAL_TIER


def small_cdn():
    return CacheLibWorkload(
        CDN_PROFILE, slab_pages=4096, ops_per_batch=3000, seed=11
    )


def fast_freqtier():
    return FreqTier(
        config=FreqTierConfig(
            sample_batch_size=1000,
            pebs_base_period=4,
            window_accesses=150_000,
        ),
        seed=11,
    )


CONFIG = ExperimentConfig(local_fraction=0.08, max_batches=60, seed=11)

ALL_POLICIES = {
    "FreqTier": fast_freqtier,
    "AutoNUMA": AutoNUMA,
    "TPP": TPP,
    "HeMem": HeMem,
    "Static": StaticNoMigration,
}


class TestCapacityInvariants:
    @pytest.mark.parametrize("policy_name", list(ALL_POLICIES))
    def test_local_capacity_never_exceeded(self, policy_name):
        workload = small_cdn()
        machine = build_machine(workload.footprint_pages, CONFIG)
        engine = SimulationEngine(machine, workload, ALL_POLICIES[policy_name]())
        engine.run(max_batches=30)
        assert machine.local_used_pages + machine.reserved_local_pages <= (
            machine.config.local_capacity_pages
        )
        assert machine.cxl_used_pages <= machine.config.cxl_capacity_pages

    @pytest.mark.parametrize("policy_name", list(ALL_POLICIES))
    def test_no_pages_lost_or_created(self, policy_name):
        workload = small_cdn()
        machine = build_machine(workload.footprint_pages, CONFIG)
        engine = SimulationEngine(machine, workload, ALL_POLICIES[policy_name]())
        engine.run(max_batches=30)
        assert machine.page_table.mapped_pages == workload.footprint_pages

    @pytest.mark.parametrize("policy_name", list(ALL_POLICIES))
    def test_every_mapped_page_exactly_one_tier(self, policy_name):
        workload = small_cdn()
        machine = build_machine(workload.footprint_pages, CONFIG)
        engine = SimulationEngine(machine, workload, ALL_POLICIES[policy_name]())
        engine.run(max_batches=30)
        placement = machine.page_table.tier_of(
            np.arange(workload.footprint_pages)
        )
        assert np.all((placement == LOCAL_TIER) | (placement == CXL_TIER))


class TestTrafficConsistency:
    @pytest.mark.parametrize("policy_name", ["FreqTier", "AutoNUMA", "TPP"])
    def test_migration_counts_match_traffic_meter(self, policy_name):
        result = run_experiment(small_cdn, ALL_POLICIES[policy_name], CONFIG)
        assert result.pages_migrated == (
            result.policy_stats["promotions"] + result.policy_stats["demotions"]
        )

    def test_hit_ratio_in_unit_interval(self):
        for factory in ALL_POLICIES.values():
            result = run_experiment(small_cdn, factory, CONFIG)
            assert 0.0 <= result.overall_hit_ratio <= 1.0


class TestAllLocalDominance:
    def test_no_policy_beats_all_local(self):
        results = compare_policies(small_cdn, ALL_POLICIES, CONFIG)
        base = results["AllLocal"]
        for name, res in results.items():
            if name == "AllLocal":
                continue
            rel = res.relative_to(base)["throughput"]
            assert rel is not None and rel <= 1.005, name


class TestAllWorkloadFamilies:
    def test_gap_runs_end_to_end(self):
        config = ExperimentConfig(local_fraction=0.1, max_batches=None, seed=1)
        result = run_experiment(
            lambda: GapWorkload("bfs", scale=13, num_trials=2, seed=1),
            fast_freqtier,
            config,
        )
        assert result.mean_time_per_label_ns() is not None
        assert result.total_accesses > 10_000

    def test_xgboost_runs_end_to_end(self):
        config = ExperimentConfig(local_fraction=0.1, max_batches=None, seed=1)
        result = run_experiment(
            lambda: XGBoostWorkload(num_rounds=5, seed=1), fast_freqtier, config
        )
        assert len(result.time_per_label_ns) == 5

    def test_all_local_upper_bound_on_gap(self):
        config = ExperimentConfig(local_fraction=0.1, max_batches=None, seed=1)
        wf = lambda: GapWorkload("cc", scale=12, num_trials=2, seed=2)
        base = run_all_local(wf, config)
        tiered = run_experiment(wf, StaticNoMigration, config)
        assert tiered.total_time_ns >= base.total_time_ns * 0.999
