"""Tests for the Tracer, the null tracer and the trace_to helper."""

import time

import pytest

from repro.obs import (
    JsonlTraceSink,
    ListSink,
    NULL_TRACER,
    Tracer,
    trace_to,
)
from repro.obs.events import TraceEventError
from repro.obs.sinks import read_jsonl


class TestTracer:
    def test_emit_fills_base_fields(self):
        sink = ListSink()
        tracer = Tracer(sinks=[sink])
        event = tracer.emit("aging", t_ns=5.0, samples=100)
        assert event == {"type": "aging", "t_ns": 5.0, "seq": 0, "samples": 100}
        assert sink.events == [event]

    def test_seq_is_monotone_across_types(self):
        tracer = Tracer()
        seqs = [
            tracer.emit("aging", t_ns=0.0, samples=1)["seq"],
            tracer.emit("ring_overflow", t_ns=0.0, lost=1, reason="capacity")[
                "seq"
            ],
            tracer.emit("aging", t_ns=9.0, samples=2)["seq"],
        ]
        assert seqs == [0, 1, 2]
        assert tracer.events_emitted == 3

    def test_clock_fallback_when_no_timestamp_given(self):
        tracer = Tracer()
        tracer.clock_ns = 123.0
        event = tracer.emit("aging", samples=1)
        assert event["t_ns"] == 123.0

    def test_explicit_timestamp_wins_over_clock(self):
        tracer = Tracer()
        tracer.clock_ns = 123.0
        assert tracer.emit("aging", t_ns=7.0, samples=1)["t_ns"] == 7.0

    def test_invalid_event_raises_at_emit(self):
        tracer = Tracer()
        with pytest.raises(TraceEventError):
            tracer.emit("aging", t_ns=0.0)  # missing 'samples'

    def test_validation_can_be_disabled(self):
        tracer = Tracer(validate=False)
        tracer.emit("aging", t_ns=0.0)  # would raise with validate=True

    def test_stats_dict_merges_counters_and_histograms(self):
        tracer = Tracer()
        tracer.count("cbf_ops", 3)
        tracer.observe("batch_size", 10.0)
        tracer.observe("batch_size", 20.0)
        stats = tracer.stats_dict()
        assert stats["cbf_ops"] == 3
        assert stats["batch_size_count"] == 2
        assert stats["batch_size_mean"] == 15.0

    def test_context_manager_closes_sinks(self):
        sink = ListSink()
        with Tracer(sinks=[sink]) as tracer:
            tracer.emit("aging", t_ns=0.0, samples=1)
        assert sink.closed


class TestNullTracer:
    def test_disabled_flag(self):
        assert NULL_TRACER.enabled is False
        assert Tracer().enabled is True

    def test_all_operations_are_noops(self):
        NULL_TRACER.emit("not-even-a-valid-type")
        NULL_TRACER.count("x", 5)
        NULL_TRACER.observe("y", 1.0)
        assert NULL_TRACER.stats_dict() == {}
        assert len(NULL_TRACER.counters) == 0
        assert len(NULL_TRACER.histograms) == 0

    def test_disabled_guard_is_cheap(self):
        """The `if tracer.enabled:` guard must stay in the noise floor.

        This is a sanity bound, not a benchmark: a million guarded
        checks should take well under a second on anything.
        """
        tracer = NULL_TRACER
        start = time.perf_counter()
        hits = 0
        for __ in range(1_000_000):
            if tracer.enabled:
                hits += 1
        elapsed = time.perf_counter() - start
        assert hits == 0
        assert elapsed < 1.0


class TestTraceTo:
    def test_none_path_yields_none(self):
        with trace_to(None) as tracer:
            assert tracer is None

    def test_path_yields_writing_tracer(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with trace_to(path) as tracer:
            assert isinstance(tracer, Tracer)
            tracer.emit("aging", t_ns=1.0, samples=5)
        events = list(read_jsonl(path))
        assert len(events) == 1
        assert events[0]["type"] == "aging"

    def test_sink_closed_on_exception(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with pytest.raises(RuntimeError):
            with trace_to(path) as tracer:
                tracer.emit("aging", t_ns=1.0, samples=5)
                raise RuntimeError("boom")
        # The file handle was closed; what was written survives.
        assert len(list(read_jsonl(path))) == 1


class TestJsonlSink:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tracer = Tracer(sinks=[JsonlTraceSink(path)])
        first = tracer.emit("aging", t_ns=1.0, samples=5)
        second = tracer.emit(
            "ring_overflow", t_ns=2.0, lost=9, reason="capacity"
        )
        tracer.close()
        assert list(read_jsonl(path)) == [first, second]

    def test_creates_parent_directories(self, tmp_path):
        path = tmp_path / "a" / "b" / "trace.jsonl"
        with JsonlTraceSink(path) as sink:
            sink.write({"type": "aging", "t_ns": 0.0, "seq": 0, "samples": 1})
        assert list(read_jsonl(path))

    def test_numpy_scalars_serialized(self, tmp_path):
        np = pytest.importorskip("numpy")
        path = tmp_path / "trace.jsonl"
        with JsonlTraceSink(path) as sink:
            sink.write(
                {
                    "type": "aging",
                    "t_ns": np.float64(1.5),
                    "seq": 0,
                    "samples": np.int64(7),
                }
            )
        (event,) = read_jsonl(path)
        assert event["t_ns"] == 1.5
        assert event["samples"] == 7.0

    def test_path_xor_stream_enforced(self, tmp_path):
        with pytest.raises(ValueError, match="exactly one"):
            JsonlTraceSink()

    def test_stream_mode_does_not_close_stream(self, tmp_path):
        import io

        buf = io.StringIO()
        sink = JsonlTraceSink(stream=buf)
        sink.write({"type": "aging", "t_ns": 0.0, "seq": 0, "samples": 1})
        sink.close()
        assert not buf.closed
        assert buf.getvalue().count("\n") == 1


class TestListSink:
    def test_of_type_filters(self):
        tracer = Tracer(sinks=[sink := ListSink()])
        tracer.emit("aging", t_ns=0.0, samples=1)
        tracer.emit("ring_overflow", t_ns=0.0, lost=1, reason="capacity")
        tracer.emit("aging", t_ns=1.0, samples=2)
        assert len(sink.of_type("aging")) == 2
        assert len(sink.of_type("ring_overflow")) == 1
        assert sink.of_type("promotion") == []
