"""Tests for the counter and histogram registries."""

import pytest

from repro.obs.registry import CounterRegistry, HistogramRegistry


class TestCounterRegistry:
    def test_missing_counter_reads_zero(self):
        reg = CounterRegistry()
        assert reg.get("nope") == 0
        assert len(reg) == 0

    def test_inc_accumulates(self):
        reg = CounterRegistry()
        reg.inc("ops")
        reg.inc("ops", 4)
        assert reg.get("ops") == 5
        assert reg.as_dict() == {"ops": 5}

    def test_negative_increment_rejected(self):
        reg = CounterRegistry()
        with pytest.raises(ValueError, match=">= 0"):
            reg.inc("ops", -1)

    def test_as_dict_is_a_copy(self):
        reg = CounterRegistry()
        reg.inc("ops")
        reg.as_dict()["ops"] = 999
        assert reg.get("ops") == 1


class TestHistogramRegistry:
    def test_summary_of_missing_histogram_is_none(self):
        assert HistogramRegistry().summary("nope") is None

    def test_streaming_stats(self):
        reg = HistogramRegistry()
        for v in (4.0, 1.0, 7.0):
            reg.observe("batch", v)
        assert reg.summary("batch") == {
            "count": 3,
            "sum": 12.0,
            "min": 1.0,
            "max": 7.0,
            "mean": 4.0,
        }

    def test_nan_rejected(self):
        reg = HistogramRegistry()
        with pytest.raises(ValueError, match="NaN"):
            reg.observe("batch", float("nan"))

    def test_as_dict_flattens_names(self):
        reg = HistogramRegistry()
        reg.observe("batch", 2.0)
        flat = reg.as_dict()
        assert flat["batch_count"] == 1
        assert flat["batch_mean"] == 2.0
        assert set(flat) == {
            "batch_count",
            "batch_sum",
            "batch_min",
            "batch_max",
            "batch_mean",
        }
