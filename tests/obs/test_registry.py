"""Tests for the counter and histogram registries."""

import pytest

from repro.obs.registry import CounterRegistry, HistogramRegistry


class TestCounterRegistry:
    def test_missing_counter_reads_zero(self):
        reg = CounterRegistry()
        assert reg.get("nope") == 0
        assert len(reg) == 0

    def test_inc_accumulates(self):
        reg = CounterRegistry()
        reg.inc("ops")
        reg.inc("ops", 4)
        assert reg.get("ops") == 5
        assert reg.as_dict() == {"ops": 5}

    def test_negative_increment_rejected(self):
        reg = CounterRegistry()
        with pytest.raises(ValueError, match=">= 0"):
            reg.inc("ops", -1)

    def test_as_dict_is_a_copy(self):
        reg = CounterRegistry()
        reg.inc("ops")
        reg.as_dict()["ops"] = 999
        assert reg.get("ops") == 1


class TestHistogramRegistry:
    def test_summary_of_missing_histogram_is_none(self):
        assert HistogramRegistry().summary("nope") is None

    def test_streaming_stats(self):
        reg = HistogramRegistry()
        for v in (4.0, 1.0, 7.0):
            reg.observe("batch", v)
        summary = reg.summary("batch")
        assert summary["count"] == 3
        assert summary["sum"] == 12.0
        assert summary["min"] == 1.0
        assert summary["max"] == 7.0
        assert summary["mean"] == 4.0
        assert set(summary) == {
            "count", "sum", "min", "max", "mean", "p50", "p99", "p999",
        }

    def test_nan_rejected(self):
        reg = HistogramRegistry()
        with pytest.raises(ValueError, match="NaN"):
            reg.observe("batch", float("nan"))

    def test_as_dict_flattens_names(self):
        reg = HistogramRegistry()
        reg.observe("batch", 2.0)
        flat = reg.as_dict()
        assert flat["batch_count"] == 1
        assert flat["batch_mean"] == 2.0
        assert set(flat) == {
            "batch_count",
            "batch_sum",
            "batch_min",
            "batch_max",
            "batch_mean",
            "batch_p50",
            "batch_p99",
            "batch_p999",
        }

    def test_single_value_quantiles_exact(self):
        reg = HistogramRegistry()
        reg.observe("lat", 37.5)
        for q in (0.0, 0.5, 0.99, 1.0):
            assert reg.quantile("lat", q) == 37.5

    def test_quantile_estimates_within_bucket_error(self):
        # Uniform 1..1000: the log-bucket estimator must land within
        # its ~4% relative error of the exact quantile.
        reg = HistogramRegistry()
        for v in range(1, 1001):
            reg.observe("lat", float(v))
        for q in (0.5, 0.99, 0.999):
            exact = q * 1000
            estimate = reg.quantile("lat", q)
            assert abs(estimate - exact) <= 0.05 * exact + 1.0

    def test_quantiles_clamped_to_observed_range(self):
        reg = HistogramRegistry()
        for v in (10.0, 20.0, 30.0):
            reg.observe("lat", v)
        assert reg.quantile("lat", 0.0) >= 10.0
        assert reg.quantile("lat", 1.0) <= 30.0

    def test_nonpositive_values_map_to_min(self):
        reg = HistogramRegistry()
        for v in (0.0, -5.0, 2.0):
            reg.observe("lat", v)
        # Two of three observations are <= 0, so the median sits in
        # the non-positive bucket, reported as the observed minimum.
        assert reg.quantile("lat", 0.5) == -5.0
        assert reg.summary("lat")["min"] == -5.0

    def test_quantile_of_missing_histogram_is_none(self):
        assert HistogramRegistry().quantile("nope", 0.5) is None

    def test_quantile_out_of_range_rejected(self):
        reg = HistogramRegistry()
        reg.observe("lat", 1.0)
        with pytest.raises(ValueError, match=r"\[0, 1\]"):
            reg.quantile("lat", 1.5)
