"""JsonlTraceSink durability: flush-per-event and fsync-on-close."""

from __future__ import annotations

import io
import json

from repro.obs import JsonlTraceSink

EVENT = {"type": "aging", "t_ns": 0.0, "seq": 0, "samples": 1}


def test_durable_flushes_every_event_to_disk(tmp_path):
    path = tmp_path / "t.jsonl"
    sink = JsonlTraceSink(path, durable=True)
    try:
        sink.write(EVENT)
        # Visible on disk *before* close: a kill -9 now loses nothing.
        lines = path.read_text().splitlines()
        assert len(lines) == 1
        assert json.loads(lines[0])["type"] == "aging"
    finally:
        sink.close()


def test_non_durable_buffers_until_close(tmp_path):
    path = tmp_path / "t.jsonl"
    sink = JsonlTraceSink(path)
    sink.write(EVENT)
    assert path.read_text() == ""  # still in the userspace buffer
    sink.close()
    assert len(path.read_text().splitlines()) == 1


def test_durable_close_fsyncs_and_survives_fdless_streams():
    # A StringIO has no real fd; fsync must be skipped, not raised.
    stream = io.StringIO()
    sink = JsonlTraceSink(stream=stream, durable=True)
    sink.write(EVENT)
    sink.close()
    assert len(stream.getvalue().splitlines()) == 1


def test_durable_flag_defaults_off(tmp_path):
    assert JsonlTraceSink(tmp_path / "t.jsonl").durable is False
