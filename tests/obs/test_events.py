"""Tests for the trace event schema."""

import pytest

from repro.obs.events import (
    BASE_FIELDS,
    EVENT_TYPES,
    TraceEventError,
    validate_event,
)


def good(etype: str) -> dict:
    """A minimal valid event of the given type."""
    event = {"type": etype, "t_ns": 1.0, "seq": 0}
    for field in EVENT_TYPES[etype]:
        event[field] = 0
    return event


class TestValidateEvent:
    @pytest.mark.parametrize("etype", sorted(EVENT_TYPES))
    def test_minimal_event_of_every_type_passes(self, etype):
        validate_event(good(etype))

    def test_extra_fields_allowed(self):
        event = good("aging")
        event["annotation"] = "extra payload is fine"
        validate_event(event)

    def test_non_dict_rejected(self):
        with pytest.raises(TraceEventError, match="must be a dict"):
            validate_event(["type", "aging"])

    def test_unknown_type_rejected(self):
        event = good("aging")
        event["type"] = "frobnicate"
        with pytest.raises(TraceEventError, match="unknown event type"):
            validate_event(event)

    def test_missing_base_field_rejected(self):
        event = good("aging")
        del event["seq"]
        with pytest.raises(TraceEventError, match="base fields"):
            validate_event(event)

    @pytest.mark.parametrize("etype", sorted(EVENT_TYPES))
    def test_each_required_payload_field_enforced(self, etype):
        for field in EVENT_TYPES[etype]:
            event = good(etype)
            del event[field]
            with pytest.raises(TraceEventError, match="missing fields"):
                validate_event(event)

    def test_non_numeric_t_ns_rejected(self):
        event = good("aging")
        event["t_ns"] = "now"
        with pytest.raises(TraceEventError, match="t_ns"):
            validate_event(event)

    def test_bool_timestamp_rejected(self):
        event = good("aging")
        event["t_ns"] = True
        with pytest.raises(TraceEventError, match="t_ns"):
            validate_event(event)

    def test_non_int_seq_rejected(self):
        event = good("aging")
        event["seq"] = 1.5
        with pytest.raises(TraceEventError, match="seq"):
            validate_event(event)


class TestSchemaShape:
    def test_base_fields_never_in_payload_sets(self):
        for etype, fields in EVENT_TYPES.items():
            assert not fields & BASE_FIELDS, etype
