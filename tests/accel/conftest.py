"""Shared fixtures for the accel backend-equivalence suite."""

import pytest

from repro import accel


@pytest.fixture(autouse=True)
def _numpy_backend_after():
    """Leave the process on the reference backend whatever a test did."""
    yield
    accel.set_backend("numpy")
