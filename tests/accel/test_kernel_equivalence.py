"""The NumPy backend is the oracle: pin it against the originals.

Every kernel in :mod:`repro.accel.numpy_backend` restates math that
also exists elsewhere in the tree (``repro.cbf.hashing``,
``repro.cbf.counters`` semantics) or replaces a straightforward
construction (expanded-stream counting, ``np.repeat`` run expansion).
These tests hold the restatements to the originals on randomized
inputs, so the reference backend stays a trustworthy equivalence
target for compiled backends.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.accel import numpy_backend as nb
from repro.cbf.counters import PackedCounterArray
from repro.cbf.hashing import derive_indices, fold_to_range, splitmix64


def _random_runs(rng, n_pages, n_runs, max_count):
    starts = rng.integers(0, n_pages - max_count, size=n_runs, dtype=np.int64)
    counts = rng.integers(0, max_count + 1, size=n_runs, dtype=np.int64)
    return starts, counts


def _expand(starts, counts):
    if counts.sum() == 0:
        return np.empty(0, dtype=np.int64)
    return np.concatenate(
        [np.arange(s, s + c, dtype=np.int64) for s, c in zip(starts, counts) if c]
    )


# ---------------------------------------------------------------------------
# placement counting
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_placement_counts_matches_naive(seed):
    rng = np.random.default_rng(seed)
    n_pages = 4096
    placement = rng.choice(
        np.array([-1, 0, 1], dtype=np.int8), size=n_pages
    )
    page_ids = rng.integers(0, n_pages, size=10_000, dtype=np.int64)
    out = np.empty(page_ids.size, dtype=np.int8)
    n_local, n_cxl = nb.placement_counts(placement, page_ids, out)
    expected = placement[page_ids]
    np.testing.assert_array_equal(out, expected)
    assert n_local == int(np.count_nonzero(expected == 0))
    assert n_local + n_cxl == page_ids.size


@pytest.mark.parametrize("seed", [3, 4, 5])
def test_compressed_counts_match_expanded_stream(seed):
    rng = np.random.default_rng(seed)
    n_pages = 4096
    placement = rng.choice(np.array([-1, 0, 1], dtype=np.int8), size=n_pages)
    starts, counts = _random_runs(rng, n_pages, n_runs=200, max_count=37)
    head = rng.integers(0, n_pages, size=150, dtype=np.int64)

    prefix = np.empty(n_pages + 1, dtype=np.int64)
    nb.placement_prefix(placement, prefix)
    n_local, n_cxl = nb.compressed_placement_counts(
        placement, prefix, head, starts, counts
    )

    expanded = np.concatenate([head, _expand(starts, counts)])
    out = np.empty(expanded.size, dtype=np.int8)
    exp_local, exp_cxl = nb.placement_counts(placement, expanded, out)
    assert (n_local, n_cxl) == (exp_local, exp_cxl)


def test_compressed_counts_empty_batch():
    placement = np.zeros(8, dtype=np.int8)
    prefix = np.empty(9, dtype=np.int64)
    nb.placement_prefix(placement, prefix)
    empty = np.empty(0, dtype=np.int64)
    assert nb.compressed_placement_counts(
        placement, prefix, empty, empty, empty
    ) == (0, 0)


def test_compressed_counts_out_of_range_raises():
    placement = np.zeros(8, dtype=np.int8)
    prefix = np.empty(9, dtype=np.int64)
    nb.placement_prefix(placement, prefix)
    empty = np.empty(0, dtype=np.int64)
    with pytest.raises(IndexError):
        nb.compressed_placement_counts(
            placement,
            prefix,
            empty,
            np.array([6], dtype=np.int64),
            np.array([5], dtype=np.int64),  # run [6, 11) exceeds 8 pages
        )


def test_placement_prefix_definition():
    placement = np.array([0, 1, 0, -1, 0], dtype=np.int8)
    prefix = np.empty(6, dtype=np.int64)
    nb.placement_prefix(placement, prefix)
    np.testing.assert_array_equal(prefix, [0, 1, 1, 2, 2, 3])


# ---------------------------------------------------------------------------
# hashing
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("seed", [0, 17])
@pytest.mark.parametrize("num_hashes", [1, 3, 5])
def test_classic_indices_match_derive_indices(seed, num_hashes):
    rng = np.random.default_rng(seed)
    keys = rng.integers(0, 1 << 48, size=5_000, dtype=np.uint64)
    num_slots = 1_048_573
    got = nb.classic_indices(keys, num_hashes, num_slots, seed)
    expected = derive_indices(keys, num_hashes, num_slots, seed=seed)
    np.testing.assert_array_equal(got, expected)


@pytest.mark.parametrize("seed", [2, 23])
def test_blocked_indices_match_original_construction(seed):
    rng = np.random.default_rng(seed)
    keys = rng.integers(0, 1 << 48, size=5_000, dtype=np.uint64)
    num_blocks, counters_per_block, num_hashes = 4096, 16, 3
    got = nb.blocked_indices(
        keys, seed, num_blocks, counters_per_block, num_hashes
    )
    # The original derivation: one splitmix64+fold picks the block, k
    # more pick in-block slots (repro.cbf.blocked's pre-accel math).
    base = fold_to_range(splitmix64(keys, seed=seed), num_blocks)
    base = base * counters_per_block
    for i in range(num_hashes):
        slot = fold_to_range(
            splitmix64(keys, seed=seed + 101 + i), counters_per_block
        )
        np.testing.assert_array_equal(got[:, i], base + slot)


# ---------------------------------------------------------------------------
# fused CBF update
# ---------------------------------------------------------------------------


def _reference_fused_update(counters, idx, totals):
    """Conservative increase + readback restated with scalar Python.

    Same three-pass contract as the kernel -- per-row minima against
    the *pre-update* store, a slot-wise scatter-max of the row targets
    (duplicate slots keep the largest), then a readback -- but built on
    ``PackedCounterArray.get``/``set`` and a dict instead of array
    kernels, so the comparison is independent of the implementation
    under test.
    """
    pre = counters.get(idx)  # (rows, k) against the untouched store
    targets = np.minimum(pre.min(axis=1) + totals, counters.max_value)
    best: dict[int, int] = {}
    for row, target in zip(idx.tolist(), targets.tolist()):
        for slot in row:
            best[slot] = max(best.get(slot, 0), target)
    slots = np.fromiter(best.keys(), dtype=np.int64, count=len(best))
    raised = np.maximum(
        counters.get(slots),
        np.fromiter(best.values(), dtype=np.int64, count=len(best)),
    )
    counters.set(slots, raised)
    return counters.get(idx).min(axis=1).astype(np.int64)


@pytest.mark.parametrize("bits", [2, 4, 8, 16])
def test_cbf_fused_update_matches_sequential_reference(bits):
    rng = np.random.default_rng(bits)
    size = 512
    ref = PackedCounterArray(size, bits=bits)
    fused = PackedCounterArray(size, bits=bits)
    # Several rounds so saturation and duplicate-slot rows both occur.
    for round_seed in range(4):
        idx = rng.integers(0, size, size=(64, 3), dtype=np.int64)
        totals = rng.integers(1, 5, size=64, dtype=np.int64)
        expected = _reference_fused_update(ref, idx, totals)
        got = nb.cbf_fused_update(
            fused._store,
            fused.bits,
            fused._per_byte,
            fused.max_value,
            idx,
            totals,
        )
        np.testing.assert_array_equal(got, expected)
        np.testing.assert_array_equal(fused._store, ref._store)


# ---------------------------------------------------------------------------
# gap expansion
# ---------------------------------------------------------------------------


def _reference_gap_positions(gaps, pos, n):
    positions = [pos]
    for g in gaps:
        positions.append(positions[-1] + int(g))
    in_batch = [p for p in positions if p < n]
    crossed = [p for p in positions if p >= n]
    carry = crossed[0] - n if crossed else -1
    return in_batch, carry, positions[-1]


@pytest.mark.parametrize("seed", [0, 1, 2, 3])
def test_gap_positions_match_reference(seed):
    rng = np.random.default_rng(seed)
    gaps = rng.integers(1, 50, size=40, dtype=np.int64)
    pos = int(rng.integers(0, 30))
    n = int(rng.integers(100, 1500))
    out = np.empty(gaps.size + 1, dtype=np.int64)
    count, carry, last = nb.gap_positions(gaps, pos, n, out)
    exp_positions, exp_carry, exp_last = _reference_gap_positions(gaps, pos, n)
    np.testing.assert_array_equal(out[:count], exp_positions)
    assert carry == exp_carry
    assert last == exp_last


def test_gap_positions_start_beyond_batch():
    gaps = np.array([5, 7], dtype=np.int64)
    out = np.empty(3, dtype=np.int64)
    count, carry, last = nb.gap_positions(gaps, 10, 4, out)
    assert count == 0
    assert carry == 6  # first position (10) minus n (4)
    assert last == 22


# ---------------------------------------------------------------------------
# run expansion
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_expand_runs_matches_concatenated_aranges(seed):
    rng = np.random.default_rng(seed)
    starts, counts = _random_runs(rng, n_pages=10_000, n_runs=300, max_count=25)
    expected = _expand(starts, counts)
    out = np.empty(int(counts.sum()), dtype=np.int64)
    nb.expand_runs(starts, counts, out)
    np.testing.assert_array_equal(out, expected)


def test_expand_runs_empty():
    empty = np.empty(0, dtype=np.int64)
    out = np.empty(0, dtype=np.int64)
    nb.expand_runs(empty, empty, out)  # must not raise


# ---------------------------------------------------------------------------
# run-compressed batch kernels (position gather, strided sample,
# weighted histogram, hint faults)
# ---------------------------------------------------------------------------


def _compressed(rng, n_pages, n_head=150, n_runs=200, max_count=37):
    head = rng.integers(0, n_pages, size=n_head, dtype=np.int64)
    starts, counts = _random_runs(rng, n_pages, n_runs, max_count)
    expanded = np.concatenate([head, _expand(starts, counts)])
    return head, starts, counts, np.cumsum(counts), expanded


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_run_pages_at_matches_expanded_gather(seed):
    rng = np.random.default_rng(seed)
    head, starts, counts, offsets, expanded = _compressed(rng, n_pages=4096)
    positions = rng.integers(0, expanded.size, size=500, dtype=np.int64)
    got = nb.run_pages_at(head, starts, counts, offsets, positions)
    np.testing.assert_array_equal(got, expanded[positions])
    assert got.dtype == np.int64


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_run_pages_at_sorted_path_matches_general(seed):
    """The sorted-positions promise changes cost, never output."""
    rng = np.random.default_rng(seed)
    head, starts, counts, offsets, expanded = _compressed(rng, n_pages=4096)
    positions = np.sort(
        rng.integers(0, expanded.size, size=500, dtype=np.int64)
    )
    got = nb.run_pages_at(
        head, starts, counts, offsets, positions, sorted_positions=True
    )
    np.testing.assert_array_equal(got, expanded[positions])
    np.testing.assert_array_equal(
        got, nb.run_pages_at(head, starts, counts, offsets, positions)
    )
    for bad in (
        np.array([-1], dtype=np.int64),
        np.array([expanded.size], dtype=np.int64),
    ):
        with pytest.raises(IndexError):
            nb.run_pages_at(
                head, starts, counts, offsets, bad, sorted_positions=True
            )


def test_run_pages_at_boundaries():
    """First/last head position, run joints, and the final access."""
    head = np.array([9, 3], dtype=np.int64)
    starts = np.array([100, 200], dtype=np.int64)
    counts = np.array([3, 2], dtype=np.int64)
    offsets = np.cumsum(counts)
    positions = np.array([0, 1, 2, 4, 5, 6], dtype=np.int64)
    got = nb.run_pages_at(head, starts, counts, offsets, positions)
    np.testing.assert_array_equal(got, [9, 3, 100, 102, 200, 201])


def test_run_pages_at_out_of_range_raises():
    head = np.array([1], dtype=np.int64)
    starts = np.array([5], dtype=np.int64)
    counts = np.array([2], dtype=np.int64)
    offsets = np.cumsum(counts)
    for bad in (-1, 3):
        with pytest.raises(IndexError):
            nb.run_pages_at(
                head, starts, counts, offsets,
                np.array([bad], dtype=np.int64),
            )


@pytest.mark.parametrize("seed", [0, 1, 2])
@pytest.mark.parametrize("stride", [1, 7, 16, 1000])
def test_strided_run_pages_matches_expanded_slice(seed, stride):
    rng = np.random.default_rng(seed)
    head, starts, counts, offsets, expanded = _compressed(rng, n_pages=4096)
    got = nb.strided_run_pages(
        head, starts, counts, offsets, stride, expanded.size
    )
    np.testing.assert_array_equal(got, expanded[::stride])


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_weighted_page_counts_matches_add_at(seed):
    rng = np.random.default_rng(seed)
    n_pages = 4096
    head, starts, counts, _, expanded = _compressed(rng, n_pages)
    got = rng.integers(0, 5, size=n_pages).astype(np.int64)  # accumulates
    expected = got.copy()
    nb.weighted_page_counts(head, starts, counts, got)
    np.add.at(expected, expanded, 1)
    np.testing.assert_array_equal(got, expected)


def test_weighted_page_counts_out_of_range_raises():
    out = np.zeros(8, dtype=np.int64)
    empty = np.empty(0, dtype=np.int64)
    with pytest.raises(IndexError):
        nb.weighted_page_counts(
            np.array([8], dtype=np.int64), empty, empty, out
        )
    with pytest.raises(IndexError):
        nb.weighted_page_counts(
            empty,
            np.array([6], dtype=np.int64),
            np.array([5], dtype=np.int64),  # run [6, 11) exceeds 8 pages
            out,
        )


def _reference_hint_faults(unmap_time, expanded):
    """First-occurrence fault detection on the expanded stream."""
    total = unmap_time.size
    in_range = expanded[(expanded >= 0) & (expanded < total)]
    if in_range.size == 0:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.float64)
    first_idx = np.unique(in_range, return_index=True)[1]
    candidates = in_range[np.sort(first_idx)]
    times = unmap_time[candidates]
    mask = times >= 0.0
    faulted = candidates[mask]
    unmap_time[faulted] = -1.0
    return faulted, times[mask]


@pytest.mark.parametrize("seed", [0, 1, 2, 3])
def test_hint_faults_match_expanded_first_occurrence(seed):
    rng = np.random.default_rng(seed)
    n_pages = 4096
    head, starts, counts, _, expanded = _compressed(rng, n_pages)
    unmap = np.where(
        rng.random(n_pages) < 0.3, rng.random(n_pages) * 1e6, -1.0
    )
    ref_unmap = unmap.copy()
    pages, times = nb.hint_faults(unmap, head, starts, counts)
    exp_pages, exp_times = _reference_hint_faults(ref_unmap, expanded)
    np.testing.assert_array_equal(pages, exp_pages)  # order included
    np.testing.assert_array_equal(times, exp_times)
    np.testing.assert_array_equal(unmap, ref_unmap)  # same PTE restores


def test_hint_faults_skips_out_of_range_pages():
    unmap = np.array([5.0, -1.0], dtype=np.float64)
    pages, times = nb.hint_faults(
        unmap,
        np.array([7, 0, -3], dtype=np.int64),  # 7 and -3 out of range
        np.empty(0, dtype=np.int64),
        np.empty(0, dtype=np.int64),
    )
    np.testing.assert_array_equal(pages, [0])
    np.testing.assert_array_equal(times, [5.0])
    assert unmap[0] == -1.0


def test_hint_faults_empty_batch():
    unmap = np.array([1.0], dtype=np.float64)
    empty = np.empty(0, dtype=np.int64)
    pages, times = nb.hint_faults(unmap, empty, empty, empty)
    assert pages.size == 0 and times.size == 0
    assert unmap[0] == 1.0
