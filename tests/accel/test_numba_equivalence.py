"""numba backend vs the NumPy reference oracle: bit-exact, every kernel.

Skipped wholesale when numba is not installed (the default CI job and
a plain ``pip install repro``); the ``accel`` CI job installs the
``[accel]`` extra and runs it for real.  Randomized inputs, fixed
seeds -- any divergence is a kernel bug, never noise.
"""

from __future__ import annotations

import numpy as np
import pytest

pytest.importorskip("numba")

from repro.accel import numba_backend as cb  # noqa: E402
from repro.accel import numpy_backend as nb  # noqa: E402

SEEDS = [0, 1, 2]


def _placement(rng, n_pages):
    return rng.choice(np.array([-1, 0, 1], dtype=np.int8), size=n_pages)


@pytest.mark.parametrize("seed", SEEDS)
def test_placement_counts(seed):
    rng = np.random.default_rng(seed)
    placement = _placement(rng, 4096)
    page_ids = rng.integers(0, 4096, size=20_000, dtype=np.int64)
    out_nb = np.empty(page_ids.size, dtype=np.int8)
    out_cb = np.empty(page_ids.size, dtype=np.int8)
    assert cb.placement_counts(placement, page_ids, out_cb) == nb.placement_counts(
        placement, page_ids, out_nb
    )
    np.testing.assert_array_equal(out_cb, out_nb)


@pytest.mark.parametrize("seed", SEEDS)
def test_placement_prefix_and_compressed_counts(seed):
    rng = np.random.default_rng(seed)
    n_pages = 4096
    placement = _placement(rng, n_pages)
    prefix_nb = np.empty(n_pages + 1, dtype=np.int64)
    prefix_cb = np.empty(n_pages + 1, dtype=np.int64)
    nb.placement_prefix(placement, prefix_nb)
    cb.placement_prefix(placement, prefix_cb)
    np.testing.assert_array_equal(prefix_cb, prefix_nb)

    starts = rng.integers(0, n_pages - 40, size=300, dtype=np.int64)
    counts = rng.integers(0, 41, size=300, dtype=np.int64)
    head = rng.integers(0, n_pages, size=200, dtype=np.int64)
    assert cb.compressed_placement_counts(
        placement, prefix_cb, head, starts, counts
    ) == nb.compressed_placement_counts(placement, prefix_nb, head, starts, counts)


def test_compressed_counts_bounds_error():
    placement = np.zeros(8, dtype=np.int8)
    prefix = np.empty(9, dtype=np.int64)
    cb.placement_prefix(placement, prefix)
    empty = np.empty(0, dtype=np.int64)
    with pytest.raises(IndexError):
        cb.compressed_placement_counts(
            placement,
            prefix,
            empty,
            np.array([6], dtype=np.int64),
            np.array([5], dtype=np.int64),
        )
    with pytest.raises(IndexError):
        cb.placement_counts(
            placement,
            np.array([8], dtype=np.int64),
            np.empty(1, dtype=np.int8),
        )


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("num_hashes", [1, 3, 5])
def test_classic_indices(seed, num_hashes):
    rng = np.random.default_rng(seed)
    keys = rng.integers(0, 1 << 48, size=5_000, dtype=np.uint64)
    np.testing.assert_array_equal(
        cb.classic_indices(keys, num_hashes, 1_048_573, seed),
        nb.classic_indices(keys, num_hashes, 1_048_573, seed),
    )


@pytest.mark.parametrize("seed", SEEDS)
def test_blocked_indices(seed):
    rng = np.random.default_rng(seed)
    keys = rng.integers(0, 1 << 48, size=5_000, dtype=np.uint64)
    np.testing.assert_array_equal(
        cb.blocked_indices(keys, seed, 4096, 16, 3),
        nb.blocked_indices(keys, seed, 4096, 16, 3),
    )


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("bits", [2, 4, 8, 16])
def test_cbf_fused_update(seed, bits):
    rng = np.random.default_rng(seed * 31 + bits)
    size = 512
    per_byte = 1 if bits in (8, 16) else 8 // bits
    n_store = size if bits in (8, 16) else -(-size // per_byte)
    dtype = np.uint16 if bits == 16 else np.uint8
    store_nb = rng.integers(0, 256, size=n_store).astype(dtype)
    store_cb = store_nb.copy()
    max_value = (1 << bits) - 1
    for _ in range(3):
        idx = rng.integers(0, size, size=(64, 3), dtype=np.int64)
        totals = rng.integers(1, 5, size=64, dtype=np.int64)
        np.testing.assert_array_equal(
            cb.cbf_fused_update(store_cb, bits, per_byte, max_value, idx, totals),
            nb.cbf_fused_update(store_nb, bits, per_byte, max_value, idx, totals),
        )
        np.testing.assert_array_equal(store_cb, store_nb)


@pytest.mark.parametrize("seed", SEEDS)
def test_gap_positions(seed):
    rng = np.random.default_rng(seed)
    gaps = rng.integers(1, 50, size=60, dtype=np.int64)
    pos = int(rng.integers(0, 40))
    n = int(rng.integers(100, 2000))
    out_nb = np.empty(gaps.size + 1, dtype=np.int64)
    out_cb = np.empty(gaps.size + 1, dtype=np.int64)
    res_nb = nb.gap_positions(gaps, pos, n, out_nb)
    res_cb = cb.gap_positions(gaps, pos, n, out_cb)
    assert res_cb == res_nb
    count = res_nb[0]
    np.testing.assert_array_equal(out_cb[:count], out_nb[:count])


@pytest.mark.parametrize("seed", SEEDS)
def test_expand_runs(seed):
    rng = np.random.default_rng(seed)
    starts = rng.integers(0, 10_000, size=300, dtype=np.int64)
    counts = rng.integers(0, 25, size=300, dtype=np.int64)
    total = int(counts.sum())
    out_nb = np.empty(total, dtype=np.int64)
    out_cb = np.empty(total, dtype=np.int64)
    nb.expand_runs(starts, counts, out_nb)
    cb.expand_runs(starts, counts, out_cb)
    np.testing.assert_array_equal(out_cb, out_nb)


def _compressed_batch(rng, n_pages):
    head = rng.integers(0, n_pages, size=200, dtype=np.int64)
    starts = rng.integers(0, n_pages - 40, size=300, dtype=np.int64)
    counts = rng.integers(0, 41, size=300, dtype=np.int64)
    return head, starts, counts, np.cumsum(counts)


@pytest.mark.parametrize("seed", SEEDS)
def test_run_pages_at(seed):
    rng = np.random.default_rng(seed)
    head, starts, counts, offsets = _compressed_batch(rng, 4096)
    total = head.size + int(offsets[-1])
    positions = rng.integers(0, total, size=700, dtype=np.int64)
    np.testing.assert_array_equal(
        cb.run_pages_at(head, starts, counts, offsets, positions),
        nb.run_pages_at(head, starts, counts, offsets, positions),
    )
    ordered = np.sort(positions)
    np.testing.assert_array_equal(
        cb.run_pages_at(
            head, starts, counts, offsets, ordered, sorted_positions=True
        ),
        nb.run_pages_at(
            head, starts, counts, offsets, ordered, sorted_positions=True
        ),
    )
    with pytest.raises(IndexError):
        cb.run_pages_at(
            head, starts, counts, offsets,
            np.array([total], dtype=np.int64),
        )


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("stride", [1, 7, 16, 100_000])
def test_strided_run_pages(seed, stride):
    rng = np.random.default_rng(seed)
    head, starts, counts, offsets = _compressed_batch(rng, 4096)
    total = head.size + int(offsets[-1])
    np.testing.assert_array_equal(
        cb.strided_run_pages(head, starts, counts, offsets, stride, total),
        nb.strided_run_pages(head, starts, counts, offsets, stride, total),
    )


@pytest.mark.parametrize("seed", SEEDS)
def test_weighted_page_counts(seed):
    rng = np.random.default_rng(seed)
    n_pages = 4096
    head, starts, counts, _ = _compressed_batch(rng, n_pages)
    out_nb = rng.integers(0, 5, size=n_pages).astype(np.int64)
    out_cb = out_nb.copy()
    nb.weighted_page_counts(head, starts, counts, out_nb)
    cb.weighted_page_counts(head, starts, counts, out_cb)
    np.testing.assert_array_equal(out_cb, out_nb)
    with pytest.raises(IndexError):
        cb.weighted_page_counts(
            np.array([n_pages], dtype=np.int64),
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.int64),
            out_cb,
        )


@pytest.mark.parametrize("seed", SEEDS)
def test_hint_faults(seed):
    rng = np.random.default_rng(seed)
    n_pages = 4096
    # Head includes out-of-range ids: both backends must skip them.
    head = rng.integers(-10, n_pages + 10, size=200, dtype=np.int64)
    starts = rng.integers(0, n_pages - 40, size=300, dtype=np.int64)
    counts = rng.integers(0, 41, size=300, dtype=np.int64)
    unmap_nb = np.where(
        rng.random(n_pages) < 0.3, rng.random(n_pages) * 1e6, -1.0
    )
    unmap_cb = unmap_nb.copy()
    pages_nb, times_nb = nb.hint_faults(unmap_nb, head, starts, counts)
    pages_cb, times_cb = cb.hint_faults(unmap_cb, head, starts, counts)
    np.testing.assert_array_equal(pages_cb, pages_nb)
    np.testing.assert_array_equal(times_cb, times_nb)
    np.testing.assert_array_equal(unmap_cb, unmap_nb)
