"""Zero-copy shared-memory stream executor: identity, fallback, lifecycle.

The contract: turning ``share_streams`` on changes *nothing* about the
results -- every cell of a grid must be byte-identical to serial
execution -- while the workload's access stream is generated once and
mapped read-only by every worker.  Segments must not outlive the grid.
"""

from __future__ import annotations

import dataclasses
import pickle
from multiprocessing import shared_memory

import numpy as np
import pytest

from repro.core.config import ExperimentConfig
from repro.core.parallel import (
    CellSpec,
    ParallelExecutor,
    PolicySpec,
    WorkloadSpec,
)
from repro.core.shm import (
    SharedStreamFactory,
    SharedStreamWorkload,
    publish_stream,
    record_stream,
)

WORKLOAD = WorkloadSpec("cdn", slab_pages=2_048, ops_per_batch=2_000, seed=11)
CONFIG = ExperimentConfig(
    local_fraction=0.12, ratio_label="1:16", max_batches=20, seed=11
)
POLICIES = ("freqtier", "autonuma", "tpp")


def _grid():
    return [
        CellSpec(WORKLOAD, PolicySpec(name, seed=11), CONFIG, label=name)
        for name in POLICIES
    ]


def _dicts(results):
    return [dataclasses.asdict(r) for r in results]


# ---------------------------------------------------------------------------
# recording / replay
# ---------------------------------------------------------------------------


def test_replay_reproduces_generated_stream():
    records, arrays, exhausted = record_stream(WORKLOAD, 20)
    assert len(records) == 20
    assert not exhausted  # the CDN workload generates forever

    handle = publish_stream(WORKLOAD, 20)
    try:
        replay = SharedStreamWorkload(WORKLOAD, handle)
        fresh = WORKLOAD()
        from repro.core.runner import build_all_local_machine
        from repro.memsim.tier import CXL1_CONFIG

        fresh.setup(build_all_local_machine(fresh.footprint_pages, CXL1_CONFIG))
        fresh_stream = fresh.batches()
        for got in replay.batches():
            want = next(fresh_stream)
            assert got.label == want.label
            assert got.num_ops == want.num_ops
            assert got.cpu_ns == want.cpu_ns
            # page_ids materializes compressed batches on both sides.
            np.testing.assert_array_equal(got.page_ids, want.page_ids)
            assert not got.head_page_ids.flags.writeable
    finally:
        handle.unlink()


def test_replay_views_are_read_only():
    handle = publish_stream(WORKLOAD, 5)
    try:
        views = handle.attach()
        assert views
        for view in views:
            with pytest.raises(ValueError):
                view[0] = 0
    finally:
        handle.unlink()


def test_handle_pickles_by_value_and_reattaches():
    handle = publish_stream(WORKLOAD, 5)
    try:
        clone = pickle.loads(pickle.dumps(handle))
        assert clone.segment == handle.segment
        assert not clone._owner
        for mine, theirs in zip(handle.attach(), clone.attach()):
            np.testing.assert_array_equal(mine, theirs)
        clone.close()
    finally:
        handle.unlink()


def test_unlink_is_idempotent_and_removes_segment():
    handle = publish_stream(WORKLOAD, 5)
    name = handle.segment
    handle.unlink()
    handle.unlink()  # second call is a no-op
    with pytest.raises(FileNotFoundError):
        shared_memory.SharedMemory(name=name, create=False)


def test_shared_workload_delegates_identity():
    handle = publish_stream(WORKLOAD, 5)
    try:
        replay = SharedStreamWorkload(WORKLOAD, handle)
        fresh = WORKLOAD()
        assert replay.name == fresh.name
        assert replay.seed == fresh.seed
        assert replay.footprint_pages == fresh.footprint_pages
        assert replay.describe().get("shared_stream") is True
    finally:
        handle.unlink()


# ---------------------------------------------------------------------------
# executor integration
# ---------------------------------------------------------------------------


def test_pool_with_shared_streams_matches_serial():
    serial = ParallelExecutor(jobs=1).run(_grid())
    shared = ParallelExecutor(jobs=2, share_streams=True)
    pooled = shared.run(_grid())
    assert _dicts(pooled) == _dicts(serial)
    assert shared.stats.shm_segments == 1  # one workload group
    assert shared.stats.shm_bytes > 0
    assert shared.stats.shm_fallbacks == 0


def test_pool_without_sharing_still_matches_serial():
    serial = ParallelExecutor(jobs=1).run(_grid())
    off = ParallelExecutor(jobs=2, share_streams=False)
    pooled = off.run(_grid())
    assert _dicts(pooled) == _dicts(serial)
    assert off.stats.shm_segments == 0


def test_segments_unlinked_after_grid():
    executor = ParallelExecutor(jobs=2, share_streams=True)
    specs, handles = executor._substitute_shared(_grid())
    assert len(handles) == 1
    name = handles[0].segment
    assert isinstance(specs[0].workload, SharedStreamFactory)
    for handle in handles:
        handle.unlink()
    with pytest.raises(FileNotFoundError):
        shared_memory.SharedMemory(name=name, create=False)


# ---------------------------------------------------------------------------
# eligibility / fallback
# ---------------------------------------------------------------------------


def test_single_cell_groups_not_published():
    executor = ParallelExecutor(jobs=2, share_streams=True)
    specs, handles = executor._substitute_shared(_grid()[:1])
    assert handles == []
    assert not isinstance(specs[0].workload, SharedStreamFactory)


def test_unbounded_budget_ineligible():
    config = dataclasses.replace(CONFIG, max_batches=None, max_accesses=10_000)
    spec = CellSpec(WORKLOAD, PolicySpec("freqtier", seed=11), config)
    assert ParallelExecutor._stream_key(spec) is None


def test_max_accesses_limit_ineligible():
    config = dataclasses.replace(CONFIG, max_accesses=10_000)
    spec = CellSpec(WORKLOAD, PolicySpec("freqtier", seed=11), config)
    assert ParallelExecutor._stream_key(spec) is None


def test_closure_factory_ineligible():
    spec = CellSpec(lambda: None, PolicySpec("freqtier", seed=11), CONFIG)
    assert ParallelExecutor._stream_key(spec) is None


def test_same_workload_same_key_different_workload_different_key():
    a = CellSpec(WORKLOAD, PolicySpec("freqtier", seed=11), CONFIG)
    b = CellSpec(WORKLOAD, PolicySpec("tpp", seed=3), CONFIG)
    other = CellSpec(
        WorkloadSpec("cdn", slab_pages=2_048, ops_per_batch=2_000, seed=99),
        PolicySpec("freqtier", seed=11),
        CONFIG,
    )
    key_a = ParallelExecutor._stream_key(a)
    assert key_a is not None
    assert key_a == ParallelExecutor._stream_key(b)  # policy-independent
    assert key_a != ParallelExecutor._stream_key(other)


def test_publish_failure_counts_fallback(monkeypatch):
    import repro.core.shm as shm_mod

    def boom(*args, **kwargs):
        raise OSError("no shared memory on this platform")

    monkeypatch.setattr(shm_mod, "publish_stream", boom)
    executor = ParallelExecutor(jobs=2, share_streams=True)
    specs, handles = executor._substitute_shared(_grid())
    assert handles == []
    assert executor.stats.shm_fallbacks == 1
    assert not any(isinstance(s.workload, SharedStreamFactory) for s in specs)
