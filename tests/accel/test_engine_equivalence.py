"""Backend choice must never change experiment results.

Two layers of evidence:

- **Always on:** the engine's run-compressed fast path (prefix-sum
  counting, position-sampled observers, compressed hint faults -- no
  stream expansion anywhere) must match the expanded-stream path
  bit-for-bit for every policy that opts out of stream
  materialization, which is all of them.
- **With numba installed:** full experiment cells -- 8 policies x 3
  seeds -- must produce byte-identical results under the compiled
  backend and the NumPy reference (``tests/accel/test_numba_equivalence``
  pins individual kernels; this pins their composition).
"""

from __future__ import annotations

import dataclasses

import pytest

from repro import accel, policies
from repro.core.config import ExperimentConfig
from repro.core.parallel import PolicySpec, WorkloadSpec
from repro.core.runner import run_experiment

WORKLOAD = WorkloadSpec("cdn", slab_pages=2_048, ops_per_batch=2_000, seed=7)
CONFIG = ExperimentConfig(
    local_fraction=0.12, ratio_label="1:16", max_batches=25, seed=7
)

POLICIES = (
    "freqtier",
    "hybridtier",
    "autonuma",
    "tpp",
    "multiclock",
    "hemem",
    "damon",
    "static",
)
SEEDS = (1, 2, 3)

#: Registry name -> class whose ``needs_access_stream`` flag forces the
#: expanded reference path when monkeypatched to True.
POLICY_CLASSES = {
    "freqtier": policies.FreqTier,
    "hybridtier": policies.HybridTier,
    "autonuma": policies.AutoNUMA,
    "tpp": policies.TPP,
    "multiclock": policies.MultiClock,
    "hemem": policies.HeMem,
    "damon": policies.DAMONRegion,
    "static": policies.StaticNoMigration,
    "alllocal": policies.AllLocal,
}


def _as_dict(result):
    return dataclasses.asdict(result)


def test_every_policy_opts_out_of_stream_materialization():
    """The whole registry runs compressed batches without expansion."""
    for name, cls in POLICY_CLASSES.items():
        assert cls.needs_access_stream is False, name


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("policy", sorted(POLICY_CLASSES))
def test_compressed_path_matches_expanded_path(policy, seed, monkeypatch):
    """Compressed fast path == expanded reference path, per policy.

    The compressed run exercises prefix-sum tier counting plus the
    policy's compressed observers (``pages_at`` sampling, compressed
    hint faults, strided touched sets); forcing
    ``needs_access_stream=True`` makes the engine materialize the
    stream and gather per-access tiers, sending every observer down its
    expanded reference path.  Everything downstream (counts, sampling,
    migrations, costs) must be unaffected.
    """
    compressed = run_experiment(WORKLOAD, PolicySpec(policy, seed=seed), CONFIG)
    monkeypatch.setattr(POLICY_CLASSES[policy], "needs_access_stream", True)
    expanded = run_experiment(WORKLOAD, PolicySpec(policy, seed=seed), CONFIG)
    assert _as_dict(compressed) == _as_dict(expanded)


def test_engine_results_deterministic_across_runs():
    first = run_experiment(WORKLOAD, PolicySpec("freqtier", seed=2), CONFIG)
    second = run_experiment(WORKLOAD, PolicySpec("freqtier", seed=2), CONFIG)
    assert _as_dict(first) == _as_dict(second)


def test_fallback_event_is_schema_valid():
    """A numba request without numba must yield a traceable event.

    The engine emits the recorded fallback through its tracer at
    setup; the event type must therefore exist in the trace schema or
    every traced run under ``REPRO_ACCEL=numba`` would crash on the
    very machine the fallback is for.
    """
    from repro.obs.events import validate_event

    if accel.set_backend("numba") == "numba":
        pytest.skip("numba installed; no fallback occurs")
    event = accel.fallback_event()
    assert event is not None
    assert event["active"] == "numpy"
    validate_event({"type": "accel_fallback", "t_ns": 0.0, "seq": 0, **event})


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("policy", POLICIES)
def test_backends_produce_identical_results(policy, seed):
    pytest.importorskip("numba")
    spec = PolicySpec(policy, seed=seed)
    accel.set_backend("numpy")
    reference = run_experiment(WORKLOAD, spec, CONFIG)
    assert accel.set_backend("numba") == "numba"
    compiled = run_experiment(WORKLOAD, spec, CONFIG)
    assert _as_dict(compiled) == _as_dict(reference)
