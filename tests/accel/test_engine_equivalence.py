"""Backend choice must never change experiment results.

Two layers of evidence:

- **Always on:** the engine's run-compressed counting path (prefix sum,
  no stream expansion) must match the expanded-stream path bit-for-bit
  for a policy that opts out of stream materialization.
- **With numba installed:** full experiment cells -- 8 policies x 3
  seeds -- must produce byte-identical results under the compiled
  backend and the NumPy reference (``tests/accel/test_numba_equivalence``
  pins individual kernels; this pins their composition).
"""

from __future__ import annotations

import dataclasses

import pytest

from repro import accel
from repro.core.config import ExperimentConfig
from repro.core.parallel import PolicySpec, WorkloadSpec
from repro.core.runner import run_experiment
from repro.policies.freqtier.policy import FreqTier

WORKLOAD = WorkloadSpec("cdn", slab_pages=2_048, ops_per_batch=2_000, seed=7)
CONFIG = ExperimentConfig(
    local_fraction=0.12, ratio_label="1:16", max_batches=25, seed=7
)

POLICIES = (
    "freqtier",
    "hybridtier",
    "autonuma",
    "tpp",
    "multiclock",
    "hemem",
    "damon",
    "static",
)
SEEDS = (1, 2, 3)


def _as_dict(result):
    return dataclasses.asdict(result)


def test_compressed_path_matches_expanded_path(monkeypatch):
    """FreqTier via the prefix-sum path == FreqTier via tier gather."""
    compressed = run_experiment(WORKLOAD, PolicySpec("freqtier", seed=1), CONFIG)
    # Forcing needs_access_stream=True makes the engine materialize the
    # stream and gather per-access tiers; everything downstream (counts,
    # sampling, migrations, costs) must be unaffected.
    monkeypatch.setattr(FreqTier, "needs_access_stream", True)
    expanded = run_experiment(WORKLOAD, PolicySpec("freqtier", seed=1), CONFIG)
    assert _as_dict(compressed) == _as_dict(expanded)


def test_engine_results_deterministic_across_runs():
    first = run_experiment(WORKLOAD, PolicySpec("freqtier", seed=2), CONFIG)
    second = run_experiment(WORKLOAD, PolicySpec("freqtier", seed=2), CONFIG)
    assert _as_dict(first) == _as_dict(second)


def test_fallback_event_is_schema_valid():
    """A numba request without numba must yield a traceable event.

    The engine emits the recorded fallback through its tracer at
    setup; the event type must therefore exist in the trace schema or
    every traced run under ``REPRO_ACCEL=numba`` would crash on the
    very machine the fallback is for.
    """
    from repro.obs.events import validate_event

    if accel.set_backend("numba") == "numba":
        pytest.skip("numba installed; no fallback occurs")
    event = accel.fallback_event()
    assert event is not None
    assert event["active"] == "numpy"
    validate_event({"type": "accel_fallback", "t_ns": 0.0, "seq": 0, **event})


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("policy", POLICIES)
def test_backends_produce_identical_results(policy, seed):
    pytest.importorskip("numba")
    spec = PolicySpec(policy, seed=seed)
    accel.set_backend("numpy")
    reference = run_experiment(WORKLOAD, spec, CONFIG)
    assert accel.set_backend("numba") == "numba"
    compiled = run_experiment(WORKLOAD, spec, CONFIG)
    assert _as_dict(compiled) == _as_dict(reference)
