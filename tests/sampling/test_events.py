"""Tests for sampling event types."""

import numpy as np
import pytest

from repro.sampling.events import AccessBatch, SampleBatch


class TestAccessBatch:
    def test_basic(self):
        b = AccessBatch(page_ids=np.array([1, 2, 3]), num_ops=2.0, cpu_ns=10.0)
        assert b.num_accesses == 3
        assert b.bytes_per_access == 64.0

    def test_coerces_dtype(self):
        b = AccessBatch(page_ids=[1, 2], num_ops=1.0, cpu_ns=0.0)
        assert b.page_ids.dtype == np.int64

    def test_validation(self):
        with pytest.raises(ValueError):
            AccessBatch(page_ids=np.array([1]), num_ops=-1.0, cpu_ns=0.0)
        with pytest.raises(ValueError):
            AccessBatch(page_ids=np.array([1]), num_ops=1.0, cpu_ns=-1.0)
        with pytest.raises(ValueError):
            AccessBatch(
                page_ids=np.array([1]), num_ops=1.0, cpu_ns=0.0, bytes_per_access=0
            )


class TestSampleBatch:
    def test_alignment_enforced(self):
        with pytest.raises(ValueError):
            SampleBatch(page_ids=np.array([1, 2]), tiers=np.array([0]))

    def test_empty(self):
        b = SampleBatch.empty()
        assert b.num_samples == 0
        assert b.lost == 0
