"""Tests for sampling event types."""

import numpy as np
import pytest

from repro.sampling.events import AccessBatch, SampleBatch


class TestAccessBatch:
    def test_basic(self):
        b = AccessBatch(page_ids=np.array([1, 2, 3]), num_ops=2.0, cpu_ns=10.0)
        assert b.num_accesses == 3
        assert b.bytes_per_access == 64.0

    def test_coerces_dtype(self):
        b = AccessBatch(page_ids=[1, 2], num_ops=1.0, cpu_ns=0.0)
        assert b.page_ids.dtype == np.int64

    def test_validation(self):
        with pytest.raises(ValueError):
            AccessBatch(page_ids=np.array([1]), num_ops=-1.0, cpu_ns=0.0)
        with pytest.raises(ValueError):
            AccessBatch(page_ids=np.array([1]), num_ops=1.0, cpu_ns=-1.0)
        with pytest.raises(ValueError):
            AccessBatch(
                page_ids=np.array([1]), num_ops=1.0, cpu_ns=0.0, bytes_per_access=0
            )


class TestCompressedAccessBatch:
    @staticmethod
    def _batch(head, starts, counts):
        return AccessBatch(
            page_ids=None,
            num_ops=1.0,
            cpu_ns=0.0,
            head_page_ids=np.asarray(head, dtype=np.int64),
            run_starts=np.asarray(starts, dtype=np.int64),
            run_counts=np.asarray(counts, dtype=np.int64),
        )

    def test_empty_batch(self):
        b = self._batch([], [], [])
        assert b.num_accesses == 0
        assert b.page_ids.size == 0
        assert b.pages_at(np.empty(0, dtype=np.int64)).size == 0
        assert b.strided_pages(7).size == 0

    def test_single_run_batch(self):
        b = self._batch([], [10], [4])
        assert b.num_accesses == 4
        np.testing.assert_array_equal(
            b.pages_at(np.array([0, 3])), [10, 13]
        )
        np.testing.assert_array_equal(b.strided_pages(2), [10, 12])
        np.testing.assert_array_equal(b.page_ids, [10, 11, 12, 13])

    def test_run_spanning_final_access(self):
        """The last position falls inside the last run, not the head."""
        b = self._batch([5], [20, 30], [2, 3])
        assert b.num_accesses == 6
        assert b.pages_at(np.array([b.num_accesses - 1]))[0] == 32
        np.testing.assert_array_equal(b.strided_pages(5), [5, 32])

    def test_pages_at_out_of_range_raises(self):
        b = self._batch([5], [20], [2])
        with pytest.raises(IndexError):
            b.pages_at(np.array([3]))
        with pytest.raises(IndexError):
            b.pages_at(np.array([-1]))

    def test_pages_at_matches_expansion(self):
        b = self._batch([7, 2], [100, 50], [3, 2])
        positions = np.arange(b.num_accesses)
        np.testing.assert_array_equal(
            b.pages_at(positions), b.page_ids[positions]
        )

    def test_release_expanded_recomputes_identically(self):
        b = self._batch([7], [100], [3])
        first = b.page_ids.copy()
        b.release_expanded()
        assert b._page_ids is None
        np.testing.assert_array_equal(b.page_ids, first)

    def test_release_expanded_noop_on_explicit_batch(self):
        b = AccessBatch(page_ids=np.array([1, 2]), num_ops=1.0, cpu_ns=0.0)
        b.release_expanded()
        np.testing.assert_array_equal(b.page_ids, [1, 2])


class TestSampleBatch:
    def test_alignment_enforced(self):
        with pytest.raises(ValueError):
            SampleBatch(page_ids=np.array([1, 2]), tiers=np.array([0]))

    def test_empty(self):
        b = SampleBatch.empty()
        assert b.num_samples == 0
        assert b.lost == 0
