"""Tests for the counting-only monitor (monitoring mode)."""

import pytest

from repro.sampling.perf_stat import PerfStatCounter


@pytest.fixture
def counter() -> PerfStatCounter:
    return PerfStatCounter(stability_epsilon=0.005)


class TestWindows:
    def test_window_hit_ratio(self, counter):
        counter.count(90, 10)
        assert counter.current_window_hit_ratio == pytest.approx(0.9)
        ratio = counter.close_window()
        assert ratio == pytest.approx(0.9)
        assert counter.current_window_hit_ratio is None

    def test_empty_window_returns_none(self, counter):
        assert counter.close_window() is None

    def test_overall_accumulates(self, counter):
        counter.count(50, 50)
        counter.close_window()
        counter.count(100, 0)
        assert counter.overall_hit_ratio == pytest.approx(150 / 200)

    def test_history_bounded(self):
        counter = PerfStatCounter(history=3)
        for __ in range(10):
            counter.count(1, 1)
            counter.close_window()
        assert len(counter._closed) == 3

    def test_validation(self):
        with pytest.raises(ValueError):
            PerfStatCounter(stability_epsilon=0.0)
        with pytest.raises(ValueError):
            PerfStatCounter(history=1)
        with pytest.raises(ValueError):
            PerfStatCounter().count(-1, 0)


class TestStability:
    """The paper's 0.5% stability rule (Section V-B2)."""

    def test_stable_when_within_epsilon(self, counter):
        counter.count(900, 100)
        counter.close_window()
        counter.count(901, 99)
        counter.close_window()
        assert counter.is_stable()

    def test_unstable_when_beyond_epsilon(self, counter):
        counter.count(90, 10)
        counter.close_window()
        counter.count(80, 20)
        counter.close_window()
        assert not counter.is_stable()

    def test_needs_enough_windows(self, counter):
        counter.count(90, 10)
        counter.close_window()
        assert not counter.is_stable()

    def test_multi_window_stability(self, counter):
        for local in (900, 902, 899, 901):
            counter.count(local, 1000 - local)
            counter.close_window()
        assert counter.is_stable(windows=4)

    def test_invalid_window_count(self, counter):
        with pytest.raises(ValueError):
            counter.is_stable(windows=1)


class TestChangeDetection:
    def test_detects_shift_from_reference(self, counter):
        counter.count(90, 10)
        counter.close_window()
        assert counter.changed_since_stable(reference=0.95)

    def test_no_change_within_epsilon(self, counter):
        counter.count(949, 51)
        counter.close_window()
        assert not counter.changed_since_stable(reference=0.95)

    def test_no_windows_no_change(self, counter):
        assert not counter.changed_since_stable(reference=0.9)
